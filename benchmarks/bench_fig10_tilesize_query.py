"""Figure 10: shuffled-TPC-H geo-mean query time over tile size, one
series per partition size.

Paper: more partitions reorder better; tile sizes around 2^10-2^12 are
the sweet spot.  At our reduced data scale the tile-size axis is scaled
down accordingly (DESIGN.md); the expected shape is partition size 8
(at a mid tile size) beating partition size 1.
"""

from _shared import PARTITION_SIZES, TILE_SIZES, sweep


def test_fig10_tile_size_query_geomean(benchmark, report):
    results = benchmark.pedantic(lambda: sweep("shuffled-tpch"),
                                 rounds=1, iterations=1)
    out = report("fig10_tilesize_query",
                 "Figure 10 - shuffled TPC-H geo-mean [s] per tile size "
                 "(columns: partition size)")
    rows = []
    for tile_size in TILE_SIZES:
        rows.append([tile_size] + [
            results[(tile_size, partition)][0]
            for partition in PARTITION_SIZES])
    out.table(["tile size"] + [f"partition {p}" for p in PARTITION_SIZES],
              rows)
    out.emit()

    # reordering across more tiles helps on shuffled data
    mid = TILE_SIZES[1]
    assert results[(mid, 8)][0] < results[(mid, 1)][0]


def test_fig10_partition8_beats_partition1_overall(benchmark, report):
    results = sweep("shuffled-tpch")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.bench.harness import geomean
    p1 = geomean([results[(t, 1)][0] for t in TILE_SIZES])
    p8 = geomean([results[(t, 8)][0] for t in TILE_SIZES])
    out = report("fig10_partition_summary",
                 "Figure 10 (summary) - geo-mean across tile sizes")
    out.table(["partition size", "geo-mean [s]"], [[1, p1], [8, p8]])
    out.emit()
    assert p8 < p1
