"""Figure 9: geometric mean on *shuffled* TPC-H.

Paper: JSON ~3s, JSONB/Sinew much faster, Tiles another ~4x over both —
the reordering algorithm recovers extractability when insertion order
carries no locality.  An extra ablation shows the same Tiles build with
reordering disabled.
"""

from repro.bench import datasets, time_query
from repro.bench.harness import geomean
from repro.storage.formats import StorageFormat
from repro.workloads.tpch import TPCH_QUERIES
from _shared import SWEEP_TPCH_QUERIES, tpch_geomean

PAPER = {"JSON": 3.0, "JSONB": 0.55, "Sinew": 0.48, "Tiles": 0.12}

FORMATS = [StorageFormat.JSON, StorageFormat.JSONB, StorageFormat.SINEW,
           StorageFormat.TILES]


def test_fig09_shuffled(benchmark, report):
    dbs = {fmt: datasets.tpch_db(fmt, shuffled=True) for fmt in FORMATS}
    measured = {fmt: tpch_geomean(dbs[fmt], queries=sorted(TPCH_QUERIES))
                for fmt in FORMATS}
    no_reorder = datasets.tpch_db(StorageFormat.TILES, shuffled=True,
                                  enable_reordering=False)
    measured_no_reorder = tpch_geomean(no_reorder,
                                       queries=sorted(TPCH_QUERIES))
    benchmark.pedantic(lambda: dbs[StorageFormat.TILES].sql(TPCH_QUERIES[1]),
                       rounds=3, iterations=1)

    out = report("fig09_shuffled",
                 "Figure 9 - shuffled TPC-H geo-mean [s] (all 22 queries)")
    rows = [[fmt.value, measured[fmt],
             f"p:{PAPER[label]:.2f}"]
            for fmt, label in zip(FORMATS, PAPER)]
    rows.append(["tiles (no reordering)", measured_no_reorder, "-"])
    out.table(["format", "geo-mean [s]", "paper (approx)"], rows)
    out.emit()

    assert measured[StorageFormat.TILES] < measured[StorageFormat.JSONB]
    assert measured[StorageFormat.TILES] < measured[StorageFormat.SINEW]
    # JSON vs JSONB are both per-document formats; allow timing noise
    # on their (small, substrate-dependent) gap
    assert measured[StorageFormat.JSON] > measured[StorageFormat.JSONB] * 0.9
    # reordering is what makes shuffled data fast again
    assert measured[StorageFormat.TILES] < measured_no_reorder
