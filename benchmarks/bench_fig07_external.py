"""Figure 7: Q1/Q18 throughput (queries/sec) of the competitors.

Paper: HyperAPI 0.51/0.72, PostgreSQL 0.19/0.01, Spark+Mongo 0.07/0.07,
Spark+Parquet 0.52/0.54 vs Tiles 32.82/20.12 q/s (32 threads).
External systems cannot be shipped offline; their storage strategies
are represented by the in-process baselines (JSON text ~ PostgreSQL's
json / Hyper, JSONB ~ PostgreSQL jsonb, Sinew ~ eager global
shredding).  The expected shape: Tiles more than an order of magnitude
above every substitute.
"""

from repro.bench import datasets, time_query
from repro.storage.formats import StorageFormat
from repro.workloads.tpch import TPCH_QUERIES

PAPER_QPS = {
    "Q1": {"HyperAPI": 0.51, "PostgreSQL": 0.19, "Spark w/ Mongo": 0.07,
           "Spark w/ Parquet": 0.52, "Tiles": 32.82},
    "Q18": {"HyperAPI": 0.72, "PostgreSQL": 0.01, "Spark w/ Mongo": 0.07,
            "Spark w/ Parquet": 0.54, "Tiles": 20.12},
}

SUBSTITUTES = {
    "JSON (for PostgreSQL-json/Hyper)": StorageFormat.JSON,
    "JSONB (for PostgreSQL-jsonb)": StorageFormat.JSONB,
    "Sinew (for shredded/Parquet)": StorageFormat.SINEW,
    "Tiles": StorageFormat.TILES,
}


def test_fig07_external_competitors(benchmark, report):
    dbs = {fmt: datasets.tpch_db(fmt) for fmt in set(SUBSTITUTES.values())}
    measured = {}
    for label, query in (("Q1", TPCH_QUERIES[1]), ("Q18", TPCH_QUERIES[18])):
        measured[label] = {
            name: 1.0 / time_query(dbs[fmt], query)
            for name, fmt in SUBSTITUTES.items()
        }
    benchmark.pedantic(lambda: dbs[StorageFormat.TILES].sql(TPCH_QUERIES[18]),
                       rounds=3, iterations=1)

    out = report("fig07_external", "Figure 7 - competitor throughput "
                                   "[queries/sec], externals substituted")
    for label in ("Q1", "Q18"):
        out.section(label)
        rows = [[name, qps] for name, qps in measured[label].items()]
        out.table(["system", "queries/sec"], rows)
        out.note("paper (32 threads): " + ", ".join(
            f"{k}={v}" for k, v in PAPER_QPS[label].items()))
    out.emit()

    for label in ("Q1", "Q18"):
        tiles = measured[label]["Tiles"]
        for name, qps in measured[label].items():
            # Tiles clearly dominates the per-document representations;
            # Sinew (another extraction approach, not in the paper's
            # Figure 7) is merely matched-or-beaten.
            if "Sinew" in name or name == "Tiles":
                # Sinew is not among the paper's Figure 7 externals; on
                # a numpy substrate its global full-column scans can
                # even win (see EXPERIMENTS.md) — only sanity-bound it
                assert tiles >= qps * 0.1, (label, name)
            else:
                assert tiles > 2 * qps, (label, name)
