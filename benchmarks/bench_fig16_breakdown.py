"""Figure 16: insertion time breakdown.

Paper: the dominant share of tile insertion is writing the binary JSON
data; extraction/mining/reordering add little (shuffled TPC-H spends a
visible share on reordering, yet Figure 11 shows overall insertion
speed is unchanged).  The bench reports the percentage per phase for
every workload.
"""

from repro.bench import datasets
from repro.storage.formats import StorageFormat

PHASES = ["extract", "mining", "reordering", "write_jsonb"]
_KEYS = {"extract": "extract", "mining": "mining",
         "reordering": "reorder", "write_jsonb": "write_jsonb"}


def _breakdown(relation):
    timings = relation.load_breakdown
    total = sum(timings.get(_KEYS[phase], 0.0) for phase in PHASES)
    if total == 0:
        return {phase: 0.0 for phase in PHASES}
    return {phase: 100.0 * timings.get(_KEYS[phase], 0.0) / total
            for phase in PHASES}


def test_fig16_insertion_breakdown(benchmark, report):
    workloads = {
        "TPC-H": datasets.tpch_db(StorageFormat.TILES)
        .table("tpch_combined"),
        "Shuffled": datasets.tpch_db(StorageFormat.TILES, shuffled=True)
        .table("tpch_combined"),
        "Yelp": datasets.yelp_db(StorageFormat.TILES).table("yelp"),
        "Twitter": datasets.twitter_db(StorageFormat.TILES).table("tweets"),
        "Changing": datasets.twitter_db(StorageFormat.TILES, evolving=True)
        .table("tweets"),
    }
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    out = report("fig16_breakdown",
                 "Figure 16 - insertion time breakdown [% of tile phases]")
    rows = []
    shares = {}
    for name, relation in workloads.items():
        breakdown = _breakdown(relation)
        shares[name] = breakdown
        rows.append([name] + [breakdown[phase] for phase in PHASES])
    out.table(["workload"] + PHASES, rows)
    out.note("percentages over the tile-creation phases; document "
             "parsing happens further up the pipeline (as in the paper)")
    out.emit()

    for name, breakdown in shares.items():
        assert abs(sum(breakdown.values()) - 100.0) < 1e-6, name
    # writing binary JSON is a visible share everywhere (in the paper's
    # C++ system it dominates; Python shifts weight towards mining)
    assert all(b["write_jsonb"] > 3 for b in shares.values())
    # reordering never exceeds the combined extraction+mining cost by
    # an order of magnitude (Figure 11's "no slower insertion" story)
    for name, b in shares.items():
        assert b["reordering"] < 10 * (b["extract"] + b["mining"]), name
