"""Figure 20: random nested accesses per second.

Paper: JSONB's O(log n) sorted-key binary search beats BSON's linear
scan; CBOR must sequentially parse (and skip whole subtrees), reducing
access performance by orders of magnitude on large corpora.
"""

import time

from repro import jsonb
from repro.jsonb import bson, cbor
from repro.jsonb.access import JsonbValue
from repro.workloads.docs import ACCESS_PATHS, CORPORA


def _accesses_per_second(fn, paths, min_seconds=0.05):
    count = 0
    started = time.perf_counter()
    while time.perf_counter() - started < min_seconds:
        for path in paths:
            fn(path)
            count += 1
    return count / (time.perf_counter() - started)


def test_fig20_random_access(benchmark, report):
    measured = {}
    for name, generate in CORPORA.items():
        document = generate()
        paths = ACCESS_PATHS[name]
        jsonb_bytes = jsonb.encode(document)
        bson_bytes = bson.encode(document)
        cbor_bytes = cbor.encode(document)
        wrapped = not isinstance(document, dict)

        def access_jsonb(path):
            return JsonbValue(jsonb_bytes).get_path(path)

        def access_bson(path):
            from repro.core.jsonpath import KeyPath
            steps = path.steps
            if wrapped:
                steps = ("",) + steps
            return bson.lookup(bson_bytes, KeyPath(steps))

        def access_cbor(path):
            return cbor.lookup(cbor_bytes, path)

        measured[name] = {
            "BSON": _accesses_per_second(access_bson, paths),
            "CBOR": _accesses_per_second(access_cbor, paths),
            "JSONB": _accesses_per_second(access_jsonb, paths),
        }
    benchmark.pedantic(
        lambda: JsonbValue(jsonb.encode(CORPORA["apache"]()))
        .get_path(ACCESS_PATHS["apache"][0]),
        rounds=3, iterations=1)

    out = report("fig20_access",
                 "Figure 20 - random nested accesses per second")
    out.table(["corpus", "BSON", "CBOR", "JSONB"],
              [[name, f"{row['BSON']:.0f}", f"{row['CBOR']:.0f}",
                f"{row['JSONB']:.0f}"]
               for name, row in measured.items()])
    out.emit()

    # JSONB has the best lookup performance on the large-array corpora
    for name in ("canada", "marine_ik", "mesh", "numbers"):
        row = measured[name]
        assert row["JSONB"] > row["CBOR"], name
    # and beats CBOR overall
    jsonb_wins = sum(row["JSONB"] > row["CBOR"] for row in measured.values())
    assert jsonb_wins >= len(measured) - 1
