"""Table 6: storage size in MB and as % of JSONB.

Paper: tiles are materialized *in addition to* the JSONB data, costing
24% (TPC-H), 9% (Yelp) and 3% (Twitter) of the JSONB size; LZ4 on the
columnar tile data gains another 2-3x.  The bench reproduces all four
columns (JSON text, JSONB, +Tiles, +LZ4-Tiles) with the real from-
scratch LZ4 codec.
"""

import json

from repro.bench import datasets
from repro.storage.formats import StorageFormat

PAPER = {
    "TPC-H": (3092, 2766, "24%", "11%"),
    "Yelp": (8657, 7809, "9%", "3%"),
    "Twitter": (31271, 24106, "3%", "1%"),
}


def _sizes(relation, documents):
    report = relation.size_report()
    json_bytes = sum(len(json.dumps(doc).encode()) for doc in documents)
    return {
        "json": json_bytes,
        "jsonb": report["jsonb"],
        "tiles": report["tiles"],
        "lz4_tiles": report["lz4_tiles"],
    }


def test_table6_storage(benchmark, report):
    from repro.workloads import tpch, twitter, yelp

    workloads = {
        "TPC-H": (datasets.tpch_db(StorageFormat.TILES)
                  .table("tpch_combined"),
                  tpch.generate_combined(datasets.TPCH_SF)),
        "Yelp": (datasets.yelp_db(StorageFormat.TILES).table("yelp"),
                 yelp.YelpGenerator(datasets.YELP_BUSINESSES).combined()),
        "Twitter": (datasets.twitter_db(StorageFormat.TILES).table("tweets"),
                    twitter.TwitterGenerator(
                        datasets.TWITTER_TWEETS).stream()),
    }
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    out = report("table6_storage",
                 "Table 6 - storage size [MB] (+Tiles/+LZ4 as % of JSONB)")
    rows = []
    shares = {}
    for name, (relation, documents) in workloads.items():
        sizes = _sizes(relation, documents)
        mb = {key: value / 2**20 for key, value in sizes.items()}
        tiles_pct = 100 * sizes["tiles"] / sizes["jsonb"]
        lz4_pct = 100 * sizes["lz4_tiles"] / sizes["jsonb"]
        shares[name] = (tiles_pct, lz4_pct)
        paper = PAPER[name]
        rows.append([name, mb["json"], mb["jsonb"],
                     f"{mb['tiles']:.2f} ({tiles_pct:.0f}%)",
                     f"{mb['lz4_tiles']:.2f} ({lz4_pct:.0f}%)",
                     f"p:{paper[2]}/{paper[3]}"])
    out.table(["data set", "JSON", "JSONB", "+Tiles", "+LZ4-Tiles",
               "paper +Tiles/+LZ4"], rows)
    out.emit()

    # the paper's ordering: TPC-H (few strings, many extractable
    # columns) pays the highest relative overhead; the text-heavy data
    # sets pay less
    assert shares["Yelp"][0] < shares["TPC-H"][0]
    assert shares["Twitter"][0] < shares["TPC-H"][0]
    for name, (tiles_pct, lz4_pct) in shares.items():
        # LZ4 buys roughly another 2-3x on the columnar data
        assert lz4_pct < tiles_pct / 1.5, name
