"""Cluster benchmark: insert throughput and query latency at 1/2/4 shards.

Not a paper figure — this measures the ``repro.cluster`` subsystem:
the coordinator's block-round-robin ingest routing and scatter/gather
partial queries (DESIGN.md §7).  Every shard runs as a separate
``python -m repro serve-shard`` *process* (its own GIL — in-process
shards would serialize extraction and show no scaling), and the
coordinator as ``serve-coordinator``, so this also exercises the CLI
entry points end to end.

Ingest is measured to *sealed tiles* (insert everything, then
``flush``): the cluster's win is that JSON-tile extraction — the
expensive part of ingest — runs on all shards concurrently while the
coordinator streams the next blocks.

Run with::

    pytest benchmarks/bench_cluster.py --benchmark-only
"""

import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path

from repro.bench.harness import scaled
from repro.server import ServerClient

SHARD_COUNTS = (1, 2, 4)
INGEST_DOCS = int(scaled(16384))
INGEST_BATCH = 2048
TILE_SIZE = 256  # routing block: each batch spans all four shards
QUERY_ROUNDS = 15

GROUP_QUERY = ("select s.data->>'kind' as k, count(*) as n, "
               "max(s.data->>'v'::float) as hi from stream s "
               "group by s.data->>'kind' order by k")
SCALAR_QUERY = ("select count(*) as n, min(s.data->>'v'::float) as lo "
                "from stream s")
TOPK_QUERY = ("select s.data->>'id'::int as id, s.data->>'kind' as k "
              "from stream s where s.data->>'v'::float > 10 "
              "order by id desc limit 50")


def _documents(count):
    return [{"id": i, "kind": "abcde"[i % 5], "v": float(i % 97),
             "tags": ["t%d" % (i % 7), "t%d" % (i % 3)],
             "nested": {"flag": i % 2 == 0, "depth": i % 11}}
            for i in range(count)]


def _free_ports(count):
    sockets = [socket.create_server(("127.0.0.1", 0)) for _ in range(count)]
    ports = [sock.getsockname()[1] for sock in sockets]
    for sock in sockets:
        sock.close()
    return ports


def _wait_ready(port, deadline=30.0):
    limit = time.time() + deadline
    while time.time() < limit:
        try:
            with ServerClient(port=port, timeout=5.0, retries=0) as client:
                client.ping()
            return
        except OSError:
            time.sleep(0.1)
    raise RuntimeError(f"backend on port {port} never became ready")


class Fleet:
    """N shard processes plus one coordinator process."""

    def __init__(self, root: Path, shard_count: int):
        self.processes = []
        src = Path(__file__).resolve().parent.parent / "src"
        ports = _free_ports(shard_count + 1)
        self.shard_ports, self.port = ports[:-1], ports[-1]
        for index, port in enumerate(self.shard_ports):
            self._spawn(src, ["serve-shard",
                              "--data-dir", str(root / f"shard{index}"),
                              "--port", str(port), "--no-wal-sync",
                              "--tile-size", str(TILE_SIZE)])
        for port in self.shard_ports:
            _wait_ready(port)
        topology = root / "topology.json"
        topology.write_text(json.dumps(
            {"shards": [{"host": "127.0.0.1", "port": port}
                        for port in self.shard_ports]}))
        self._spawn(src, ["serve-coordinator", "--topology", str(topology),
                          "--port", str(self.port)])
        _wait_ready(self.port)

    def _spawn(self, src: Path, args):
        self.processes.append(subprocess.Popen(
            [sys.executable, "-m", "repro"] + args,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL))

    def stop(self):
        try:
            with ServerClient(port=self.port, timeout=10.0,
                              retries=0) as client:
                client._call("shutdown", backends=True, checkpoint=False)
        except OSError:
            pass
        for process in self.processes:
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.kill()


def _ingest_rate(client, documents):
    """Docs/sec from first insert to every tile sealed."""
    started = time.perf_counter()
    for base in range(0, len(documents), INGEST_BATCH):
        client.insert_many("stream", documents[base:base + INGEST_BATCH])
    client.flush("stream")
    return len(documents) / (time.perf_counter() - started)


def _latency_ms(client, sql):
    client.query(sql)  # warm caches
    started = time.perf_counter()
    for _ in range(QUERY_ROUNDS):
        client.query(sql)
    return (time.perf_counter() - started) / QUERY_ROUNDS * 1e3


def test_cluster_scaling(benchmark, report, tmp_path):
    documents = _documents(INGEST_DOCS)
    ingest_rows, latency_rows = [], []
    reference = None
    for shard_count in SHARD_COUNTS:
        fleet = Fleet(tmp_path / f"s{shard_count}", shard_count)
        try:
            with ServerClient(port=fleet.port, timeout=120.0) as client:
                client.create_table("stream", "tiles",
                                    {"tile_size": TILE_SIZE})
                rate = _ingest_rate(client, documents)
                count = client.query(
                    "select count(*) as n from stream s").scalar()
                assert count == INGEST_DOCS, (count, INGEST_DOCS)
                if reference is None:
                    reference = client.query(GROUP_QUERY)
                else:  # same bits regardless of shard count
                    result = client.query(GROUP_QUERY)
                    assert result.rows == reference.rows, shard_count
                latency_rows.append(
                    [shard_count,
                     _latency_ms(client, SCALAR_QUERY),
                     _latency_ms(client, GROUP_QUERY),
                     _latency_ms(client, TOPK_QUERY)])
        finally:
            fleet.stop()
        speedup = rate / ingest_rows[0][1] if ingest_rows else 1.0
        ingest_rows.append([shard_count, rate, speedup])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    out = report("cluster_scaling",
                 "repro.cluster - ingest and query scaling by shards")
    out.section(f"ingest-to-sealed rate, {INGEST_DOCS} docs in batches "
                f"of {INGEST_BATCH} (tile size {TILE_SIZE}, one client, "
                f"shards are separate processes)")
    out.table(["shards", "docs/sec", "speedup"], ingest_rows)
    out.section(f"query latency, mean of {QUERY_ROUNDS} runs per shape")
    out.table(["shards", "scalar ms", "group-by ms", "top-k ms"],
              latency_rows)
    speedups = {row[0]: row[2] for row in ingest_rows}
    cores = len(os.sched_getaffinity(0))
    out.note(f"ingest speedup {speedups[2]:.2f}x at 2 shards, "
             f"{speedups[4]:.2f}x at 4 shards on {cores} core(s); "
             f"results bit-identical across shard counts")
    out.emit()

    # shard processes need their own cores to overlap extraction and
    # WAL work; on a smaller box the bench still checks bit-identity
    # and records the measured rates
    if cores >= 2:
        assert speedups[2] >= 1.6, ingest_rows
    if cores >= 4:
        assert speedups[4] >= 2.5, ingest_rows
