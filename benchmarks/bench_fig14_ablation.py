"""Figure 14: optimization ablations (Sections 4.8, 4.9).

Configurations per workload (TPC-H, shuffled TPC-H, Yelp):

* ``Tiles``   — everything on;
* ``no Skip`` — tile skipping disabled (Section 4.8);
* ``no Date`` — date/time extraction disabled (Section 4.9), date
  predicates fall back to per-tuple string parsing;
* ``no Opt``  — both disabled.

Paper: each optimization contributes; skipping matters most when many
document types share a relation, date extraction matters for
date-constrained queries.
"""

from repro.bench import datasets
from repro.bench.harness import geomean, time_query
from repro.engine.plan import QueryOptions
from repro.storage.formats import StorageFormat
from repro.workloads.tpch import TPCH_QUERIES
from repro.workloads.yelp import YELP_QUERIES
from _shared import SWEEP_TPCH_QUERIES

SKIP_ON = QueryOptions(enable_skipping=True)
SKIP_OFF = QueryOptions(enable_skipping=False)


def _tpch_geomean(db, options):
    return geomean([time_query(db, TPCH_QUERIES[q], options)
                    for q in SWEEP_TPCH_QUERIES])


def _yelp_geomean(db, options):
    return geomean([time_query(db, text, options)
                    for text in YELP_QUERIES.values()])


def _configs(db_dates, db_nodates, runner):
    return {
        "Tiles": runner(db_dates, SKIP_ON),
        "no Skip": runner(db_dates, SKIP_OFF),
        "no Date": runner(db_nodates, SKIP_ON),
        "no Opt": runner(db_nodates, SKIP_OFF),
    }


def test_fig14_optimization_ablation(benchmark, report):
    measured = {
        "TPC-H": _configs(
            datasets.tpch_db(StorageFormat.TILES),
            datasets.tpch_db(StorageFormat.TILES, detect_dates=False),
            _tpch_geomean),
        "Shuffled": _configs(
            datasets.tpch_db(StorageFormat.TILES, shuffled=True),
            datasets.tpch_db(StorageFormat.TILES, shuffled=True,
                             detect_dates=False),
            _tpch_geomean),
        "Yelp": _configs(
            datasets.yelp_db(StorageFormat.TILES),
            datasets.yelp_db(StorageFormat.TILES, detect_dates=False),
            _yelp_geomean),
    }
    benchmark.pedantic(
        lambda: datasets.tpch_db(StorageFormat.TILES).sql(
            TPCH_QUERIES[6], SKIP_OFF),
        rounds=3, iterations=1)

    out = report("fig14_ablation",
                 "Figure 14 - geo-mean [s] per optimization level")
    configs = ["no Opt", "no Date", "no Skip", "Tiles"]
    rows = [[workload] + [measured[workload][config] for config in configs]
            for workload in measured]
    out.table(["workload"] + configs, rows)
    out.emit()

    for workload, values in measured.items():
        assert values["Tiles"] <= values["no Opt"] * 1.05, workload
    # date extraction pays off on date-heavy TPC-H
    assert measured["TPC-H"]["Tiles"] < measured["TPC-H"]["no Date"]
    # skipping pays off on the combined relation
    assert measured["TPC-H"]["Tiles"] < measured["TPC-H"]["no Skip"]
