"""Figure 12: Yelp geo-mean query time over tile size / partition size.

Paper: the curve is flat-ish with a shallow optimum around 2^10-2^12;
even naturally-ordered data benefits slightly from reordering because
parallel loading interleaves document types.
"""

from _shared import PARTITION_SIZES, TILE_SIZES, sweep


def test_fig12_yelp_sweep(benchmark, report):
    results = benchmark.pedantic(lambda: sweep("yelp"),
                                 rounds=1, iterations=1)
    out = report("fig12_yelp_sweep",
                 "Figure 12 - Yelp geo-mean [s] per tile size "
                 "(columns: partition size)")
    rows = []
    for tile_size in TILE_SIZES:
        rows.append([tile_size] + [
            results[(tile_size, partition)][0]
            for partition in PARTITION_SIZES])
    out.table(["tile size"] + [f"partition {p}" for p in PARTITION_SIZES],
              rows)
    out.emit()

    # interleaved multi-type data: reordering (partition > 1) never
    # hurts badly across the sweep (single-run timings are noisy on a
    # small box, so compare overall geo-means with headroom)
    from repro.bench.harness import geomean
    p1 = geomean([results[(t, 1)][0] for t in TILE_SIZES])
    p8 = geomean([results[(t, 8)][0] for t in TILE_SIZES])
    assert p8 <= p1 * 2.0
