"""Shared fixtures for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each bench regenerates one table or figure of the paper (see
DESIGN.md's experiment index), prints it, and writes it to
``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.harness import Report

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture()
def report(request):
    """Factory for result tables named after the bench."""

    def make(name: str, title: str) -> Report:
        return Report(name, title, results_dir=RESULTS_DIR)

    return make
