"""LSM-tiered ingest benchmark: leveled compaction throughput and
extraction quality per level.

Not a paper figure — this measures the ``repro.lsm`` subsystem.  A
sustained ingest of *bursty* documents (optional fields whose presence
oscillates tile-to-tile around the 60 % mining threshold) is run three
times with the compaction hierarchy capped at 1, 2 and 3 levels.  After
every flush the planner is drained, so the run reports steady-state
ingest+compaction throughput, the merge counters, and the per-level
``extracted_fraction`` from the manifest's level report.

The acceptance check mirrors the subsystem's promise: merge-time
re-mining sees strictly more documents per mining run, so deeper
levels extract strictly more — L2 tiles must reach a strictly higher
extracted fraction than the L0 tiles the same documents started in.

Run with::

    pytest benchmarks/bench_lsm.py --benchmark-only
"""

import time

from repro import Database, ExtractionConfig, StorageFormat
from repro.bench.harness import scaled
from repro.lsm import LsmConfig, plan_compactions

TILE_SIZE = 64
FANOUT = 4
N_DOCS = int(scaled(4096))
INGEST_CHUNK = 256

CONFIG = ExtractionConfig(tile_size=TILE_SIZE, partition_size=4,
                          enable_reordering=False)


def bursty_documents(n):
    """Two optional fields straddling the 60 % threshold at different
    granularities: ``extra`` oscillates 50 %/90 % per L0 tile (first
    extracted by an L1 merge), ``deep`` oscillates 45 %/85 % per
    four-tile run (first extracted everywhere by an L2 merge)."""
    docs = []
    for i in range(n):
        doc = {"id": i, "score": float(i * 7 % 113) / 3,
               "tag": f"t{i % 7}"}
        if i % 10 < (5 if (i // TILE_SIZE) % 2 == 0 else 9):
            doc["extra"] = i % 31
        run = i // (TILE_SIZE * FANOUT)
        if i % 20 < (9 if run % 2 == 0 else 17):
            doc["deep"] = i % 13
        docs.append(doc)
    return docs


def drain_compactions(relation, config):
    merges = 0
    while True:
        progress = False
        for candidate in plan_compactions(relation, config):
            if relation.compact_tiles(candidate.start_number,
                                      candidate.count):
                progress = True
                merges += 1
        if not progress:
            return merges


def ingest_with_compaction(documents, max_level):
    """Chunked inserts with the planner drained after every flush —
    the embedded equivalent of the daemon keeping up with ingest."""
    db = Database(StorageFormat.TILES, CONFIG)
    db.create_table("t")
    relation = db.tables["t"]
    config = LsmConfig(enabled=True, fanout=FANOUT, max_level=max_level)
    relation.lsm_config = config
    started = time.perf_counter()
    for offset in range(0, len(documents), INGEST_CHUNK):
        relation.insert_many(documents[offset : offset + INGEST_CHUNK])
        relation.flush_inserts()
        drain_compactions(relation, config)
    elapsed = time.perf_counter() - started
    return db, relation, elapsed


def _fraction(report, level):
    entry = report.get(level)
    return f"{entry['extracted_fraction']:.4f}" if entry else "-"


def test_lsm_level_sweep(report):
    documents = bursty_documents(N_DOCS)
    baseline = Database(StorageFormat.TILES, CONFIG)
    baseline.load_table("t", documents)
    check = ("select count(*) as n, sum(t.data->>'id'::int) as s, "
             "sum(t.data->>'extra'::int) as e from t t")
    expected = baseline.sql(check).rows
    l0_fraction = baseline.tables["t"].manifest() \
        .level_report()[0]["extracted_fraction"]

    rows = []
    fractions = {}
    for max_level in (1, 2, 3):
        db, relation, elapsed = ingest_with_compaction(documents,
                                                       max_level)
        assert db.sql(check).rows == expected  # nothing lost or torn
        levels = relation.manifest().level_report()
        status = relation.lsm_status()
        fractions[max_level] = levels
        rows.append([
            str(max_level),
            f"{elapsed:.2f}",
            f"{len(documents) / elapsed:.0f}",
            str(status["counters"]["merges"]),
            str(len(relation.tiles)),
            _fraction(levels, 0), _fraction(levels, 1),
            _fraction(levels, 2), _fraction(levels, 3),
        ])

    out = report("lsm", "LSM leveled compaction: ingest throughput and "
                        f"extraction per level ({N_DOCS} bursty docs, "
                        f"tile {TILE_SIZE}, fanout {FANOUT})")
    out.note(f"flat (no-LSM) L0 extracted_fraction: {l0_fraction:.4f}; "
             "results checked bit-identical against the flat load at "
             "every max_level")
    out.table(["max_level", "ingest+compact s", "docs/s", "merges",
               "tiles", "L0 frac", "L1 frac", "L2 frac", "L3 frac"],
              rows)
    out.emit()

    # the subsystem's promise: deeper levels extract strictly more
    deepest_l2 = fractions[2].get(2) or fractions[3].get(2)
    assert deepest_l2 is not None
    assert deepest_l2["extracted_fraction"] > l0_fraction
    l1 = fractions[1][1]["extracted_fraction"]
    assert l1 > l0_fraction
    assert deepest_l2["extracted_fraction"] >= l1


def test_lsm_smoke(report):
    """CI smoke: small dataset, monotone-extraction + identity only."""
    documents = bursty_documents(1024)
    baseline = Database(StorageFormat.TILES, CONFIG)
    baseline.load_table("t", documents)
    check = "select count(*) as n, sum(t.data->>'id'::int) as s from t t"
    expected = baseline.sql(check).rows
    l0_fraction = baseline.tables["t"].manifest() \
        .level_report()[0]["extracted_fraction"]

    db, relation, _elapsed = ingest_with_compaction(documents, 2)
    assert db.sql(check).rows == expected
    levels = relation.manifest().level_report()
    assert 2 in levels
    assert levels[2]["extracted_fraction"] > l0_fraction
