"""Figure 19: binary storage size relative to JSON text.

Paper: CBOR is the smallest (pure exchange format, no offset tables);
JSONB uses less space than BSON on every corpus.
"""

import json

from repro import jsonb
from repro.jsonb import bson, cbor
from repro.workloads.docs import CORPORA


def test_fig19_binary_sizes(benchmark, report):
    relative = {}
    for name, generate in CORPORA.items():
        document = generate()
        text_size = len(json.dumps(document, separators=(",", ":"))
                        .encode("utf-8"))
        relative[name] = {
            "BSON": len(bson.encode(document)) / text_size,
            "CBOR": len(cbor.encode(document)) / text_size,
            "JSONB": len(jsonb.encode(document)) / text_size,
        }
    benchmark.pedantic(lambda: jsonb.encode(CORPORA["mesh"]()),
                       rounds=2, iterations=1)

    out = report("fig19_binsize",
                 "Figure 19 - size relative to JSON text (1.0 = text size)")
    out.table(["corpus", "BSON", "CBOR", "JSONB"],
              [[name, row["BSON"], row["CBOR"], row["JSONB"]]
               for name, row in relative.items()])
    out.emit()

    for name, row in relative.items():
        # CBOR is the most compact format
        assert row["CBOR"] <= row["JSONB"] * 1.05, name
        # JSONB stays below BSON despite its offset tables
        assert row["JSONB"] <= row["BSON"] * 1.10, name


def test_fig19_roundtrip_safety(benchmark, report):
    """All three formats round-trip every corpus (modulo JSONB's sorted
    keys), a correctness gate for the size comparison."""
    def check():
        for name, generate in CORPORA.items():
            document = generate()
            assert cbor.decode(cbor.encode(document)) == document, name
            assert _sort(jsonb.decode(jsonb.encode(document))) == \
                _sort(document), name
            if isinstance(document, dict):
                assert bson.decode(bson.encode(document)) == document, name

    benchmark.pedantic(check, rounds=1, iterations=1)
    out = report("fig19_roundtrip", "Figure 19 (gate) - round-trip safety")
    out.note("all corpora round-trip through BSON, CBOR and JSONB")
    out.emit()


def _sort(value):
    if isinstance(value, dict):
        return {key: _sort(value[key])
                for key in sorted(value, key=lambda k: k.encode())}
    if isinstance(value, list):
        return [_sort(item) for item in value]
    return value
