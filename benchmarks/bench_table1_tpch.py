"""Table 1: execution times for all 22 TPC-H queries (combined JSON).

Paper: PostgreSQL / Spark / Hyper externals plus Umbra-internal JSON,
JSONB, Sinew and Tiles.  Here the four *internal* competitors run in
one engine (the externals are substituted, see DESIGN.md); the expected
shape is Tiles fastest on (almost) every query, JSON text slowest.
"""

import pytest

from repro.bench import datasets, geomean, time_query
from repro.engine.plan import QueryOptions
from repro.storage.formats import StorageFormat
from repro.workloads.tpch import TPCH_QUERIES

#: Umbra-internal reference times from the paper's Table 1 (seconds)
PAPER_TABLE1 = {
    1: (1.725, 0.178, 0.122, 0.030), 2: (1.608, 0.584, 0.637, 0.035),
    3: (0.675, 0.280, 0.259, 0.030), 4: (0.692, 0.227, 0.228, 0.026),
    5: (1.340, 0.372, 0.326, 0.045), 6: (0.254, 0.119, 0.085, 0.010),
    7: (1.177, 0.429, 0.351, 0.103), 8: (1.469, 0.474, 0.416, 0.062),
    9: (2.576, 0.395, 0.370, 0.153), 10: (1.362, 0.388, 0.294, 0.067),
    11: (1.070, 0.344, 0.353, 0.068), 12: (0.450, 0.286, 0.289, 0.061),
    13: (0.665, 0.149, 0.291, 0.044), 14: (0.392, 0.171, 0.142, 0.017),
    15: (0.399, 0.211, 0.185, 0.018), 16: (0.629, 0.201, 0.273, 0.048),
    17: (0.567, 0.173, 0.091, 0.026), 18: (0.949, 0.260, 0.179, 0.050),
    19: (1.834, 0.213, 0.170, 0.057), 20: (0.974, 0.355, 0.348, 0.042),
    21: (1.787, 0.615, 0.479, 0.103), 22: (0.566, 0.172, 0.180, 0.016),
}

FORMATS = [StorageFormat.JSON, StorageFormat.JSONB, StorageFormat.SINEW,
           StorageFormat.TILES]


def test_table1_tpch(benchmark, report):
    dbs = {fmt: datasets.tpch_db(fmt) for fmt in FORMATS}

    measured = {}
    for query in sorted(TPCH_QUERIES):
        measured[query] = tuple(
            time_query(dbs[fmt], TPCH_QUERIES[query]) for fmt in FORMATS
        )

    # the pytest-benchmark kernel: Q1 on tiles (the headline scan query)
    benchmark.pedantic(
        lambda: dbs[StorageFormat.TILES].sql(TPCH_QUERIES[1]),
        rounds=3, iterations=1,
    )

    out = report("table1_tpch", "Table 1 - TPC-H query times [s] "
                                "(paper values: Umbra-internal columns)")
    out.note(f"combined TPC-H, {dbs[StorageFormat.TILES].table('lineitem').row_count} "
             f"documents; externals substituted (see DESIGN.md)")
    rows = []
    for query in sorted(TPCH_QUERIES):
        paper = PAPER_TABLE1[query]
        ours = measured[query]
        rows.append([f"Q{query}",
                     *(f"{value:.3f}" for value in ours),
                     *(f"{value:.3f}" for value in paper)])
    out.table(
        ["query", "JSON", "JSONB", "Sinew", "Tiles",
         "paper:JSON", "paper:JSONB", "paper:Sinew", "paper:Tiles"],
        rows,
    )
    gm = {fmt: geomean([measured[q][i] for q in measured])
          for i, fmt in enumerate(FORMATS)}
    out.section("geometric means")
    out.table(["format", "geo-mean [s]"],
              [[fmt.value, gm[fmt]] for fmt in FORMATS])
    out.emit()

    # shape assertions: Tiles beats JSONB and raw JSON overall
    assert gm[StorageFormat.TILES] < gm[StorageFormat.JSONB]
    assert gm[StorageFormat.TILES] < gm[StorageFormat.JSON]
    assert gm[StorageFormat.JSONB] < gm[StorageFormat.JSON]


def test_table1_no_statistics_ablation(benchmark, report):
    """Extra ablation (DESIGN.md §6): statistics-blind join ordering."""
    db = datasets.tpch_db(StorageFormat.TILES)
    options = QueryOptions(use_statistics=False)
    join_queries = [3, 5, 10, 18]
    with_stats = geomean([time_query(db, TPCH_QUERIES[q])
                          for q in join_queries])
    without = geomean([time_query(db, TPCH_QUERIES[q], options)
                       for q in join_queries])
    benchmark.pedantic(lambda: db.sql(TPCH_QUERIES[18], options),
                       rounds=2, iterations=1)
    out = report("table1_no_stats", "Ablation: optimizer statistics "
                                    "(join queries Q3/Q5/Q10/Q18)")
    out.table(["config", "geo-mean [s]"],
              [["with statistics", with_stats],
               ["without statistics", without]])
    out.emit()
