"""Vectorized batch kernels vs the per-tuple reference paths.

Times the three gated kernels — group-key factorization (multi-key
GROUP BY), the sorted-code join probe (composite generic keys) and the
null-aware lexsort (multi-key ORDER BY) — on a 100k-row synthetic
relation, with ``enable_kernels`` on vs off.  Every timed query is
also checked bit-identical between the two modes, and EXPLAIN ANALYZE
counters prove the kernel actually ran (``kernel_rows`` = probe/input
rows, ``fallback_rows`` = 0).

Two join flavours are reported: integer composite keys factorize at C
speed (the headline case), string keys pay Python-level comparisons
inside ``np.unique`` on object arrays and win by a smaller margin —
both stay bit-identical.
"""

import struct
import time

from repro import Database, QueryOptions, StorageFormat
from repro.tiles import ExtractionConfig

CONFIG = ExtractionConfig(tile_size=4096, partition_size=8)

NUM_ROWS = 100_000
BATCH_ROWS = 4096

STATES = ["AZ", "CA", "NV", "OR", "WA", "TX", "NY", "FL"]

GROUP_BY = (
    "select t.data->>'g'::int as g, t.data->>'w' as w, count(*) as n, "
    "sum(t.data->>'v'::int) as s, min(t.data->>'f'::float) as lo "
    "from t t group by t.data->>'g'::int, t.data->>'w' order by g, w")

JOIN_INT = (
    "select count(*) as n, sum(t.data->>'v'::int) as s from t t, u u "
    "where t.data->>'a'::int = u.data->>'a'::int "
    "and t.data->>'b'::int = u.data->>'b'::int")

JOIN_STR = (
    "select count(*) as n, sum(t.data->>'v'::int) as s from t t, u u "
    "where t.data->>'j' = u.data->>'j' and t.data->>'w' = u.data->>'w'")

ORDER_BY = (
    "select t.data->>'g'::int as g, t.data->>'f'::float as f "
    "from t t order by g, f desc")


def _load(num_rows=NUM_ROWS):
    rows = [{"g": i % 97, "w": STATES[i % 8], "a": i % 1000,
             "b": (i * 7) % 8, "j": f"u{i % 1000}",
             "v": i % 10_000, "f": (i % 7919) * 0.25}
            for i in range(num_rows)]
    db = Database(StorageFormat.TILES, CONFIG)
    db.load_table("t", rows)
    build = [{"a": i % 1000, "b": i % 8, "j": f"u{i % 1000}",
              "w": STATES[i % 8], "seg": i % 16} for i in range(2000)]
    db.load_table("u", build)
    return db


def _bits(value):
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    return (type(value).__name__, value)


def _run(db, sql, enable_kernels, repeats=3):
    best, result = float("inf"), None
    options = QueryOptions(enable_kernels=enable_kernels,
                           batch_rows=BATCH_ROWS)
    for _ in range(repeats):
        started = time.perf_counter()
        result = db.sql(sql, options)
        best = min(best, time.perf_counter() - started)
    return best, result


def _compare(db, sql, repeats=3):
    on_s, on = _run(db, sql, True, repeats)
    off_s, off = _run(db, sql, False, repeats)
    assert on.columns == off.columns
    assert len(on.rows) == len(off.rows)
    for row_on, row_off in zip(on.rows, off.rows):
        assert [_bits(v) for v in row_on] == [_bits(v) for v in row_off]
    assert on.counters.kernel_rows >= NUM_ROWS
    assert on.counters.fallback_rows == 0
    assert off.counters.kernel_rows == 0
    return on_s, off_s


def test_kernels_sweep(benchmark, report):
    db = _load()
    cases = [
        ("group by (int, str) x 5 aggs", GROUP_BY),
        ("join probe (int, int)", JOIN_INT),
        ("join probe (str, str)", JOIN_STR),
        ("order by g, f desc", ORDER_BY),
    ]
    rows, speedups = [], {}
    for label, sql in cases:
        on_s, off_s = _compare(db, sql)
        speedups[label] = off_s / on_s
        rows.append([label, f"{off_s * 1000:.0f}", f"{on_s * 1000:.0f}",
                     f"{off_s / on_s:.1f}x"])
    benchmark.pedantic(lambda: _run(db, GROUP_BY, True, 1),
                       rounds=3, iterations=1)

    out = report("kernels", "Batch kernels vs per-tuple loops "
                            f"({NUM_ROWS} rows, batch {BATCH_ROWS})")
    out.note("min of 3 runs; results bit-identical in every case, "
             "kernel_rows >= row count, fallback_rows = 0")
    out.table(["query", "per-tuple ms", "kernel ms", "speedup"], rows)
    out.emit()

    # headline floors (generous for noisy CI machines; committed
    # results show ~6x group-by and ~12x int join)
    assert speedups["group by (int, str) x 5 aggs"] >= 2.0
    assert speedups["join probe (int, int)"] >= 3.0
    assert speedups["order by g, f desc"] >= 2.0
    assert speedups["join probe (str, str)"] >= 1.2


def test_kernels_smoke(report):
    """CI smoke: small dataset, identity + counter checks only."""
    db = _load(2000)
    for sql in (GROUP_BY, JOIN_INT, JOIN_STR, ORDER_BY):
        on_s, on = _run(db, sql, True, 1)
        off_s, off = _run(db, sql, False, 1)
        assert on.columns == off.columns
        for row_on, row_off in zip(on.rows, off.rows):
            assert [_bits(v) for v in row_on] == \
                [_bits(v) for v in row_off]
        assert on.counters.kernel_rows > 0
        assert off.counters.kernel_rows == 0
