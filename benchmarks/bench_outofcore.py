"""Out-of-core paging benchmark: query cost vs residency budget.

Not a paper figure — this measures the tile store added for the
out-of-core refactor.  A Twitter-workload relation is checkpointed to
disk and reopened through a private :class:`TileStore` at a sweep of
residency budgets (unlimited down to 1/8 of the working set).  For
each budget the query suite runs twice:

* **cold** — every tile faults in from the ``.jtile`` segment (and,
  under tight budgets, tiles evicted mid-suite fault again);
* **warm** — whatever the budget let stay resident is reused; with an
  unlimited budget this is the fully-resident legacy behavior.

Reported per budget: cold/warm suite seconds, tile loads, evictions
and peak resident bytes — the cost curve an operator trades against
``serve --memory-mb``.

Run with::

    pytest benchmarks/bench_outofcore.py --benchmark-only
"""

from __future__ import annotations

import time

from repro import Database, ExtractionConfig, StorageFormat
from repro.bench.harness import scaled
from repro.storage.persist import load_relation, save_database
from repro.storage.tile_cache import ResolvedTileCache
from repro.storage.tilestore import TileStore
from repro.workloads import twitter

N_TWEETS = int(scaled(4000))
CONFIG = ExtractionConfig(tile_size=256, partition_size=8)

#: budget as a fraction of the on-disk working set; None = unlimited
BUDGET_FRACTIONS = (None, 1.0, 0.5, 0.25, 0.125)


def _run_suite(db) -> float:
    started = time.perf_counter()
    for text in twitter.TWITTER_QUERIES.values():
        db.sql(text)
    return time.perf_counter() - started


def test_outofcore_budget_sweep(benchmark, report, tmp_path):
    resident_db = twitter.make_database(N_TWEETS, StorageFormat.TILES,
                                        CONFIG)
    expected = {name: resident_db.sql(text).rows
                for name, text in twitter.TWITTER_QUERIES.items()}
    save_database(resident_db, tmp_path / "db")
    path = tmp_path / "db" / "tweets.jtile"
    probe = load_relation(path)
    working_set = sum(h.disk_bytes for h in probe.tiles)
    # a budget below one tile can only be honored transiently (the
    # pinned tile itself overruns it), so clamp the sweep to two tiles
    floor = 2 * max(h.disk_bytes for h in probe.tiles)

    rows = []
    for fraction in BUDGET_FRACTIONS:
        budget = None if fraction is None \
            else max(int(working_set * fraction), floor)
        store = TileStore(budget, cache=ResolvedTileCache())
        db = Database(StorageFormat.TILES, CONFIG)
        db.register("tweets", load_relation(path, store=store))
        cold_s = _run_suite(db)
        warm_s = _run_suite(db)
        for name, text in twitter.TWITTER_QUERIES.items():
            assert db.sql(text).rows == expected[name], (fraction, name)
        stats = store.stats()
        assert budget is None or stats["peak_resident_bytes"] <= budget
        rows.append([
            "unlimited" if fraction is None else f"{fraction:.0%}",
            1e3 * cold_s, 1e3 * warm_s, stats["loads"],
            stats["evictions"], stats["peak_resident_bytes"] // 1024,
        ])

    # the benchmark hook times the tightest-budget cold suite
    tight = TileStore(max(int(working_set * 0.125), floor),
                      cache=ResolvedTileCache())
    tight_db = Database(StorageFormat.TILES, CONFIG)
    tight_db.register("tweets", load_relation(path, store=tight))
    benchmark.pedantic(lambda: _run_suite(tight_db), rounds=3, iterations=1)

    out = report("outofcore",
                 "out-of-core tile store - query cost vs residency budget")
    out.section(f"{N_TWEETS} tweets, tile_size=256, working set "
                f"{working_set // 1024} KiB on disk, Twitter suite "
                f"({len(twitter.TWITTER_QUERIES)} queries)")
    out.table(
        ["budget", "cold suite ms", "warm suite ms", "tile loads",
         "evictions", "peak resident KiB"],
        rows)
    out.note("budget = fraction of the on-disk working set; results are "
             "bit-identical across all budgets (asserted)")
    out.emit()

    unlimited, tightest = rows[0], rows[-1]
    assert tightest[4] > 0, "tightest budget never evicted"
    assert unlimited[4] == 0, "unlimited budget should never evict"
