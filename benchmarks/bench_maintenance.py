"""Maintenance benchmark: background reordering on a shuffled load.

Not a paper figure — this measures the ``repro.maintenance``
subsystem.  A round-robin mix of the four Figure 3 news-item types is
loaded with seal-time reordering disabled (the worst case an online
ingest path produces: zero spatial locality, so frequent-itemset
mining finds no dominant structure per tile).  Background maintenance
cycles then reorder partitions (§3.2) and re-extract until the
extracted fraction reaches the eager reorder-at-load baseline.

Reported: extracted fraction and query latency for the degraded load,
after convergence, and for the eager baseline — plus the cost of an
idle maintenance cycle once there is nothing left to do.

Run with::

    pytest benchmarks/bench_maintenance.py --benchmark-only
"""

from repro import Database, ExtractionConfig, MaintenanceConfig
from repro.bench.harness import (
    DEFAULT_REPEATS,
    scaled,
    time_call,
    time_query,
)
from repro.maintenance import MaintenanceDaemon

N_DOCS = int(scaled(8000))
MAX_CYCLES = 64

DOC_TYPES = {
    "story": lambda i: {"id": i, "type": "story", "score": i % 7,
                        "desc": 2, "title": "t", "url": "u"},
    "poll": lambda i: {"id": i, "type": "poll", "score": i % 5,
                       "desc": 2, "title": "t"},
    "pollop": lambda i: {"id": i, "type": "pollop", "score": i % 3,
                         "poll": 2, "title": "t"},
    "comment": lambda i: {"id": i, "type": "comment", "parent": i - 1,
                          "text": "c"},
}
KINDS = ("story", "comment", "pollop", "poll")

GROUP_QUERY = ("select x.data->>'type' as k, count(*) as n, "
               "sum(x.data->>'score'::int) as s "
               "from t x group by x.data->>'type' order by k")
FILTER_QUERY = ("select count(*) as n, sum(x.data->>'score'::int) as s "
                "from t x where x.data->>'type' = 'story'")


def _shuffled_documents(n):
    """Round-robin of the four types: zero spatial locality."""
    return [DOC_TYPES[KINDS[i % len(KINDS)]](i) for i in range(n)]


def _measure(db):
    return (db.table("t").extracted_fraction(),
            1e3 * time_query(db, GROUP_QUERY, repeats=DEFAULT_REPEATS),
            1e3 * time_query(db, FILTER_QUERY, repeats=DEFAULT_REPEATS))


def test_maintenance_convergence(benchmark, report):
    documents = _shuffled_documents(N_DOCS)

    eager = Database(config=ExtractionConfig(tile_size=256,
                                             partition_size=8))
    eager.load_table("t", documents)
    eager_row = _measure(eager)
    expected = eager.sql(GROUP_QUERY).rows

    db = Database(config=ExtractionConfig(tile_size=256, partition_size=8,
                                          enable_reordering=False))
    db.load_table("t", documents)
    degraded_row = _measure(db)
    assert db.sql(GROUP_QUERY).rows == expected

    daemon = MaintenanceDaemon(
        lambda: dict(db.tables),
        MaintenanceConfig(max_actions_per_cycle=8,
                          reorg_cooldown_cycles=0, max_reorg_attempts=4))
    cycles = 0
    while cycles < MAX_CYCLES:
        cycles += 1
        daemon.run_cycle()
        if db.table("t").extracted_fraction() >= eager_row[0]:
            break
    restored_row = _measure(db)
    assert db.sql(GROUP_QUERY).rows == expected

    # once converged, a cycle finds nothing to do: its cost is the
    # health snapshot over all partitions
    idle_ms = 1e3 * time_call(lambda: daemon.run_cycle(), repeats=3)
    benchmark.pedantic(lambda: daemon.run_cycle(), rounds=3, iterations=1)

    out = report("maintenance",
                 "repro.maintenance - background reordering on a "
                 "shuffled load")
    out.section(f"{N_DOCS} shuffled docs, tile_size=256, "
                f"partition_size=8, threshold=0.6")
    out.table(
        ["load path", "extracted fraction", "group-by ms", "filter ms"],
        [["shuffled, reorder off", *degraded_row],
         [f"  + {cycles} maintenance cycles", *restored_row],
         ["eager reorder-at-load", *eager_row]])
    out.note(f"daemon counters: {daemon.counters['reorders']} reorders, "
             f"{daemon.counters['recomputes']} recomputes, "
             f"{daemon.counters['noops']} no-op cycles")
    out.note(f"idle cycle (nothing to do): {idle_ms:.2f} ms")
    out.emit()

    assert degraded_row[0] < eager_row[0], (degraded_row, eager_row)
    assert restored_row[0] >= eager_row[0], (restored_row, eager_row)
    assert daemon.counters["reorders"] > 0
