"""Figure 18: (de-)serialization slowdown of BSON and CBOR relative to
our JSONB format, over the eight SIMD-JSON-style corpora.

Paper: JSONB is the fastest serializer on all corpora; CBOR wins three
deserialization workloads.  Corpora are synthetic stand-ins with the
same structural character (see repro.workloads.docs).
"""

from repro import jsonb
from repro.bench.harness import time_call
from repro.jsonb import bson, cbor
from repro.workloads.docs import CORPORA


def test_fig18_serialization(benchmark, report):
    serialize = {}
    deserialize = {}
    for name, generate in CORPORA.items():
        document = generate()
        encoders = {
            "JSONB": (jsonb.encode, jsonb.decode),
            "BSON": (bson.encode, bson.decode),
            "CBOR": (cbor.encode, cbor.decode),
        }
        ser_times = {}
        de_times = {}
        for label, (encode, decode) in encoders.items():
            encoded = encode(document)
            ser_times[label] = time_call(lambda e=encode: e(document),
                                         repeats=3)
            de_times[label] = time_call(lambda d=decode, b=encoded: d(b),
                                        repeats=3)
        serialize[name] = {
            label: ser_times[label] / ser_times["JSONB"]
            for label in ("BSON", "CBOR")}
        deserialize[name] = {
            label: de_times[label] / de_times["JSONB"]
            for label in ("BSON", "CBOR")}
    benchmark.pedantic(lambda: jsonb.encode(CORPORA["twitter_api"]()),
                       rounds=2, iterations=1)

    out = report("fig18_serialize",
                 "Figure 18 - slowdown vs JSONB (1.0 = JSONB speed)")
    out.section("serialize")
    out.table(["corpus", "BSON", "CBOR"],
              [[name, row["BSON"], row["CBOR"]]
               for name, row in serialize.items()])
    out.section("deserialize")
    out.table(["corpus", "BSON", "CBOR"],
              [[name, row["BSON"], row["CBOR"]]
               for name, row in deserialize.items()])
    out.emit()

    # Substrate deviation (recorded in EXPERIMENTS.md): in C++ the
    # two-pass JSONB encoder wins by allocating exactly once, but in
    # pure Python the extra measuring pass is function-call-bound, so
    # BSON/CBOR single-pass appends can be faster here.  The bench
    # asserts the comparison stays within a sane band rather than the
    # paper's absolute winner.
    for table in (serialize, deserialize):
        for name, row in table.items():
            assert 0.05 < row["BSON"] < 20, name
            assert 0.05 < row["CBOR"] < 20, name
    # the paper's deserialize observation (CBOR wins some workloads)
    cbor_wins = sum(row["CBOR"] < 1.0 for row in deserialize.values())
    assert cbor_wins >= 1
