"""Figure 15 micro benchmark: throughput of ``sum(l_linenumber)``.

Paper: the summation query is extracted perfectly by both Sinew and
Tiles on the clean lineitem table (Relational 620 q/s, Sinew Only 401,
Tiles Only 488, Sinew Comb. 20/Tiles Comb. 290 q/s at their scale); the
point is that Tiles' robustness costs only a small static overhead over
Sinew, while being an order of magnitude above plain JSONB, and that on
*combined* data Sinew degrades while Tiles does not.

``Relational`` is a native columnar baseline: the same sum over a plain
numpy int64 column (no JSON machinery at all).

Extra ablation (DESIGN.md): cast rewriting off.
"""

import numpy as np

from repro.bench import datasets
from repro.bench.harness import time_call, time_query
from repro.engine.plan import QueryOptions
from repro.storage.formats import StorageFormat
from repro.workloads import tpch

QUERY = "select sum(l.data->>'l_linenumber'::int) as s from lineitem l"

PAPER_QPS = {"JSON Comb.": 290, "JSONB Comb.": 224, "Relational": 620,
             "Sinew Comb.": 20, "Sinew Only": 401, "Tiles Comb.": 290,
             "Tiles Only": 488}


def test_fig15_summation_throughput(benchmark, report):
    combined = {fmt: datasets.tpch_db(fmt)
                for fmt in (StorageFormat.JSON, StorageFormat.JSONB,
                            StorageFormat.SINEW, StorageFormat.TILES)}
    split = {fmt: datasets.tpch_split_db(fmt)
             for fmt in (StorageFormat.SINEW, StorageFormat.TILES)}

    # native columnar baseline
    lineitems = tpch.generate_tables(datasets.TPCH_SF)["lineitem"]
    column = np.array([row["l_linenumber"] for row in lineitems],
                      dtype=np.int64)

    measured = {
        "JSON Comb.": 1 / time_query(combined[StorageFormat.JSON], QUERY),
        "JSONB Comb.": 1 / time_query(combined[StorageFormat.JSONB], QUERY),
        "Relational": 1 / time_call(lambda: int(column.sum())),
        "Sinew Comb.": 1 / time_query(combined[StorageFormat.SINEW], QUERY),
        "Sinew Only": 1 / time_query(split[StorageFormat.SINEW], QUERY),
        "Tiles Comb.": 1 / time_query(combined[StorageFormat.TILES], QUERY),
        "Tiles Only": 1 / time_query(split[StorageFormat.TILES], QUERY),
    }
    benchmark.pedantic(lambda: split[StorageFormat.TILES].sql(QUERY),
                       rounds=3, iterations=1)

    out = report("fig15_micro",
                 "Figure 15 - summation query throughput [queries/sec]")
    rows = [[name, qps, PAPER_QPS[name]] for name, qps in measured.items()]
    out.table(["configuration", "queries/sec", "paper q/s"], rows)

    # extra ablation: cast rewriting (Section 4.3)
    no_rewrite = 1 / time_query(split[StorageFormat.TILES], QUERY,
                                QueryOptions(enable_cast_rewriting=False))
    out.section("cast rewriting ablation (Tiles Only)")
    out.table(["config", "queries/sec"],
              [["cast rewriting on", measured["Tiles Only"]],
               ["cast rewriting off", no_rewrite]])
    out.emit()

    # extraction-friendly data: Tiles within 2x of Sinew (small static
    # overhead), both far above JSONB
    assert measured["Tiles Only"] > 0.5 * measured["Sinew Only"]
    assert measured["Tiles Only"] > 5 * measured["JSONB Comb."]
    # robustness on combined data: Tiles stays close to its clean-table
    # throughput while Sinew's global schema still extracts lineitem
    assert measured["Tiles Comb."] > 2 * measured["JSONB Comb."]
    # the native columnar sum is the upper bound
    assert measured["Relational"] >= measured["Tiles Only"]


def test_table5_low_level_counters(benchmark, report):
    """Table 5: per-tuple cost counters of the summation query.

    Hardware counters (cycles, instructions, L1 misses) are not
    observable from Python; the honest software analogues are reported:
    seconds/tuple, JSONB fallback lookups/tuple, and rows scanned.
    Expected shape mirrors the paper: Tiles ~ Sinew on the clean table
    with a small robustness overhead, both orders of magnitude below
    JSONB, and combined data adds modest cost.
    """
    configurations = {
        "Relational": None,
        "Tiles": datasets.tpch_split_db(StorageFormat.TILES),
        "Sinew": datasets.tpch_split_db(StorageFormat.SINEW),
        "Sinew Comb.": datasets.tpch_db(StorageFormat.SINEW),
        "Tiles Comb.": datasets.tpch_db(StorageFormat.TILES),
        "JSONB": datasets.tpch_db(StorageFormat.JSONB),
    }
    lineitems = tpch.generate_tables(datasets.TPCH_SF)["lineitem"]
    num_tuples = len(lineitems)
    column = np.array([row["l_linenumber"] for row in lineitems],
                      dtype=np.int64)

    rows = []
    paper = {"Relational": (17.01, 31.58, 0.001613),
             "Tiles": (39.33, 69.82, 0.002494),
             "Sinew": (32.12, 65.08, 0.002050),
             "Sinew Comb.": (39.07, 71.73, 0.003450),
             "Tiles Comb.": (50.15, 74.20, 0.004462)}
    measured = {}
    for name, db in configurations.items():
        if db is None:
            seconds = time_call(lambda: int(column.sum()))
            fallbacks = 0
            scanned = num_tuples
        else:
            result = db.sql(QUERY)
            seconds = time_query(db, QUERY)
            fallbacks = result.counters.fallback_lookups
            scanned = result.counters.rows_scanned
        per_tuple = seconds / num_tuples
        measured[name] = per_tuple
        reference = paper.get(name)
        rows.append([
            name, f"{per_tuple * 1e6:.3f}", fallbacks / num_tuples,
            scanned,
            f"p:{reference[0]}/{reference[1]}" if reference else "-",
        ])
    benchmark.pedantic(
        lambda: configurations["Tiles"].sql(QUERY), rounds=3, iterations=1)

    out = report("table5_counters",
                 "Table 5 - per-tuple counters of the summation query "
                 "(us/tuple; paper: cycles/instructions per tuple)")
    out.table(["system", "us/tuple", "fallbacks/tuple", "rows scanned",
               "paper cyc/instr"], rows)
    out.emit()

    assert measured["Tiles"] < measured["JSONB"] / 5
    assert measured["Tiles"] < measured["Sinew"] * 3
