"""Server benchmark: ingest docs/sec and queries/sec at 1/4/16 clients.

Not a paper figure — this measures the ``repro.server`` subsystem the
reproduction adds on top of the paper: WAL-backed ingest (with and
without fsync per acknowledgement) and concurrent SELECT throughput
over immutable sealed tiles via the thread-pool query executor.

Run with::

    pytest benchmarks/bench_server_throughput.py --benchmark-only
"""

import os
import threading
import time

from repro.bench.harness import scaled
from repro.server import JsonTilesServer, ServerClient

INGEST_DOCS = int(scaled(4000))
INGEST_BATCH = 100
QUERY_ROUNDS = 20
CLIENT_COUNTS = (1, 4, 16)
MORSEL_WORKERS = (1, 2, 4)

QUERY = ("select s.data->>'kind' as k, count(*) as n, "
         "sum(s.data->>'v'::float) as t from stream s "
         "group by s.data->>'kind' order by k")

#: ``extra`` appears in 20% of documents — below the extraction
#: threshold, so every access pays the per-tuple JSONB fallback unless
#: the resolved-tile cache serves it
FALLBACK_QUERY = ("select sum(s.data->>'extra'::float) as t, "
                  "count(*) as n from stream s")


def _documents(count):
    docs = []
    for i in range(count):
        doc = {"id": i, "kind": "abcde"[i % 5], "v": float(i % 97),
               "nested": {"flag": i % 2 == 0}}
        if i % 5 == 0:
            doc["extra"] = float(i)
        docs.append(doc)
    return docs


def _ingest_rate(tmp_path, wal_sync):
    server = JsonTilesServer(tmp_path / f"ingest_{wal_sync}",
                             wal_sync=wal_sync, query_workers=4)
    server.start_in_thread()
    try:
        with ServerClient(port=server.port) as client:
            client.create_table("stream", "tiles", {"tile_size": 1024})
            documents = _documents(INGEST_DOCS)
            started = time.perf_counter()
            for base in range(0, INGEST_DOCS, INGEST_BATCH):
                client.insert_many("stream",
                                   documents[base:base + INGEST_BATCH])
            seconds = time.perf_counter() - started
        return INGEST_DOCS / seconds
    finally:
        server.stop_in_thread()


def _query_rate(server, clients):
    """Aggregate queries/sec with *clients* concurrent connections."""
    finished = []
    barrier = threading.Barrier(clients + 1)

    def worker():
        with ServerClient(port=server.port) as client:
            barrier.wait()
            for _ in range(QUERY_ROUNDS):
                client.query(QUERY)
        finished.append(True)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    assert len(finished) == clients
    return clients * QUERY_ROUNDS / seconds


def test_server_throughput(benchmark, report, tmp_path):
    ingest_rows = [
        ["wal fsync per ack", _ingest_rate(tmp_path, True)],
        ["wal buffered", _ingest_rate(tmp_path, False)],
    ]

    server = JsonTilesServer(tmp_path / "query", wal_sync=False,
                             query_workers=16)
    server.start_in_thread()
    try:
        with ServerClient(port=server.port) as client:
            client.create_table("stream", "tiles", {"tile_size": 1024})
            documents = _documents(INGEST_DOCS)
            for base in range(0, INGEST_DOCS, INGEST_BATCH):
                client.insert_many("stream",
                                   documents[base:base + INGEST_BATCH])
            client.flush("stream")
        query_rows = [[clients, _query_rate(server, clients)]
                      for clients in CLIENT_COUNTS]
        benchmark.pedantic(lambda: _query_rate(server, 4),
                           rounds=1, iterations=1)
    finally:
        server.stop_in_thread()

    out = report("server_throughput",
                 "repro.server - ingest and concurrent query throughput")
    out.section(f"ingest rate, {INGEST_DOCS} docs in batches of "
                f"{INGEST_BATCH} (one client)")
    out.table(["wal mode", "docs/sec"], ingest_rows)
    out.section(f"query throughput, {QUERY_ROUNDS} group-by queries "
                f"per client over {INGEST_DOCS} sealed docs")
    out.table(["clients", "queries/sec"], query_rows)
    out.emit()


def _serial_rate(client, sql, options, rounds=QUERY_ROUNDS):
    """Queries/sec of one client issuing *rounds* identical queries."""
    client.query(sql, options)  # warm caches / first-touch costs
    started = time.perf_counter()
    for _ in range(rounds):
        client.query(sql, options)
    return rounds / (time.perf_counter() - started)


def test_server_parallel_and_cache(benchmark, report, tmp_path):
    """The per-query execution knobs the server adds: morsel-driven
    parallelism (``--workers`` / options.parallelism) and the shared
    resolved-tile cache (``--cache-mb`` / options.tile_cache)."""
    server = JsonTilesServer(tmp_path / "knobs", wal_sync=False,
                             query_workers=8, parallelism=1, cache_mb=64.0)
    server.start_in_thread()
    try:
        with ServerClient(port=server.port) as client:
            client.create_table("stream", "tiles", {"tile_size": 1024})
            documents = _documents(INGEST_DOCS)
            for base in range(0, INGEST_DOCS, INGEST_BATCH):
                client.insert_many("stream",
                                   documents[base:base + INGEST_BATCH])
            client.flush("stream")

            worker_rows = [
                [workers, _serial_rate(client, QUERY,
                                       {"parallelism": workers,
                                        "tile_cache": False})]
                for workers in MORSEL_WORKERS]

            uncached = _serial_rate(client, FALLBACK_QUERY,
                                    {"tile_cache": False}, rounds=5)
            cached = _serial_rate(client, FALLBACK_QUERY,
                                  {"tile_cache": True}, rounds=5)
            cache_stats = client.stats()["cache"]
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    finally:
        server.stop_in_thread()

    cores = os.cpu_count() or 1
    out = report("server_parallel_cache",
                 "repro.server - morsel parallelism and the "
                 "resolved-tile cache")
    out.section(f"group-by queries/sec by per-query morsel workers "
                f"({cores} core(s), one client)")
    out.table(["workers", "queries/sec"], worker_rows)
    out.section(f"fallback-heavy query ({INGEST_DOCS} docs, key in 20%): "
                f"repeated-query rate")
    out.table(["mode", "queries/sec"],
              [["jsonb fallback every query", uncached],
               ["resolved-tile cache", cached]])
    out.note(f"cache speedup {cached / uncached:.1f}x; cache stats: "
             f"{cache_stats['hits']} hits, {cache_stats['misses']} misses, "
             f"{cache_stats['entries']} entries")
    out.emit()

    # the cache skips the pure-Python JSONB decode entirely, so the
    # speedup holds on any machine (no core-count gate)
    assert cached >= 3.0 * uncached, (cached, uncached)
    if cores >= 4:
        assert dict(worker_rows)[4] >= 2.0 * dict(worker_rows)[1], worker_rows
