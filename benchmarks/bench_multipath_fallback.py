"""Multi-path fallback shredding: one walk per tuple vs one per path.

Sweeps 1-8 fallback key paths over the twitter workload stored as
plain JSONB (every access falls back, Section 4.5) with the resolved-
tile cache off — the cold-cache worst case the shredder targets.  The
per-path baseline traverses each document once per requested path
(``multipath_shred=False``); the shredder compiles the paths into a
trie and fills all columns in a single pass (``repro.jsonb.shred``).

Also proves the optimisation is invisible: EXPLAIN ANALYZE row counts
and aggregate results are identical with the shredder on and off, and
``fallback_lookups`` (logical tuples x paths) matches in both modes
while ``shred_passes`` / ``shred_paths`` expose the saved traversals.
"""

import time

from repro import Database, QueryOptions, StorageFormat
from repro.bench.datasets import TWITTER_TWEETS
from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType
from repro.engine.batch import concat_batches
from repro.engine.scan import AccessRequest, TableScan
from repro.tiles import ExtractionConfig
from repro.workloads import twitter

CONFIG = ExtractionConfig(tile_size=1024)

#: realistic mixed-type access set; a k-path query takes the first k
PATHS = [
    ("user.id", ColumnType.INT64),
    ("user.screen_name", ColumnType.STRING),
    ("user.followers_count", ColumnType.INT64),
    ("user.friends_count", ColumnType.INT64),
    ("retweet_count", ColumnType.INT64),
    ("entities.hashtags[0].text", ColumnType.STRING),
    ("lang", ColumnType.STRING),
    ("favorite_count", ColumnType.INT64),
]


def _load(num_docs):
    docs = list(twitter.TwitterGenerator(num_docs).stream())
    from repro.storage import load_documents

    return load_documents("tw", docs, StorageFormat.JSONB, CONFIG)


def _scan_seconds(relation, k, multipath_shred, repeats):
    requests = [AccessRequest.make("tw", KeyPath.parse(path), target,
                                   True) for path, target in PATHS[:k]]
    best = float("inf")
    batch = None
    for _ in range(repeats):
        scan = TableScan(relation, requests,
                         multipath_shred=multipath_shred)
        started = time.perf_counter()
        batch = concat_batches(list(scan.batches()))
        best = min(best, time.perf_counter() - started)
    return best, batch, scan.counters


def _assert_identical(left, right):
    assert list(left.columns) == list(right.columns)
    for name in left.columns:
        a, b = left.column(name), right.column(name)
        assert all(x == y for x, y, null
                   in zip(a.data, b.data, a.null_mask) if not null), name


def test_multipath_fallback_sweep(benchmark, report):
    relation = _load(TWITTER_TWEETS)
    rows = []
    best_speedup_4plus = 0.0
    for k in (1, 2, 4, 6, 8):
        off_s, off_batch, off_c = _scan_seconds(relation, k, False, 5)
        on_s, on_batch, on_c = _scan_seconds(relation, k, True, 5)
        _assert_identical(on_batch, off_batch)
        assert on_c.fallback_lookups == off_c.fallback_lookups
        assert on_c.shred_passes == relation.row_count
        assert on_c.shred_paths == relation.row_count * k
        speedup = off_s / on_s
        if k >= 4:
            best_speedup_4plus = max(best_speedup_4plus, speedup)
        rows.append([k, f"{off_s * 1000:.1f}", f"{on_s * 1000:.1f}",
                     f"{speedup:.2f}x",
                     on_c.shred_paths - on_c.shred_passes])
    benchmark.pedantic(
        lambda: _scan_seconds(relation, 4, True, 1), rounds=3,
        iterations=1)

    out = report("multipath_fallback",
                 "Multi-path fallback shredding (twitter, JSONB, "
                 "cold cache)")
    out.note(f"{relation.row_count} documents, min of 5 runs")
    out.table(["paths", "per-path ms", "shred ms", "speedup",
               "walks saved"], rows)

    # EXPLAIN ANALYZE identity: same rows, same aggregate, both modes
    db = Database(StorageFormat.JSONB, CONFIG)
    db.tables["tw"] = relation
    query = ("select t.data->>'lang' as lang, count(*) as n, "
             "sum(t.data->'user'->>'followers_count'::int) as followers "
             "from tw t group by t.data->>'lang' order by n desc")
    results = {}
    for label, flag in (("shred", True), ("per-path", False)):
        options = QueryOptions(enable_multipath_shred=flag)
        plan = db.explain(query, options, analyze=True)
        result = db.sql(query, options)
        results[label] = result
        out.section(f"explain analyze ({label})")
        for line in plan.splitlines():
            if "Scan" in line or "rows:" in line:
                out.note(line.strip())
    assert results["shred"].rows == results["per-path"].rows
    assert results["shred"].counters.fallback_lookups == \
        results["per-path"].counters.fallback_lookups
    out.note("aggregate results identical: "
             f"{len(results['shred'])} groups, both modes")
    out.emit()

    # the headline claim: single-pass shredding pays off once a query
    # touches several fallback paths (generous floor for noisy CI
    # machines; committed results show >= 2x)
    assert best_speedup_4plus >= 1.5


def test_multipath_smoke(report):
    """CI smoke: 1 path x small dataset, identity + counters only."""
    relation = _load(200)
    off_s, off_batch, off_c = _scan_seconds(relation, 1, False, 1)
    on_s, on_batch, on_c = _scan_seconds(relation, 1, True, 1)
    _assert_identical(on_batch, off_batch)
    assert on_c.fallback_lookups == off_c.fallback_lookups == \
        relation.row_count
    assert on_c.shred_passes == relation.row_count
    assert off_c.shred_passes == 0
