"""Distributed joins: broadcast exchange vs gather (DESIGN.md §10).

A selective self-join — every row of ``events`` probes the ~1 % of
rows with ``kind = 0`` — is the shape the gather fallback handles
worst: it ships *every* document of the table to the coordinator to
run the join locally.  The broadcast path instead ships the ~80
surviving build rows to each shard once and gets only partial
aggregate states back, so the coordinator's per-query
``exchange_bytes`` (every request and response byte on every backend
link) should drop by well over 2x.

The gather baseline is measured *cold*, on the first gather the
coordinator runs: the epoch-keyed gather cache makes every repeat
gather of an unchanged table ship ~zero bytes, which is exactly the
optimization the cache exists for, and would make a warm baseline
meaningless.  Results are checked bit-identical between modes and
across shard counts.  Besides the human-readable table, the sweep
writes ``benchmarks/results/BENCH_distjoin.json`` for trend tooling.
"""

import json
import time
from pathlib import Path

from repro.bench.harness import scaled
from repro.cluster import ClusterCoordinator, ClusterTopology
from repro.server import JsonTilesServer, ServerClient

RESULTS_DIR = Path(__file__).parent / "results"

SHARD_COUNTS = (1, 2, 4)
NUM_DOCS = int(scaled(8000))
KINDS = 100  # kind = i % 100: the b.kind = 0 filter keeps ~1 %
TILE_SIZE = 256
BATCH = 512
QUERY_ROUNDS = 5

JOIN_SQL = (
    "select count(*) as n, min(a.data->>'id'::int) as lo, "
    "max(a.data->>'id'::int) as hi, sum(a.data->>'v'::int) as s "
    "from events a, events b "
    "where a.data->>'id'::int = b.data->>'id'::int "
    "and b.data->>'kind'::int = 0")

ON = {"enable_distributed_joins": True}
OFF = {"enable_distributed_joins": False}


class Fleet:
    """N in-thread shard servers plus one in-thread coordinator.

    In-process is fine here: the metric is exchange *bytes*, not
    extraction throughput, so shards do not need their own GIL."""

    def __init__(self, root: Path, shard_count: int,
                 tile_size: int = TILE_SIZE):
        self.tile_size = tile_size
        self.shards = [JsonTilesServer(root / f"shard{index}",
                                       wal_sync=False, role="shard")
                       for index in range(shard_count)]
        for shard in self.shards:
            shard.start_in_thread()
        topology = ClusterTopology.from_dict(
            {"shards": [{"host": "127.0.0.1", "port": shard.port}
                        for shard in self.shards]})
        self.coordinator = ClusterCoordinator(topology, port=0,
                                              timeout=60.0)
        self.coordinator.start_in_thread()
        self.port = self.coordinator.port

    def load(self, client, documents):
        client.create_table("events", "tiles",
                            {"tile_size": self.tile_size})
        for base in range(0, len(documents), BATCH):
            client.insert_many("events", documents[base:base + BATCH])
        client.flush("events")

    def stop(self):
        self.coordinator.stop_in_thread()
        for shard in self.shards:
            shard.stop_in_thread()


def _documents(count):
    return [{"id": i, "kind": i % KINDS, "v": i % 53}
            for i in range(count)]


def _latency_ms(client, options):
    started = time.perf_counter()
    for _ in range(QUERY_ROUNDS):
        client._call("query", sql=JOIN_SQL, options=options)
    return (time.perf_counter() - started) / QUERY_ROUNDS * 1e3


def test_distjoin_sweep(benchmark, report, tmp_path):
    documents = _documents(NUM_DOCS)
    rows, cases = [], []
    reference = None
    for shard_count in SHARD_COUNTS:
        fleet = Fleet(tmp_path / f"s{shard_count}", shard_count)
        try:
            with ServerClient(port=fleet.port, timeout=120.0) as client:
                fleet.load(client, documents)
                # cold gather first: the epoch cache makes every
                # later gather of the unchanged table ship ~0 bytes
                off = client._call("query", sql=JOIN_SQL, options=OFF)
                assert off["cluster"]["mode"] == "gather"
                on = client._call("query", sql=JOIN_SQL, options=ON)
                assert on["cluster"]["mode"] == "broadcast_join", \
                    on["cluster"]
                assert on["rows"] == off["rows"], shard_count
                if reference is None:
                    reference = on["rows"]
                else:  # same bits regardless of shard count
                    assert on["rows"] == reference, shard_count
                gather_ms = _latency_ms(client, OFF)
                distjoin_ms = _latency_ms(client, ON)
        finally:
            fleet.stop()
        gather_bytes = off["cluster"]["exchange_bytes"]
        join_bytes = on["cluster"]["exchange_bytes"]
        ratio = gather_bytes / join_bytes
        rows.append([shard_count, gather_bytes, join_bytes,
                     f"{ratio:.1f}x", on["cluster"]["broadcast_rows"],
                     f"{gather_ms:.1f}", f"{distjoin_ms:.1f}"])
        cases.append({
            "shards": shard_count,
            "gather_cold_bytes": gather_bytes,
            "distjoin_bytes": join_bytes,
            "ratio": round(ratio, 2),
            "broadcast_rows": on["cluster"]["broadcast_rows"],
            "gather_warm_ms": round(gather_ms, 3),
            "distjoin_ms": round(distjoin_ms, 3),
        })
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    out = report("distjoin", "Broadcast join vs gather - coordinator "
                             f"exchange bytes ({NUM_DOCS} docs, "
                             f"~{NUM_DOCS // KINDS}-row build side)")
    out.section("selective self-join (b.kind = 0), cold gather vs "
                "broadcast; bytes are every request/response byte on "
                "every backend link for that one query")
    out.table(["shards", "gather bytes (cold)", "distjoin bytes",
               "ratio", "broadcast rows", "gather ms (warm)",
               "distjoin ms"], rows)
    out.note("results bit-identical between modes and across shard "
             "counts; warm-gather latency rides the epoch cache "
             "(0 docs re-shipped), so bytes — not ms — are the "
             "headline")
    out.emit()

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {"name": "distjoin", "docs": NUM_DOCS, "kinds": KINDS,
               "tile_size": TILE_SIZE, "cases": cases}
    (RESULTS_DIR / "BENCH_distjoin.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    # ISSUE 10 floor: the broadcast ships >= 2x fewer bytes than the
    # cold gather at every shard count
    for case in cases:
        assert case["ratio"] >= 2.0, case


def test_distjoin_smoke(report, tmp_path):
    """CI smoke: 2 shards, small dataset, engage + identity + bytes."""
    fleet = Fleet(tmp_path, 2, tile_size=64)
    try:
        with ServerClient(port=fleet.port, timeout=60.0) as client:
            fleet.load(client, _documents(1200))
            off = client._call("query", sql=JOIN_SQL, options=OFF)
            on = client._call("query", sql=JOIN_SQL, options=ON)
            assert off["cluster"]["mode"] == "gather"
            assert on["cluster"]["mode"] == "broadcast_join"
            assert on["rows"] == off["rows"]
            assert on["cluster"]["exchange_bytes"] * 2 <= \
                off["cluster"]["exchange_bytes"]
    finally:
        fleet.stop()
