"""Extra ablations beyond the paper's Figure 14 (DESIGN.md §6):

* zone-map tile pruning (the Data Blocks-style extension of §4.8),
* plan-time document sampling (§4.6's "sampled statically"),
* the Top-K operator for ORDER BY + LIMIT.

These quantify design choices this reproduction adds on top of the
paper's mandatory feature set.
"""

from repro.bench import datasets
from repro.bench.harness import time_query
from repro.engine.plan import QueryOptions
from repro.storage.formats import StorageFormat

RANGE_QUERY = """
select count(*) as n, sum(l.data->>'l_extendedprice'::decimal) as s
from lineitem l
where l.data->>'l_shipdate'::date >= date '1998-01-01'
"""

TOPK_QUERY = """
select l.data->>'l_orderkey'::int as k,
       l.data->>'l_extendedprice'::decimal as p
from lineitem l
order by p desc
limit 10
"""


def test_extra_zone_map_ablation(benchmark, report):
    db = datasets.tpch_db(StorageFormat.TILES)
    on = QueryOptions(enable_zone_maps=True)
    off = QueryOptions(enable_zone_maps=False)
    with_maps = time_query(db, RANGE_QUERY, on)
    without = time_query(db, RANGE_QUERY, off)
    result_on = db.sql(RANGE_QUERY, on)
    result_off = db.sql(RANGE_QUERY, off)
    benchmark.pedantic(lambda: db.sql(RANGE_QUERY, on), rounds=3,
                       iterations=1)

    out = report("extra_zonemaps", "Extra ablation - zone-map pruning on "
                                   "a late-date range predicate")
    out.table(["config", "seconds", "tiles skipped"],
              [["zone maps on", with_maps,
                result_on.counters.tiles_skipped],
               ["zone maps off", without,
                result_off.counters.tiles_skipped]])
    out.note("note: loading is insertion-ordered by table, not by date, "
             "so pruning depends on per-tile date ranges")
    out.emit()

    assert result_on.rows == result_off.rows
    assert result_on.counters.tiles_skipped >= \
        result_off.counters.tiles_skipped


def test_extra_sampling_ablation(benchmark, report):
    db = datasets.tpch_db(StorageFormat.TILES)
    query = ("select count(*) as n from lineitem l, orders o "
             "where l.data->>'l_orderkey'::int = o.data->>'o_orderkey'::int "
             "and l.data->>'l_comment' like '%fox%'")
    plain = db.sql(query)
    sampled = db.sql(query, QueryOptions(enable_sampling=True))
    plain_s = time_query(db, query)
    sampled_s = time_query(db, query, QueryOptions(enable_sampling=True))
    benchmark.pedantic(
        lambda: db.sql(query, QueryOptions(enable_sampling=True)),
        rounds=2, iterations=1)

    out = report("extra_sampling", "Extra ablation - plan-time document "
                                   "sampling (Section 4.6)")
    out.table(["config", "seconds", "rows"],
              [["sketch estimates", plain_s, len(plain)],
               ["with sampling", sampled_s, len(sampled)]])
    out.emit()
    assert plain.rows == sampled.rows


def test_extra_topk_ablation(benchmark, report):
    from repro.engine.operators import LimitOp, SortOp, TopKOp
    db = datasets.tpch_db(StorageFormat.TILES)
    # measured through SQL (TopK) vs the full-sort fallback, timed by
    # swapping the planner output manually
    from repro.engine.optimizer import Planner
    from repro.sql.binder import Binder
    from repro.sql.parser import parse

    options = QueryOptions()
    block = Binder(db.tables, options).bind(parse(TOPK_QUERY))

    def run_topk():
        return db.sql(TOPK_QUERY, options)

    def run_fullsort():
        planner = Planner(options)
        saved_limit = block.limit
        block.limit = None
        try:
            tree = planner.plan_block(block)
        finally:
            block.limit = saved_limit
        tree = LimitOp(SortOp(tree.child if isinstance(tree, SortOp)
                              else tree, block.order_by), block.limit)
        return tree.materialize()

    topk_s = min(time_query(db, TOPK_QUERY),
                 time_query(db, TOPK_QUERY))
    import time as _time
    started = _time.perf_counter()
    full = run_fullsort()
    fullsort_s = _time.perf_counter() - started
    benchmark.pedantic(run_topk, rounds=3, iterations=1)

    out = report("extra_topk", "Extra ablation - Top-K vs full sort "
                               "(ORDER BY price LIMIT 10)")
    out.table(["config", "seconds"],
              [["top-k heap", topk_s], ["full sort + limit", fullsort_s]])
    out.emit()

    topk_rows = run_topk().rows
    full_rows = [tuple(full.column(name).value(i)
                       for name in ("k", "p"))
                 for i in range(full.length)][:10]
    assert [row[1] for row in topk_rows] == [row[1] for row in full_rows]
