"""Helpers shared between benchmark files (sweeps are expensive, so
their results are cached across the figure benches that slice them)."""

from __future__ import annotations

import time
from functools import lru_cache
from typing import Dict, List, Tuple

from repro import Database, ExtractionConfig, StorageFormat
from repro.bench.datasets import TPCH_SF, TWITTER_TWEETS, YELP_BUSINESSES
from repro.bench.harness import geomean, time_query
from repro.workloads import tpch, twitter, yelp
from repro.workloads.tpch import TPCH_QUERIES

#: query subset used by the geo-mean sweeps (the full 22-query suite is
#: run by bench_table1; sweeps would multiply it by every configuration)
SWEEP_TPCH_QUERIES = [1, 3, 4, 6, 12, 14]

TILE_SIZES = [64, 256, 1024, 4096]
PARTITION_SIZES = [1, 4, 8]


def tpch_geomean(db: Database, queries=None, options=None) -> float:
    queries = queries or SWEEP_TPCH_QUERIES
    return geomean([time_query(db, TPCH_QUERIES[q], options, repeats=1)
                    for q in queries])


@lru_cache(maxsize=None)
def shuffled_documents() -> tuple:
    return tuple(tpch.generate_combined(TPCH_SF, shuffled=True))


@lru_cache(maxsize=None)
def yelp_documents() -> tuple:
    return tuple(yelp.YelpGenerator(YELP_BUSINESSES).combined())


@lru_cache(maxsize=None)
def twitter_documents(evolving: bool = False) -> tuple:
    return tuple(twitter.TwitterGenerator(TWITTER_TWEETS,
                                          evolving=evolving).stream())


def load_db(table: str, documents, tile_size: int, partition_size: int,
            storage_format=StorageFormat.TILES, register_tpch=False,
            **config_kwargs) -> Tuple[Database, float]:
    """Load documents with one (tile size, partition size) setting;
    returns (db, load seconds)."""
    config = ExtractionConfig(tile_size=tile_size,
                              partition_size=partition_size,
                              **config_kwargs)
    db = Database(storage_format, config)
    started = time.perf_counter()
    relation = db.load_table(table, list(documents), storage_format, config)
    seconds = time.perf_counter() - started
    if register_tpch:
        for name in tpch.TABLE_NAMES:
            db.register(name, relation)
    return db, seconds


@lru_cache(maxsize=None)
def sweep(workload: str) -> Dict[Tuple[int, int], Tuple[float, float]]:
    """(tile size, partition size) -> (geo-mean query s, load s).

    ``workload`` is one of "shuffled-tpch", "yelp", "twitter".
    """
    results: Dict[Tuple[int, int], Tuple[float, float]] = {}
    for tile_size in TILE_SIZES:
        for partition_size in PARTITION_SIZES:
            if workload == "shuffled-tpch":
                db, load_s = load_db("tpch_combined", shuffled_documents(),
                                     tile_size, partition_size,
                                     register_tpch=True)
                query_s = tpch_geomean(db)
            elif workload == "yelp":
                db, load_s = load_db("yelp", yelp_documents(), tile_size,
                                     partition_size)
                query_s = geomean([
                    time_query(db, text, repeats=1)
                    for text in yelp.YELP_QUERIES.values()])
            else:
                db, load_s = load_db("tweets", twitter_documents(), tile_size,
                                     partition_size)
                query_s = geomean([
                    time_query(db, text, repeats=1)
                    for text in twitter.TWITTER_QUERIES.values()])
            results[(tile_size, partition_size)] = (query_s, load_s)
    return results
