"""Table 2: execution times for the five Yelp queries.

Paper (Umbra-internal columns, seconds):
Q1 JSONB 0.487 / Sinew 0.366 / Tiles 0.293; Q2 0.191/0.163/0.044;
Q3 0.444/0.302/0.145; Q4 0.105/0.013/0.013; Q5 0.273/0.160/0.088.
Expected shape: Tiles <= Sinew <= JSONB << JSON on every query, with
Q4 (the star-rating aggregate, Sinew's best case) nearly tied between
Sinew and Tiles.
"""

from repro.bench import datasets, geomean, time_query
from repro.storage.formats import StorageFormat
from repro.workloads.yelp import YELP_QUERIES

PAPER = {
    1: (6.068, 0.487, 0.366, 0.293),
    2: (0.813, 0.191, 0.163, 0.044),
    3: (3.262, 0.444, 0.302, 0.145),
    4: (0.843, 0.105, 0.013, 0.013),
    5: (2.698, 0.273, 0.160, 0.088),
}
FORMATS = [StorageFormat.JSON, StorageFormat.JSONB, StorageFormat.SINEW,
           StorageFormat.TILES]


def test_table2_yelp(benchmark, report):
    dbs = {fmt: datasets.yelp_db(fmt) for fmt in FORMATS}
    measured = {
        query: tuple(time_query(dbs[fmt], text) for fmt in FORMATS)
        for query, text in YELP_QUERIES.items()
    }
    benchmark.pedantic(lambda: dbs[StorageFormat.TILES].sql(YELP_QUERIES[4]),
                       rounds=3, iterations=1)

    out = report("table2_yelp", "Table 2 - Yelp query times [s]")
    rows = [
        [f"Q{query}", *measured[query],
         *(f"p:{v:.3f}" for v in PAPER[query])]
        for query in sorted(YELP_QUERIES)
    ]
    out.table(["query", "JSON", "JSONB", "Sinew", "Tiles",
               "paper:JSON", "paper:JSONB", "paper:Sinew", "paper:Tiles"],
              rows)
    gm = {fmt: geomean([measured[q][i] for q in measured])
          for i, fmt in enumerate(FORMATS)}
    out.section("geometric means")
    out.table(["format", "geo-mean [s]"],
              [[fmt.value, gm[fmt]] for fmt in FORMATS])
    out.emit()

    assert gm[StorageFormat.TILES] < gm[StorageFormat.JSONB]
    assert gm[StorageFormat.TILES] <= gm[StorageFormat.SINEW]
    assert gm[StorageFormat.JSONB] < gm[StorageFormat.JSON]
