"""Figure 8: Q1/Q18 throughput scaling with the number of threads.

Paper: queries/sec grows with up to 32 threads for all internal
formats, Tiles on top throughout.  A Python engine cannot use threads
for CPU-bound scans (GIL), so the substitution (DESIGN.md) measures
*process* parallelism: N forked workers run the query concurrently on
the shared (copy-on-write) database, and aggregate throughput is
reported.  Expected shape: near-linear growth until the core count,
with Tiles above JSONB at every width.
"""

import multiprocessing
import os
import time

import pytest

from repro.bench import datasets
from repro.engine.plan import QueryOptions
from repro.storage.formats import StorageFormat
from repro.workloads.tpch import TPCH_QUERIES

WORKER_COUNTS = [1, 2, 4, 8]
_db = None
_query = None


def _worker(num_queries: int) -> int:
    for _ in range(num_queries):
        _db.sql(_query)
    return num_queries


def _throughput(db, query: str, workers: int, queries_per_worker: int = 2):
    global _db, _query
    _db, _query = db, query
    context = multiprocessing.get_context("fork")
    started = time.perf_counter()
    with context.Pool(workers) as pool:
        done = sum(pool.map(_worker, [queries_per_worker] * workers))
    return done / (time.perf_counter() - started)


@pytest.mark.skipif(not hasattr(os, "fork"), reason="fork required")
def test_fig08_scalability(benchmark, report):
    formats = [StorageFormat.JSONB, StorageFormat.SINEW, StorageFormat.TILES]
    dbs = {fmt: datasets.tpch_db(fmt) for fmt in formats}
    results = {}
    for label, query in (("Q1", TPCH_QUERIES[1]), ("Q18", TPCH_QUERIES[18])):
        for fmt in formats:
            for workers in WORKER_COUNTS:
                results[(label, fmt, workers)] = _throughput(
                    dbs[fmt], query, workers)
    benchmark.pedantic(
        lambda: _throughput(dbs[StorageFormat.TILES], TPCH_QUERIES[1], 2),
        rounds=1, iterations=1,
    )

    out = report("fig08_scalability",
                 "Figure 8 - throughput scaling [queries/sec] "
                 "(process-level parallelism, see DESIGN.md)")
    for label in ("Q1", "Q18"):
        out.section(label)
        rows = []
        for fmt in formats:
            rows.append([fmt.value] + [
                results[(label, fmt, workers)] for workers in WORKER_COUNTS])
        out.table(["format"] + [f"{w} workers" for w in WORKER_COUNTS], rows)
    out.emit()

    cores = os.cpu_count() or 1
    out2 = report("fig08_note", "Figure 8 - environment note")
    out2.note(f"machine has {cores} core(s); scaling plateaus at the "
              f"core count (the paper's Figure 8 flattens past 32 threads "
              f"the same way)")
    out2.emit()
    for label in ("Q1", "Q18"):
        if cores >= 2:
            for fmt in formats:
                series = [results[(label, fmt, workers)]
                          for workers in WORKER_COUNTS if workers <= cores]
                # throughput grows with parallelism (allowing fork
                # overhead noise at the first step)
                assert series[-1] > series[0], (label, fmt, series)
        # Tiles stays on top at every parallelism level
        assert results[(label, StorageFormat.TILES, 4)] > \
            results[(label, StorageFormat.JSONB, 4)]


def _morsel_rate(db, query: str, parallelism: int, rounds: int = 3) -> float:
    options = QueryOptions(parallelism=parallelism)
    db.sql(query, options)  # warm (JIT-free, but page/alloc effects)
    started = time.perf_counter()
    for _ in range(rounds):
        db.sql(query, options)
    return rounds / (time.perf_counter() - started)


def test_fig08_morsel_threads(benchmark, report):
    """Morsel-driven parallelism within one process: worker threads
    scan tile-granular morsels concurrently (numpy kernels release the
    GIL), partial aggregates merge in morsel order — bit-identical to
    the serial engine at any width."""
    db = datasets.tpch_db(StorageFormat.TILES)
    queries = {"Q1": TPCH_QUERIES[1], "Q18": TPCH_QUERIES[18]}
    results = {}
    for label, query in queries.items():
        for workers in WORKER_COUNTS:
            results[(label, workers)] = _morsel_rate(db, query, workers)
    benchmark.pedantic(lambda: _morsel_rate(db, queries["Q1"], 4, rounds=1),
                       rounds=1, iterations=1)

    cores = os.cpu_count() or 1
    out = report("fig08_morsel_threads",
                 "Figure 8 (in-process) - morsel-driven thread "
                 "parallelism [queries/sec]")
    out.section(f"QueryOptions(parallelism=N), {cores} core(s)")
    rows = [[label] + [results[(label, workers)]
                       for workers in WORKER_COUNTS]
            for label in queries]
    out.table(["query"] + [f"{w} workers" for w in WORKER_COUNTS], rows)
    out.emit()

    # determinism is covered by tests/test_parallel_exec.py; here only
    # the scaling claim, which needs real cores to hold
    if cores >= 4:
        for label in queries:
            assert results[(label, 4)] >= 2.0 * results[(label, 1)], \
                (label, results)
