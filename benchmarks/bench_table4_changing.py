"""Table 4: geometric mean on Twitter vs the "changing" stream.

Paper: Twitter geo-mean JSON 11.803 / JSONB 0.258 / Sinew 0.239 /
Tiles 0.122 / Tiles-* 0.054; the changing structure slightly *improves*
most systems (fewer matches) and JSON tiles "can easily adopt to unseen
access keys".  Expected shape: the Tiles ordering is preserved on both
streams and Tiles never degrades disproportionately on changing data.
"""

from repro.bench import datasets, geomean, time_query
from repro.storage.formats import StorageFormat
from repro.workloads.twitter import TWITTER_QUERIES, TWITTER_QUERIES_STAR

PAPER = {
    "Twitter": {"JSON": 11.803, "JSONB": 0.258, "Sinew": 0.239,
                "Tiles": 0.122, "Tiles-*": 0.054},
    "Changing": {"JSON": 11.683, "JSONB": 0.236, "Sinew": 0.182,
                 "Tiles": 0.115, "Tiles-*": 0.054},
}
FORMATS = [StorageFormat.JSON, StorageFormat.JSONB, StorageFormat.SINEW,
           StorageFormat.TILES, StorageFormat.TILES_STAR]
LABELS = ["JSON", "JSONB", "Sinew", "Tiles", "Tiles-*"]


def _geomean(db, fmt):
    queries = (TWITTER_QUERIES_STAR if fmt == StorageFormat.TILES_STAR
               else TWITTER_QUERIES)
    return geomean([time_query(db, text) for text in queries.values()])


def test_table4_changing(benchmark, report):
    measured = {}
    for evolving, label in ((False, "Twitter"), (True, "Changing")):
        for fmt, name in zip(FORMATS, LABELS):
            db = datasets.twitter_db(fmt, evolving=evolving)
            measured[(label, name)] = _geomean(db, fmt)
    benchmark.pedantic(
        lambda: datasets.twitter_db(StorageFormat.TILES, evolving=True)
        .sql(TWITTER_QUERIES[5]),
        rounds=3, iterations=1)

    out = report("table4_changing",
                 "Table 4 - Twitter geo-mean [s], static vs changing")
    rows = []
    for label in ("Twitter", "Changing"):
        rows.append([label] + [measured[(label, name)] for name in LABELS])
        rows.append([f"paper:{label}"] + [PAPER[label][name]
                                          for name in LABELS])
    out.table(["data set"] + LABELS, rows)
    out.emit()

    for label in ("Twitter", "Changing"):
        assert measured[(label, "Tiles")] < measured[(label, "JSONB")]
        assert measured[(label, "Tiles-*")] < measured[(label, "Tiles")]
        assert measured[(label, "JSON")] > measured[(label, "JSONB")]
    # robustness: changing structure does not blow up Tiles
    assert measured[("Changing", "Tiles")] < 2 * measured[("Twitter", "Tiles")]
