"""Figure 17: parallel loading throughput (tuples/sec).

Paper: raw JSON/Hyper load fastest (no preprocessing); JSONB costs the
binary conversion; Tiles adds only a small further reduction; Sinew is
slowest because its global frequency pass is single-threaded and the
whole-table materialization follows.  The bench measures fresh loads
per format plus multi-process loading for Tiles.
"""

import os
import time

import pytest

from repro.bench import datasets
from repro.storage.formats import StorageFormat
from repro.storage.loader import load_documents
from repro.workloads import tpch

FORMATS = [StorageFormat.JSON, StorageFormat.JSONB, StorageFormat.SINEW,
           StorageFormat.TILES]

PAPER_KTUPLES = {"JSON": 441, "JSONB": 504, "Sinew": 468, "Tiles": 438}


def _load_throughput(documents, storage_format, num_workers=1):
    config = datasets.default_config()
    started = time.perf_counter()
    load_documents("bench", documents, storage_format, config,
                   num_workers=num_workers)
    return len(documents) / (time.perf_counter() - started)


def test_fig17_loading(benchmark, report):
    documents = tpch.generate_combined(datasets.TPCH_SF)
    measured = {fmt: _load_throughput(documents, fmt) for fmt in FORMATS}
    parallel = {}
    if hasattr(os, "fork"):
        for workers in (2, 4):
            parallel[workers] = _load_throughput(
                documents, StorageFormat.TILES, num_workers=workers)
    benchmark.pedantic(
        lambda: _load_throughput(documents[:2048], StorageFormat.TILES),
        rounds=1, iterations=1)

    out = report("fig17_loading",
                 "Figure 17 - loading throughput [tuples/sec], TPC-H")
    rows = [[fmt.value, measured[fmt],
             f"p:{PAPER_KTUPLES[label]}k/s (32 thr)"]
            for fmt, label in zip(FORMATS, PAPER_KTUPLES)]
    for workers, qps in parallel.items():
        rows.append([f"tiles ({workers} workers)", qps, "-"])
    out.table(["format", "tuples/sec", "paper"], rows)
    out.note(f"machine has {os.cpu_count()} core(s); worker scaling "
             f"needs more than one")
    out.emit()

    # raw text is the fastest load; Tiles costs at most a modest factor
    # over plain JSONB (the paper's "only a small reduction")
    assert measured[StorageFormat.JSON] > measured[StorageFormat.JSONB]
    assert measured[StorageFormat.TILES] > measured[StorageFormat.JSONB] / 6
    # Sinew pays for the global single-threaded frequency pass
    assert measured[StorageFormat.SINEW] < measured[StorageFormat.JSONB]
    if (os.cpu_count() or 1) >= 4:
        assert parallel.get(4, 0) > measured[StorageFormat.TILES]
