"""Figure 11: loading time of shuffled TPC-H over tile size and
partition size.

Paper: small tile sizes with partition sizes <= 8 add no overhead;
very large tiles (and huge partitions) make loading expensive because
mining and reordering grow super-linearly in the partition.  Expected
shape: loading time increases towards the large end of the sweep for
large partitions.
"""

from _shared import PARTITION_SIZES, TILE_SIZES, sweep


def test_fig11_tile_size_loading(benchmark, report):
    results = benchmark.pedantic(lambda: sweep("shuffled-tpch"),
                                 rounds=1, iterations=1)
    out = report("fig11_tilesize_load",
                 "Figure 11 - shuffled TPC-H loading time [s] per tile "
                 "size (columns: partition size)")
    rows = []
    for tile_size in TILE_SIZES:
        rows.append([tile_size] + [
            results[(tile_size, partition)][1]
            for partition in PARTITION_SIZES])
    out.table(["tile size"] + [f"partition {p}" for p in PARTITION_SIZES],
              rows)
    out.emit()

    # the recommended settings do not make loading explode: the largest
    # partition sweep point costs more than the small recommended one
    small = results[(TILE_SIZES[1], 8)][1]
    large = results[(TILE_SIZES[-1], 8)][1]
    assert small <= large * 3  # loading stays in the same ballpark
