"""Figure 13: Twitter geo-mean query time over tile size / partition
size.

Paper: mid tile sizes win; the delete documents (a globally infrequent
structure) profit from reordering into dedicated tiles.
"""

from _shared import PARTITION_SIZES, TILE_SIZES, sweep


def test_fig13_twitter_sweep(benchmark, report):
    results = benchmark.pedantic(lambda: sweep("twitter"),
                                 rounds=1, iterations=1)
    out = report("fig13_twitter_sweep",
                 "Figure 13 - Twitter geo-mean [s] per tile size "
                 "(columns: partition size)")
    rows = []
    for tile_size in TILE_SIZES:
        rows.append([tile_size] + [
            results[(tile_size, partition)][0]
            for partition in PARTITION_SIZES])
    out.table(["tile size"] + [f"partition {p}" for p in PARTITION_SIZES],
              rows)
    out.emit()

    values = [value[0] for value in results.values()]
    assert min(values) > 0
    # the spread across the sweep stays bounded (robust setting space)
    assert max(values) < 25 * min(values)
