"""Table 3: execution times for the five Twitter queries, including
Tiles-* (high-cardinality array extraction).

Paper (seconds): e.g. Q3 JSONB 0.191 / Sinew 0.204 / Tiles 0.215 /
Tiles-* 0.017 — plain tiles cannot materialize the mention/hashtag
arrays, so Q3/Q4 only win once the arrays live in child relations.
"""

from repro.bench import datasets, geomean, time_query
from repro.storage.formats import StorageFormat
from repro.workloads.twitter import TWITTER_QUERIES, TWITTER_QUERIES_STAR

PAPER = {
    1: (0.419, 0.255, 0.116, 0.116),
    2: (0.181, 0.191, 0.091, 0.091),
    3: (0.191, 0.204, 0.215, 0.017),
    4: (0.229, 0.212, 0.206, 0.022),
    5: (0.164, 0.049, 0.057, 0.058),
}
FORMATS = [StorageFormat.JSON, StorageFormat.JSONB, StorageFormat.SINEW,
           StorageFormat.TILES, StorageFormat.TILES_STAR]


def test_table3_twitter(benchmark, report):
    dbs = {fmt: datasets.twitter_db(fmt) for fmt in FORMATS}
    measured = {}
    for query in sorted(TWITTER_QUERIES):
        row = []
        for fmt in FORMATS:
            queries = (TWITTER_QUERIES_STAR
                       if fmt == StorageFormat.TILES_STAR
                       else TWITTER_QUERIES)
            row.append(time_query(dbs[fmt], queries[query]))
        measured[query] = tuple(row)
    benchmark.pedantic(
        lambda: dbs[StorageFormat.TILES_STAR].sql(TWITTER_QUERIES_STAR[4]),
        rounds=3, iterations=1)

    out = report("table3_twitter", "Table 3 - Twitter query times [s]")
    out.note("paper: JSONB/Sinew/Tiles/Tiles-* columns shown per query")
    rows = [
        [f"Q{query}", *measured[query],
         *(f"p:{v:.3f}" for v in PAPER[query])]
        for query in sorted(TWITTER_QUERIES)
    ]
    out.table(["query", "JSON", "JSONB", "Sinew", "Tiles", "Tiles-*",
               "p:JSONB", "p:Sinew", "p:Tiles", "p:Tiles-*"], rows)
    out.emit()

    # array queries: Tiles-* beats every other format clearly
    for query in (3, 4):
        star = measured[query][4]
        for index in range(4):
            assert star < measured[query][index], (query, index)
    # correctness: star and base variants agree
    for query in (3, 4):
        base = dbs[StorageFormat.TILES].sql(TWITTER_QUERIES[query]).rows
        star = dbs[StorageFormat.TILES_STAR].sql(
            TWITTER_QUERIES_STAR[query]).rows
        assert base == star
