"""Late materialization vs eager fallback decode (DESIGN.md §9).

A selective predicate on an *extracted* int column guards a projection
of four *fallback* paths (each present in ~25 % of rows, below the
60 % extraction threshold, so every lookup walks JSONB).  With late
materialization the early conjunct runs on the cheap column vector
first and only the surviving rows are shredded; eagerly, every row of
every surviving tile is decoded four times.  At 1–10 % selectivity the
skipped decodes dominate and the scan should win by well over 3x.

The predicate column (``v``) is value-scattered across tiles on
purpose: tile- and block-granular zone maps cannot skip anything, so
every tile survives and the sweep isolates the selection vector —
the paper's worst case for pruning, the best case for showing what
late decode alone buys.

The tile cache is disabled for both modes: it stores *full* resolved
columns (keys stay selection-independent), so with it warm neither
mode decodes anything and the comparison would measure dict lookups.

Every timed query is checked bit-identical between modes, and the
``fallback_rows_skipped`` counter proves the selection vector actually
engaged.  Besides the human-readable table, the sweep writes
``benchmarks/results/BENCH_latemat.json`` for trend tooling.
"""

import json
import struct
import time
from pathlib import Path

from repro import Database, QueryOptions, StorageFormat
from repro.tiles import ExtractionConfig

RESULTS_DIR = Path(__file__).parent / "results"

CONFIG = ExtractionConfig(tile_size=4096, partition_size=8)

NUM_ROWS = 40_000
BATCH_ROWS = 4096
FALLBACK_PATHS = 4


VALUE_MODULUS = 7919  # v = (i * 13) % 7919: uniform, order-free


def _sql(limit):
    return (
        "select t.data->>'k'::int as k, t.data->>'fb0' as a, "
        "t.data->>'fb1' as b, t.data->>'fb2' as c, t.data->>'fb3' as d "
        f"from t t where t.data->>'v'::int < {limit} order by k")


def _load(num_rows=NUM_ROWS):
    # `k` and `v` appear in every row and extract; each `fbN` appears
    # in 1/4 of rows, stays under the extraction threshold, and is a
    # fallback lookup forever after
    rows = []
    for i in range(num_rows):
        doc = {"k": i, "v": (i * 13) % VALUE_MODULUS}
        doc[f"fb{i % FALLBACK_PATHS}"] = f"payload-{i % 977}"
        rows.append(doc)
    db = Database(StorageFormat.TILES, CONFIG)
    db.load_table("t", rows)
    return db


def _bits(value):
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    return (type(value).__name__, value)


def _run(db, sql, late, repeats=3):
    best, result = float("inf"), None
    options = QueryOptions(enable_late_materialization=late,
                           tile_cache=False, batch_rows=BATCH_ROWS)
    for _ in range(repeats):
        started = time.perf_counter()
        result = db.sql(sql, options)
        best = min(best, time.perf_counter() - started)
    return best, result


def _compare(db, sql, repeats=3):
    on_s, on = _run(db, sql, True, repeats)
    off_s, off = _run(db, sql, False, repeats)
    assert on.columns == off.columns
    assert len(on.rows) == len(off.rows)
    for row_on, row_off in zip(on.rows, off.rows):
        assert [_bits(v) for v in row_on] == [_bits(v) for v in row_off]
    assert on.counters.fallback_rows_skipped > 0
    assert on.counters.latemat_declines == 0
    assert off.counters.fallback_rows_skipped == 0
    return on_s, off_s, on


def test_latemat_sweep(benchmark, report):
    db = _load()
    selectivities = [0.01, 0.05, 0.10, 0.50]
    rows, cases = [], []
    for fraction in selectivities:
        limit = int(VALUE_MODULUS * fraction)
        on_s, off_s, on = _compare(db, _sql(limit))
        speedup = off_s / on_s
        rows.append([f"{fraction:.0%}", f"{off_s * 1000:.0f}",
                     f"{on_s * 1000:.0f}", f"{speedup:.1f}x",
                     f"{on.counters.fallback_rows_skipped}"])
        cases.append({
            "selectivity": fraction,
            "eager_ms": round(off_s * 1000, 3),
            "late_ms": round(on_s * 1000, 3),
            "speedup": round(speedup, 2),
            "fallback_rows_skipped": on.counters.fallback_rows_skipped,
            "blocks_pruned": on.counters.blocks_pruned,
        })
    benchmark.pedantic(
        lambda: _run(db, _sql(int(VALUE_MODULUS * 0.05)), True, 1),
        rounds=3, iterations=1)

    out = report("latemat", "Late materialization vs eager decode "
                            f"({NUM_ROWS} rows, {FALLBACK_PATHS} "
                            f"fallback paths, batch {BATCH_ROWS})")
    out.note("min of 3 runs, tile cache off; results bit-identical at "
             "every selectivity, fallback_rows_skipped > 0, no declines")
    out.table(["selectivity", "eager ms", "late ms", "speedup",
               "fallback rows skipped"], rows)
    out.emit()

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {"name": "latemat", "rows": NUM_ROWS,
               "fallback_paths": FALLBACK_PATHS,
               "batch_rows": BATCH_ROWS, "cases": cases}
    (RESULTS_DIR / "BENCH_latemat.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    # ISSUE 9 floor: >= 3x at <= 10% selectivity (committed results
    # show far more at 1%); 50% is reported but not gated
    for case in cases:
        if case["selectivity"] <= 0.10:
            assert case["speedup"] >= 3.0, case


def test_latemat_smoke(report):
    """CI smoke: small dataset, identity + counter checks only."""
    db = _load(4000)
    for limit in (80, 800):
        on_s, on = _run(db, _sql(limit), True, 1)
        off_s, off = _run(db, _sql(limit), False, 1)
        assert on.columns == off.columns
        for row_on, row_off in zip(on.rows, off.rows):
            assert [_bits(v) for v in row_on] == \
                [_bits(v) for v in row_off]
        assert on.counters.fallback_rows_skipped > 0
        assert off.counters.fallback_rows_skipped == 0
