"""TPC-H over a combined JSON relation: plans, statistics, skipping.

Loads the JSONized TPC-H data (all eight tables combined into one
relation, as in Section 6.1), runs the paper's highlighted chokepoint
queries (Q1, Q3, Q18), and shows what the optimizer does with tile
statistics.

Run with::

    python examples/tpch_demo.py
"""

import time

from repro import ExtractionConfig, QueryOptions, StorageFormat
from repro.workloads.tpch import TPCH_QUERIES, make_database


def main() -> None:
    config = ExtractionConfig(tile_size=256, partition_size=8)
    print("loading combined TPC-H (sf=0.002)...")
    db = make_database(0.002, StorageFormat.TILES, config, combined=True)
    relation = db.table("lineitem")
    print(f"{relation.row_count} documents in {len(relation.tiles)} tiles\n")

    for query in (1, 3, 18):
        started = time.perf_counter()
        result = db.sql(TPCH_QUERIES[query])
        seconds = time.perf_counter() - started
        print(f"=== Q{query}: {len(result)} rows in {seconds:.3f}s, "
              f"join order {result.join_order or ['-']}, "
              f"{result.counters.tiles_skipped}/"
              f"{result.counters.tiles_total} tiles skipped ===")
        print(result.format_table(5))
        print()

    print("=== optimizer statistics at work (Q18) ===")
    smart = db.sql(TPCH_QUERIES[18])
    naive = db.sql(TPCH_QUERIES[18], QueryOptions(use_statistics=False))
    print(f"with statistics:    join order {smart.join_order}")
    print(f"without statistics: join order {naive.join_order} "
          f"(the FROM-clause order)")
    assert sorted(smart.rows) == sorted(naive.rows)

    print()
    print("=== explain output ===")
    print(db.explain(TPCH_QUERIES[3]))


if __name__ == "__main__":
    main()
