"""Twitter analytics across storage formats, including Tiles-*.

Compares the same five analysis queries over raw JSON text, binary
JSONB, Sinew's global extraction, JSON tiles, and Tiles-* (with the
hashtag/mention arrays extracted into child relations).

Run with::

    python examples/twitter_analytics.py
"""

import time

from repro import ExtractionConfig, StorageFormat
from repro.workloads.twitter import (
    TWITTER_QUERIES,
    TWITTER_QUERIES_STAR,
    make_database,
)

FORMATS = [StorageFormat.JSON, StorageFormat.JSONB, StorageFormat.SINEW,
           StorageFormat.TILES, StorageFormat.TILES_STAR]


def main() -> None:
    config = ExtractionConfig(tile_size=256, partition_size=8)
    print("loading a 4000-tweet stream (with deletes) into each format...")
    dbs = {fmt: make_database(4000, fmt, config) for fmt in FORMATS}

    star_db = dbs[StorageFormat.TILES_STAR]
    base = star_db.table("tweets")
    print(f"Tiles-* child relations: "
          f"{ {name: child.row_count for name, child in base.children.items()} }")

    print()
    header = f"{'query':<28}" + "".join(f"{fmt.value:>10}" for fmt in FORMATS)
    print(header)
    print("-" * len(header))
    names = {1: "influential users", 2: "deletions per user",
             3: "mentions @ladygaga", 4: "hashtag #COVID",
             5: "retweets per language"}
    for query in sorted(TWITTER_QUERIES):
        timings = []
        for fmt in FORMATS:
            text = (TWITTER_QUERIES_STAR[query]
                    if fmt == StorageFormat.TILES_STAR
                    else TWITTER_QUERIES[query])
            started = time.perf_counter()
            dbs[fmt].sql(text)
            timings.append(time.perf_counter() - started)
        print(f"Q{query} {names[query]:<25}"
              + "".join(f"{seconds * 1000:>9.1f}m" for seconds in timings))

    print()
    print("=== Q4 result (hashtag #COVID), Tiles vs Tiles-* ===")
    plain = dbs[StorageFormat.TILES].sql(TWITTER_QUERIES[4])
    star = star_db.sql(TWITTER_QUERIES_STAR[4])
    print(f"plain tiles (array traversal per tuple): {plain.rows}")
    print(f"tiles-*    (child-relation join):        {star.rows}")
    assert plain.rows == star.rows

    print()
    print("=== top languages (Tiles) ===")
    print(dbs[StorageFormat.TILES].sql(TWITTER_QUERIES[5]).format_table(8))


if __name__ == "__main__":
    main()
