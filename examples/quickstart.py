"""Quickstart: load JSON documents, query them with SQL, inspect tiles.

Run with::

    python examples/quickstart.py
"""

from repro import Database, ExtractionConfig, StorageFormat


def main() -> None:
    # The Twitter example of the paper's Figure 2: tweet documents that
    # gained fields over time (replies appeared in 2007, geo in 2010).
    tweets = [
        {"id": 1, "create": "2006-03-01", "text": "a", "user": {"id": 1}},
        {"id": 2, "create": "2007-03-01", "text": "b", "user": {"id": 3}},
        {"id": 3, "create": "2007-06-01", "text": "c", "user": {"id": 5}},
        {"id": 4, "create": "2008-01-01", "text": "a", "user": {"id": 1},
         "replies": 9},
        {"id": 5, "create": "2010-01-01", "text": "b", "user": {"id": 7},
         "replies": 3, "geo": {"lat": 1.9}},
        {"id": 6, "create": "2011-01-01", "text": "c", "user": {"id": 1},
         "replies": 2, "geo": None},
        {"id": 7, "create": "2012-01-01", "text": "d", "user": {"id": 3},
         "replies": 0, "geo": {"lat": 2.7}},
        {"id": 8, "create": "2013-01-01", "text": "x", "user": {"id": 3},
         "replies": 1, "geo": {"lat": 3.5}},
    ]

    # Tiles of 4 tuples, extraction threshold 60% - exactly the paper's
    # running example.  JSON tiles materializes the frequent key paths
    # of each tile as typed columns; outliers stay reachable through
    # the binary JSON fallback.
    config = ExtractionConfig(tile_size=4, partition_size=2, threshold=0.6)
    db = Database(StorageFormat.TILES, config)
    relation = db.load_table("tweets", tweets)

    print("=== tiles and their extracted columns ===")
    for tile in relation.tiles:
        print(tile.header.describe())
        print()

    # PostgreSQL-style JSON access operators; casts pick typed columns
    # directly (cast rewriting).
    print("=== tweets per user ===")
    result = db.sql("""
        select t.data->'user'->>'id'::int as user_id, count(*) as tweets
        from tweets t
        group by t.data->'user'->>'id'::int
        order by tweets desc, user_id
    """)
    print(result.format_table())

    print()
    print("=== tweets with geo info (date-typed access) ===")
    result = db.sql("""
        select t.data->>'id'::int as id,
               t.data->'geo'->>'lat'::float as lat
        from tweets t
        where t.data->'geo'->>'lat' is not null
          and t.data->>'create'::date >= date '2010-01-01'
        order by id
    """)
    print(result.format_table())
    print(f"(tiles skipped by the scan: {result.counters.tiles_skipped})")

    print()
    print("=== the optimizer sees per-key statistics ===")
    stats = relation.statistics
    from repro.core.jsonpath import KeyPath
    for path in ("id", "replies", "geo.lat"):
        key_path = KeyPath.parse(path)
        print(f"  {path}: in {stats.key_count(key_path)} of "
              f"{stats.row_count} tuples, "
              f"~{stats.distinct(key_path):.0f} distinct values")


if __name__ == "__main__":
    main()
