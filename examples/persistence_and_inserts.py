"""Durability and trickle inserts: save a database, reopen it, keep
inserting.

Shows the on-disk ``.jtile`` format (tiles, headers, bloom filters and
statistics survive a round trip) and the Section 3.2 insert path: new
documents buffer until a full tile can be sealed and extracted.

Run with::

    python examples/persistence_and_inserts.py
"""

import random
import tempfile
from pathlib import Path

from repro import Database, ExtractionConfig, StorageFormat
from repro.core.jsonpath import KeyPath
from repro.storage.persist import open_database, save_database


def make_events(n, start=0, seed=13):
    rng = random.Random(seed + start)
    return [
        {"seq": start + i,
         "sensor": f"s{rng.randint(1, 8)}",
         "reading": round(rng.gauss(20.0, 4.0), 3),
         "at": f"2026-07-{rng.randint(1, 6):02d}"}
        for i in range(n)
    ]


def main() -> None:
    config = ExtractionConfig(tile_size=128, partition_size=4)
    db = Database(StorageFormat.TILES, config)
    relation = db.load_table("events", make_events(1000))
    print(f"loaded {relation.row_count} events into "
          f"{len(relation.tiles)} tiles")

    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "store"
        written = save_database(db, store)
        for name, size in written.items():
            print(f"saved {name!r}: {size / 1024:.1f} KiB on disk")

        reopened = open_database(store)
        events = reopened.table("events")
        sensors = events.statistics.distinct(KeyPath.parse("sensor"))
        print(f"\nreopened: {events.row_count} rows, "
              f"{len(events.tiles)} tiles, statistics intact "
              f"(~{sensors:.0f} sensors)")

        # trickle inserts: tiles seal automatically at tile_size
        print("\ninserting 300 fresh events one by one...")
        for event in make_events(300, start=1000):
            events.insert(event)
        print(f"tiles now: {len(events.tiles)} "
              f"({events.pending_inserts} rows still buffered)")
        events.flush_inserts()

        result = reopened.sql("""
            select e.data->>'sensor' as sensor,
                   count(*) as readings,
                   avg(e.data->>'reading'::float) as avg_reading
            from events e
            where e.data->>'at'::date >= date '2026-07-03'
            group by e.data->>'sensor'
            order by readings desc
            limit 5
        """)
        print("\n=== top sensors since July 3 (fresh inserts included) ===")
        print(result.format_table())
        print(f"tiles skipped by zone maps / bloom filters: "
              f"{result.counters.tiles_skipped}")


if __name__ == "__main__":
    main()
