"""A tour of the JSONB binary format (Section 5).

Shows the byte-level behaviour: small-integer headers, lossless float
narrowing, numeric-string detection, O(log n) object lookups, forward
iteration, and the comparison against the BSON/CBOR baselines.

Run with::

    python examples/binary_format_tour.py
"""

import json
import time

from repro import jsonb
from repro.core.jsonpath import KeyPath
from repro.jsonb import JsonbValue, bson, cbor


def main() -> None:
    print("=== size-optimal scalars ===")
    for value in [0, 7, 8, 300, 1.5, 1 / 3, "hi", "19.99", None, True]:
        encoded = jsonb.encode(value)
        print(f"  {value!r:>22} -> {len(encoded):2d} bytes  "
              f"({encoded.hex()[:24]}{'...' if len(encoded) > 12 else ''})")

    print()
    print("=== numeric strings keep their exact text (Section 5.2) ===")
    price = jsonb.encode({"price": "19.990"})
    root = JsonbValue(price)
    print(f"  text back:  {root.get('price').as_text()!r}")
    print(f"  as float:   {root.get('price').as_float()!r} "
          f"(no string cast at access time)")

    print()
    print("=== object lookups are binary search over sorted keys ===")
    big = {f"key{index:05d}": index for index in range(50_000)}
    encoded = jsonb.encode(big)
    bson_encoded = bson.encode(big)
    cbor_encoded = cbor.encode(big)

    def bench(fn, repeats=200):
        started = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - started) / repeats * 1e6

    target = KeyPath.parse("key49999")  # worst case for linear scans
    print(f"  JSONB (binary search): "
          f"{bench(lambda: JsonbValue(encoded).get_path(target)):9.1f} us")
    print(f"  BSON  (linear scan):   "
          f"{bench(lambda: bson.lookup(bson_encoded, target), 5):9.1f} us")
    print(f"  CBOR  (full parse):    "
          f"{bench(lambda: cbor.lookup(cbor_encoded, target), 5):9.1f} us")

    print()
    print("=== forward iteration without address jumps ===")
    doc = jsonb.encode({"user": {"id": 7, "tags": ["a", "b"]}, "n": 1})
    for key, value in JsonbValue(doc).iter_items():
        print(f"  {key}: {value.as_python()!r}")

    print()
    print("=== storage sizes vs JSON text ===")
    sample = {"statuses": [{"id": i, "text": "hello world " * 3,
                            "user": {"id": i % 10, "verified": False}}
                           for i in range(500)]}
    text_size = len(json.dumps(sample, separators=(",", ":")).encode())
    for name, encoder in (("JSONB", jsonb.encode), ("BSON", bson.encode),
                          ("CBOR", cbor.encode)):
        size = len(encoder(sample))
        print(f"  {name}: {size:8d} bytes ({size / text_size:5.2f}x of text)")

    print()
    print("=== round trip ===")
    value = {"b": 1, "a": [1.5, "x", None, {"deep": True}], "p": "0.10"}
    decoded = jsonb.decode(jsonb.encode(value))
    print(f"  in : {value}")
    print(f"  out: {decoded}  (keys sorted, values exact)")


if __name__ == "__main__":
    main()
