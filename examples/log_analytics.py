"""Combined-log analytics: heterogeneous documents in one relation.

The paper's motivating use case: log events from multiple services are
collected into one table without a global schema.  Tuple reordering
clusters each event type into its own tiles, so per-type queries scan
columnar extracts and skip foreign tiles entirely.

Run with::

    python examples/log_analytics.py
"""

import random

from repro import Database, ExtractionConfig, QueryOptions, StorageFormat


def generate_events(n: int = 4000, seed: int = 1):
    """Three services with disjoint event shapes, interleaved."""
    rng = random.Random(seed)
    events = []
    for index in range(n):
        kind = rng.choice(["http", "db", "auth"])
        timestamp = f"2026-07-{rng.randint(1, 6):02d} " \
                    f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}:00"
        if kind == "http":
            events.append({
                "ts": timestamp, "service": "gateway",
                "method": rng.choice(["GET", "POST", "PUT"]),
                "path": f"/api/v1/{rng.choice(['users', 'orders', 'items'])}",
                "status": rng.choice([200, 200, 200, 404, 500]),
                "latency_ms": round(rng.expovariate(1 / 40), 2),
            })
        elif kind == "db":
            events.append({
                "ts": timestamp, "service": "postgres",
                "query_id": index,
                "rows": rng.randint(0, 10000),
                "duration_ms": round(rng.expovariate(1 / 15), 2),
                "plan": {"type": rng.choice(["seqscan", "indexscan"]),
                         "cost": round(rng.uniform(1, 9000), 1)},
            })
        else:
            events.append({
                "ts": timestamp, "service": "auth",
                "user": f"user{rng.randint(1, 200)}",
                "action": rng.choice(["login", "logout", "token_refresh"]),
                "success": rng.random() < 0.93,
            })
    return events


def main() -> None:
    config = ExtractionConfig(tile_size=256, partition_size=8)
    db = Database(StorageFormat.TILES, config)
    relation = db.load_table("logs", generate_events())
    print(f"loaded {relation.row_count} log events into "
          f"{len(relation.tiles)} tiles")
    print(f"load breakdown: "
          f"{ {k: round(v, 3) for k, v in relation.load_breakdown.items()} }")

    print()
    print("=== slowest HTTP endpoints (only http tiles are scanned) ===")
    result = db.sql("""
        select l.data->>'path' as path,
               avg(l.data->>'latency_ms'::float) as avg_latency,
               count(*) as hits
        from logs l
        where l.data->>'status'::int >= 500
        group by l.data->>'path'
        order by avg_latency desc
    """)
    print(result.format_table())
    print(f"tiles: {result.counters.tiles_total} total, "
          f"{result.counters.tiles_skipped} skipped via headers")

    print()
    print("=== failed logins per user ===")
    result = db.sql("""
        select l.data->>'user' as user, count(*) as failures
        from logs l
        where l.data->>'action' = 'login'
          and l.data->>'success'::bool = false
        group by l.data->>'user'
        order by failures desc, user
        limit 5
    """)
    print(result.format_table())

    print()
    print("=== seqscan-heavy DB queries joined with HTTP errors by hour ===")
    result = db.sql("""
        select d.data->'plan'->>'type' as plan_type,
               count(*) as queries,
               avg(d.data->>'duration_ms'::float) as avg_duration
        from logs d
        where d.data->>'query_id' is not null
        group by d.data->'plan'->>'type'
        order by queries desc
    """)
    print(result.format_table())

    print()
    print("=== skipping ablation on the same query ===")
    query = ("select count(*) as n from logs l "
             "where l.data->>'action' = 'login'")
    with_skip = db.sql(query)
    without = db.sql(query, QueryOptions(enable_skipping=False))
    print(f"with skipping:    {with_skip.counters.tiles_skipped} tiles "
          f"skipped, scanned {with_skip.counters.rows_scanned} rows")
    print(f"without skipping: scanned {without.counters.rows_scanned} rows")
    assert with_skip.rows == without.rows


if __name__ == "__main__":
    main()
