"""Tests for ``repro.maintenance`` — health tracking, the action
planner, the daemon, and the action journal."""

import pytest

from repro import Database, ExtractionConfig, MaintenanceConfig, StorageFormat
from repro.maintenance import (
    ActionKind,
    HealthTracker,
    MaintenanceAction,
    MaintenanceDaemon,
    MaintenanceJournal,
    MaintenancePlanner,
)
from repro.maintenance.policy import tile_by_number
from repro.server.wal import WriteAheadLog
from repro.storage import load_documents
from repro.storage.relation import Relation

# the Figure 3 news-item types: four disjoint-ish structures, so
# round-robin ingest produces maximally heterogeneous tiles
DOC_TYPES = {
    "story": lambda i: {"id": i, "type": "story", "score": i % 7,
                        "desc": 2, "title": "t", "url": "u"},
    "poll": lambda i: {"id": i, "type": "poll", "score": i % 5,
                       "desc": 2, "title": "t"},
    "pollop": lambda i: {"id": i, "type": "pollop", "score": i % 3,
                         "poll": 2, "title": "t"},
    "comment": lambda i: {"id": i, "type": "comment", "parent": i - 1,
                          "text": "c"},
}
KINDS = ("story", "comment", "pollop", "poll")


def shuffled_documents(n):
    """Round-robin of the four types: zero spatial locality."""
    return [DOC_TYPES[KINDS[i % len(KINDS)]](i) for i in range(n)]


CONFIG = ExtractionConfig(tile_size=32, partition_size=4, threshold=0.6,
                          enable_reordering=False)


def shuffled_relation(n=256, config=CONFIG):
    return load_documents("t", shuffled_documents(n), StorageFormat.TILES,
                          config)


class TestMaintenanceConfig:
    def test_defaults(self):
        config = MaintenanceConfig.from_env(env={})
        assert config.enabled is True
        assert config.interval_s == 1.0
        assert config.min_extraction is None
        assert config.max_actions_per_cycle == 4

    def test_env_parsing(self):
        config = MaintenanceConfig.from_env(env={
            "REPRO_MAINT_ENABLED": "off",
            "REPRO_MAINT_INTERVAL": "0.25",
            "REPRO_MAINT_MIN_EXTRACTION": "0.5",
            "REPRO_MAINT_MAX_ACTIONS": "9",
            "REPRO_MAINT_COOLDOWN": "3",
            "REPRO_MAINT_MAX_ATTEMPTS": "5",
            "REPRO_MAINT_RECOMPUTE_FRACTION": "0.4",
            "REPRO_MAINT_COMPACT_IDLE": "7",
            "REPRO_MAINT_BACKPRESSURE": "11",
        })
        assert config.enabled is False
        assert config.interval_s == 0.25
        assert config.min_extraction == 0.5
        assert config.max_actions_per_cycle == 9
        assert config.reorg_cooldown_cycles == 3
        assert config.max_reorg_attempts == 5
        assert config.recompute_update_fraction == 0.4
        assert config.compact_idle_cycles == 7
        assert config.backpressure_active_queries == 11

    def test_invalid_values_fall_back_to_defaults(self):
        config = MaintenanceConfig.from_env(env={
            "REPRO_MAINT_INTERVAL": "soon",
            "REPRO_MAINT_MAX_ACTIONS": "",
        })
        assert config.interval_s == 1.0
        assert config.max_actions_per_cycle == 4

    def test_overrides_win_over_env(self):
        config = MaintenanceConfig.from_env(
            env={"REPRO_MAINT_INTERVAL": "5.0"},
            interval_s=0.1, max_actions_per_cycle=None)
        assert config.interval_s == 0.1
        assert config.max_actions_per_cycle == 4  # None override ignored


class TestHealthTracker:
    def test_seal_events_accumulate_rows(self):
        relation = Relation("t", StorageFormat.TILES, CONFIG)
        tracker = HealthTracker(relation)
        for doc in shuffled_documents(64):
            relation.insert(doc)
        relation.flush_inserts()
        healths = {h.partition: h for h in tracker.snapshot()}
        assert healths[0].rows_since_reorg == 64
        assert healths[0].tiles == 2
        assert healths[0].rows == 64

    def test_snapshot_measures_live_extraction(self):
        relation = shuffled_relation(128)
        tracker = HealthTracker(relation)
        before = tracker.snapshot()[0].extraction
        assert before < 0.6  # heterogeneous tiles extract poorly
        assert relation.reorganize_partition(0)
        after = tracker.snapshot()[0].extraction
        assert after > before  # no caching: reorg reflected immediately

    def test_update_events_feed_tile_counters(self):
        relation = shuffled_relation(64)
        tracker = HealthTracker(relation)
        for row in (0, 1, 2):
            relation.update(row, DOC_TYPES["story"](900 + row))
        updates = tracker.tile_updates()
        assert updates.get(0) == 3
        assert tracker.snapshot()[0].updates == 3

    def test_recompute_resets_partition_eligibility(self):
        """Satellite fix: after a tile recomputation the partition's
        attempt counter and cooldown reset, so the planner may reorder
        it again instead of leaving it pinned as 'attempted'."""
        relation = shuffled_relation(64)
        tracker = HealthTracker(relation)
        tracker.note_reorg_attempt(0, cooldown=8)
        snap = tracker.snapshot()[0]
        assert snap.attempts == 1 and snap.cooldown == 8
        relation.recompute_tile(relation.tiles[0])
        snap = tracker.snapshot()[0]
        assert snap.attempts == 0 and snap.cooldown == 0
        assert 0 not in tracker.tile_updates()

    def test_reorganize_clears_update_history(self):
        relation = shuffled_relation(128)
        tracker = HealthTracker(relation)
        relation.update(0, DOC_TYPES["story"](901))
        assert tracker.tile_updates()
        assert relation.reorganize_partition(0)
        assert tracker.tile_updates() == {}
        assert tracker.snapshot()[0].rows_since_reorg == 0

    def test_tick_decays_cooldown(self):
        relation = shuffled_relation(64)
        tracker = HealthTracker(relation)
        tracker.note_reorg_attempt(0, cooldown=2)
        tracker.tick()
        assert tracker.snapshot()[0].cooldown == 1
        tracker.tick()
        tracker.tick()
        assert tracker.snapshot()[0].cooldown == 0


class TestPlanner:
    def _tracked(self, relation):
        return {"t": (relation, HealthTracker(relation))}

    def test_plans_reorder_for_degraded_partition(self):
        relation = shuffled_relation(256)
        config = MaintenanceConfig()
        planner = MaintenancePlanner(config)
        actions = planner.plan(self._tracked(relation))
        assert actions
        assert all(a.kind is ActionKind.REORDER_PARTITION for a in actions)
        assert all(a.score > 0 for a in actions)

    def test_allow_reordering_off_blocks_reorders(self):
        # cluster shards run with allow_reordering off (the coordinator
        # routing depends on physical row order, DESIGN.md §7): the
        # planner must never propose a reorder, however degraded the
        # partition looks
        relation = shuffled_relation(256)
        planner = MaintenancePlanner(
            MaintenanceConfig(allow_reordering=False))
        actions = planner.plan(self._tracked(relation))
        assert not any(a.kind is ActionKind.REORDER_PARTITION
                       for a in actions)

    def test_allow_reordering_env_override(self):
        config = MaintenanceConfig.from_env(
            env={"REPRO_MAINT_REORDER": "off"})
        assert config.allow_reordering is False

    def test_healthy_partition_not_reordered(self):
        homogeneous = [DOC_TYPES["story"](i) for i in range(128)]
        relation = load_documents("t", homogeneous, StorageFormat.TILES,
                                  CONFIG)
        planner = MaintenancePlanner(MaintenanceConfig())
        assert planner.plan(self._tracked(relation)) == []

    def test_cooldown_and_attempts_gate_reorders(self):
        relation = shuffled_relation(256)
        tracker = HealthTracker(relation)
        config = MaintenanceConfig(max_reorg_attempts=2)
        planner = MaintenancePlanner(config)
        tables = {"t": (relation, tracker)}
        assert planner.plan(tables)  # degraded: would reorder
        tracker.note_reorg_attempt(0, cooldown=4)
        tracker.note_reorg_attempt(1, cooldown=4)
        assert planner.plan(tables) == []  # cooling down
        for _ in range(4):
            tracker.tick()
        assert planner.plan(tables)  # cooled: one attempt left
        tracker.note_reorg_attempt(0, cooldown=0)
        tracker.note_reorg_attempt(1, cooldown=0)
        assert planner.plan(tables) == []  # attempts exhausted

    def test_min_partition_tiles_gates_reorders(self):
        relation = shuffled_relation(32)  # a single tile
        planner = MaintenancePlanner(MaintenanceConfig())
        assert planner.plan(self._tracked(relation)) == []

    def test_text_format_tables_are_skipped(self):
        import json

        lines = [json.dumps(DOC_TYPES["story"](i)) for i in range(64)]
        relation = load_documents("t", lines, StorageFormat.JSON, CONFIG)
        planner = MaintenancePlanner(MaintenanceConfig())
        assert planner.plan(self._tracked(relation)) == []

    def test_compact_planned_after_idle_cycles(self):
        relation = Relation("t", StorageFormat.TILES, CONFIG)
        relation.auto_seal = False
        for doc in shuffled_documents(5):
            relation.insert(doc)
        planner = MaintenancePlanner(MaintenanceConfig(compact_idle_cycles=2))
        tables = self._tracked(relation)
        assert planner.plan(tables) == []          # just observed
        assert planner.plan(tables) == []          # idle 1
        actions = planner.plan(tables)             # idle 2: compact
        assert [a.kind for a in actions] == [ActionKind.COMPACT_BUFFER]
        # a growing buffer is not a straggler
        relation.insert(DOC_TYPES["story"](999))
        assert planner.plan(tables) == []

    def test_recompute_planned_for_update_heavy_tile(self):
        homogeneous = [DOC_TYPES["story"](i) for i in range(128)]
        relation = load_documents("t", homogeneous, StorageFormat.TILES,
                                  CONFIG)
        tracker = HealthTracker(relation)
        for row in range(10):  # 10/32 > 0.25 of tile 0
            relation.update(row, dict(DOC_TYPES["story"](row), extra=row))
        planner = MaintenancePlanner(MaintenanceConfig())
        actions = planner.plan({"t": (relation, tracker)})
        assert any(a.kind is ActionKind.RECOMPUTE_TILE and a.target == 0
                   for a in actions)

    def test_reordering_partition_suppresses_tile_recompute(self):
        relation = shuffled_relation(256)
        tracker = HealthTracker(relation)
        for row in range(20):
            relation.update(row, dict(DOC_TYPES["story"](row), extra=row))
        planner = MaintenancePlanner(MaintenanceConfig(
            max_actions_per_cycle=16))
        actions = planner.plan({"t": (relation, tracker)})
        reordering = {a.target for a in actions
                      if a.kind is ActionKind.REORDER_PARTITION}
        assert 0 in reordering
        recomputed = [a for a in actions
                      if a.kind is ActionKind.RECOMPUTE_TILE]
        partition_size = relation.config.partition_size
        assert all(a.target // partition_size not in reordering
                   for a in recomputed)

    def test_rate_limit_caps_actions(self):
        relation = shuffled_relation(512)
        planner = MaintenancePlanner(MaintenanceConfig(
            max_actions_per_cycle=2))
        actions = planner.plan(self._tracked(relation))
        assert len(actions) == 2
        assert actions[0].score >= actions[1].score


class TestDaemon:
    def test_cycles_restore_extraction_to_eager_baseline(self):
        """The acceptance scenario, embedded: shuffled ingest with
        reordering disabled degrades extraction; background cycles
        restore it to at least the eager (reorder-at-load) baseline,
        and query results stay bit-identical throughout."""
        documents = shuffled_documents(512)
        eager = Database(config=ExtractionConfig(
            tile_size=32, partition_size=4, threshold=0.6))
        eager.load_table("t", documents)
        baseline = eager.table("t").extracted_fraction()

        db = Database(config=CONFIG)
        db.load_table("t", documents)
        degraded = db.table("t").extracted_fraction()
        assert degraded < baseline

        query = ("select x.data->>'type' as k, count(*) as n, "
                 "sum(x.data->>'score'::int) as s "
                 "from t x group by x.data->>'type' order by k")
        expected = eager.sql(query).rows
        assert db.sql(query).rows == expected

        daemon = MaintenanceDaemon(
            lambda: dict(db.tables),
            MaintenanceConfig(max_actions_per_cycle=8,
                              reorg_cooldown_cycles=0,
                              max_reorg_attempts=4))
        for _ in range(12):
            daemon.run_cycle()
            assert db.sql(query).rows == expected  # never a wrong answer
        restored = db.table("t").extracted_fraction()
        assert restored >= baseline
        assert daemon.counters["reorders"] > 0
        assert db.sql(query).rows == expected

    def test_daemon_executes_recompute_and_compact(self):
        db = Database(config=CONFIG)
        relation = db.load_table("t", [DOC_TYPES["story"](i)
                                       for i in range(128)])
        daemon = MaintenanceDaemon(lambda: dict(db.tables),
                                   MaintenanceConfig(compact_idle_cycles=1,
                                                     max_actions_per_cycle=8))
        daemon.run_cycle()  # first cycle subscribes the health tracker
        for row in range(12):
            relation.update(row, dict(DOC_TYPES["story"](row), extra=row))
        relation.auto_seal = False
        relation.insert(DOC_TYPES["story"](500))
        for _ in range(4):
            daemon.run_cycle()
        assert daemon.counters["recomputes"] >= 1
        assert daemon.counters["compactions"] >= 1
        assert relation.pending_inserts == 0
        # the rebuilt tile absorbed the update history: nothing left to
        # recompute, and the majority keys still extract
        assert daemon._tracker("t", relation).tile_updates() == {}
        tile = tile_by_number(relation, 0)
        assert any(str(path) == "id" for path in tile.columns)

    def test_backpressure_skips_cycle(self):
        db = Database(config=CONFIG)
        db.load_table("t", shuffled_documents(256))
        busy = [True]
        daemon = MaintenanceDaemon(lambda: dict(db.tables),
                                   MaintenanceConfig(),
                                   backpressure=lambda: busy[0])
        assert daemon.run_cycle() == []
        assert daemon.counters["skipped_backpressure"] == 1
        assert daemon.counters["cycles"] == 0
        busy[0] = False
        assert daemon.run_cycle()
        assert daemon.counters["cycles"] == 1

    def test_pause_resume_and_force(self):
        db = Database(config=CONFIG)
        db.load_table("t", shuffled_documents(256))
        daemon = MaintenanceDaemon(lambda: dict(db.tables),
                                   MaintenanceConfig())
        daemon.pause()
        assert daemon.run_cycle() == []
        assert daemon.paused
        assert daemon.run_cycle(force=True)  # force bypasses pause
        daemon.resume()
        assert not daemon.paused

    def test_disabled_daemon_noops_unless_forced(self):
        db = Database(config=CONFIG)
        db.load_table("t", shuffled_documents(256))
        daemon = MaintenanceDaemon(lambda: dict(db.tables),
                                   MaintenanceConfig(enabled=False))
        assert daemon.run_cycle() == []
        assert daemon.run_cycle(force=True)

    def test_status_reports_tables_and_counters(self):
        db = Database(config=CONFIG)
        db.load_table("t", shuffled_documents(128))
        daemon = MaintenanceDaemon(lambda: dict(db.tables),
                                   MaintenanceConfig())
        daemon.run_cycle()
        status = daemon.status()
        assert status["enabled"] and not status["paused"]
        assert status["counters"]["cycles"] == 1
        table = status["tables"]["t"]
        assert 0.0 <= table["extracted_fraction"] <= 1.0
        assert table["partitions"]
        assert status["last_actions"]

    def test_database_start_stop_maintenance(self):
        db = Database(config=CONFIG)
        db.load_table("t", shuffled_documents(128))
        daemon = db.start_maintenance(MaintenanceConfig(interval_s=0.01))
        assert db.maintenance is daemon
        assert db.start_maintenance() is daemon  # idempotent
        deadline = 200
        while daemon.counters["cycles"] == 0 and deadline:
            deadline -= 1
            import time
            time.sleep(0.01)
        assert daemon.counters["cycles"] > 0
        db.stop_maintenance()
        assert db.maintenance is None


class TestJournal:
    def _journal(self, tmp_path):
        return MaintenanceJournal(
            WriteAheadLog(tmp_path / "maintenance.journal", sync=False))

    def test_commit_clears_pending(self, tmp_path):
        journal = self._journal(tmp_path)
        action = MaintenanceAction(ActionKind.REORDER_PARTITION, "t", 0, 1.0)
        journal.log("begin", action)
        assert len(journal.pending()) == 1
        journal.log("commit", action)
        assert journal.pending() == []

    def test_begin_without_commit_survives_restart(self, tmp_path):
        journal = self._journal(tmp_path)
        action = MaintenanceAction(ActionKind.REORDER_PARTITION, "t", 1, 2.0)
        journal.log("begin", action)
        journal.close()
        reopened = self._journal(tmp_path)
        pending = reopened.pending()
        assert len(pending) == 1
        recovered = MaintenanceAction.from_dict(pending[0])
        assert recovered.kind is ActionKind.REORDER_PARTITION
        assert recovered.table == "t" and recovered.target == 1

    def test_daemon_requeues_recovered_actions(self, tmp_path):
        journal = self._journal(tmp_path)
        action = MaintenanceAction(ActionKind.REORDER_PARTITION, "t", 0, 1.0)
        journal.log("begin", action)
        journal.close()

        db = Database(config=CONFIG)
        db.load_table("t", shuffled_documents(256))
        daemon = MaintenanceDaemon(
            lambda: dict(db.tables),
            MaintenanceConfig(enabled=True, max_actions_per_cycle=0),
            journal=self._journal(tmp_path))
        assert daemon.counters["recovered"] == 1
        # max_actions_per_cycle=0 means the plan contributes nothing:
        # the executed action can only be the recovered one
        executed = daemon.run_cycle()
        assert [r["kind"] for r in executed] == ["reorder_partition"]
        assert daemon.journal.pending() == []  # committed this time

    def test_recovered_action_for_dropped_table_is_skipped(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.log("begin", MaintenanceAction(
            ActionKind.COMPACT_BUFFER, "ghost", -1, 1.0))
        journal.close()
        daemon = MaintenanceDaemon({}, MaintenanceConfig(),
                                   journal=self._journal(tmp_path))
        assert daemon.counters["recovered"] == 1
        assert daemon.run_cycle() == []  # unknown table: dropped

    def test_compact_truncates_fully_committed_journal(self, tmp_path):
        journal = self._journal(tmp_path)
        action = MaintenanceAction(ActionKind.COMPACT_BUFFER, "t", -1, 1.0)
        for _ in range(300):  # 600 records > JOURNAL_COMPACT_RECORDS
            journal.log("begin", action)
            journal.log("commit", action)
        assert journal.wal.record_count == 600
        journal.compact()
        assert journal.wal.record_count == 0
        assert journal.pending() == []
