"""Tests for typed key paths (repro.core.jsonpath)."""

import pytest

from repro.core.jsonpath import KeyPath, collect_key_paths
from repro.core.types import JsonType


class TestKeyPathBasics:
    def test_roundtrip_simple(self):
        path = KeyPath(("user", "id"))
        assert str(path) == "user.id"
        assert KeyPath.parse("user.id") == path

    def test_roundtrip_array_slots(self):
        path = KeyPath(("entities", "hashtags", 0, "text"))
        assert str(path) == "entities.hashtags[0].text"
        assert KeyPath.parse(str(path)) == path

    def test_roundtrip_escaped_keys(self):
        path = KeyPath(("a.b", "c[d"))
        assert KeyPath.parse(str(path)) == path

    def test_root(self):
        assert KeyPath.parse("") == KeyPath(())
        assert KeyPath(()).depth == 0

    def test_child_parent_leaf(self):
        root = KeyPath(())
        path = root.child("geo").child("lat")
        assert path.depth == 2
        assert path.leaf == "lat"
        assert path.parent() == KeyPath(("geo",))
        with pytest.raises(ValueError):
            root.parent()

    def test_prefix_relations(self):
        outer = KeyPath(("user",))
        inner = KeyPath(("user", "id"))
        assert inner.startswith(outer)
        assert not outer.startswith(inner)
        assert inner.relative_to(outer) == KeyPath(("id",))

    def test_hashable_and_sortable(self):
        paths = {KeyPath(("a",)), KeyPath(("a",)), KeyPath(("b",))}
        assert len(paths) == 2
        assert sorted([KeyPath(("b",)), KeyPath(("a",))])[0] == KeyPath(("a",))

    def test_rejects_bad_steps(self):
        with pytest.raises(TypeError):
            KeyPath((1.5,))
        with pytest.raises(TypeError):
            KeyPath((True,))


class TestKeyPathLookup:
    DOC = {"id": 5, "user": {"id": 7}, "geo": None,
           "tags": [{"t": "a"}, {"t": "b"}]}

    def test_lookup_present(self):
        assert KeyPath(("id",)).lookup(self.DOC) == 5
        assert KeyPath(("user", "id")).lookup(self.DOC) == 7
        assert KeyPath(("tags", 1, "t")).lookup(self.DOC) == "b"

    def test_lookup_absent_returns_none(self):
        assert KeyPath(("missing",)).lookup(self.DOC) is None
        assert KeyPath(("user", "name")).lookup(self.DOC) is None
        assert KeyPath(("tags", 9, "t")).lookup(self.DOC) is None
        assert KeyPath(("geo", "lat")).lookup(self.DOC) is None


class TestCollectKeyPaths:
    def test_flat_document(self):
        paths = collect_key_paths({"id": 1, "text": "a"})
        assert (KeyPath(("id",)), JsonType.INT) in paths
        assert (KeyPath(("text",)), JsonType.STRING) in paths

    def test_nested_paths_encode_nesting(self):
        paths = collect_key_paths({"user": {"id": 1}, "geo": {"lat": 1.9}})
        assert (KeyPath(("user", "id")), JsonType.INT) in paths
        assert (KeyPath(("geo", "lat")), JsonType.FLOAT) in paths

    def test_null_value_has_null_type(self):
        paths = collect_key_paths({"geo": None})
        assert (KeyPath(("geo",)), JsonType.NULL) in paths

    def test_array_leading_elements_only(self):
        doc = {"a": list(range(20))}
        paths = collect_key_paths(doc, max_array_elements=4)
        slots = [p for p, _ in paths]
        assert KeyPath(("a", 0)) in slots
        assert KeyPath(("a", 3)) in slots
        assert KeyPath(("a", 4)) not in slots

    def test_empty_containers_are_visible(self):
        paths = collect_key_paths({"o": {}, "l": []})
        assert (KeyPath(("o",)), JsonType.OBJECT) in paths
        assert (KeyPath(("l",)), JsonType.ARRAY) in paths

    def test_paper_tile2_example(self):
        """Tuple 5 of Figure 2 has key paths {i, c, t, u_i, r, g_l}."""
        doc = {"id": 5, "create": "1/10", "text": "b", "user": {"id": 7},
               "replies": 3, "geo": {"lat": 1.9}}
        slots = {str(p) for p, _ in collect_key_paths(doc)}
        assert slots == {"id", "create", "text", "user.id", "replies", "geo.lat"}
