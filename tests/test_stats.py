"""Tests for the statistics substrate (HLL, bloom, frequency, table stats)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jsonpath import KeyPath
from repro.stats import (
    BloomFilter,
    FrequencyCounters,
    HyperLogLog,
    TableStatistics,
    TileStatistics,
    estimate_distinct,
    hash64,
)


class TestHash64:
    def test_deterministic(self):
        assert hash64("abc") == hash64("abc")
        assert hash64(42) == hash64(42)

    def test_distinct_types_differ(self):
        assert hash64("1") != hash64(1)
        assert hash64(None) != hash64(0)
        assert hash64(True) != hash64(1.5)

    def test_int_float_equality(self):
        # SQL: 1 = 1.0, so they must hash identically
        assert hash64(1) == hash64(1.0)

    def test_64bit_range(self):
        for value in ("x", 0, None, 3.7, b"bytes"):
            assert 0 <= hash64(value) < 2**64


class TestHyperLogLog:
    def test_empty_estimate_is_zero(self):
        assert HyperLogLog().estimate() == 0.0

    def test_small_cardinalities_exact_ish(self):
        sketch = HyperLogLog()
        sketch.add_many(range(10))
        assert 8 <= sketch.estimate() <= 12

    @pytest.mark.parametrize("n", [100, 1000, 20000])
    def test_accuracy_within_10_percent(self, n):
        sketch = HyperLogLog(precision=10)
        sketch.add_many(f"value-{i}" for i in range(n))
        assert abs(sketch.estimate() - n) / n < 0.10

    def test_duplicates_do_not_inflate(self):
        sketch = HyperLogLog()
        for _ in range(50):
            sketch.add_many(range(20))
        assert 15 <= sketch.estimate() <= 25

    def test_merge_estimates_union(self):
        left, right = HyperLogLog(), HyperLogLog()
        left.add_many(range(0, 1000))
        right.add_many(range(500, 1500))
        left.merge(right)
        assert abs(left.estimate() - 1500) / 1500 < 0.15

    def test_merge_rejects_mismatched_precision(self):
        with pytest.raises(ValueError):
            HyperLogLog(8).merge(HyperLogLog(9))

    def test_copy_is_independent(self):
        sketch = HyperLogLog()
        sketch.add_many(range(100))
        clone = sketch.copy()
        clone.add_many(range(100, 10000))
        assert sketch.estimate() < clone.estimate()

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            HyperLogLog(2)

    def test_one_shot_helper(self):
        assert abs(estimate_distinct(range(500)) - 500) / 500 < 0.15


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(expected_items=100)
        items = [f"path.{i}" for i in range(100)]
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)

    def test_low_false_positive_rate(self):
        bloom = BloomFilter(expected_items=100)
        for i in range(100):
            bloom.add(f"present-{i}")
        false_hits = sum(f"absent-{i}" in bloom for i in range(1000))
        assert false_hits < 30  # ~1% expected at 10 bits/item

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter()
        assert "anything" not in bloom
        assert bloom.fill_ratio() == 0.0

    def test_merge(self):
        a, b = BloomFilter(64), BloomFilter(64)
        a.add("x")
        b.add("y")
        a.merge(b)
        assert "x" in a and "y" in a

    def test_merge_shape_mismatch(self):
        with pytest.raises(ValueError):
            BloomFilter(64).merge(BloomFilter(1000))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.text(min_size=1, max_size=20), max_size=50))
    def test_property_membership(self, items):
        bloom = BloomFilter(expected_items=max(1, len(items)))
        for item in items:
            bloom.add(item)
        assert all(bloom.might_contain(item) for item in items)


class TestFrequencyCounters:
    def test_tracks_counts(self):
        counters = FrequencyCounters(capacity=8)
        counters.update_from_tile(0, {"a": 10, "b": 5})
        counters.update_from_tile(1, {"a": 7})
        assert counters.count("a") == 17
        assert counters.count("b") == 5
        assert counters.count("missing") is None

    def test_missing_key_estimates_with_minimum(self):
        counters = FrequencyCounters(capacity=8)
        counters.update_from_tile(0, {"hot": 1000, "cold": 3})
        assert counters.estimate("unknown") == 3

    def test_empty_estimate_zero(self):
        assert FrequencyCounters().estimate("x") == 0

    def test_replacement_keeps_frequent_keys(self):
        counters = FrequencyCounters(capacity=2)
        counters.update_from_tile(0, {"hot": 1000})
        counters.update_from_tile(0, {"warm": 100})
        for tile in range(1, 20):
            counters.update_from_tile(tile, {f"one-off-{tile}": 1, "hot": 1000})
        assert counters.count("hot") is not None
        assert counters.count("hot") >= 1000

    def test_capacity_bound(self):
        counters = FrequencyCounters(capacity=4)
        for tile in range(50):
            counters.update_from_tile(tile, {f"k{tile}": tile + 1})
        assert len(counters) <= 4

    def test_top(self):
        counters = FrequencyCounters()
        counters.update_from_tile(0, {"a": 5, "b": 50, "c": 1})
        assert counters.top(2) == [("b", 50), ("a", 5)]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FrequencyCounters(0)


class TestTableStatistics:
    def _tile(self, tile_number, rows, keys, column_values):
        stats = TileStatistics(row_count=rows)
        for key, count in keys.items():
            stats.observe_key(key, count)
        for path_text, values in column_values.items():
            column = stats.column(KeyPath.parse(path_text))
            for value in values:
                column.observe(value)
        return stats

    def test_aggregation(self):
        table = TableStatistics()
        table.absorb_tile(0, self._tile(0, 100, {"id": 100, "geo.lat": 40},
                                         {"id": list(range(100))}))
        table.absorb_tile(1, self._tile(1, 100, {"id": 100},
                                        {"id": list(range(100, 200))}))
        assert table.row_count == 200
        assert table.key_count(KeyPath.parse("id")) == 200
        assert table.key_count(KeyPath.parse("geo.lat")) == 40
        assert abs(table.distinct(KeyPath.parse("id")) - 200) / 200 < 0.15

    def test_presence_fraction(self):
        table = TableStatistics()
        table.absorb_tile(0, self._tile(0, 8, {"replies": 5}, {}))
        assert table.presence_fraction(KeyPath.parse("replies")) == 5 / 8

    def test_paper_replies_example(self):
        """Figure 2: 'replies is not null' matches 5 of 8 tuples."""
        table = TableStatistics()
        table.absorb_tile(0, self._tile(0, 4, {"id": 4, "replies": 1}, {}))
        table.absorb_tile(1, self._tile(1, 4, {"id": 4, "replies": 4}, {}))
        assert table.key_count(KeyPath.parse("replies")) == 5

    def test_equality_selectivity(self):
        table = TableStatistics()
        table.absorb_tile(0, self._tile(0, 1000, {"k": 1000},
                                        {"k": [i % 10 for i in range(1000)]}))
        selectivity = table.equality_selectivity(KeyPath.parse("k"))
        assert 0.05 < selectivity < 0.2  # ~1/10

    def test_range_selectivity_uses_bounds(self):
        table = TableStatistics()
        table.absorb_tile(0, self._tile(0, 100, {"v": 100},
                                        {"v": list(range(100))}))
        half = table.range_selectivity(KeyPath.parse("v"), low=0, high=49.5)
        assert 0.4 < half < 0.6
        assert table.range_selectivity(KeyPath.parse("v"), low=200) == 0.0

    def test_range_selectivity_default_without_bounds(self):
        table = TableStatistics()
        assert table.range_selectivity(KeyPath.parse("nope")) == pytest.approx(1 / 3)

    def test_sketch_budget_respected(self):
        table = TableStatistics(sketch_budget=4)
        for i in range(20):
            table.absorb_tile(i, self._tile(i, 10, {}, {f"path{i}": [1, 2, 3]}))
        assert sum(table.has_sketch(KeyPath.parse(f"path{i}"))
                   for i in range(20)) <= 4

    def test_distinct_fallback_without_sketch(self):
        table = TableStatistics()
        table.absorb_tile(0, self._tile(0, 50, {"x": 30}, {}))
        assert table.distinct(KeyPath.parse("x")) == 30.0
