"""Tests for high-cardinality array extraction (Tiles-*, Section 3.5)."""

from repro.core.jsonpath import KeyPath
from repro.tiles.arrays import (
    INDEX_COLUMN,
    PARENT_COLUMN,
    detect_high_cardinality_arrays,
    extract_array_documents,
    strip_extracted_arrays,
)


def tweet(i, hashtags):
    return {
        "id": i,
        "text": "hello",
        "entities": {
            "hashtags": [{"text": tag} for tag in hashtags],
            "urls": [],
        },
    }


class TestDetection:
    def test_detects_varying_arrays(self):
        documents = [tweet(i, [f"#t{j}" for j in range(i % 12)])
                     for i in range(100)]
        detections = detect_high_cardinality_arrays(documents)
        paths = {str(d.path) for d in detections}
        assert "entities.hashtags" in paths

    def test_small_fixed_arrays_not_flagged(self):
        documents = [{"pair": [1, 2]} for _ in range(50)]
        detections = detect_high_cardinality_arrays(documents)
        assert all(str(d.path) != "pair" for d in detections)

    def test_rare_arrays_filtered_by_presence(self):
        documents = [{"id": i} for i in range(99)] + [
            {"id": 99, "rare": list(range(50))}
        ]
        detections = detect_high_cardinality_arrays(documents, min_presence=0.1)
        assert all(str(d.path) != "rare" for d in detections)

    def test_detection_metadata(self):
        documents = [{"a": list(range(10))} for _ in range(10)]
        detections = detect_high_cardinality_arrays(documents)
        [detection] = [d for d in detections if str(d.path) == "a"]
        assert detection.presence == 1.0
        assert detection.mean_length == 10.0
        assert detection.max_length == 10


class TestExtraction:
    def test_object_elements_flattened(self):
        documents = [tweet(0, ["#a", "#b"]), tweet(1, []), tweet(2, ["#c"])]
        children = extract_array_documents(
            documents, KeyPath.parse("entities.hashtags"), first_row=100
        )
        assert len(children) == 3
        assert children[0] == {PARENT_COLUMN: 100, INDEX_COLUMN: 0, "text": "#a"}
        assert children[1] == {PARENT_COLUMN: 100, INDEX_COLUMN: 1, "text": "#b"}
        assert children[2] == {PARENT_COLUMN: 102, INDEX_COLUMN: 0, "text": "#c"}

    def test_scalar_elements_wrapped(self):
        documents = [{"tags": ["x", "y"]}]
        children = extract_array_documents(documents, KeyPath.parse("tags"))
        assert children[0]["value"] == "x"
        assert children[1]["value"] == "y"

    def test_missing_arrays_skipped(self):
        documents = [{"id": 1}, {"tags": "not-an-array"}]
        assert extract_array_documents(documents, KeyPath.parse("tags")) == []


class TestStrip:
    def test_replaces_array_with_count(self):
        document = tweet(0, ["#a", "#b"])
        stripped = strip_extracted_arrays(
            document, [KeyPath.parse("entities.hashtags")]
        )
        assert "hashtags" not in stripped["entities"]
        assert stripped["entities"]["hashtags_count"] == 2
        # untouched parts survive
        assert stripped["id"] == 0
        assert stripped["entities"]["urls"] == []

    def test_original_not_mutated(self):
        document = tweet(0, ["#a"])
        strip_extracted_arrays(document, [KeyPath.parse("entities.hashtags")])
        assert document["entities"]["hashtags"] == [{"text": "#a"}]

    def test_noop_without_paths(self):
        document = tweet(0, ["#a"])
        assert strip_extracted_arrays(document, []) is document
