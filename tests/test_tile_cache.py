"""Resolved-tile cache: LRU bounds, hit/miss accounting, invalidation
on every mutation path (in-place update, tile recomputation, sealing,
checkpoint reload), and the stored-NULL fallback guard (Section 3.4)."""

import numpy as np
import pytest

from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType
from repro.engine.batch import concat_batches
from repro.engine.plan import QueryOptions
from repro.engine.scan import AccessRequest, TableScan
from repro.server import JsonTilesServer, ServerClient
from repro.storage import StorageFormat, load_documents
from repro.storage.column import ColumnVector
from repro.storage.tile_cache import (
    GLOBAL_TILE_CACHE,
    ResolvedTileCache,
    make_key,
)
from repro.tiles import ExtractionConfig

TINY = ExtractionConfig(tile_size=32, partition_size=2)


@pytest.fixture(autouse=True)
def clean_global_cache():
    capacity = GLOBAL_TILE_CACHE.capacity_bytes
    GLOBAL_TILE_CACHE.clear()
    GLOBAL_TILE_CACHE.reset_stats()
    yield
    GLOBAL_TILE_CACHE.clear()
    GLOBAL_TILE_CACHE.set_capacity(capacity)


def int_vector(values):
    data = np.asarray(values, dtype=np.int64)
    return ColumnVector(ColumnType.INT64, data,
                        np.zeros(len(values), dtype=bool))


def request(path, target, as_text=True):
    return AccessRequest.make("t", KeyPath.parse(path), target, as_text)


def scan_values(relation, req, use_cache=True, parallelism=1):
    scan = TableScan(relation, [req], parallelism=parallelism,
                     use_cache=use_cache)
    batch = concat_batches(list(scan.batches()))
    return batch.column(req.name).to_list(), scan.counters


# ---------------------------------------------------------------------------


class TestResolvedTileCacheUnit:
    def test_lookup_miss_then_hit(self):
        cache = ResolvedTileCache(capacity_bytes=1 << 20)
        key = make_key("t", 1, "a.b", ColumnType.INT64, True)
        assert cache.lookup(key) is None
        cache.store(key, int_vector(range(10)))
        assert cache.lookup(key).to_list() == list(range(10))
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1 and stats["bytes"] > 0

    def test_byte_bound_evicts_least_recently_used(self):
        vector = int_vector(range(100))  # 100*8 data + 100 mask bytes
        size = vector.data.nbytes + vector.null_mask.nbytes
        cache = ResolvedTileCache(capacity_bytes=size * 3)
        keys = [make_key("t", uid, "p", ColumnType.INT64, True)
                for uid in range(5)]
        for key in keys:
            cache.store(key, vector)
        assert cache.entry_count == 3
        assert cache.used_bytes <= cache.capacity_bytes
        assert cache.stats()["evictions"] == 2
        # the two oldest entries are gone, the newest three remain
        assert cache.lookup(keys[0]) is None
        assert cache.lookup(keys[4]) is not None

    def test_recently_used_entry_survives_eviction(self):
        vector = int_vector(range(100))
        size = vector.data.nbytes + vector.null_mask.nbytes
        cache = ResolvedTileCache(capacity_bytes=size * 2)
        first = make_key("t", 1, "p", ColumnType.INT64, True)
        second = make_key("t", 2, "p", ColumnType.INT64, True)
        cache.store(first, vector)
        cache.store(second, vector)
        cache.lookup(first)  # refresh: second is now the LRU entry
        cache.store(make_key("t", 3, "p", ColumnType.INT64, True), vector)
        assert cache.lookup(first) is not None
        assert cache.lookup(second) is None

    def test_oversized_vector_not_cached(self):
        cache = ResolvedTileCache(capacity_bytes=64)
        key = make_key("t", 1, "p", ColumnType.INT64, True)
        cache.store(key, int_vector(range(1000)))
        assert cache.entry_count == 0

    def test_invalidate_tile_and_table(self):
        cache = ResolvedTileCache(capacity_bytes=1 << 20)
        for table, uid in (("a", 1), ("a", 2), ("b", 1)):
            cache.store(make_key(table, uid, "p", ColumnType.INT64, True),
                        int_vector(range(4)))
        assert cache.invalidate_tile(1) == 2  # both tables' uid-1 tiles
        assert cache.entry_count == 1
        assert cache.invalidate_table("a") == 1
        assert cache.entry_count == 0
        assert cache.stats()["invalidations"] == 3

    def test_set_capacity_shrink_evicts(self):
        cache = ResolvedTileCache(capacity_bytes=1 << 20)
        for uid in range(4):
            cache.store(make_key("t", uid, "p", ColumnType.INT64, True),
                        int_vector(range(100)))
        cache.set_capacity(1)
        assert cache.entry_count == 0
        assert cache.used_bytes == 0

    def test_string_payloads_charged(self):
        vector = ColumnVector(
            ColumnType.STRING,
            np.array(["x" * 1000, None], dtype=object),
            np.array([False, True]))
        cache = ResolvedTileCache(capacity_bytes=1 << 20)
        cache.store(make_key("t", 1, "p", ColumnType.STRING, True), vector)
        assert cache.used_bytes > 1000


# ---------------------------------------------------------------------------


def rare_relation(num_rows=96):
    # "rare" appears in ~10% of documents: below the extraction
    # threshold, so every access goes through the JSONB fallback
    docs = [{"id": i, "rare": i} if i % 10 == 0 else {"id": i}
            for i in range(num_rows)]
    return load_documents("t", docs, StorageFormat.TILES, TINY)


class TestScanThroughCache:
    def test_first_scan_misses_second_hits(self):
        relation = rare_relation()
        req = request("rare", ColumnType.INT64)
        first_values, first = scan_values(relation, req)
        second_values, second = scan_values(relation, req)
        tiles = len(relation.tiles)
        assert first.cache_misses == tiles and first.cache_hits == 0
        assert first.fallback_lookups == relation.row_count
        assert second.cache_hits == tiles and second.cache_misses == 0
        assert second.fallback_lookups == 0  # decode paid exactly once
        assert first_values == second_values

    def test_cache_off_never_consulted(self):
        relation = rare_relation()
        req = request("rare", ColumnType.INT64)
        values, counters = scan_values(relation, req, use_cache=False)
        assert counters.cache_misses == 0 and counters.cache_hits == 0
        assert GLOBAL_TILE_CACHE.entry_count == 0

    def test_partial_tile_slices_served_from_full_decode(self):
        relation = rare_relation()
        req = request("rare", ColumnType.INT64)
        # small batches split each tile into several morsels; the first
        # morsel decodes the whole tile, the rest hit
        scan = TableScan(relation, [req], use_cache=True)
        scan.batch_rows = 8
        batch = concat_batches(list(scan.batches()))
        assert scan.counters.cache_misses == len(relation.tiles)
        assert scan.counters.cache_hits > 0
        assert batch.column(req.name).to_list() == \
            scan_values(relation, req)[0]

    def test_parallel_scan_shares_cache(self):
        relation = rare_relation()
        req = request("rare", ColumnType.INT64)
        serial_values, _ = scan_values(relation, req, use_cache=False)
        values, counters = scan_values(relation, req, parallelism=4)
        assert values == serial_values
        assert counters.cache_misses == len(relation.tiles)


class TestInvalidation:
    def test_update_invalidates_and_serves_new_value(self):
        relation = rare_relation()
        req = request("rare", ColumnType.INT64)
        scan_values(relation, req)  # populate
        relation.update(0, {"id": 0, "rare": 999})
        values, counters = scan_values(relation, req)
        assert values[0] == 999
        assert counters.cache_misses == 1  # only the patched tile
        assert counters.cache_hits == len(relation.tiles) - 1

    def test_recompute_tile_invalidates(self):
        relation = rare_relation()
        req = request("rare", ColumnType.INT64)
        scan_values(relation, req)
        entries_before = GLOBAL_TILE_CACHE.entry_count
        relation.recompute_tile(relation.tiles[0])
        assert GLOBAL_TILE_CACHE.entry_count == entries_before - 1
        values, counters = scan_values(relation, req)
        assert values == scan_values(relation, req, use_cache=False)[0]

    def test_seal_mid_query_stream_not_stale(self):
        # queries interleaved with sealing must never read stale cache
        # entries: a new tile has a fresh uid, so its first access is a
        # miss while untouched tiles keep hitting
        relation = rare_relation(64)
        req = request("rare", ColumnType.INT64)
        scan_values(relation, req)
        old_tiles = len(relation.tiles)
        relation.insert_many(
            [{"id": 64 + i, "rare": 1000 + i} if i % 10 == 0
             else {"id": 64 + i} for i in range(32)])
        relation.flush_inserts()
        values, counters = scan_values(relation, req)
        assert values[64 + 30] == 1030  # sealed rows visible, not stale
        assert counters.cache_hits == old_tiles
        assert counters.cache_misses == len(relation.tiles) - old_tiles


class TestStoredNullGuard:
    """Section 3.4 semantics: only stored NULLs (type outliers) probe
    the JSONB; cast-introduced NULLs are genuine SQL NULLs."""

    def relation(self):
        docs = [{"v": float(i)} for i in range(30)] + \
               [{"v": "oops"}, {"v": 1e30}]
        return load_documents("t", docs, StorageFormat.TILES, TINY)

    def test_only_stored_nulls_probed(self):
        relation = self.relation()
        req = request("v", ColumnType.INT64)
        values, counters = scan_values(relation, req, use_cache=False)
        tile = relation.tile_of_row(30)
        assert tile.header.columns[KeyPath.parse("v")].has_type_conflicts
        # one probe for the "oops" outlier; the out-of-range 1e30 slot
        # is a cast-introduced NULL and is not consulted
        assert counters.fallback_lookups == 1
        assert values[:30] == list(range(30))
        assert values[30] is None  # "oops" does not parse as an int
        assert values[31] is None  # 1e30 cannot be an int64

    def test_no_stored_nulls_skips_fallback_entirely(self):
        docs = [{"v": float(i)} for i in range(30)] + [{"v": 1e30}]
        relation = load_documents("t", docs, StorageFormat.TILES, TINY)
        req = request("v", ColumnType.INT64)
        values, counters = scan_values(relation, req, use_cache=False)
        assert counters.fallback_lookups == 0
        assert values[30] is None


# ---------------------------------------------------------------------------


class TestServerCacheLifecycle:
    def make_server(self, path):
        return JsonTilesServer(path, wal_sync=False, query_workers=4,
                               parallelism=2, cache_mb=8.0)

    def test_cached_queries_and_stats(self, tmp_path):
        server = self.make_server(tmp_path / "data")
        server.start_in_thread()
        try:
            with ServerClient(port=server.port) as client:
                client.create_table("t", "tiles",
                                    {"tile_size": 32, "partition_size": 2})
                client.insert_many(
                    "t", [{"id": i, "rare": i} if i % 10 == 0 else {"id": i}
                          for i in range(64)])
                client.flush("t")
                sql = ("select count(*) as n from t x "
                       "where x.data->>'rare'::int is not null")
                first = client.query(sql)
                second = client.query(sql)
                assert first.scalar() == second.scalar() == 7
                assert first.counters.cache_misses > 0
                assert second.counters.cache_hits > 0
                assert second.counters.cache_misses == 0

                # mid-stream seal: new tile is a miss, result not stale
                client.insert_many(
                    "t", [{"id": 64 + i, "rare": 1} if i % 4 == 0
                          else {"id": 64 + i} for i in range(32)])
                third = client.query(sql)
                assert third.scalar() == 7 + 8
                assert third.counters.cache_misses > 0

                stats = client.stats()
                assert stats["cache"]["hits"] > 0
                assert stats["cache"]["capacity_bytes"] == 8 * 2**20
                assert stats["tables"]["t"]["scan"]["queries"] == 3
                assert "utilization" in stats["pool"]
        finally:
            server.stop_in_thread()

    def test_checkpoint_reload_serves_fresh_tiles(self, tmp_path):
        data_dir = tmp_path / "data"
        server = self.make_server(data_dir)
        server.start_in_thread()
        sql = ("select sum(x.data->>'rare'::int) as s from t x")
        try:
            with ServerClient(port=server.port) as client:
                client.create_table("t", "tiles",
                                    {"tile_size": 32, "partition_size": 2})
                client.insert_many(
                    "t", [{"id": i, "rare": i} if i % 10 == 0 else {"id": i}
                          for i in range(64)])
                before = client.query(sql).scalar()
                client.shutdown(checkpoint=True)
        finally:
            server.stop_in_thread()

        reopened = self.make_server(data_dir)
        reopened.start_in_thread()
        try:
            with ServerClient(port=reopened.port) as client:
                result = client.query(sql)
                assert result.scalar() == before
                # reloaded tiles carry fresh uids: nothing stale is hit
                assert result.counters.cache_hits == 0
                assert result.counters.cache_misses > 0
        finally:
            reopened.stop_in_thread()
