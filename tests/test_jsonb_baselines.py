"""Tests for the BSON- and CBOR-style baseline formats (Section 6.9)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jsonpath import KeyPath
from repro.errors import JsonbDecodeError, JsonbEncodeError
from repro.jsonb import bson, cbor

DOC = {"id": 5, "name": "widget", "price": 19.99, "active": True,
       "tags": ["a", "b"], "meta": {"depth": {"level": 3}}, "gone": None}


class TestBsonRoundTrip:
    def test_document(self):
        assert bson.decode(bson.encode(DOC)) == DOC

    def test_scalar_root_wrapped(self):
        assert bson.decode(bson.encode(42)) == 42
        assert bson.decode(bson.encode("text")) == "text"

    def test_empty_document(self):
        assert bson.decode(bson.encode({})) == {}

    def test_int64_bounds(self):
        doc = {"lo": -(2**63), "hi": 2**63 - 1}
        assert bson.decode(bson.encode(doc)) == doc

    def test_nul_in_key_rejected(self):
        with pytest.raises(JsonbEncodeError):
            bson.encode({"a\x00b": 1})

    def test_unencodable_rejected(self):
        with pytest.raises(JsonbEncodeError):
            bson.encode({"x": object()})

    def test_trailing_garbage_rejected(self):
        with pytest.raises(JsonbDecodeError):
            bson.decode(bson.encode({"a": 1}) + b"\x00")

    @settings(max_examples=100, deadline=None)
    @given(st.dictionaries(
        st.text(min_size=1, max_size=8).filter(lambda s: "\x00" not in s),
        st.none() | st.booleans()
        | st.integers(-(2**63), 2**63 - 1)
        | st.floats(allow_nan=False)
        | st.text(max_size=20),
        max_size=6))
    def test_property_roundtrip(self, doc):
        assert bson.decode(bson.encode(doc)) == doc


class TestBsonLookup:
    def test_top_level(self):
        buf = bson.encode(DOC)
        assert bson.lookup(buf, KeyPath.parse("id")) == (True, 5)
        assert bson.lookup(buf, KeyPath.parse("price")) == (True, 19.99)

    def test_nested(self):
        buf = bson.encode(DOC)
        assert bson.lookup(buf, KeyPath.parse("meta.depth.level")) == (True, 3)
        assert bson.lookup(buf, KeyPath.parse("tags[1]")) == (True, "b")

    def test_missing(self):
        buf = bson.encode(DOC)
        assert bson.lookup(buf, KeyPath.parse("nope")) == (False, None)
        assert bson.lookup(buf, KeyPath.parse("id.sub")) == (False, None)
        assert bson.lookup(buf, KeyPath.parse("tags[9]")) == (False, None)

    def test_null_value_found(self):
        buf = bson.encode(DOC)
        assert bson.lookup(buf, KeyPath.parse("gone")) == (True, None)


class TestCborRoundTrip:
    def test_document(self):
        assert cbor.decode(cbor.encode(DOC)) == DOC

    def test_scalars(self):
        for value in (None, True, False, 0, 23, 24, 255, 256, 65536,
                      -1, -25, 2**32, "text", 1.5, math.pi):
            assert cbor.decode(cbor.encode(value)) == value

    def test_float_narrowing(self):
        assert len(cbor.encode(1.5)) == 3       # half precision
        assert len(cbor.encode(math.pi)) == 9   # full double

    def test_arrays(self):
        assert cbor.decode(cbor.encode([1, [2, [3]]])) == [1, [2, [3]]]

    def test_infinity(self):
        assert cbor.decode(cbor.encode(float("inf"))) == float("inf")

    def test_unencodable_rejected(self):
        with pytest.raises(JsonbEncodeError):
            cbor.encode({"x": object()})

    def test_trailing_garbage_rejected(self):
        with pytest.raises(JsonbDecodeError):
            cbor.decode(cbor.encode(1) + b"\x00")

    @settings(max_examples=100, deadline=None)
    @given(st.recursive(
        st.none() | st.booleans()
        | st.integers(-(2**60), 2**60)
        | st.floats(allow_nan=False) | st.text(max_size=15),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=6), children, max_size=4),
        max_leaves=15))
    def test_property_roundtrip(self, value):
        assert cbor.decode(cbor.encode(value)) == value


class TestCborLookup:
    def test_nested_lookup(self):
        buf = cbor.encode(DOC)
        assert cbor.lookup(buf, KeyPath.parse("meta.depth.level")) == (True, 3)
        assert cbor.lookup(buf, KeyPath.parse("tags[0]")) == (True, "a")

    def test_missing(self):
        buf = cbor.encode(DOC)
        assert cbor.lookup(buf, KeyPath.parse("zzz")) == (False, None)
        assert cbor.lookup(buf, KeyPath.parse("tags[5]")) == (False, None)

    def test_lookup_in_array_root(self):
        buf = cbor.encode([10, 20, 30])
        assert cbor.lookup(buf, KeyPath.parse("[2]")) == (True, 30)


class TestFormatSizes:
    def test_cbor_smallest(self):
        """Figure 19's shape: CBOR <= JSONB <= BSON on typical docs."""
        from repro import jsonb
        doc = {"statuses": [{"id": i, "text": "hello", "ok": True}
                            for i in range(100)]}
        sizes = {"cbor": len(cbor.encode(doc)),
                 "jsonb": len(jsonb.encode(doc)),
                 "bson": len(bson.encode(doc))}
        assert sizes["cbor"] <= sizes["jsonb"] <= sizes["bson"]
