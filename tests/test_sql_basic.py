"""End-to-end SQL tests over small synthetic tables."""

import pytest

from repro import Database, ExtractionConfig, QueryOptions, StorageFormat
from repro.errors import SqlBindError, SqlSyntaxError

CONFIG = ExtractionConfig(tile_size=32, partition_size=2)


@pytest.fixture(scope="module")
def db():
    database = Database(config=CONFIG)
    orders = [
        {"o_id": i, "o_cust": i % 10, "o_total": float(i), "o_flag": i % 2 == 0,
         "o_date": f"2020-{(i % 12) + 1:02d}-15", "o_note": f"note {i}"}
        for i in range(200)
    ]
    customers = [
        {"c_id": i, "c_name": f"Customer#{i}", "c_nation": i % 3,
         "c_balance": str(round(100.5 + i, 2))}
        for i in range(10)
    ]
    nations = [{"n_id": i, "n_name": name}
               for i, name in enumerate(["FRANCE", "GERMANY", "JAPAN"])]
    database.load_table("orders", orders)
    database.load_table("customer", customers)
    database.load_table("nation", nations)
    return database


class TestBasicSelect:
    def test_count_star(self, db):
        assert db.sql("select count(*) as n from orders o").scalar() == 200

    def test_projection_with_casts(self, db):
        result = db.sql(
            "select o.data->>'o_id'::int as id, o.data->>'o_total'::float as t "
            "from orders o where o.data->>'o_id'::int < 3 order by id"
        )
        assert result.rows == [(0, 0.0), (1, 1.0), (2, 2.0)]

    def test_filter_equality(self, db):
        result = db.sql(
            "select count(*) as n from orders o "
            "where o.data->>'o_cust'::int = 3")
        assert result.scalar() == 20

    def test_filter_range_and_bool(self, db):
        result = db.sql(
            "select count(*) as n from orders o "
            "where o.data->>'o_id'::int >= 100 and o.data->>'o_flag'::bool = true")
        assert result.scalar() == 50

    def test_date_comparison(self, db):
        result = db.sql(
            "select count(*) as n from orders o "
            "where o.data->>'o_date'::date < date '2020-03-01'")
        # months 1 and 2: i % 12 in {0, 1} -> 17 + 17
        assert result.scalar() == 34

    def test_interval_arithmetic(self, db):
        result = db.sql(
            "select count(*) as n from orders o "
            "where o.data->>'o_date'::date < date '2020-01-01' + interval '2' month")
        assert result.scalar() == 34

    def test_between(self, db):
        result = db.sql(
            "select count(*) as n from orders o "
            "where o.data->>'o_id'::int between 10 and 19")
        assert result.scalar() == 10

    def test_like(self, db):
        result = db.sql(
            "select count(*) as n from orders o "
            "where o.data->>'o_note' like 'note 1_'")
        assert result.scalar() == 10

    def test_in_list(self, db):
        result = db.sql(
            "select count(*) as n from orders o "
            "where o.data->>'o_cust'::int in (1, 2, 3)")
        assert result.scalar() == 60

    def test_is_null_semantics(self, db):
        result = db.sql(
            "select count(*) as n from orders o "
            "where o.data->>'missing_key' is null")
        assert result.scalar() == 200

    def test_limit_and_order(self, db):
        result = db.sql(
            "select o.data->>'o_id'::int as id from orders o "
            "order by id desc limit 3")
        assert result.column("id") == [199, 198, 197]

    def test_distinct(self, db):
        result = db.sql(
            "select distinct o.data->>'o_cust'::int as c from orders o")
        assert sorted(result.column("c")) == list(range(10))

    def test_numeric_string_cast(self, db):
        result = db.sql(
            "select c.data->>'c_balance'::decimal as b from customer c "
            "where c.data->>'c_id'::int = 0")
        assert result.scalar() == pytest.approx(100.5)

    def test_arithmetic_expressions(self, db):
        result = db.sql(
            "select sum(o.data->>'o_total'::float * (1 - 0.5)) as s "
            "from orders o")
        assert result.scalar() == pytest.approx(sum(range(200)) / 2)

    def test_case_expression(self, db):
        result = db.sql(
            "select sum(case when o.data->>'o_flag'::bool = true then 1 "
            "else 0 end) as evens from orders o")
        assert result.scalar() == 100


class TestGroupBy:
    def test_group_by_with_aggregates(self, db):
        result = db.sql(
            "select o.data->>'o_cust'::int as cust, count(*) as n, "
            "sum(o.data->>'o_total'::float) as total, "
            "min(o.data->>'o_id'::int) as lo, max(o.data->>'o_id'::int) as hi "
            "from orders o group by o.data->>'o_cust'::int order by cust")
        assert len(result) == 10
        assert result.rows[0][:2] == (0, 20)
        assert result.rows[0][3] == 0 and result.rows[0][4] == 190

    def test_having(self, db):
        result = db.sql(
            "select o.data->>'o_cust'::int as cust, sum(o.data->>'o_total'"
            "::float) as s from orders o group by o.data->>'o_cust'::int "
            "having sum(o.data->>'o_total'::float) > 2000 order by s desc")
        expected = {cust: sum(i for i in range(200) if i % 10 == cust)
                    for cust in range(10)}
        kept = {cust for cust, total in expected.items() if total > 2000}
        assert set(result.column("cust")) == kept

    def test_avg_and_count_distinct(self, db):
        result = db.sql(
            "select avg(o.data->>'o_total'::float) as mean, "
            "count(distinct o.data->>'o_cust'::int) as custs from orders o")
        assert result.rows[0][0] == pytest.approx(99.5)
        assert result.rows[0][1] == 10

    def test_extract_year_group(self, db):
        result = db.sql(
            "select extract(year from o.data->>'o_date'::date) as y, "
            "count(*) as n from orders o group by "
            "extract(year from o.data->>'o_date'::date)")
        assert result.rows == [(2020, 200)]


class TestJoins:
    def test_two_way_join(self, db):
        result = db.sql(
            "select count(*) as n from orders o, customer c "
            "where o.data->>'o_cust'::int = c.data->>'c_id'::int")
        assert result.scalar() == 200

    def test_three_way_join_with_group(self, db):
        result = db.sql(
            "select n.data->>'n_name' as nation, count(*) as cnt "
            "from orders o, customer c, nation n "
            "where o.data->>'o_cust'::int = c.data->>'c_id'::int "
            "and c.data->>'c_nation'::int = n.data->>'n_id'::int "
            "group by n.data->>'n_name' order by nation")
        assert result.column("nation") == ["FRANCE", "GERMANY", "JAPAN"]
        assert sum(result.column("cnt")) == 200

    def test_explicit_inner_join(self, db):
        result = db.sql(
            "select count(*) as n from orders o join customer c "
            "on o.data->>'o_cust'::int = c.data->>'c_id'::int "
            "where c.data->>'c_nation'::int = 0")
        assert result.scalar() == 80  # customers 0,3,6,9 -> 20 orders each

    def test_left_join_counts_empty_groups(self, db):
        result = db.sql(
            "select c.data->>'c_id'::int as cid, count(o.data->>'o_id'::int)"
            " as n from customer c left join orders o on "
            "o.data->>'o_cust'::int = c.data->>'c_id'::int and "
            "o.data->>'o_id'::int < 0 "
            "group by c.data->>'c_id'::int order by cid")
        assert len(result) == 10
        assert all(n == 0 for n in result.column("n"))

    def test_join_order_uses_statistics(self, db):
        result = db.sql(
            "select count(*) as n from orders o, customer c, nation n "
            "where o.data->>'o_cust'::int = c.data->>'c_id'::int "
            "and c.data->>'c_nation'::int = n.data->>'n_id'::int")
        assert result.scalar() == 200
        assert len(result.join_order) == 3


class TestSubqueries:
    def test_uncorrelated_scalar(self, db):
        result = db.sql(
            "select count(*) as n from orders o where "
            "o.data->>'o_total'::float > "
            "(select avg(o2.data->>'o_total'::float) from orders o2)")
        assert result.scalar() == 100

    def test_in_subquery(self, db):
        result = db.sql(
            "select count(*) as n from orders o where "
            "o.data->>'o_cust'::int in (select c.data->>'c_id'::int "
            "from customer c where c.data->>'c_nation'::int = 1)")
        assert result.scalar() == 60  # customers 1,4,7

    def test_not_in_subquery(self, db):
        result = db.sql(
            "select count(*) as n from orders o where "
            "o.data->>'o_cust'::int not in (select c.data->>'c_id'::int "
            "from customer c where c.data->>'c_nation'::int = 1)")
        assert result.scalar() == 140

    def test_correlated_exists(self, db):
        result = db.sql(
            "select count(*) as n from customer c where exists ("
            "select o.data->>'o_id' from orders o where "
            "o.data->>'o_cust'::int = c.data->>'c_id'::int and "
            "o.data->>'o_total'::float > 190)")
        # orders 191..199 cover customers 1..9
        assert result.scalar() == 9

    def test_correlated_not_exists(self, db):
        result = db.sql(
            "select count(*) as n from customer c where not exists ("
            "select o.data->>'o_id' from orders o where "
            "o.data->>'o_cust'::int = c.data->>'c_id'::int and "
            "o.data->>'o_total'::float > 190)")
        assert result.scalar() == 1

    def test_correlated_scalar_aggregate(self, db):
        # orders above their customer's average total
        result = db.sql(
            "select count(*) as n from orders o where "
            "o.data->>'o_total'::float > (select avg(o2.data->>'o_total'"
            "::float) from orders o2 where o2.data->>'o_cust'::int = "
            "o.data->>'o_cust'::int)")
        assert result.scalar() == 100

    def test_derived_table(self, db):
        result = db.sql(
            "select t.cust, t.total from (select o.data->>'o_cust'::int as "
            "cust, sum(o.data->>'o_total'::float) as total from orders o "
            "group by o.data->>'o_cust'::int) as t "
            "where t.total > 2000 order by t.cust")
        assert all(total > 2000 for total in result.column("total"))

    def test_cte(self, db):
        result = db.sql(
            "with totals as (select o.data->>'o_cust'::int as cust, "
            "sum(o.data->>'o_total'::float) as total from orders o "
            "group by o.data->>'o_cust'::int) "
            "select count(*) as n from totals t where t.total > 2000")
        expected = sum(
            1 for cust in range(10)
            if sum(i for i in range(200) if i % 10 == cust) > 2000
        )
        assert result.scalar() == expected


class TestFormatsAgree:
    """The same query must return identical results on every storage
    format — correctness of the whole fallback machinery."""

    QUERY = (
        "select o.data->>'o_cust'::int as cust, count(*) as n, "
        "sum(o.data->>'o_total'::float) as total from orders o "
        "where o.data->>'o_date'::date >= date '2020-06-01' "
        "group by o.data->>'o_cust'::int order by cust"
    )

    @pytest.mark.parametrize("storage_format", list(StorageFormat))
    def test_query_matches_tiles(self, storage_format):
        orders = [
            {"o_id": i, "o_cust": i % 10, "o_total": float(i),
             "o_date": f"2020-{(i % 12) + 1:02d}-15"}
            for i in range(200)
        ]
        reference_db = Database(config=CONFIG)
        reference_db.load_table("orders", orders, StorageFormat.TILES)
        expected = reference_db.sql(self.QUERY).rows

        db = Database(config=CONFIG)
        db.load_table("orders", orders, storage_format)
        assert db.sql(self.QUERY).rows == expected


class TestErrors:
    def test_syntax_error(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("select from orders")

    def test_unknown_table(self, db):
        with pytest.raises(SqlBindError):
            db.sql("select count(*) as n from missing m")

    def test_unknown_alias(self, db):
        with pytest.raises(SqlBindError):
            db.sql("select x.data->>'k' from orders o")

    def test_order_by_must_be_selected(self, db):
        with pytest.raises(SqlBindError):
            db.sql("select count(*) as n from orders o "
                   "group by o.data->>'o_cust' order by nope")


class TestExplainAndOptions:
    def test_explain_mentions_join_order(self, db):
        text = db.explain(
            "select count(*) as n from orders o, customer c where "
            "o.data->>'o_cust'::int = c.data->>'c_id'::int")
        assert "join order" in text

    def test_no_statistics_mode_still_correct(self, db):
        options = QueryOptions(use_statistics=False)
        result = db.sql(
            "select count(*) as n from orders o, customer c where "
            "o.data->>'o_cust'::int = c.data->>'c_id'::int", options)
        assert result.scalar() == 200

    def test_no_cast_rewriting_still_correct(self, db):
        options = QueryOptions(enable_cast_rewriting=False)
        result = db.sql(
            "select sum(o.data->>'o_total'::float) as s from orders o",
            options)
        assert result.scalar() == pytest.approx(sum(range(200)))

    def test_skipping_counters_exposed(self, db):
        result = db.sql("select count(*) as n from orders o "
                        "where o.data->>'o_id'::int >= 0")
        assert result.counters.tiles_total > 0


class TestUnionAll:
    def test_basic_union(self, db):
        result = db.sql(
            "select o.data->>'o_id'::int as id from orders o "
            "where o.data->>'o_id'::int < 2 "
            "union all "
            "select c.data->>'c_id'::int as id from customer c "
            "where c.data->>'c_id'::int < 2")
        assert sorted(result.column("id")) == [0, 0, 1, 1]

    def test_union_with_trailing_order_limit(self, db):
        result = db.sql(
            "select o.data->>'o_id'::int as v from orders o "
            "union all "
            "select c.data->>'c_id'::int as v from customer c "
            "order by v desc limit 3")
        assert result.column("v") == [199, 198, 197]

    def test_union_column_names_from_first_branch(self, db):
        result = db.sql(
            "select o.data->>'o_id'::int as first_name from orders o "
            "where o.data->>'o_id'::int = 0 "
            "union all "
            "select c.data->>'c_id'::int as other from customer c "
            "where c.data->>'c_id'::int = 1")
        assert result.columns == ["first_name"]
        assert sorted(result.column("first_name")) == [0, 1]

    def test_union_with_aggregates_per_branch(self, db):
        result = db.sql(
            "select 'orders' as src, count(*) as n from orders o "
            "union all "
            "select 'customers' as src, count(*) as n from customer c")
        assert sorted(result.rows) == [("customers", 10), ("orders", 200)]

    def test_three_way_union(self, db):
        result = db.sql(
            "select count(*) as n from orders o "
            "union all select count(*) as n from customer c "
            "union all select count(*) as n from nation x")
        assert sorted(result.column("n")) == [3, 10, 200]

    def test_union_arity_mismatch_rejected(self, db):
        with pytest.raises(SqlBindError):
            db.sql("select 1 as a from orders o union all "
                   "select 1 as a, 2 as b from customer c")
