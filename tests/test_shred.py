"""Unit tests for the single-pass multi-path JSONB shredder.

The shredder (:mod:`repro.jsonb.shred`) must be an *invisible*
optimisation: for every buffer and every path set, slot *i* of the
shred result equals ``jsonb_get_path(buf, plan.paths[i])`` (and the
parsed-JSON twin equals ``KeyPath.lookup``).  On top of that the scan
counters pin the Table-5-comparable accounting: ``fallback_lookups``
counts logical (tuple, path) resolutions identically with the shredder
on or off, while ``shred_passes`` / ``shred_paths`` expose the
physical sharing.
"""

import json

import pytest

from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType
from repro.engine.batch import concat_batches
from repro.engine.scan import AccessRequest, TableScan
from repro.jsonb import encode, jsonb_get_path
from repro.jsonb.shred import compile_paths, shred_jsonb, shred_python
from repro.storage import StorageFormat, load_documents
from repro.tiles import ExtractionConfig


def parse(*texts):
    return [KeyPath.parse(text) for text in texts]


def expect_per_path(document, paths):
    buf = encode(document)
    return [value.as_python() if (value := jsonb_get_path(buf, path))
            is not None else None for path in paths]


def shredded(document, paths):
    plan = compile_paths(paths)
    out = shred_jsonb(plan, encode(document))
    return [value.as_python() if value is not None else None
            for value in out]


DOCUMENTS = [
    {},
    {"a": 1},
    {"a": {"b": {"c": 3}}, "d": [10, 20, 30]},
    {"a": None, "b": False, "c": "", "d": 0},
    {"user": {"id": 7, "name": "ada", "tags": ["x", "y"]},
     "stats": {"count": 2, "ratio": 0.5}},
    {"nested": [{"k": 1}, {"k": 2}], "other": "text"},
    # wide object: count > 250 exercises the multi-byte compact-uint
    # header and 2-byte offset widths
    {f"key{i:04d}": i for i in range(300)},
    # long values push offsets past one byte
    {"pad": "x" * 700, "tail": {"z": 9}},
]

PATH_SETS = [
    parse("a"),
    parse("a.b.c", "a.b", "a"),
    parse("d[0]", "d[2]", "d[9]", "d"),
    parse("user.id", "user.name", "user.tags[1]", "stats.count",
          "stats.ratio"),
    parse("nested[0].k", "nested[1].k", "other", "missing.path"),
    parse("key0000", "key0123", "key0299", "key9999"),
    parse("pad", "tail.z"),
]


class TestShredJsonb:
    @pytest.mark.parametrize("document", DOCUMENTS,
                             ids=lambda d: json.dumps(d)[:40])
    @pytest.mark.parametrize("paths", PATH_SETS,
                             ids=lambda ps: "|".join(map(str, ps)))
    def test_matches_per_path_traversal(self, document, paths):
        assert shredded(document, paths) == expect_per_path(document,
                                                            paths)

    @pytest.mark.parametrize("document", DOCUMENTS,
                             ids=lambda d: json.dumps(d)[:40])
    @pytest.mark.parametrize("paths", PATH_SETS,
                             ids=lambda ps: "|".join(map(str, ps)))
    def test_python_walk_matches_lookup(self, document, paths):
        plan = compile_paths(paths)
        out = shred_python(plan, document)
        assert out == [path.lookup(document) for path in plan.paths]

    def test_json_null_is_a_value_not_missing(self):
        # a stored JSON null must come back as a (null) JsonbValue,
        # exactly like get_path — only *absent* paths yield None
        plan = compile_paths(parse("a", "b"))
        out = shred_jsonb(plan, encode({"a": None}))
        assert out[0] is not None and out[0].is_null()
        assert out[1] is None

    def test_prefix_and_leaf_both_terminal(self):
        paths = parse("a", "a.b", "a.b.c")
        document = {"a": {"b": {"c": 1, "d": 2}}}
        assert shredded(document, paths) == expect_per_path(document,
                                                            paths)

    def test_duplicate_paths_collapse(self):
        plan = compile_paths(parse("a.b", "a.b", "c"))
        assert len(plan) == 2
        assert plan.slots[KeyPath.parse("a.b")] == 0
        assert plan.slots[KeyPath.parse("c")] == 1

    def test_scalar_root_fills_nothing(self):
        plan = compile_paths(parse("a.b", "c[0]"))
        assert shred_jsonb(plan, encode(42)) == [None, None]
        assert shred_python(plan, 42) == [None, None]

    def test_array_root(self):
        document = [{"a": 1}, {"a": 2}, 7]
        paths = parse("[0].a", "[1].a", "[2]", "[5].a")
        assert shredded(document, paths) == expect_per_path(document,
                                                            paths)


# ----------------------------------------------------------------------
# counter semantics (Table-5-style accounting)

CONFIG = ExtractionConfig(tile_size=32, partition_size=2)

K_PATHS = [("u.id", ColumnType.INT64), ("u.name", ColumnType.STRING),
           ("score", ColumnType.FLOAT64), ("tags[0]", ColumnType.STRING)]


def _scan_counters(multipath_shred, rows=100,
                   storage_format=StorageFormat.JSONB):
    docs = [{"u": {"id": i, "name": f"n{i}"}, "score": i / 2.0,
             "tags": ["a", "b"]} for i in range(rows)]
    relation = load_documents("t", docs, storage_format, CONFIG)
    requests = [AccessRequest.make("t", KeyPath.parse(p), target, True)
                for p, target in K_PATHS]
    scan = TableScan(relation, requests, multipath_shred=multipath_shred)
    batch = concat_batches(list(scan.batches()))
    return scan.counters, batch


class TestCounterSemantics:
    def test_fallback_lookups_identical_both_modes(self):
        on, batch_on = _scan_counters(True)
        off, batch_off = _scan_counters(False)
        # logical accounting: tuples x paths, regardless of physics
        assert on.fallback_lookups == 100 * len(K_PATHS)
        assert off.fallback_lookups == on.fallback_lookups
        for name in batch_on.columns:
            assert batch_on.column(name).to_list() == \
                batch_off.column(name).to_list()

    def test_shred_counters_expose_sharing(self):
        on, _ = _scan_counters(True)
        assert on.shred_passes == 100
        assert on.shred_paths == 100 * len(K_PATHS)
        off, _ = _scan_counters(False)
        assert off.shred_passes == 0
        assert off.shred_paths == 0

    def test_text_format_counts_the_same(self):
        on, _ = _scan_counters(True, storage_format=StorageFormat.JSON)
        off, _ = _scan_counters(False, storage_format=StorageFormat.JSON)
        assert on.fallback_lookups == off.fallback_lookups == \
            100 * len(K_PATHS)
        assert on.shred_passes == 100
        assert on.shred_paths == 100 * len(K_PATHS)

    def test_counters_reach_explain_analyze(self):
        from repro import Database

        db = Database(StorageFormat.JSONB, CONFIG)
        db.load_table("t", [json.dumps({"u": {"id": i}})
                            for i in range(20)])
        result = db.sql("select sum(t.data->'u'->>'id'::int) as s "
                        "from t")
        assert result.rows[0][0] == sum(range(20))
        assert result.counters.shred_passes == 20
        assert result.counters.shred_paths == 20
