"""Tests for the primitive type model (repro.core.types)."""

import pytest

from repro.core.types import (
    COLUMN_TYPE_FOR_JSON,
    ColumnType,
    JsonType,
    is_numeric_string,
    json_type_of,
)


class TestJsonTypeOf:
    def test_null(self):
        assert json_type_of(None) == JsonType.NULL

    def test_bool_before_int(self):
        assert json_type_of(True) == JsonType.BOOL
        assert json_type_of(False) == JsonType.BOOL

    def test_int(self):
        assert json_type_of(42) == JsonType.INT
        assert json_type_of(-1) == JsonType.INT

    def test_float(self):
        assert json_type_of(3.5) == JsonType.FLOAT

    def test_plain_string(self):
        assert json_type_of("hello") == JsonType.STRING

    def test_numeric_string(self):
        assert json_type_of("19.99") == JsonType.NUMSTR

    def test_containers(self):
        assert json_type_of({}) == JsonType.OBJECT
        assert json_type_of([]) == JsonType.ARRAY
        assert json_type_of((1, 2)) == JsonType.ARRAY

    def test_rejects_non_json(self):
        with pytest.raises(TypeError):
            json_type_of(object())


class TestNumericStringDetection:
    @pytest.mark.parametrize(
        "text",
        ["0", "-0", "7", "-42", "19.99", "0.5", "1e10", "1.5E-3", "-2.25e+4"],
    )
    def test_accepts_rfc8259_numbers(self, text):
        assert is_numeric_string(text)

    @pytest.mark.parametrize(
        "text",
        ["", "01", "1.", ".5", "+1", "abc", "1,000", "1 ", " 1", "0x10",
         "NaN", "Infinity", "1e", "--1", "1" * 65],
    )
    def test_rejects_non_numbers(self, text):
        assert not is_numeric_string(text)


class TestColumnTypeMapping:
    def test_every_scalar_type_maps(self):
        for jtype in (JsonType.BOOL, JsonType.INT, JsonType.FLOAT,
                      JsonType.STRING, JsonType.NUMSTR):
            assert COLUMN_TYPE_FOR_JSON[jtype] in ColumnType

    def test_numeric_column_types(self):
        assert ColumnType.INT64.is_numeric
        assert ColumnType.FLOAT64.is_numeric
        assert ColumnType.DECIMAL.is_numeric
        assert not ColumnType.STRING.is_numeric
        assert not ColumnType.TIMESTAMP.is_numeric

    def test_scalar_json_types(self):
        assert JsonType.INT.is_scalar
        assert not JsonType.OBJECT.is_scalar
        assert not JsonType.ARRAY.is_scalar
