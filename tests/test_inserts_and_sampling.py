"""Tests for incremental inserts (Section 3.2/4.7) and plan-time
document sampling (Section 4.6)."""

import pytest

from repro import Database, ExtractionConfig, QueryOptions, StorageFormat
from repro.core.jsonpath import KeyPath

CONFIG = ExtractionConfig(tile_size=16, partition_size=2)


class TestIncrementalInserts:
    def make(self, storage_format=StorageFormat.TILES):
        db = Database(storage_format, CONFIG)
        relation = db.load_table("t", [{"a": i, "b": f"v{i}"}
                                       for i in range(32)])
        return db, relation

    def test_buffer_fills_then_seals_tile(self):
        _db, relation = self.make()
        assert len(relation.tiles) == 2
        for i in range(32, 47):
            relation.insert({"a": i, "b": f"v{i}"})
        assert relation.pending_inserts == 15
        assert len(relation.tiles) == 2  # not sealed yet
        relation.insert({"a": 47, "b": "v47"})
        assert relation.pending_inserts == 0
        assert len(relation.tiles) == 3  # sealed at tile_size

    def test_new_tile_is_extracted(self):
        _db, relation = self.make()
        relation.insert_many({"a": i, "b": f"v{i}"} for i in range(32, 48))
        tile = relation.tiles[-1]
        assert tile.column(KeyPath.parse("a")) is not None
        assert tile.first_row == 32
        assert tile.header.tile_number == 2

    def test_statistics_updated(self):
        _db, relation = self.make()
        before = relation.statistics.row_count
        relation.insert_many({"a": i} for i in range(16))
        assert relation.statistics.row_count == before + 16

    def test_flush_partial_buffer(self):
        _db, relation = self.make()
        relation.insert({"a": 99})
        relation.flush_inserts()
        assert relation.pending_inserts == 0
        assert relation.tiles[-1].row_count == 1
        assert relation.document(32) == {"a": 99}

    def test_flush_empty_is_noop(self):
        _db, relation = self.make()
        tiles_before = len(relation.tiles)
        relation.flush_inserts()
        assert len(relation.tiles) == tiles_before

    def test_inserted_rows_queryable(self):
        db, relation = self.make()
        relation.insert_many({"a": 1000 + i} for i in range(16))
        result = db.sql("select count(*) as n from t x "
                        "where x.data->>'a'::int >= 1000")
        assert result.scalar() == 16

    def test_text_rows_accepted(self):
        _db, relation = self.make()
        relation.insert('{"a": 77}')
        relation.flush_inserts()
        assert relation.document(relation.row_count - 1) == {"a": 77}

    def test_insert_into_json_format(self):
        db = Database(StorageFormat.JSON, CONFIG)
        relation = db.load_table("t", [{"a": 1}])
        relation.insert({"a": 2})
        assert db.sql("select count(*) as n from t x").scalar() == 2

    def test_evolving_schema_extracted_in_new_tiles(self):
        _db, relation = self.make()
        relation.insert_many(
            {"a": i, "b": "x", "geo": {"lat": float(i)}}
            for i in range(16))
        tile = relation.tiles[-1]
        assert tile.column(KeyPath.parse("geo.lat")) is not None
        # older tiles remain untouched
        assert relation.tiles[0].column(KeyPath.parse("geo.lat")) is None


class TestPlanTimeSampling:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database(config=ExtractionConfig(tile_size=64))
        docs = [{"v": i % 100, "s": f"name-{i % 7}"} for i in range(1000)]
        database.load_table("t", docs)
        return database

    def _estimate(self, db, query, enable_sampling):
        from repro.engine.optimizer import PlannedScan, Planner
        from repro.sql.binder import Binder
        from repro.sql.parser import parse

        options = QueryOptions(enable_sampling=enable_sampling)
        block = Binder(db.tables, options).bind(parse(query))
        planner = Planner(options)
        planned = {s.alias: PlannedScan(s) for s in block.sources}
        edges, residuals = planner._classify_predicates(block, planned)
        planner._derive_skip_paths(block, planned, edges, residuals)
        return planner._estimate_source(planned["t"])

    def test_sampling_estimates_like_predicates(self, db):
        # LIKE has no sketch; the static default is 25%, sampling nails
        # the true 1/7
        query = ("select count(*) as n from t t "
                 "where t.data->>'s' like 'name-3'")
        sampled = self._estimate(db, query, True)
        assert 80 < sampled < 220  # true: ~143

    def test_sampling_range_predicate(self, db):
        query = ("select count(*) as n from t t "
                 "where t.data->>'v'::int < 10")
        sampled = self._estimate(db, query, True)
        assert 50 < sampled < 200  # true: 100

    def test_sampling_never_returns_zero(self, db):
        query = ("select count(*) as n from t t "
                 "where t.data->>'v'::int = -1")
        sampled = self._estimate(db, query, True)
        assert 0 < sampled < 20

    def test_results_unchanged_with_sampling(self, db):
        query = ("select count(*) as n from t t "
                 "where t.data->>'v'::int < 10")
        plain = db.sql(query)
        sampled = db.sql(query, QueryOptions(enable_sampling=True))
        assert plain.rows == sampled.rows

    def test_sampling_on_json_format(self):
        database = Database(StorageFormat.JSON, CONFIG)
        database.load_table("t", [{"v": i % 4} for i in range(200)])
        result = database.sql(
            "select count(*) as n from t t where t.data->>'v'::int = 0",
            QueryOptions(enable_sampling=True))
        assert result.scalar() == 50
