"""Tests for tuple reordering across tile partitions (Section 3.2)."""

import math
import random

import pytest

from repro.core.jsonpath import KeyPath
from repro.jsonb import encode
from repro.mining.dictionary import encode_documents
from repro.tiles import ExtractionConfig, apply_order, build_tile, reorder_partition
from repro.tiles.reorder import (
    assign_rows_to_tiles,
    match_tuples,
    mine_partition_itemsets,
    plan_swaps,
)

# Document types mimicking Figure 3's news items: each type has its own
# disjoint-ish structure.
DOC_TYPES = {
    "story": lambda i: {"id": i, "type": "story", "score": i % 7,
                        "desc": 2, "title": "t", "url": "u"},
    "poll": lambda i: {"id": i, "type": "poll", "score": i % 5,
                       "desc": 2, "title": "t"},
    "pollop": lambda i: {"id": i, "type": "pollop", "score": i % 3,
                         "poll": 2, "title": "t"},
    "comment": lambda i: {"id": i, "type": "comment", "parent": i - 1,
                          "text": "c"},
}


def interleaved_documents(n, kinds=("story", "comment", "pollop", "poll")):
    """Round-robin document types: zero spatial locality."""
    return [DOC_TYPES[kinds[i % len(kinds)]](i) for i in range(n)]


def dominant_itemset_fraction(documents, tile_size):
    """For each tile, the fraction of tuples sharing the most common key
    set; averaged over tiles.  1.0 = perfectly clustered."""
    fractions = []
    for start in range(0, len(documents), tile_size):
        chunk = documents[start : start + tile_size]
        shapes = {}
        for doc in chunk:
            shape = frozenset(doc.keys())
            shapes[shape] = shapes.get(shape, 0) + 1
        fractions.append(max(shapes.values()) / len(chunk))
    return sum(fractions) / len(fractions)


class TestReorderEndToEnd:
    def test_permutation_is_valid(self):
        documents = interleaved_documents(128)
        config = ExtractionConfig(tile_size=16, partition_size=8)
        order = reorder_partition(documents, config)
        assert sorted(order) == list(range(128))

    def test_interleaved_types_get_clustered(self):
        documents = interleaved_documents(128)
        config = ExtractionConfig(tile_size=16, partition_size=8, threshold=0.6)
        before = dominant_itemset_fraction(documents, 16)
        reordered = apply_order(documents, reorder_partition(documents, config))
        after = dominant_itemset_fraction(reordered, 16)
        assert before <= 0.3  # round-robin of 4 types: ~25% per tile
        assert after >= 0.9   # nearly every tile dominated by one type

    def test_reordering_enables_extraction(self):
        documents = interleaved_documents(128)
        config = ExtractionConfig(tile_size=16, partition_size=8, threshold=0.6)
        # without reordering: only the keys shared by >=60% extract
        plain_tile = build_tile(documents[:16], [encode(d) for d in documents[:16]],
                                config, 0, 0)
        plain_paths = {str(p) for p in plain_tile.columns}
        assert "url" not in plain_paths and "parent" not in plain_paths

        reordered = apply_order(documents, reorder_partition(documents, config))
        tiles = [
            build_tile(reordered[s : s + 16],
                       [encode(d) for d in reordered[s : s + 16]],
                       config, s // 16, s)
            for s in range(0, 128, 16)
        ]
        all_paths = set()
        for tile in tiles:
            all_paths |= {str(p) for p in tile.columns}
        # type-specific keys become extractable in their clustered tiles
        assert "url" in all_paths
        assert "parent" in all_paths

    def test_shuffled_input(self):
        rng = random.Random(42)
        documents = interleaved_documents(256)
        rng.shuffle(documents)
        config = ExtractionConfig(tile_size=32, partition_size=8, threshold=0.6)
        reordered = apply_order(documents, reorder_partition(documents, config))
        assert dominant_itemset_fraction(reordered, 32) >= 0.85

    def test_homogeneous_input_is_stable_shape(self):
        documents = [DOC_TYPES["story"](i) for i in range(64)]
        config = ExtractionConfig(tile_size=16, partition_size=4)
        order = reorder_partition(documents, config)
        assert sorted(order) == list(range(64))
        reordered = apply_order(documents, order)
        assert dominant_itemset_fraction(reordered, 16) == 1.0

    def test_single_tile_partition_is_identity(self):
        documents = interleaved_documents(10)
        config = ExtractionConfig(tile_size=16, partition_size=8)
        assert reorder_partition(documents, config) == list(range(10))

    def test_empty_input(self):
        config = ExtractionConfig(tile_size=16)
        assert reorder_partition([], config) == []


class TestMiningSteps:
    def test_reduced_threshold_finds_minority_itemsets(self):
        documents = interleaved_documents(128)
        config = ExtractionConfig(tile_size=16, partition_size=8, threshold=0.6)
        _, transactions = encode_documents(documents)
        itemsets = mine_partition_itemsets(transactions, config)
        # each of the 4 document types has 32 tuples > 0.6*16 = 9.6
        assert len(itemsets) >= 4

    def test_survival_threshold(self):
        # a type with too few tuples in the partition cannot fill
        # threshold * tile_size slots and must not survive
        documents = [DOC_TYPES["story"](i) for i in range(60)] + [
            DOC_TYPES["comment"](i) for i in range(4)
        ]
        config = ExtractionConfig(tile_size=16, partition_size=4, threshold=0.6)
        _, transactions = encode_documents(documents)
        itemsets = mine_partition_itemsets(transactions, config)
        flat = set().union(*itemsets) if itemsets else set()
        dictionary, _ = encode_documents(documents)
        from repro.core.types import JsonType
        parent_item = (KeyPath.parse("parent"), JsonType.INT)
        if parent_item in dictionary:
            assert dictionary.lookup(parent_item) not in flat


class TestAssignment:
    def test_counts_preserved(self):
        matches = [frozenset({1})] * 10 + [frozenset({2})] * 10
        tile_of_row = [i // 5 for i in range(20)]
        desired = assign_rows_to_tiles(matches, tile_of_row, [5, 5, 5, 5],
                                       threshold=0.6, tile_size=5)
        per_tile = [desired.count(t) for t in range(4)]
        assert per_tile == [5, 5, 5, 5]

    def test_clusters_land_in_dedicated_tiles(self):
        matches = [frozenset({1})] * 10 + [frozenset({2})] * 10
        tile_of_row = [i % 4 for i in range(20)]  # interleaved
        desired = assign_rows_to_tiles(matches, tile_of_row, [5, 5, 5, 5],
                                       threshold=0.6, tile_size=5)
        for cluster in (frozenset({1}), frozenset({2})):
            tiles = {desired[row] for row, m in enumerate(matches) if m == cluster}
            assert len(tiles) == 2  # 10 rows into 2 tiles of 5

    def test_small_cluster_below_threshold_left_alone(self):
        matches = [frozenset({1})] * 18 + [frozenset({2})] * 2
        tile_of_row = [i // 5 for i in range(20)]
        desired = assign_rows_to_tiles(matches, tile_of_row, [5, 5, 5, 5],
                                       threshold=0.6, tile_size=5)
        per_tile = [desired.count(t) for t in range(4)]
        assert per_tile == [5, 5, 5, 5]


class TestPlanSwaps:
    def test_no_moves_no_swaps(self):
        assert plan_swaps([0, 0, 1, 1], [0, 0, 1, 1]) == []

    def test_simple_exchange(self):
        swaps = plan_swaps([0, 1], [1, 0])
        assert swaps == [(1, 0)] or swaps == [(0, 1)]

    def test_realizes_mapping(self):
        rng = random.Random(7)
        tile_of_row = [i // 8 for i in range(32)]
        desired = list(tile_of_row)
        rng.shuffle(desired)
        # make feasible: shuffle preserves per-tile counts by construction
        swaps = plan_swaps(tile_of_row, desired)
        current = list(tile_of_row)
        for a, b in swaps:
            current[a], current[b] = current[b], current[a]
        assert current == desired

    def test_three_cycle(self):
        tile_of_row = [0, 1, 2]
        desired = [1, 2, 0]
        swaps = plan_swaps(tile_of_row, desired)
        current = list(tile_of_row)
        for a, b in swaps:
            current[a], current[b] = current[b], current[a]
        assert current == desired
        assert len(swaps) == 2  # n - cycles

    def test_swap_count_bounded(self):
        rng = random.Random(99)
        tile_of_row = [i // 16 for i in range(128)]
        desired = list(tile_of_row)
        rng.shuffle(desired)
        swaps = plan_swaps(tile_of_row, desired)
        misplaced = sum(a != b for a, b in zip(tile_of_row, desired))
        assert len(swaps) <= misplaced


class TestReorderEdgeCases:
    """Satellite coverage: small partitions, degenerate itemsets, ties,
    and partitions whose tiles were mutated in place by updates."""

    def test_partition_smaller_than_partition_size(self):
        # 3 tiles of 16 with partition_size=8: the partition is just
        # smaller, reordering must still cluster what it has
        documents = interleaved_documents(48)
        config = ExtractionConfig(tile_size=16, partition_size=8,
                                  threshold=0.6)
        order = reorder_partition(documents, config)
        assert sorted(order) == list(range(48))
        reordered = apply_order(documents, order)
        assert dominant_itemset_fraction(reordered, 16) > \
            dominant_itemset_fraction(documents, 16)

    def test_all_tuples_match_one_itemset(self):
        # every tuple matches the single surviving itemset: nothing can
        # improve, the permutation must be the identity (and stable)
        documents = [DOC_TYPES["story"](i) for i in range(64)]
        config = ExtractionConfig(tile_size=16, partition_size=4)
        _dictionary, transactions = encode_documents(documents)
        itemsets = mine_partition_itemsets(transactions, config)
        matches = match_tuples(transactions, itemsets)
        assert len({m for m in matches if m is not None}) == 1
        assert reorder_partition(documents, config) == list(range(64))

    def test_tied_itemset_scores_are_deterministic(self):
        # two document types with exactly equal frequency everywhere:
        # itemset ranking and cluster placement tie, and the tie-break
        # (sorted item ids) must make repeated runs identical
        documents = [DOC_TYPES["story" if i % 2 == 0 else "comment"](i)
                     for i in range(128)]
        config = ExtractionConfig(tile_size=16, partition_size=8,
                                  threshold=0.6)
        first = reorder_partition(documents, config)
        second = reorder_partition(list(documents), config)
        assert first == second
        assert sorted(first) == list(range(128))
        reordered = apply_order(documents, first)
        assert dominant_itemset_fraction(reordered, 16) >= 0.9

    def test_reorder_partition_with_updated_tile(self):
        """A partition containing a tile mutated in place by
        Relation.update reorders from the *current* JSONB contents —
        the updated documents move with their new shape."""
        from repro.storage import StorageFormat, load_documents

        documents = interleaved_documents(64)
        config = ExtractionConfig(tile_size=16, partition_size=4,
                                  threshold=0.6,
                                  enable_reordering=False)
        relation = load_documents("t", documents, StorageFormat.TILES,
                                  config)
        # rewrite a few rows of tile 0 into the comment shape
        for row in (0, 4, 8):
            relation.update(row, DOC_TYPES["comment"](1000 + row))
        before_rows = sorted(
            str(sorted(doc.items())) for doc in relation.documents())
        assert relation.reorganize_partition(0)
        after_rows = sorted(
            str(sorted(doc.items())) for doc in relation.documents())
        assert before_rows == after_rows  # a permutation, nothing else
        assert [t.header.tile_number for t in relation.tiles] == \
            list(range(len(relation.tiles)))
        assert [t.first_row for t in relation.tiles] == \
            [16 * i for i in range(len(relation.tiles))]
        # the updated documents survived with their new contents
        updated = [doc for doc in relation.documents()
                   if doc.get("id", 0) >= 1000]
        assert len(updated) == 3


class TestOccupancyAwareReordering:
    """Online maintenance reorders partitions whose tiles were sealed
    at uneven sizes (partial flushes); occupancy drives the layout."""

    def _transactions(self, documents):
        return encode_documents(documents)[1]

    def test_occupancy_must_cover_all_rows(self):
        from repro.tiles.reorder import reorder_transactions

        documents = interleaved_documents(40)
        config = ExtractionConfig(tile_size=16, partition_size=4)
        with pytest.raises(ValueError):
            reorder_transactions(self._transactions(documents), config,
                                 occupancy=[16, 16])  # 32 != 40

    def test_uneven_tiles_reorder_within_boundaries(self):
        from repro.tiles.reorder import reorder_transactions

        documents = interleaved_documents(44)
        config = ExtractionConfig(tile_size=16, partition_size=4,
                                  threshold=0.6)
        occupancy = [16, 12, 16]  # a partial tile in the middle
        order = reorder_transactions(self._transactions(documents),
                                     config, occupancy=occupancy)
        assert sorted(order) == list(range(44))
        reordered = apply_order(documents, order)

        def dominance(docs):
            # per-tile dominance computed over the actual boundaries
            fractions, start = [], 0
            for count in occupancy:
                chunk = docs[start : start + count]
                start += count
                shapes = {}
                for doc in chunk:
                    shape = frozenset(doc.keys())
                    shapes[shape] = shapes.get(shape, 0) + 1
                fractions.append(max(shapes.values()) / len(chunk))
            return sum(fractions) / len(fractions)

        # 11 rows of each of 4 types into 16/12/16-row tiles: perfect
        # clustering is impossible, but round-robin (~0.27) must improve
        assert dominance(reordered) >= 0.55
        assert dominance(reordered) > dominance(documents)

    def test_none_occupancy_matches_classic_layout(self):
        from repro.tiles.reorder import reorder_transactions

        documents = interleaved_documents(64)
        config = ExtractionConfig(tile_size=16, partition_size=4,
                                  threshold=0.6)
        transactions = self._transactions(documents)
        classic = reorder_transactions(transactions, config)
        explicit = reorder_transactions(transactions, config,
                                        occupancy=[16, 16, 16, 16])
        assert classic == explicit
