"""Tests for on-disk persistence (save/load of relations)."""

import pytest

from repro import Database, ExtractionConfig, StorageFormat
from repro.core.jsonpath import KeyPath
from repro.errors import StorageError
from repro.storage.persist import (
    load_relation,
    open_database,
    save_database,
    save_relation,
)

CONFIG = ExtractionConfig(tile_size=32, partition_size=2)


def tweets(n):
    return [{"id": i, "create": "2020-06-01", "text": f"tweet {i}" * 3,
             "user": {"id": i % 17}, "score": float(i) / 3}
            for i in range(n)]


class TestRelationRoundTrip:
    @pytest.mark.parametrize("storage_format", [
        StorageFormat.JSON, StorageFormat.JSONB, StorageFormat.SINEW,
        StorageFormat.TILES,
    ])
    def test_documents_survive(self, tmp_path, storage_format):
        db = Database(storage_format, CONFIG)
        relation = db.load_table("t", tweets(100))
        path = tmp_path / "t.jtile"
        size = save_relation(relation, path)
        assert size > 0
        restored = load_relation(path)
        assert restored.row_count == 100
        assert list(restored.documents()) == list(relation.documents())

    def test_extracted_columns_survive(self, tmp_path):
        db = Database(StorageFormat.TILES, CONFIG)
        relation = db.load_table("t", tweets(100))
        save_relation(relation, tmp_path / "t.jtile")
        restored = load_relation(tmp_path / "t.jtile")
        for original, loaded in zip(relation.tiles, restored.tiles):
            assert set(original.columns) == set(loaded.columns)
            for path in original.columns:
                assert original.column(path).to_list() == \
                    loaded.column(path).to_list()
                original_meta = original.header.columns[path]
                loaded_meta = loaded.header.columns[path]
                assert original_meta.column_type == loaded_meta.column_type
                assert original_meta.is_datetime == loaded_meta.is_datetime

    def test_statistics_survive(self, tmp_path):
        db = Database(StorageFormat.TILES, CONFIG)
        relation = db.load_table("t", tweets(100))
        save_relation(relation, tmp_path / "t.jtile")
        restored = load_relation(tmp_path / "t.jtile")
        path = KeyPath.parse("user.id")
        assert restored.statistics.row_count == 100
        assert restored.statistics.key_count(path) == \
            relation.statistics.key_count(path)
        assert restored.statistics.distinct(path) == \
            pytest.approx(relation.statistics.distinct(path))

    def test_bloom_filters_survive(self, tmp_path):
        db = Database(StorageFormat.TILES,
                      ExtractionConfig(tile_size=32, threshold=0.9))
        docs = tweets(64)
        docs[0]["rare_key"] = 1  # below threshold -> bloom only
        relation = db.load_table("t", docs)
        save_relation(relation, tmp_path / "t.jtile")
        restored = load_relation(tmp_path / "t.jtile")
        assert restored.tiles[0].header.may_contain(KeyPath.parse("rare_key"))
        assert not restored.tiles[0].header.may_contain(
            KeyPath.parse("never_there"))

    def test_tiles_star_children_survive(self, tmp_path):
        db = Database(StorageFormat.TILES_STAR, CONFIG)
        docs = [{"id": i, "tags": [{"v": j} for j in range(i % 6)]}
                for i in range(64)]
        relation = db.load_table("t", docs,
                                 array_paths=[KeyPath.parse("tags")])
        save_relation(relation, tmp_path / "t.jtile")
        restored = load_relation(tmp_path / "t.jtile")
        assert "tags" in restored.children
        assert restored.children["tags"].row_count == \
            relation.children["tags"].row_count

    def test_pending_inserts_round_trip(self, tmp_path):
        """Buffered (unsealed) inserts survive save/load as a buffer —
        no forced seal of an undersized tile, no dropped rows."""
        db = Database(StorageFormat.TILES, CONFIG)
        relation = db.load_table("t", tweets(32))
        relation.insert({"id": 999, "fresh": True})
        tiles_before = len(relation.tiles)
        save_relation(relation, tmp_path / "t.jtile")
        assert len(relation.tiles) == tiles_before  # save did not seal
        restored = load_relation(tmp_path / "t.jtile")
        assert restored.pending_inserts == 1
        assert restored.snapshot_insert_buffer() == \
            [{"id": 999, "fresh": True}]
        restored.flush_inserts()
        assert restored.row_count == 33
        assert restored.document(32) == {"id": 999, "fresh": True}

    def test_pending_inserts_queryable_after_reopen(self, tmp_path):
        db = Database(StorageFormat.TILES, CONFIG)
        db.load_table("t", tweets(40))
        db.table("t").insert_many([{"id": 1000 + i} for i in range(5)])
        save_database(db, tmp_path / "store")
        reopened = open_database(tmp_path / "store")
        relation = reopened.table("t")
        assert relation.pending_inserts == 5
        relation.flush_inserts()
        assert reopened.sql("select count(*) as n from t x").scalar() == 45

    def test_save_relation_extra_round_trip(self, tmp_path):
        from repro.storage.persist import read_relation_extra

        db = Database(StorageFormat.TILES, CONFIG)
        relation = db.load_table("t", tweets(32))
        path = tmp_path / "t.jtile"
        save_relation(relation, path, extra={"wal": {"epoch": 3,
                                                     "records": 17}})
        assert read_relation_extra(path) == {"wal": {"epoch": 3,
                                                     "records": 17}}
        save_relation(relation, path)
        assert read_relation_extra(path) == {}
        # the extra dict rides in the catalog, not in the relation
        assert load_relation(path).row_count == 32

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.jtile"
        path.write_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(StorageError):
            load_relation(path)

    def test_truncated_file_rejected(self, tmp_path):
        db = Database(StorageFormat.TILES, CONFIG)
        relation = db.load_table("t", tweets(50))
        path = tmp_path / "t.jtile"
        save_relation(relation, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 100])
        with pytest.raises(StorageError):
            load_relation(path)


class TestFormatV1Compatibility:
    """The committed pre-refactor fixture must load through the new
    lazy reader: ``format_v1.jtile`` was written by the v1
    (leading-catalog, ``blob_sizes``) serializer before the footer
    index existed."""

    FIXTURE_QUERY = ("select count(*) as n, "
                     "sum(o.data->>'score'::float) as s from old o "
                     "where o.data->'user'->>'id'::int >= 3")

    @pytest.fixture
    def fixture_paths(self):
        import json
        from pathlib import Path

        directory = Path(__file__).parent / "fixtures"
        expected = json.loads(
            (directory / "format_v1_expected.json").read_text())
        return directory / "format_v1.jtile", expected

    def test_v1_file_loads_with_expected_shape(self, fixture_paths):
        path, expected = fixture_paths
        relation = load_relation(path)
        assert relation.row_count == expected["row_count"]
        assert relation.pending_inserts == expected["pending"]
        assert len(relation.tiles) == expected["tiles"]

    def test_v1_file_loads_lazily(self, fixture_paths):
        path, _expected = fixture_paths
        relation = load_relation(path)
        # v1 blobs are addressable from their cumulative sizes: no
        # tile payload is faulted in by the load itself
        assert not any(handle.resident for handle in relation.tiles)
        assert all(handle.disk_bytes > 0 for handle in relation.tiles)

    def test_v1_query_results_match(self, fixture_paths):
        path, expected = fixture_paths
        db = Database(StorageFormat.TILES, CONFIG)
        db.register("old", load_relation(path))
        rows = [list(row) for row in db.sql(self.FIXTURE_QUERY).rows]
        assert rows == expected["query"]

    def test_v1_rewrites_as_v2(self, tmp_path, fixture_paths):
        path, expected = fixture_paths
        relation = load_relation(path)
        new_path = tmp_path / "upgraded.jtile"
        save_relation(relation, new_path)
        assert new_path.read_bytes()[:5] == b"JTIL2"
        db = Database(StorageFormat.TILES, CONFIG)
        db.register("old", load_relation(new_path))
        rows = [list(row) for row in db.sql(self.FIXTURE_QUERY).rows]
        assert rows == expected["query"]


class TestTornFileSafety:
    def test_failed_save_leaves_previous_snapshot_intact(
            self, tmp_path, monkeypatch):
        from repro.storage import persist

        db = Database(StorageFormat.TILES, CONFIG)
        relation = db.load_table("t", tweets(64))
        path = tmp_path / "t.jtile"
        save_relation(relation, path)
        good = path.read_bytes()

        def explode(*args, **kwargs):
            raise RuntimeError("disk full")

        monkeypatch.setattr(persist, "_relation_meta", explode)
        bigger = db.load_table("t2", tweets(96))
        with pytest.raises(RuntimeError):
            save_relation(bigger, path)
        # the crash hit the temp sibling; the published file is whole
        assert path.read_bytes() == good
        assert load_relation(path).row_count == 64

    def test_save_replaces_atomically(self, tmp_path):
        db = Database(StorageFormat.TILES, CONFIG)
        path = tmp_path / "t.jtile"
        save_relation(db.load_table("a", tweets(32)), path)
        save_relation(db.load_table("b", tweets(64)), path)
        assert load_relation(path).row_count == 64
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_missing_trailer_rejected(self, tmp_path):
        db = Database(StorageFormat.TILES, CONFIG)
        relation = db.load_table("t", tweets(50))
        path = tmp_path / "t.jtile"
        save_relation(relation, path)
        data = path.read_bytes()
        # flip the trailer magic: the file length is right but the
        # completeness proof is gone
        path.write_bytes(data[:-5] + b"XXXXX")
        with pytest.raises(StorageError):
            load_relation(path)


class TestDatabaseRoundTrip:
    def test_queries_identical_after_reopen(self, tmp_path):
        db = Database(StorageFormat.TILES, CONFIG)
        db.load_table("tweets", tweets(120))
        db.load_table("users", [{"uid": i, "name": f"u{i}"}
                                for i in range(17)])
        query = ("select u.data->>'name' as name, count(*) as n, "
                 "sum(t.data->>'score'::float) as s "
                 "from tweets t, users u "
                 "where t.data->'user'->>'id'::int = u.data->>'uid'::int "
                 "group by u.data->>'name' order by n desc, name limit 5")
        expected = db.sql(query).rows

        written = save_database(db, tmp_path / "store")
        assert set(written) == {"tweets", "users"}
        reopened = open_database(tmp_path / "store")
        assert reopened.sql(query).rows == expected

    def test_children_not_saved_twice(self, tmp_path):
        db = Database(StorageFormat.TILES_STAR, CONFIG)
        docs = [{"id": i, "tags": [{"v": j} for j in range(i % 6)]}
                for i in range(64)]
        db.load_table("t", docs, array_paths=[KeyPath.parse("tags")])
        written = save_database(db, tmp_path / "store")
        assert set(written) == {"t"}  # the child rides inside t.jtile
        reopened = open_database(tmp_path / "store")
        assert "t__tags" in reopened.tables

    def test_skipping_still_works_after_reopen(self, tmp_path):
        db = Database(StorageFormat.TILES, CONFIG)
        docs = [{"kind_a": i} for i in range(64)] + \
               [{"kind_b": i} for i in range(64)]
        db.load_table("mixed", docs,
                      config=ExtractionConfig(tile_size=32,
                                              enable_reordering=False))
        save_database(db, tmp_path / "store")
        reopened = open_database(tmp_path / "store")
        result = reopened.sql("select count(*) as n from mixed m "
                              "where m.data->>'kind_b'::int >= 0")
        assert result.scalar() == 64
        assert result.counters.tiles_skipped >= 2
