"""Tests for the plan-fragment IR (DESIGN.md §10).

The fragment planner must (a) emit the documented DAG shapes and
decline reasons purely from block shape, (b) survive a JSON wire
round-trip (the coordinator ships plans to shards), and (c) execute
bit-identically to the fused operator tree on a single node — the
in-process `LocalExchange` case that makes the cluster's broadcast
joins trustworthy by construction.
"""

import json
import struct

import pytest

from repro import Database, ExtractionConfig, QueryOptions
from repro.engine.fragments import (
    FragmentPlan,
    execute_fragments_local,
    plan_fragments,
)
from repro.errors import ExecutionError
from repro.server import protocol
from repro.sql.binder import Binder
from repro.sql.parser import parse

CONFIG = ExtractionConfig(tile_size=64, partition_size=2)


def bits(value):
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    return (type(value).__name__, value)


@pytest.fixture(scope="module")
def db():
    database = Database(config=CONFIG)
    orders = [{"o_id": i, "cust": i % 40, "amount": float(i % 97),
               "region": f"r{i % 7}"} for i in range(1000)]
    custs = [{"c_id": i, "name": f"c-{i}", "tier": i % 3}
             for i in range(40)]
    database.load_table("orders", orders)
    database.load_table("custs", custs)
    return database


def _bind(db, sql, options=None):
    options = options or QueryOptions()
    return Binder(db.tables, options).bind(parse(sql))


JOIN_SQL = """
select c.data->>'tier'::int as tier, count(*) as n,
       sum(o.data->>'amount'::float) as total
from orders o, custs c
where o.data->>'cust'::int = c.data->>'c_id'::int
group by c.data->>'tier'::int
order by tier
"""


class TestPlanning:
    def test_single_source_plan_shape(self, db):
        block = _bind(db, "select count(*) as n from orders o")
        plan = plan_fragments(block)
        assert not plan.declined
        assert plan.mode == "scalar"
        assert [f.kind for f in plan.fragments] == ["partial", "merge"]
        assert plan.fragments[0].partitioning == "canonical-blocks"
        assert plan.fragments[1].partitioning == "coordinator"
        assert plan.join is None

    def test_join_plan_shape_and_orientation(self, db):
        block = _bind(db, JOIN_SQL)
        plan = plan_fragments(block)
        assert not plan.declined
        assert [f.kind for f in plan.fragments] == \
            ["build", "partial", "merge"]
        assert plan.fragments[0].exchange == "broadcast"
        # the 40-row custs table is the hash build side, the 1000-row
        # orders table probes (the 4x swap rule)
        assert plan.join.build == "c"
        assert plan.join.probe == "o"
        assert plan.join.build_estimate > 0

    def test_decline_reasons(self, db):
        cases = {
            "select o.data->>'o_id'::int as a, c.data->>'c_id'::int "
            "as b from orders o, custs c": "cross-product",
            "select count(*) as n from orders o left join custs c on "
            "o.data->>'cust'::int = c.data->>'c_id'::int": "left-join",
            "select count(*) as n from orders o, orders b, custs c "
            "where o.data->>'cust'::int = c.data->>'c_id'::int and "
            "b.data->>'cust'::int = c.data->>'c_id'::int":
                "not-two-tables",
            "select count(*) as n from orders o where "
            "o.data->>'cust'::int in (select c.data->>'c_id'::int "
            "from custs c)": "subquery-filter",
        }
        for sql, reason in cases.items():
            plan = plan_fragments(_bind(db, sql))
            assert plan.declined, sql
            assert plan.reason == reason, sql

    def test_float_sum_composite_keys_decline_output_mode(self, db):
        # float sums under composite keys have no exact partial state
        sql = ("select o.data->>'region' as r, c.data->>'name' as m, "
               "sum(o.data->>'amount'::float) as s from orders o, "
               "custs c where o.data->>'cust'::int = "
               "c.data->>'c_id'::int "
               "group by o.data->>'region', c.data->>'name'")
        plan = plan_fragments(_bind(db, sql))
        assert plan.declined
        assert plan.reason == "output-mode"

    def test_plan_round_trips_the_wire(self, db):
        plan = plan_fragments(_bind(db, JOIN_SQL))
        wire = json.loads(protocol.encode(plan.to_dict()))
        assert wire["mode"] == plan.mode
        assert wire["join"]["build"] == "c"
        assert [f["kind"] for f in wire["fragments"]] == \
            ["build", "partial", "merge"]

    def test_describe_lines(self, db):
        assert "=broadcast=>" in plan_fragments(_bind(db, JOIN_SQL)) \
            .describe()
        assert "gather" in FragmentPlan("gather", reason="x").describe()


class TestLocalExecution:
    """`execute_fragments_local` vs the fused tree, bit for bit."""

    QUERIES = [
        # scalar over a join
        "select count(*) as n, min(c.data->>'name') as lo "
        "from orders o, custs c "
        "where o.data->>'cust'::int = c.data->>'c_id'::int",
        # single-key
        JOIN_SQL,
        # generic (composite keys, exact aggregates)
        "select o.data->>'region' as r, c.data->>'tier'::int as t, "
        "count(*) as n from orders o, custs c "
        "where o.data->>'cust'::int = c.data->>'c_id'::int "
        "group by o.data->>'region', c.data->>'tier'::int "
        "order by n desc, r, t limit 10",
        # rows mode with residual filter and order/limit
        "select o.data->>'o_id'::int as oid, c.data->>'name' as name "
        "from orders o, custs c "
        "where o.data->>'cust'::int = c.data->>'c_id'::int "
        "and o.data->>'amount'::float > 50 "
        "order by oid limit 20",
    ]

    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_join_fragments_match_fused(self, db, parallelism):
        for sql in self.QUERIES:
            options = QueryOptions(parallelism=parallelism,
                                   batch_rows=48)
            fused = db.sql(sql, QueryOptions(parallelism=parallelism,
                                             batch_rows=48,
                                             enable_fragments=False))
            block = _bind(db, sql, options)
            columns, rows, counters, order = \
                execute_fragments_local(block, options)
            assert columns == fused.columns, sql
            assert [[bits(v) for v in row] for row in rows] == \
                [[bits(v) for v in row] for row in fused.rows], sql
            assert counters.broadcast_rows > 0, sql
            assert order == ["c", "o"], sql

    def test_default_routing_matches_fused(self, db):
        sql = ("select o.data->>'region' as r, count(*) as n "
               "from orders o group by o.data->>'region' "
               "order by n desc, r")
        routed = db.sql(sql)
        fused = db.sql(sql, QueryOptions(enable_fragments=False))
        assert routed.columns == fused.columns
        assert [[bits(v) for v in row] for row in routed.rows] == \
            [[bits(v) for v in row] for row in fused.rows]

    def test_empty_build_side(self, db):
        sql = ("select count(*) as n from orders o, custs c "
               "where o.data->>'cust'::int = c.data->>'c_id'::int "
               "and c.data->>'tier'::int = 99")
        options = QueryOptions()
        block = _bind(db, sql, options)
        columns, rows, _counters, _order = \
            execute_fragments_local(block, options)
        assert columns == ["n"]
        assert rows == [(0,)]

    def test_declined_plan_raises(self, db):
        block = _bind(db, "select count(*) as n from orders o "
                          "left join custs c on o.data->>'cust'::int "
                          "= c.data->>'c_id'::int")
        with pytest.raises(ExecutionError):
            execute_fragments_local(block, QueryOptions())

    def test_explain_renders_fragments(self, db):
        text = db.explain(JOIN_SQL)
        assert "fragments: build[c] =broadcast=> probe[o]" in text
        assert "broadcast build estimate" in text
