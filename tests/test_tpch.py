"""TPC-H workload tests: generator invariants + cross-mode/ format
equality of all 22 queries.

The strongest correctness check in the suite: every query must return
identical results (1) across all five storage formats and (2) between
split-table and combined-relation mode — exercising extraction,
fallbacks, skipping, reordering and the optimizer together.
"""

import datetime

import pytest

from repro import Database, ExtractionConfig, QueryOptions, StorageFormat
from repro.workloads.tpch import (
    TABLE_NAMES,
    TPCH_QUERIES,
    generate_combined,
    generate_tables,
    make_database,
)

SF = 0.002
CONFIG = ExtractionConfig(tile_size=256, partition_size=4)


@pytest.fixture(scope="module")
def tables():
    return generate_tables(SF)


@pytest.fixture(scope="module")
def tiles_db():
    return make_database(SF, StorageFormat.TILES, CONFIG, combined=True)


@pytest.fixture(scope="module")
def reference_results(tiles_db):
    return {q: tiles_db.sql(text).rows for q, text in TPCH_QUERIES.items()}


class TestGenerator:
    def test_cardinality_ratios(self, tables):
        assert len(tables["region"]) == 5
        assert len(tables["nation"]) == 25
        assert len(tables["partsupp"]) == 4 * len(tables["part"])
        assert len(tables["lineitem"]) >= len(tables["orders"])

    def test_deterministic(self):
        first = generate_tables(SF, seed=7)
        second = generate_tables(SF, seed=7)
        assert first["lineitem"] == second["lineitem"]

    def test_seed_changes_data(self):
        assert generate_tables(SF, seed=1)["orders"] != \
            generate_tables(SF, seed=2)["orders"]

    def test_date_relationships(self, tables):
        for row in tables["lineitem"][:500]:
            ship = datetime.date.fromisoformat(row["l_shipdate"])
            receipt = datetime.date.fromisoformat(row["l_receiptdate"])
            assert receipt > ship

    def test_monetary_values_are_numeric_strings(self, tables):
        row = tables["lineitem"][0]
        assert isinstance(row["l_extendedprice"], str)
        float(row["l_extendedprice"])

    def test_every_third_customer_orderless(self, tables):
        assert all(row["o_custkey"] % 3 != 0 for row in tables["orders"])

    def test_combined_contains_all_tables(self):
        documents = generate_combined(SF)
        keys = set()
        for doc in documents:
            keys |= set(doc.keys())
        for marker in ("l_orderkey", "o_orderkey", "c_custkey", "p_partkey",
                       "ps_partkey", "s_suppkey", "n_nationkey", "r_regionkey"):
            assert marker in keys

    def test_shuffled_is_permutation(self):
        plain = generate_combined(SF, shuffled=False)
        shuffled = generate_combined(SF, shuffled=True)
        assert len(plain) == len(shuffled)
        assert plain != shuffled


class TestQuerySanity:
    """Plausibility of individual results on the reference database."""

    def test_q1_four_groups(self, reference_results):
        rows = reference_results[1]
        flags = {(row[0], row[1]) for row in rows}
        assert flags == {("A", "F"), ("N", "F"), ("N", "O"), ("R", "F")}

    def test_q1_aggregates_consistent(self, reference_results):
        for row in reference_results[1]:
            count = row[9]
            assert row[2] / count == pytest.approx(row[6])  # avg qty
            assert row[3] / count == pytest.approx(row[7])  # avg price

    def test_q4_priorities(self, reference_results):
        priorities = [row[0] for row in reference_results[4]]
        assert priorities == sorted(priorities)
        assert all(count > 0 for _, count in reference_results[4])

    def test_q6_positive_revenue(self, reference_results):
        assert reference_results[6][0][0] > 0

    def test_q13_includes_zero_orders_group(self, reference_results):
        counts = {row[0] for row in reference_results[13]}
        assert 0 in counts  # every third customer has no orders

    def test_q22_customers_without_orders(self, reference_results):
        assert sum(row[1] for row in reference_results[22]) > 0

    def test_q19_revenue_non_negative(self, reference_results):
        value = reference_results[19][0][0]
        assert value is None or value >= 0


@pytest.mark.slow
class TestFormatEquality:
    """All formats return identical results on the combined relation."""

    @pytest.fixture(scope="class", params=[
        StorageFormat.JSONB, StorageFormat.SINEW, StorageFormat.JSON,
    ], ids=lambda f: f.value)
    def other_db(self, request):
        return make_database(SF, request.param, CONFIG, combined=True)

    @pytest.mark.parametrize("query", sorted(TPCH_QUERIES))
    def test_matches_tiles(self, query, other_db, reference_results):
        rows = other_db.sql(TPCH_QUERIES[query]).rows
        assert _normalize(rows) == _normalize(reference_results[query])


class TestSplitVersusCombined:
    @pytest.fixture(scope="class")
    def split_db(self):
        return make_database(SF, StorageFormat.TILES, CONFIG, combined=False)

    @pytest.mark.parametrize("query", sorted(TPCH_QUERIES))
    def test_split_equals_combined(self, query, split_db, reference_results):
        rows = split_db.sql(TPCH_QUERIES[query]).rows
        assert _normalize(rows) == _normalize(reference_results[query])


class TestShuffledAndOptions:
    def test_shuffled_combined_equals_ordered(self, reference_results):
        db = make_database(SF, StorageFormat.TILES, CONFIG, combined=True,
                           shuffled=True)
        for query in (1, 3, 6, 12):
            rows = db.sql(TPCH_QUERIES[query]).rows
            assert _normalize(rows) == _normalize(reference_results[query])

    def test_optimizations_do_not_change_results(self, tiles_db,
                                                 reference_results):
        options = QueryOptions(enable_skipping=False, use_statistics=False,
                               enable_cast_rewriting=False)
        for query in (1, 3, 4, 13, 18):
            rows = tiles_db.sql(TPCH_QUERIES[query], options).rows
            assert _normalize(rows) == _normalize(reference_results[query])

    def test_skipping_helps_on_combined(self, tiles_db):
        with_skip = tiles_db.sql(TPCH_QUERIES[6])
        without = tiles_db.sql(TPCH_QUERIES[6],
                               QueryOptions(enable_skipping=False))
        assert with_skip.counters.tiles_skipped > 0
        assert without.counters.tiles_skipped == 0
        assert with_skip.rows == without.rows


def _normalize(rows):
    """Order-insensitive, float-tolerant comparison form."""
    def norm_value(value):
        if isinstance(value, float):
            # summation order varies between formats/modes: compare at
            # 6 significant digits
            return float(f"{value:.6g}")
        return value

    return sorted(
        (tuple(norm_value(v) for v in row) for row in rows),
        key=lambda row: tuple((v is None, str(v)) for v in row),
    )
