"""Out-of-core acceptance tests.

The differential half is the tentpole's correctness gate: every query
in the twitter / yelp / hackernews suites must return bit-identical
results whether the relation is fully resident (no budget — the legacy
behavior) or paged through a residency budget of 25% of the working
set, with peak resident tile bytes staying under the budget throughout.

The soak half runs concurrent queries, ingest+checkpoints and
maintenance cycles under a tight budget and asserts the two invariants
that make paging safe: a pinned tile is never evicted, and the flush
sealing path never deadlocks against eviction.
"""

import threading

import pytest

from repro import Database, ExtractionConfig, QueryOptions, StorageFormat
from repro.storage.persist import load_relation, save_database
from repro.storage.tile_cache import GLOBAL_TILE_CACHE, ResolvedTileCache
from repro.storage.tilestore import GLOBAL_TILE_STORE, TileStore
from repro.workloads import hackernews, twitter, yelp

CONFIG = ExtractionConfig(tile_size=64, partition_size=4)

SUITES = {
    "twitter": (lambda: twitter.make_database(400, StorageFormat.TILES,
                                              CONFIG),
                "tweets", twitter.TWITTER_QUERIES),
    "yelp": (lambda: yelp.make_database(80, StorageFormat.TILES, CONFIG),
             "yelp", yelp.YELP_QUERIES),
    "hackernews": (lambda: hackernews.make_database(400, config=CONFIG),
                   "items", hackernews.HACKERNEWS_QUERIES),
}


def row_key(row):
    return tuple((value is None, str(value)) for value in row)


def canonical(result):
    return sorted((row_key(row) for row in result.rows))


@pytest.fixture
def global_store():
    GLOBAL_TILE_CACHE.clear()
    try:
        yield GLOBAL_TILE_STORE
    finally:
        GLOBAL_TILE_STORE.set_budget(None)
        GLOBAL_TILE_STORE.reset_stats()


class TestDifferentialOutOfCore:
    """Unlimited-budget vs 25%-of-working-set budget, bit for bit."""

    @pytest.mark.parametrize("suite", sorted(SUITES))
    def test_suite_bit_identical_under_budget(self, tmp_path, suite):
        make, table, queries = SUITES[suite]
        resident_db = make()
        expected = {name: resident_db.sql(text).rows
                    for name, text in queries.items()}
        save_database(resident_db, tmp_path / suite)

        store = TileStore(cache=ResolvedTileCache())
        relation = load_relation(tmp_path / suite / f"{table}.jtile",
                                 store=store)
        working_set = sum(h.disk_bytes for h in relation.tiles)
        budget = working_set // 4
        # the budget must at least hold the one tile a serial scan pins
        assert budget > max(h.disk_bytes for h in relation.tiles)
        store.set_budget(budget)

        paged_db = Database(StorageFormat.TILES, CONFIG)
        paged_db.register(table, relation)
        for name, text in queries.items():
            assert paged_db.sql(text).rows == expected[name], (suite, name)
        stats = store.stats()
        assert stats["peak_resident_bytes"] <= budget
        assert stats["evictions"] > 0  # the budget was actually exercised
        assert stats["loads"] > len(relation.tiles)  # tiles cycled back in

    def test_documents_identical_under_budget(self, tmp_path):
        make, table, _queries = SUITES["twitter"]
        db = make()
        expected = list(db.table(table).documents())
        save_database(db, tmp_path / "d")
        store = TileStore(cache=ResolvedTileCache())
        relation = load_relation(tmp_path / "d" / f"{table}.jtile",
                                 store=store)
        store.set_budget(sum(h.disk_bytes for h in relation.tiles) // 4)
        assert list(relation.documents()) == expected

    def test_env_budget_reaches_global_store(self, monkeypatch):
        from repro.storage.tilestore import _default_budget

        monkeypatch.setenv("REPRO_MEMORY_MB", "48")
        assert TileStore(_default_budget()).budget_bytes == 48 * 2**20


class TestEvictionSoak:
    """Concurrent queries + ingest/checkpoint + maintenance under a
    tight budget: no pinned tile evicted, no deadlock."""

    QUERY = ("select count(*) as n, sum(t.data->>'score'::float) as s "
             "from t t where t.data->'user'->>'id'::int >= 3")

    @staticmethod
    def docs(start, n):
        return [{"id": i, "text": f"tweet number {i} " * 4,
                 "user": {"id": i % 17}, "score": float(i) / 3}
                for i in range(start, start + n)]

    def test_soak(self, tmp_path, global_store):
        config = ExtractionConfig(tile_size=32, partition_size=2)
        db = Database(StorageFormat.TILES, config)
        relation = db.load_table("t", self.docs(0, 256))
        save_database(db, tmp_path / "store")  # handles become clean

        violations = []

        def watch(event, rel, payload):
            if event == "evict":
                if payload.pin_count > 0:
                    violations.append(f"pinned tile evicted: {payload!r}")
                if payload.dirty:
                    violations.append(f"dirty tile evicted: {payload!r}")

        relation.add_event_hook(watch)
        budget = int(max(h.disk_bytes for h in relation.tiles) * 3)
        global_store.set_budget(budget)

        from repro.maintenance import MaintenanceDaemon

        daemon = MaintenanceDaemon({"t": relation})
        errors = []
        stop = threading.Event()

        def run(worker):
            try:
                while not stop.is_set():
                    worker()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(f"{worker.__name__}: {type(exc).__name__}: "
                              f"{exc}")

        serial, parallel = QueryOptions(), QueryOptions(parallelism=2)

        def query_serial():
            assert db.sql(self.QUERY, serial).rows

        def query_parallel():
            assert db.sql(self.QUERY, parallel).rows

        state = {"next_id": 256, "rounds": 0}

        def ingest():
            relation.insert_many(self.docs(state["next_id"], 48))
            state["next_id"] += 48
            relation.flush_inserts()
            save_database(db, tmp_path / "store")  # rebind fresh tiles
            state["rounds"] += 1
            if state["rounds"] >= 6:
                stop.set()

        def maintain():
            daemon.run_cycle(force=True)

        threads = [threading.Thread(target=run, args=(worker,), daemon=True)
                   for worker in (query_serial, query_parallel, ingest,
                                  maintain)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        hung = [t for t in threads if t.is_alive()]
        assert not hung, f"deadlocked threads: {hung}"
        assert not errors, errors
        assert not violations, violations

        stats = global_store.stats()
        assert stats["evictions"] > 0  # the budget was under real pressure
        # quiesced: every row that was ingested is queryable
        result = db.sql(self.QUERY)
        total = state["next_id"]
        assert result.rows[0][0] == sum(1 for i in range(total)
                                        if i % 17 >= 3)
