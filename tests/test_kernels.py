"""Differential suite for the vectorized batch kernels.

Every kernel (group-key factorization, join code probe, lexsort
ORDER BY, vectorized scalar aggregation) must produce rows that are
bit-identical to the per-tuple reference paths — the kernels replay
the serial float-operation sequence, group discovery order and sort
tie order exactly.  The suite runs real workload queries with kernels
on vs off, hammers the decline-and-fall-back gates (NaN keys, int64
overflow, mixed-type columns), and drives the scatter/gather partial
paths directly.
"""

import struct

import numpy as np
import pytest

from repro import Database, ExtractionConfig, QueryOptions, StorageFormat
from repro.core.types import ColumnType
from repro.engine.kernels import (
    GroupByKernel,
    JoinCodeIndex,
    combine_codes,
    factorize,
    lexsort_indices,
    masked_sum,
)
from repro.engine.partial import (
    classify_block,
    execute_partial,
    merge_partial_results,
)
from repro.errors import StorageError
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage.column import ColumnVector
from repro.workloads import twitter, yelp
from repro.workloads.tpch import TPCH_QUERIES, make_database as make_tpch

CONFIG = ExtractionConfig(tile_size=128, partition_size=4)


def bits(value):
    """A bit-exact comparison key (floats by their IEEE bytes)."""
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    return (type(value).__name__, value)


def assert_bit_identical(reference, candidate, context=""):
    assert reference.columns == candidate.columns, context
    assert len(reference.rows) == len(candidate.rows), context
    for row_r, row_c in zip(reference.rows, candidate.rows):
        assert [bits(v) for v in row_r] == [bits(v) for v in row_c], \
            f"{context}: {row_r!r} != {row_c!r}"


def run_on_off(db, sql, batch_rows=64, parallelism=1, **kwargs):
    """Execute with kernels on and off; the rows must match bit for
    bit.  Returns ``(on, off)`` results so callers can assert on the
    counters as well."""
    on = db.sql(sql, QueryOptions(enable_kernels=True,
                                  batch_rows=batch_rows,
                                  parallelism=parallelism, **kwargs))
    off = db.sql(sql, QueryOptions(enable_kernels=False,
                                   batch_rows=batch_rows,
                                   parallelism=parallelism, **kwargs))
    assert_bit_identical(off, on, sql)
    return on, off


# ----------------------------------------------------------------------
# workload differentials: yelp / twitter / TPC-H, kernels on vs off


class TestYelpKernels:
    @pytest.fixture(scope="class")
    def db(self):
        return yelp.make_database(120, StorageFormat.TILES, CONFIG)

    def test_all_queries_bit_identical(self, db):
        for number, sql in yelp.YELP_QUERIES.items():
            run_on_off(db, sql)

    def test_uneven_batch_boundaries(self, db):
        # batch sizes that do not divide the tile size exercise
        # trailing partial batches through every kernel
        for batch_rows in (17, 37, 4096):
            run_on_off(db, yelp.YELP_QUERIES[2], batch_rows=batch_rows)

    def test_parallel_morsels_bit_identical(self, db):
        for number, sql in yelp.YELP_QUERIES.items():
            run_on_off(db, sql, parallelism=8)

    def test_kernel_counters_engage(self, db):
        # query 2 is a pure GROUP BY + ORDER BY: the group-by and sort
        # kernels both run, and nothing forces a decline
        on, off = run_on_off(db, yelp.YELP_QUERIES[2])
        assert on.counters.kernel_rows > 0
        assert on.counters.fallback_rows == 0
        assert off.counters.kernel_rows == 0
        assert off.counters.fallback_rows == 0

    def test_join_probe_counters_engage(self, db):
        # query 3 joins on a string key — the generic probe kernel path
        on, _off = run_on_off(db, yelp.YELP_QUERIES[3])
        assert on.counters.kernel_rows > 0


class TestTwitterKernels:
    @pytest.fixture(scope="class")
    def db(self):
        return twitter.make_database(400, StorageFormat.TILES, CONFIG)

    @pytest.fixture(scope="class")
    def star_db(self):
        return twitter.make_database(400, StorageFormat.TILES_STAR, CONFIG)

    def test_all_queries_bit_identical(self, db):
        for number, sql in twitter.TWITTER_QUERIES.items():
            run_on_off(db, sql)

    def test_star_queries_bit_identical(self, star_db):
        for number, sql in twitter.TWITTER_QUERIES_STAR.items():
            run_on_off(star_db, sql)


class TestTpchKernels:
    @pytest.fixture(scope="class")
    def db(self):
        return make_tpch(0.002, StorageFormat.TILES,
                         ExtractionConfig(tile_size=256, partition_size=4),
                         combined=True)

    @pytest.mark.parametrize("query", sorted(TPCH_QUERIES))
    def test_query_bit_identical(self, db, query):
        run_on_off(db, TPCH_QUERIES[query])


# ----------------------------------------------------------------------
# adversarial tables: every decline gate must fall back with
# bit-identical results


class TestEdgeCases:
    def _load(self, rows, name="t"):
        db = Database(StorageFormat.TILES, CONFIG)
        db.load_table(name, rows)
        return db

    def test_null_group_keys(self):
        rows = [{"k": i % 5, "v": float(i)} if i % 3 else {"v": float(i)}
                for i in range(400)]
        db = self._load(rows)
        on, _ = run_on_off(
            db, "select t.data->>'k'::int as k, count(*) as n, "
                "sum(t.data->>'v'::float) as s from t t "
                "group by t.data->>'k'::int order by k")
        assert on.counters.kernel_rows > 0

    def test_string_group_and_join_keys(self):
        words = ["ale", "bock", "cask", "dram", "ester"]
        left = [{"w": words[i % 5], "v": i} for i in range(300)]
        right = [{"w": w, "rank": i} for i, w in enumerate(words)]
        db = self._load(left, "l")
        db.load_table("r", right)
        run_on_off(
            db, "select l.data->>'w' as w, count(*) as n from l l "
                "group by l.data->>'w' order by w")
        on, _ = run_on_off(
            db, "select r.data->>'rank'::int as rank, count(*) as n "
                "from l l, r r "
                "where l.data->>'w' = r.data->>'w' "
                "group by r.data->>'rank'::int order by rank")
        assert on.counters.kernel_rows > 0

    def test_composite_mixed_type_keys(self):
        # column `k` flips between int and string documents; `->>`
        # yields the text form, so the factorizer sees a uniform object
        # column and must keep the dict's first-seen group order across
        # the type-conflicted extraction (raw mixed-object declines are
        # unit-tested in TestFactorize)
        rows = []
        for i in range(200):
            k = i % 4 if i % 2 else f"s{i % 4}"
            rows.append({"k": k, "g": i % 3, "v": float(i)})
        db = self._load(rows)
        on, _ = run_on_off(
            db, "select t.data->>'g'::int as g, count(*) as n, "
                "min(t.data->>'v'::float) as lo from t t "
                "group by t.data->>'g'::int, t.data->>'k' "
                "order by g, n")
        assert on.counters.kernel_rows > 0

    def test_nan_float_keys_force_fallback(self):
        # NaN cannot be ingested (the stats sketches reject it), but a
        # query-time cast of the string "nan" produces NaN group keys:
        # the dict path gives every NaN its own group, so the kernel
        # must decline the batch untouched
        rows = [{"k": "nan" if i % 7 == 0 else str(float(i % 4)),
                 "g": i % 3, "v": i} for i in range(200)]
        db = self._load(rows)
        # two keys, so the generic GroupByKernel (not the single-key
        # vectorized state) owns the batch and must decline it
        on, _ = run_on_off(
            db, "select count(*) as n, sum(t.data->>'v'::int) as s "
                "from t t group by t.data->>'k'::float, "
                "t.data->>'g'::int order by n, s")
        assert on.counters.fallback_rows > 0

    def test_int64_sum_overflow_declines_mid_stream(self):
        # per-group running sums creep toward 2**62: after a few
        # batches the int sum slot's overflow bound trips, the kernel
        # spills its exact state mid-query and the per-tuple loop
        # (arbitrary-precision ints) finishes the remaining batches
        big = 2 ** 56
        rows = [{"g": i % 2, "h": i % 3, "v": big} for i in range(64)]
        db = self._load(rows)
        # pin the fused tree: the fragment path folds per-chunk partial
        # states whose sums never reach the overflow bound, so only the
        # fused kernel's running sums can trip the mid-stream spill
        on, off = run_on_off(
            db, "select t.data->>'g'::int as g, t.data->>'h'::int as h, "
                "sum(t.data->>'v'::int) as s from t t "
                "group by t.data->>'g'::int, t.data->>'h'::int "
                "order by g, h", batch_rows=8, enable_fragments=False)
        assert on.counters.kernel_rows > 0
        assert on.counters.fallback_rows > 0
        assert on.rows[0][2] == 11 * big

    def test_mixed_sign_zero_minmax(self):
        rows = [{"g": i % 2, "v": -0.0 if i % 3 else 0.0}
                for i in range(120)]
        db = self._load(rows)
        # bits() distinguishes -0.0 from 0.0, so the declined kernel
        # must reproduce the serial min/max choice exactly
        run_on_off(
            db, "select t.data->>'g'::int as g, "
                "min(t.data->>'v'::float) as lo, "
                "max(t.data->>'v'::float) as hi "
                "from t t group by t.data->>'g'::int order by g")

    def test_order_by_with_nulls_and_desc(self):
        rows = [{"a": i % 7, "b": None if i % 5 == 0 else i % 3,
                 "v": float(i)} for i in range(300)]
        db = self._load(rows)
        select = ("select t.data->>'a'::int as a, "
                  "t.data->>'b'::int as b, "
                  "t.data->>'v'::float as v from t t ")
        run_on_off(db, select + "order by b desc, a, v")
        run_on_off(db, select + "order by b, a desc, v desc")

    def test_empty_table(self):
        db = Database(StorageFormat.TILES, CONFIG)
        db.create_table("t")
        on, off = run_on_off(
            db, "select t.data->>'k'::int as k, count(*) as n from t t "
                "group by t.data->>'k'::int order by k")
        assert on.rows == [] and off.rows == []

    def test_filter_eliminates_all_rows(self):
        rows = [{"k": i % 3, "v": i} for i in range(100)]
        db = self._load(rows)
        on, off = run_on_off(
            db, "select t.data->>'k'::int as k, "
                "sum(t.data->>'v'::int) as s from t t "
                "where t.data->>'v'::int < 0 "
                "group by t.data->>'k'::int order by k")
        assert on.rows == [] and off.rows == []

    def test_left_and_semi_joins(self):
        left = [{"a": i % 10, "b": f"w{i % 4}", "v": i}
                for i in range(200)]
        right = [{"a": i, "b": f"w{i % 4}", "tag": i * 10}
                 for i in range(6)]
        db = self._load(left, "l")
        db.load_table("r", right)
        # composite (int, string) equi-join through the code probe
        on, _ = run_on_off(
            db, "select r.data->>'tag'::int as tag, count(*) as n "
                "from l l, r r "
                "where l.data->>'a'::int = r.data->>'a'::int "
                "and l.data->>'b' = r.data->>'b' "
                "group by r.data->>'tag'::int order by tag")
        assert on.counters.kernel_rows > 0
        run_on_off(
            db, "select l.data->>'v'::int as v, "
                "r.data->>'tag'::int as tag from l l "
                "left join r r on l.data->>'a'::int = r.data->>'a'::int "
                "and l.data->>'b' = r.data->>'b' "
                "order by v")
        run_on_off(
            db, "select count(*) as n from l l where l.data->>'b' in "
                "(select r.data->>'b' from r r "
                "where r.data->>'a'::int < 3)")


# ----------------------------------------------------------------------
# scatter/gather: the partial chunk builders must stay bit-identical
# with kernels on, through the coordinator merge


class TestPartialKernels:
    @pytest.fixture(scope="class")
    def db(self):
        rows = [{"g": i % 9, "w": f"k{i % 4}",
                 "v": i, "f": float(i) * 0.5}
                for i in range(500)]
        db = Database(StorageFormat.TILES, CONFIG)
        db.load_table("t", rows)
        return db

    def _merge_for(self, db, sql, expected_mode, enable_kernels):
        options = QueryOptions(enable_kernels=enable_kernels)
        block = Binder(db.tables, options).bind(parse(sql))
        mode = classify_block(block)
        assert mode == expected_mode
        result = execute_partial(block, options, shard_index=0,
                                 shard_count=1)
        assert result["mode"] == mode
        columns, rows = merge_partial_results(block, mode,
                                              result["pieces"])
        return columns, rows, result["counters"]

    def _compare(self, db, sql, expected_mode):
        cols_on, rows_on, counters_on = self._merge_for(
            db, sql, expected_mode, True)
        cols_off, rows_off, counters_off = self._merge_for(
            db, sql, expected_mode, False)
        assert cols_on == cols_off
        assert len(rows_on) == len(rows_off)
        for row_a, row_b in zip(rows_off, rows_on):
            assert [bits(v) for v in row_a] == [bits(v) for v in row_b]
        return counters_on, counters_off

    def test_generic_mode_groupby(self, db):
        sql = ("select t.data->>'g'::int as g, t.data->>'w' as w, "
               "count(*) as n, sum(t.data->>'v'::int) as s, "
               "min(t.data->>'f'::float) as lo, "
               "max(t.data->>'w') as hi "
               "from t t group by t.data->>'g'::int, t.data->>'w' "
               "order by g, w")
        counters_on, counters_off = self._compare(db, sql, "generic")
        assert counters_on.get("kernel_rows", 0) > 0
        assert counters_off.get("kernel_rows", 0) == 0

    def test_rows_mode_topk(self, db):
        sql = ("select t.data->>'g'::int as g, "
               "t.data->>'f'::float as f from t t "
               "order by f desc, g limit 25")
        counters_on, _ = self._compare(db, sql, "rows")
        assert counters_on.get("kernel_rows", 0) > 0

    def test_generic_mode_avg_int(self, db):
        sql = ("select t.data->>'w' as w, t.data->>'g'::int as g, "
               "avg(t.data->>'v'::int) as m, "
               "count(distinct t.data->>'g'::int) as d from t t "
               "group by t.data->>'w', t.data->>'g'::int "
               "order by w, g")
        self._compare(db, sql, "generic")


# ----------------------------------------------------------------------
# direct kernel units


def _vec(values, column_type=ColumnType.INT64, dtype=np.int64):
    data = np.array(values, dtype=dtype)
    mask = np.array([v is None for v in values]) \
        if dtype == object else np.zeros(len(values), dtype=bool)
    return ColumnVector(column_type, data, mask)


class TestFactorize:
    def test_int_codes_roundtrip(self):
        vec = _vec([5, 2, 5, 9, 2, 2])
        factor = factorize(vec)
        assert factor is not None
        decoded = [factor.decode(row) for row in range(len(vec.data))]
        assert decoded == [5, 2, 5, 9, 2, 2]

    def test_null_rows_get_sentinel(self):
        data = np.array([1, 2, 3], dtype=np.int64)
        mask = np.array([False, True, False])
        factor = factorize(ColumnVector(ColumnType.INT64, data, mask))
        assert factor.decode(1) is None
        assert factor.decode(0) == 1 and factor.decode(2) == 3

    def test_nan_declines(self):
        data = np.array([1.0, float("nan")], dtype=np.float64)
        vec = ColumnVector(ColumnType.FLOAT64, data)
        assert factorize(vec) is None

    def test_mixed_object_declines(self):
        data = np.array([1, "x", 2.5], dtype=object)
        vec = ColumnVector(ColumnType.JSONB, data)
        assert factorize(vec) is None

    def test_combine_codes_mixed_radix(self):
        a = factorize(_vec([0, 0, 1, 1]))
        b = factorize(_vec([0, 1, 0, 1]))
        combined = combine_codes([a, b])
        # four distinct key pairs → four distinct combined codes
        assert len(set(combined.tolist())) == 4


class TestMaskedSum:
    def test_int_overflow_uses_exact_path(self):
        big = 2 ** 62
        data = np.array([big, big, big], dtype=object)
        valid = np.ones(3, dtype=bool)
        assert masked_sum(data, valid) == 3 * big

    def test_float_matches_left_fold(self):
        values = [0.1, 0.2, 0.3, 1e16, -1e16, 0.7]
        data = np.array(values, dtype=np.float64)
        valid = np.ones(len(values), dtype=bool)
        serial = 0.0
        for v in values:
            serial += v
        assert struct.pack("<d", masked_sum(data, valid)) == \
            struct.pack("<d", serial)

    def test_respects_mask(self):
        data = np.array([1, 2, 3, 4], dtype=np.int64)
        valid = np.array([True, False, True, False])
        assert masked_sum(data, valid) == 4


class TestJoinCodeIndex:
    def test_probe_matches_dict_semantics(self):
        build = [_vec(["a", "b", "a", "c"], ColumnType.STRING, object)]
        index = JoinCodeIndex.build(build)
        assert index is not None
        probe = [_vec(["c", "a", "zz", "b"], ColumnType.STRING, object)]
        result = index.probe(probe)
        assert result is not None
        probe_idx, build_idx, counts = result
        pairs = sorted(zip(probe_idx.tolist(), build_idx.tolist()))
        # "a" matches build rows 0 and 2 (insertion order), "zz" none
        assert pairs == [(0, 3), (1, 0), (1, 2), (3, 1)]
        assert counts.tolist() == [1, 2, 0, 1]

    def test_dtype_mismatch_declines_probe(self):
        index = JoinCodeIndex.build([_vec([1, 2, 3])])
        probe = [_vec([1.0, 2.0], ColumnType.FLOAT64, np.float64)]
        assert index.probe(probe) is None

    def test_null_build_rows_never_match(self):
        data = np.array([1, 2, 3], dtype=np.int64)
        mask = np.array([False, True, False])
        index = JoinCodeIndex.build(
            [ColumnVector(ColumnType.INT64, data, mask)])
        result = index.probe([_vec([2])])
        assert result is not None
        probe_idx, _build_idx, counts = result
        assert probe_idx.size == 0 and counts.tolist() == [0]


class TestGroupByKernelSpill:
    def test_spill_matches_serial_states(self):
        from repro.engine.operators import HashAggregateOp
        from repro.sql.binder import Binder as _B  # noqa: F401

        # drive the kernel through SQL instead of hand-building
        # AggregateSpec plumbing: covered by the differential classes;
        # here we only check spill is safe mid-stream on a fresh kernel
        kernel = GroupByKernel([])
        assert kernel.supported
        keys = [_vec([1, 1, 2])]
        assert kernel.update(keys, [], 3)
        groups = kernel.spill()
        assert list(groups) == [(1,), (2,)]


class TestColumnVectorValidation:
    def test_mask_length_mismatch_raises(self):
        data = np.arange(4, dtype=np.int64)
        with pytest.raises(StorageError, match="length mismatch"):
            ColumnVector(ColumnType.INT64, data, np.zeros(3, dtype=bool))

    def test_mask_dtype_must_be_bool(self):
        data = np.arange(4, dtype=np.int64)
        with pytest.raises(StorageError, match="dtype"):
            ColumnVector(ColumnType.INT64, data,
                         np.zeros(4, dtype=np.int64))


class TestLexsort:
    def test_matches_python_stable_sort(self):
        rows = [{"a": i % 5, "b": None if i % 4 == 0 else (i % 3)}
                for i in range(100)]
        db = Database(StorageFormat.TILES, CONFIG)
        db.load_table("t", rows)
        run_on_off(db, "select t.data->>'a'::int as a, "
                       "t.data->>'b'::int as b from t t "
                       "order by a, b desc")
