"""Tests for relations, bulk loading and updates."""

import json

import pytest

from repro.core.jsonpath import KeyPath
from repro.storage import Relation, StorageFormat, load_documents
from repro.tiles import ExtractionConfig


def tweets(n, with_geo_from=0):
    docs = []
    for i in range(n):
        doc = {"id": i, "create": "2020-06-01", "text": f"tweet {i}",
               "user": {"id": i % 17}}
        if i >= with_geo_from:
            doc["geo"] = {"lat": 40.0 + i * 0.001}
        docs.append(doc)
    return docs


CONFIG = ExtractionConfig(tile_size=32, partition_size=4)


class TestLoadFormats:
    def test_json_format_keeps_text(self):
        lines = [json.dumps(doc) for doc in tweets(10)]
        relation = load_documents("t", lines, StorageFormat.JSON, CONFIG)
        assert relation.row_count == 10
        assert relation.text_rows == lines
        assert relation.document(3)["id"] == 3

    def test_jsonb_format_no_columns(self):
        relation = load_documents("t", tweets(100), StorageFormat.JSONB, CONFIG)
        assert relation.row_count == 100
        assert all(not tile.columns for tile in relation.tiles)
        assert relation.document(42)["id"] == 42

    def test_tiles_format_extracts(self):
        relation = load_documents("t", tweets(100), StorageFormat.TILES, CONFIG)
        assert len(relation.tiles) == 4  # ceil(100/32)
        tile = relation.tiles[0]
        assert tile.column(KeyPath.parse("id")) is not None
        assert tile.column(KeyPath.parse("user.id")) is not None

    def test_tile_numbering_and_row_ranges(self):
        relation = load_documents("t", tweets(100), StorageFormat.TILES, CONFIG)
        first_rows = [tile.first_row for tile in relation.tiles]
        assert first_rows == [0, 32, 64, 96]
        assert [t.header.tile_number for t in relation.tiles] == [0, 1, 2, 3]

    def test_statistics_aggregated(self):
        relation = load_documents("t", tweets(100), StorageFormat.TILES, CONFIG)
        assert relation.statistics.row_count == 100
        assert relation.statistics.key_count(KeyPath.parse("id")) == 100
        distinct = relation.statistics.distinct(KeyPath.parse("user.id"))
        assert 13 <= distinct <= 21  # 17 true

    def test_load_breakdown_phases(self):
        relation = load_documents("t", tweets(200), StorageFormat.TILES, CONFIG)
        breakdown = relation.load_breakdown
        assert {"write_jsonb", "mining", "extract", "reorder",
                "total"} <= set(breakdown)
        assert breakdown["total"] > 0

    def test_text_lines_accepted_everywhere(self):
        lines = [json.dumps(doc) for doc in tweets(50)]
        relation = load_documents("t", lines, StorageFormat.TILES, CONFIG)
        assert relation.row_count == 50
        assert relation.load_breakdown["parse"] >= 0


class TestLocalVersusGlobalSchema:
    """The Figure 2 story: geo appears halfway; Sinew's global 60%
    cutoff misses it, tiles extract it locally."""

    def make(self, storage_format):
        docs = tweets(128, with_geo_from=96)  # geo in 25% of tuples
        return load_documents("t", docs, storage_format,
                              ExtractionConfig(tile_size=32, partition_size=4,
                                               enable_reordering=False))

    def test_sinew_misses_geo(self):
        relation = self.make(StorageFormat.SINEW)
        assert all(tile.column(KeyPath.parse("geo.lat")) is None
                   for tile in relation.tiles)

    def test_tiles_extract_geo_locally(self):
        relation = self.make(StorageFormat.TILES)
        last_tile = relation.tiles[-1]
        assert last_tile.column(KeyPath.parse("geo.lat")) is not None
        assert relation.tiles[0].column(KeyPath.parse("geo.lat")) is None

    def test_sinew_extracts_common_keys_globally(self):
        relation = self.make(StorageFormat.SINEW)
        for tile in relation.tiles:
            assert tile.column(KeyPath.parse("id")) is not None


class TestTilesStar:
    def make_docs(self):
        docs = []
        for i in range(64):
            docs.append({
                "id": i,
                "entities": {
                    "hashtags": [{"text": f"#tag{j}"} for j in range(i % 9)]
                },
            })
        return docs

    def test_child_relation_created(self):
        relation = load_documents(
            "tweets", self.make_docs(), StorageFormat.TILES_STAR, CONFIG,
            array_paths=[KeyPath.parse("entities.hashtags")],
        )
        assert "entities.hashtags" in relation.children
        child = relation.children["entities.hashtags"]
        assert child.row_count == sum(i % 9 for i in range(64))

    def test_child_rows_carry_parent_ids(self):
        relation = load_documents(
            "tweets", self.make_docs(), StorageFormat.TILES_STAR, CONFIG,
            array_paths=[KeyPath.parse("entities.hashtags")],
        )
        child = relation.children["entities.hashtags"]
        first = child.document(0)
        assert first["_parent_row"] == 1  # doc 0 has no hashtags
        assert first["text"] == "#tag0"

    def test_base_documents_stripped(self):
        relation = load_documents(
            "tweets", self.make_docs(), StorageFormat.TILES_STAR, CONFIG,
            array_paths=[KeyPath.parse("entities.hashtags")],
        )
        doc = relation.document(8)
        assert "hashtags" not in doc["entities"]
        assert doc["entities"]["hashtags_count"] == 8

    def test_auto_detection(self):
        relation = load_documents(
            "tweets", self.make_docs(), StorageFormat.TILES_STAR, CONFIG,
            auto_detect_arrays=True,
        )
        assert "entities.hashtags" in relation.children


class TestUpdates:
    def make(self):
        return load_documents("t", tweets(64), StorageFormat.TILES,
                              ExtractionConfig(tile_size=32, partition_size=2))

    def test_update_patches_column_in_place(self):
        relation = self.make()
        new_doc = {"id": 999, "create": "2021-01-01", "text": "updated",
                   "user": {"id": 5}, "geo": {"lat": 1.0}}
        relation.update(3, new_doc)
        tile = relation.tile_of_row(3)
        assert tile.column(KeyPath.parse("id")).value(3) == 999
        assert relation.document(3)["text"] == "updated"

    def test_update_missing_key_becomes_null(self):
        relation = self.make()
        relation.update(3, {"id": 3, "user": {"id": 5}})
        tile = relation.tile_of_row(3)
        assert tile.column(KeyPath.parse("text")).value(3) is None
        assert tile.header.columns[KeyPath.parse("text")].nullable

    def test_update_registers_new_paths_for_skipping(self):
        relation = self.make()
        relation.update(3, {"id": 3, "brand_new_key": 7,
                            "user": {"id": 1}, "text": "x",
                            "create": "2020-06-01"})
        tile = relation.tile_of_row(3)
        assert tile.header.may_contain(KeyPath.parse("brand_new_key"))

    def test_outlier_flood_triggers_recompute(self):
        relation = self.make()
        tile = relation.tiles[0]
        for row in range(20):  # > half of the 32-row tile
            relation.update(row, {"completely": "different", "shape": row})
        rebuilt = relation.tiles[0]
        assert rebuilt is not tile
        # at recompute time the new shape held 17/32 = 53% of the tile:
        # below the 60% threshold, so the *old* majority columns must be
        # gone but the new shape is not yet extractable (paper: tiles
        # are recomputed "after the majority of the tuples do not match
        # the current extracted JSON tiles schema")
        assert KeyPath.parse("text") not in rebuilt.columns

    def test_recompute_extracts_new_majority(self):
        relation = self.make()
        for row in range(24):  # 75% of the tile gets the new shape
            relation.update(row, {"completely": "different", "shape": row})
        relation.recompute_tile(relation.tiles[0])
        extracted = {str(p) for p in relation.tiles[0].columns}
        assert "shape" in extracted and "completely" in extracted

    def test_update_json_format(self):
        lines = [json.dumps(doc) for doc in tweets(5)]
        relation = load_documents("t", lines, StorageFormat.JSON, CONFIG)
        relation.update(0, {"id": 100})
        assert relation.document(0) == {"id": 100}


class TestSizeReport:
    def test_tiles_report_has_all_entries(self):
        relation = load_documents("t", tweets(100), StorageFormat.TILES, CONFIG)
        report = relation.size_report()
        assert report["jsonb"] > 0
        assert report["tiles"] > 0
        assert 0 < report["lz4_tiles"] < report["tiles"]

    def test_json_report(self):
        lines = [json.dumps(doc) for doc in tweets(10)]
        relation = load_documents("t", lines, StorageFormat.JSON, CONFIG)
        assert relation.size_report()["json"] > 0


class TestEmptyRelationReports:
    """Regression: size_report()/extracted_fraction() on relations with
    zero sealed tiles must return well-defined zeros, not divide."""

    @pytest.mark.parametrize("storage_format", [
        StorageFormat.TILES, StorageFormat.JSONB, StorageFormat.SINEW,
    ])
    def test_empty_relation_reports_zeros(self, storage_format):
        relation = load_documents("t", [], storage_format, CONFIG)
        report = relation.size_report()
        assert all(value == 0 for value in report.values())
        assert relation.extracted_fraction() == 0.0
        assert relation.partition_count == 0

    def test_empty_json_relation(self):
        relation = load_documents("t", [], StorageFormat.JSON, CONFIG)
        assert relation.size_report()["json"] == 0
        assert relation.extracted_fraction() == 0.0

    def test_buffer_only_relation_reports_zero_tiles(self):
        """Rows sitting in the insert buffer (auto_seal off, fewer than
        tile_size) are not sealed tiles: reports stay at zero instead
        of dividing by an empty tile list."""
        relation = Relation("t", StorageFormat.TILES, CONFIG)
        relation.auto_seal = False
        for doc in tweets(5):
            relation.insert(doc)
        assert relation.pending_inserts == 5
        assert relation.tiles == []
        assert relation.extracted_fraction() == 0.0
        assert all(v == 0 for v in relation.size_report().values())
        # sealing the straggler buffer makes the reports real
        relation.flush_inserts()
        assert relation.pending_inserts == 0
        assert relation.extracted_fraction() > 0.0
        assert relation.size_report()["tiles"] > 0


class TestParallelLoading:
    def test_multiworker_matches_singleworker(self):
        docs = tweets(256)
        config = ExtractionConfig(tile_size=32, partition_size=2)
        serial = load_documents("t", docs, StorageFormat.TILES, config,
                                num_workers=1)
        parallel = load_documents("t", docs, StorageFormat.TILES, config,
                                  num_workers=4)
        assert serial.row_count == parallel.row_count
        assert len(serial.tiles) == len(parallel.tiles)
        for left, right in zip(serial.tiles, parallel.tiles):
            assert set(left.columns) == set(right.columns)
            assert left.column(KeyPath.parse("id")).to_list() == \
                right.column(KeyPath.parse("id")).to_list()


class TestThreadSafeInserts:
    def test_concurrent_inserts_lose_nothing(self):
        """Many writer threads inserting at once: every document lands
        exactly once, tiles stay dense (tile numbers and first_row
        gapless) and the buffer holds the remainder."""
        import threading

        config = ExtractionConfig(tile_size=64, partition_size=2)
        relation = Relation("t", StorageFormat.TILES, config)
        per_thread, threads = 500, 8

        def writer(base):
            for i in range(per_thread):
                relation.insert({"id": base + i, "v": float(i)})

        workers = [threading.Thread(target=writer, args=(t * per_thread,))
                   for t in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        relation.flush_inserts()
        total = per_thread * threads
        assert relation.row_count == total
        assert relation.pending_inserts == 0
        assert [t.header.tile_number for t in relation.tiles] == \
            list(range(len(relation.tiles)))
        assert [t.first_row for t in relation.tiles] == \
            [sum(x.row_count for x in relation.tiles[:i])
             for i in range(len(relation.tiles))]
        seen = sorted(doc["id"] for doc in relation.documents())
        assert seen == list(range(total))

    def test_seal_hook_fires_per_tile(self):
        config = ExtractionConfig(tile_size=32, partition_size=2)
        relation = Relation("t", StorageFormat.TILES, config)
        sealed = []
        relation.add_seal_hook(lambda rel, tile: sealed.append(
            (tile.header.tile_number, tile.row_count)))
        relation.insert_many([{"id": i} for i in range(80)])
        relation.flush_inserts()
        assert sealed == [(0, 32), (1, 32), (2, 16)]

    def test_auto_seal_off_defers_to_owner(self):
        config = ExtractionConfig(tile_size=16, partition_size=2)
        relation = Relation("t", StorageFormat.TILES, config)
        relation.auto_seal = False
        relation.insert_many([{"id": i} for i in range(40)])
        assert relation.pending_inserts == 40 and not relation.tiles
        relation.flush_inserts()
        assert relation.row_count == 40
