"""Tests for FPGrowth itemset mining and the item dictionary."""

import math
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jsonpath import KeyPath
from repro.core.types import JsonType
from repro.errors import MiningError
from repro.mining import (
    FPGrowth,
    ItemDictionary,
    best_match,
    closed_itemsets,
    encode_documents,
    max_itemset_size,
    maximal_itemsets,
)


def brute_force(transactions, min_count, max_size=None):
    """Reference miner: enumerate all subsets (exponential, small inputs)."""
    items = sorted({i for t in transactions for i in t})
    result = {}
    limit = max_size or len(items)
    for size in range(1, limit + 1):
        for combo in combinations(items, size):
            itemset = frozenset(combo)
            support = sum(1 for t in transactions if itemset <= set(t))
            if support >= min_count:
                result[itemset] = support
    return result


class TestMaxItemsetSize:
    def test_equation_one(self):
        # n=5, budget covers sizes 1..2: C(5,1)+C(5,2)=15 <= 20 < 15+C(5,3)=25
        assert max_itemset_size(5, 20) == 2
        assert max_itemset_size(5, 14) == 1
        assert max_itemset_size(5, 2**5) == 5

    def test_always_at_least_one(self):
        assert max_itemset_size(100, 1) == 1

    def test_zero_items(self):
        assert max_itemset_size(0, 100) == 0

    def test_bounded_by_powerset(self):
        n, budget = 6, 10**9
        assert max_itemset_size(n, budget) == n
        total = sum(math.comb(n, i) for i in range(1, n + 1))
        assert total == 2**n - 1


class TestFPGrowth:
    def test_single_transaction(self):
        result = FPGrowth(min_count=1).mine([[1, 2]])
        assert result == {frozenset({1}): 1, frozenset({2}): 1,
                          frozenset({1, 2}): 1}

    def test_empty(self):
        assert FPGrowth(min_count=1).mine([]) == {}
        assert FPGrowth(min_count=1).mine([[]]) == {}

    def test_infrequent_items_dropped(self):
        result = FPGrowth(min_count=2).mine([[1, 2], [1, 3]])
        assert result == {frozenset({1}): 2}

    def test_matches_brute_force(self):
        transactions = [
            [1, 2, 3], [1, 2], [2, 3], [1, 2, 3, 4], [4], [1, 3],
            [2, 3, 4], [1, 2, 3],
        ]
        for min_count in (1, 2, 3, 4):
            got = FPGrowth(min_count=min_count, budget=10**6).mine(transactions)
            assert got == brute_force(transactions, min_count)

    def test_paper_tile2_example(self):
        """Section 3.1: tile #2 of Figure 2, threshold 60% of 4 tuples.

        Items: i=0, c=1, t=2, u_i=3, r=4, g_l=5.  Tuples 5,7,8 have all
        six; tuple 6 lacks g_l.  The miner must find the two maximum
        itemsets ({i,c,t,u_i,r}, 4) and ({i,c,t,u_i,r,g_l}, 3).
        """
        transactions = [
            [0, 1, 2, 3, 4, 5],
            [0, 1, 2, 3, 4],
            [0, 1, 2, 3, 4, 5],
            [0, 1, 2, 3, 4, 5],
        ]
        result = FPGrowth(min_count=3, budget=10**6).mine(transactions)
        closed = closed_itemsets(result)
        assert closed == {
            frozenset({0, 1, 2, 3, 4}): 4,
            frozenset({0, 1, 2, 3, 4, 5}): 3,
        }
        # union of the maximum itemsets -> extraction of all 6 paths
        union = frozenset().union(*closed)
        assert union == frozenset(range(6))
        # the strictly-maximal variant keeps only the largest set
        assert maximal_itemsets(result) == {frozenset(range(6)): 3}

    def test_budget_limits_output_count(self):
        transactions = [list(range(12))] * 5
        result = FPGrowth(min_count=1, budget=50).mine(transactions)
        assert 0 < len(result) <= 50

    def test_budget_limits_itemset_size(self):
        transactions = [list(range(10))] * 4
        budget = 55  # C(10,1)=10, +C(10,2)=55 -> k=2
        result = FPGrowth(min_count=1, budget=budget).mine(transactions)
        assert max(len(s) for s in result) <= 2

    def test_smaller_itemsets_mined_first(self):
        transactions = [list(range(8))] * 3
        result = FPGrowth(min_count=1, budget=8).mine(transactions)
        assert all(len(s) == 1 for s in result)

    def test_invalid_parameters(self):
        with pytest.raises(MiningError):
            FPGrowth(min_count=0)
        with pytest.raises(MiningError):
            FPGrowth(min_count=1, budget=0)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(st.integers(0, 7), max_size=6), max_size=12),
           st.integers(1, 4))
    def test_property_matches_brute_force(self, transactions, min_count):
        got = FPGrowth(min_count=min_count, budget=10**6).mine(transactions)
        assert got == brute_force(transactions, min_count)


class TestMaximalItemsets:
    def test_removes_subsets(self):
        frequent = {frozenset({1}): 5, frozenset({1, 2}): 4, frozenset({3}): 2}
        maximal = maximal_itemsets(frequent)
        assert set(maximal) == {frozenset({1, 2}), frozenset({3})}

    def test_empty(self):
        assert maximal_itemsets({}) == {}


class TestBestMatch:
    def test_largest_overlap_wins(self):
        sets = [frozenset({1, 2}), frozenset({1, 2, 3})]
        assert best_match(frozenset({1, 2, 3, 4}), sets) == frozenset({1, 2, 3})

    def test_tie_resolved_by_min_item_id_sum(self):
        sets = [frozenset({1, 9}), frozenset({1, 2})]
        # overlap with {1} is 1 for both, same size: min sum wins -> {1,2}
        assert best_match(frozenset({1}), sets) == frozenset({1, 2})

    def test_no_overlap_returns_none(self):
        assert best_match(frozenset({9}), [frozenset({1, 2})]) is None

    def test_deterministic(self):
        sets = [frozenset({2, 3}), frozenset({1, 4})]
        picks = {best_match(frozenset({1, 2, 3, 4}), sets) for _ in range(10)}
        assert len(picks) == 1


class TestItemDictionary:
    def test_dense_ids(self):
        dictionary = ItemDictionary()
        a = dictionary.encode((KeyPath.parse("id"), JsonType.INT))
        b = dictionary.encode((KeyPath.parse("text"), JsonType.STRING))
        assert (a, b) == (0, 1)
        assert dictionary.decode(0) == (KeyPath.parse("id"), JsonType.INT)

    def test_counts_occurrences(self):
        dictionary = ItemDictionary()
        item = (KeyPath.parse("id"), JsonType.INT)
        for _ in range(3):
            dictionary.encode(item)
        assert dictionary.counts[dictionary.lookup(item)] == 3

    def test_type_distinguishes_items(self):
        dictionary = ItemDictionary()
        a = dictionary.encode((KeyPath.parse("v"), JsonType.INT))
        b = dictionary.encode((KeyPath.parse("v"), JsonType.FLOAT))
        assert a != b

    def test_key_counts_merges_types(self):
        dictionary = ItemDictionary()
        dictionary.encode((KeyPath.parse("v"), JsonType.INT))
        dictionary.encode((KeyPath.parse("v"), JsonType.FLOAT))
        assert dictionary.key_counts() == {"v": 2}


class TestEncodeDocuments:
    def test_figure2_tile2(self):
        documents = [
            {"id": 5, "create": "x1/10", "text": "b", "user": {"id": 7},
             "replies": 3, "geo": {"lat": 1.9}},
            {"id": 6, "create": "x1/11", "text": "c", "user": {"id": 1},
             "replies": 2, "geo": None},
            {"id": 7, "create": "x1/12", "text": "d", "user": {"id": 3},
             "replies": 0, "geo": {"lat": 2.7}},
            {"id": 8, "create": "x1/13", "text": "x", "user": {"id": 3},
             "replies": 1, "geo": {"lat": 3.5}},
        ]
        dictionary, transactions = encode_documents(documents)
        assert len(transactions) == 4
        item = (KeyPath.parse("geo.lat"), JsonType.FLOAT)
        assert item in dictionary
        lat_id = dictionary.lookup(item)
        assert sum(lat_id in t for t in transactions) == 3
        # tuple 6's geo:null becomes a (geo, NULL) item, not geo.lat
        null_item = (KeyPath.parse("geo"), JsonType.NULL)
        assert null_item in dictionary
