"""Tests for ``repro.lsm`` — LSM-tiered ingest with leveled tile
compaction and snapshot reads.

The differential half is the subsystem's correctness gate: every query
in the twitter / yelp / TPC-H suites must return bit-identical results
with compaction forced on versus off.  The crash-recovery half forges
the maintenance journal to kill a merge between tile write and
manifest commit and verifies replay recovers to either the old tiles
or the merged tile, never both.  The stale-cache half is the satellite
regression: a merged input's resolved columns and TileStore residency
must be invalidated before the manifest swap commits.
"""

import gc
import threading

import pytest

from repro import (
    Database,
    ExtractionConfig,
    LsmConfig,
    MaintenanceConfig,
    QueryOptions,
    StorageFormat,
)
from repro.lsm import (
    level_histogram,
    plan_compactions,
    predicted_extraction_gain,
)
from repro.maintenance import (
    ActionKind,
    MaintenanceAction,
    MaintenanceDaemon,
    MaintenanceJournal,
    MaintenancePlanner,
)
from repro.server.wal import WriteAheadLog
from repro.storage import relation as relation_module
from repro.storage.persist import load_relation, save_database
from repro.storage.tile_cache import GLOBAL_TILE_CACHE
from repro.storage.tilestore import GLOBAL_TILE_STORE
from repro.workloads import twitter, yelp
from repro.workloads.tpch import TPCH_QUERIES
from repro.workloads.tpch import make_database as make_tpch

CONFIG = ExtractionConfig(tile_size=64, partition_size=4,
                          enable_reordering=False)


def bursty_documents(n, tile_size=64):
    """Documents whose optional ``extra`` field alternates between 50 %
    (even tiles) and 90 % (odd tiles) presence: below the 60 % mining
    threshold in half the L0 tiles, ~70 % over any merged run — the
    shape where merge-time re-mining strictly improves extraction."""
    docs = []
    for i in range(n):
        doc = {"id": i, "score": float(i * 7 % 113) / 3,
               "tag": f"t{i % 7}"}
        burst = 5 if (i // tile_size) % 2 == 0 else 9
        if i % 10 < burst:
            doc["extra"] = i % 31
        docs.append(doc)
    return docs


def bursty_db(n=512, config=CONFIG):
    db = Database(StorageFormat.TILES, config)
    db.load_table("t", bursty_documents(n, config.tile_size))
    return db


def force_compact(relation, config=None):
    """Compact until the planner runs dry; returns the merge count."""
    config = config or LsmConfig(enabled=True, fanout=4, max_level=2)
    merges = 0
    while True:
        candidates = plan_compactions(relation, config)
        progress = False
        for candidate in candidates:
            if relation.compact_tiles(candidate.start_number,
                                      candidate.count):
                progress = True
                merges += 1
        if not progress:
            return merges


@pytest.fixture
def global_store():
    # earlier tests' relations may linger in reference cycles; collect
    # them so their handles' residency accounting leaves the store
    # before budget/peak assertions start
    gc.collect()
    GLOBAL_TILE_CACHE.clear()
    try:
        yield GLOBAL_TILE_STORE
    finally:
        GLOBAL_TILE_STORE.set_budget(None)
        GLOBAL_TILE_STORE.reset_stats()


# ---------------------------------------------------------------------------


class TestLsmConfig:
    def test_defaults(self):
        config = LsmConfig.from_env(env={})
        assert config.enabled is False
        assert config.fanout == 4
        assert config.max_level == 2
        assert config.min_gain_columns == 0

    def test_env_parsing(self):
        config = LsmConfig.from_env(env={
            "REPRO_LSM": "1", "REPRO_LSM_FANOUT": "8",
            "REPRO_LSM_MAX_LEVEL": "3", "REPRO_LSM_MIN_GAIN": "2"})
        assert config.enabled is True
        assert config.fanout == 8
        assert config.max_level == 3
        assert config.min_gain_columns == 2

    def test_overrides_beat_env_and_none_is_ignored(self):
        config = LsmConfig.from_env(env={"REPRO_LSM_FANOUT": "8"},
                                    enabled=True, fanout=3,
                                    max_level=None)
        assert config.enabled is True
        assert config.fanout == 3
        assert config.max_level == 2

    def test_fanout_floor(self):
        assert LsmConfig.from_env(env={"REPRO_LSM_FANOUT": "1"}).fanout == 2


class TestManifest:
    def test_epoch_bumps_on_flush_and_compaction(self):
        db = bursty_db(320)
        relation = db.tables["t"]
        first = relation.manifest()
        assert first.epoch == relation.manifest().epoch  # stable at rest
        relation.insert_many(bursty_documents(64))
        relation.flush_inserts()
        second = relation.manifest()
        assert second.epoch > first.epoch
        assert relation.compact_tiles(0, 4)
        assert relation.manifest().epoch > second.epoch

    def test_snapshot_survives_concurrent_swap(self):
        relation = bursty_db(512).tables["t"]
        snapshot = relation.manifest()
        before = list(snapshot.tiles)
        assert relation.compact_tiles(0, 4)
        # the old snapshot still enumerates the pre-merge tile set;
        # only a fresh manifest() call sees the swap
        assert list(snapshot.tiles) == before
        assert len(relation.manifest().tiles) == len(before) - 3

    def test_level_report_shape(self):
        relation = bursty_db(512).tables["t"]
        force_compact(relation)
        report = relation.manifest().level_report()
        assert set(report) == {0, 1} or set(report) == {1}
        for level_stats in report.values():
            assert set(level_stats) == {"tiles", "rows", "disk_bytes",
                                        "resident_bytes",
                                        "extracted_fraction"}

    def test_lsm_status_counters(self):
        relation = bursty_db(512).tables["t"]
        relation.lsm_config = LsmConfig(enabled=True)
        merges = force_compact(relation)
        status = relation.lsm_status()
        assert status["enabled"] is True
        assert status["counters"]["merges"] == merges
        assert status["counters"]["docs_rewritten"] == merges * 4 * 64
        assert status["counters"]["bytes_written"] > 0


class TestPlanner:
    def test_plans_fanout_runs_below_max_level(self):
        relation = bursty_db(512).tables["t"]  # 8 L0 tiles
        candidates = plan_compactions(relation, LsmConfig(enabled=True))
        assert [c.start_number for c in candidates] == [0, 4]
        assert all(c.level == 0 and c.count == 4 for c in candidates)

    def test_disabled_or_short_runs_plan_nothing(self):
        relation = bursty_db(192).tables["t"]  # 3 tiles < fanout
        assert plan_compactions(relation, LsmConfig(enabled=False)) == []
        assert plan_compactions(relation, LsmConfig(enabled=True)) == []

    def test_max_level_caps_the_hierarchy(self):
        relation = bursty_db(512).tables["t"]
        config = LsmConfig(enabled=True, fanout=4, max_level=1)
        force_compact(relation, config)  # 8 L0 -> 2 L1, stops there
        assert level_histogram(relation) == {1: 2}
        assert plan_compactions(relation, config) == []

    def test_predicted_gain_sees_bursty_field(self):
        relation = bursty_db(512).tables["t"]
        run = relation.tiles[:4]
        gain = predicted_extraction_gain(run, relation.config.threshold)
        assert gain >= 1  # "extra": 50/90/50/90 % -> ~70 % combined

    def test_min_gain_filters_homogeneous_runs(self):
        db = Database(StorageFormat.TILES, CONFIG)
        db.load_table("t", [{"id": i, "v": i} for i in range(512)])
        relation = db.tables["t"]
        strict = LsmConfig(enabled=True, min_gain_columns=1)
        assert plan_compactions(relation, strict) == []
        assert len(plan_compactions(relation, LsmConfig(enabled=True))) == 2

    def test_maintenance_planner_emits_compact_actions(self):
        relation = bursty_db(512).tables["t"]
        relation.lsm_config = LsmConfig(enabled=True)
        from repro.maintenance import HealthTracker

        planner = MaintenancePlanner(MaintenanceConfig(
            enabled=True, max_actions_per_cycle=8))
        actions = planner.plan(
            {"t": (relation, HealthTracker(relation))})
        compacts = [a for a in actions
                    if a.kind is ActionKind.COMPACT_TILES]
        assert {a.target for a in compacts} == {0, 4}


class TestCompaction:
    def test_merge_preserves_rows_and_order(self):
        db = bursty_db(512)
        relation = db.tables["t"]
        expected = list(relation.documents())
        merges = force_compact(relation)
        assert merges == 2
        assert level_histogram(relation) == {1: 2}
        assert list(relation.documents()) == expected
        assert [t.first_row for t in relation.tiles] == [0, 256]

    def test_tile_numbers_stay_strictly_increasing(self):
        relation = bursty_db(512).tables["t"]
        force_compact(relation)
        numbers = [t.header.tile_number for t in relation.tiles]
        assert numbers == sorted(set(numbers))
        # a post-compaction flush must keep allocating above the max
        relation.insert_many(bursty_documents(64))
        relation.flush_inserts()
        new_numbers = [t.header.tile_number for t in relation.tiles]
        assert new_numbers == sorted(set(new_numbers))
        assert new_numbers[-1] > numbers[-1]

    def test_remining_extracts_the_bursty_field(self):
        relation = bursty_db(512).tables["t"]
        # "extra" misses the 60 % threshold in every even input tile
        even_inputs = relation.tiles[0::2]
        assert any("extra" not in {str(p) for p in t.header.columns}
                   for t in even_inputs)
        force_compact(relation)
        merged_paths = [{str(p) for p in t.header.columns}
                        for t in relation.tiles]
        assert all("extra" in paths for paths in merged_paths)

    def test_extracted_fraction_is_monotone_in_level(self):
        relation = bursty_db(512).tables["t"]
        before = relation.manifest().level_report()[0]
        force_compact(relation)
        after = relation.manifest().level_report()[1]
        assert after["extracted_fraction"] > before["extracted_fraction"]

    def test_noop_on_missing_or_mixed_runs(self):
        relation = bursty_db(512).tables["t"]
        assert relation.compact_tiles(99, 4) is False  # no such number
        assert relation.compact_tiles(5, 4) is False   # run too short
        assert relation.compact_tiles(0, 4) is True
        # tile 0 is now level 1, tiles 4.. are level 0: mixed levels
        assert relation.compact_tiles(0, 4) is False

    def test_levels_survive_persistence(self, tmp_path):
        db = bursty_db(512)
        relation = db.tables["t"]
        force_compact(relation)
        save_database(db, tmp_path / "store")
        reloaded = load_relation(tmp_path / "store" / "t.jtile")
        assert [t.header.level for t in reloaded.tiles] == \
            [t.header.level for t in relation.tiles]
        assert list(reloaded.documents()) == list(relation.documents())

    def test_explain_analyze_reports_levels(self):
        db = bursty_db(512)
        force_compact(db.tables["t"])
        text = db.explain("select count(*) as n from t t", analyze=True)
        assert "[levels: L1=2]" in text


class TestDifferentialCompaction:
    """ISSUE satellite: twitter / yelp / TPC-H results bit-identical
    with compaction forced on vs off."""

    def _check(self, make, queries):
        reference = make()
        expected = {name: reference.sql(text).rows
                    for name, text in queries.items()}
        compacted_db = make()
        merged = sum(force_compact(rel) for rel in
                     {id(r): r for r in compacted_db.tables.values()}
                     .values())
        assert merged > 0  # compaction actually happened
        for name, text in queries.items():
            assert compacted_db.sql(text).rows == expected[name], name
            parallel = compacted_db.sql(
                text, QueryOptions(parallelism=4)).rows
            assert parallel == expected[name], (name, "parallel")

    def test_twitter(self):
        self._check(lambda: twitter.make_database(
            400, StorageFormat.TILES, CONFIG), twitter.TWITTER_QUERIES)

    def test_yelp(self):
        self._check(lambda: yelp.make_database(
            80, StorageFormat.TILES, CONFIG), yelp.YELP_QUERIES)

    def test_tpch(self):
        self._check(lambda: make_tpch(
            0.002, StorageFormat.TILES, CONFIG, combined=True,
            shuffled=True), TPCH_QUERIES)


class TestStaleCacheInvalidation:
    """Satellite regression: compaction must invalidate resolved-column
    cache entries and TileStore residency for every merged input before
    the manifest swap commits."""

    # "extra" is below the mining threshold in even tiles, so the scan
    # resolves it through the JSONB fallback and the resolved column
    # lands in the process-wide tile cache
    QUERY = ("select count(*) as n, sum(t.data->>'extra'::int) as s "
             "from t t where t.data->>'extra'::int >= 0")

    def test_inputs_invalidated_before_swap(self, global_store,
                                            monkeypatch):
        db = bursty_db(512)
        relation = db.tables["t"]
        expected = db.sql(self.QUERY).rows
        options = QueryOptions(tile_cache=True)
        db.sql(self.QUERY, options)  # warm the resolved-column cache
        old_uids = {t.uid for t in relation.tiles[:4]}
        cached_uids = {key[1] for key in GLOBAL_TILE_CACHE._entries}
        assert old_uids & cached_uids  # the warm-up actually cached

        calls = []
        real_invalidate = GLOBAL_TILE_CACHE.invalidate_tile

        def spying_invalidate(uid):
            # the fix's ordering contract: when an input is
            # invalidated it must still be the live tile in the
            # relation — i.e. the manifest swap has not committed yet
            calls.append((uid, any(t.uid == uid for t in relation.tiles)))
            return real_invalidate(uid)

        monkeypatch.setattr(GLOBAL_TILE_CACHE, "invalidate_tile",
                            spying_invalidate)
        discards_before = global_store.stats()["discards"]
        assert relation.compact_tiles(0, 4)
        assert {uid for uid, _ in calls} >= old_uids
        assert all(live for uid, live in calls if uid in old_uids)
        # no resolved column of a merged input may survive the swap
        assert not {key[1] for key in GLOBAL_TILE_CACHE._entries} \
            & old_uids
        assert global_store.stats()["discards"] >= discards_before + 4
        # and the post-merge world still answers bit-identically
        assert db.sql(self.QUERY, options) .rows == expected

    def test_cached_query_identical_after_compaction(self, global_store):
        db = bursty_db(512)
        options = QueryOptions(tile_cache=True)
        expected = db.sql(self.QUERY, options).rows
        force_compact(db.tables["t"])
        assert db.sql(self.QUERY, options).rows == expected


class TestCrashRecovery:
    """Forged-journal tests: a merge killed between tile write and
    manifest commit recovers to either the old tiles or the merged
    tile — never both, never a torn mixture."""

    def _journal(self, tmp_path):
        return MaintenanceJournal(
            WriteAheadLog(tmp_path / "maintenance.journal", sync=False))

    def _daemon(self, tmp_path, relation):
        relation.lsm_config = LsmConfig(enabled=True)
        return MaintenanceDaemon(
            {"t": relation},
            MaintenanceConfig(enabled=True, max_actions_per_cycle=0),
            journal=self._journal(tmp_path))

    QUERY = "select count(*) as n, sum(t.data->>'id'::int) as s from t t"

    def test_replay_with_old_tiles_repeats_the_merge(self, tmp_path):
        db = bursty_db(512)
        relation = db.tables["t"]
        expected = db.sql(self.QUERY).rows
        journal = self._journal(tmp_path)
        journal.log("begin", MaintenanceAction(
            ActionKind.COMPACT_TILES, "t", 0, 1.0))
        journal.close()  # process died before the manifest commit

        daemon = self._daemon(tmp_path, relation)
        assert daemon.counters["recovered"] == 1
        executed = daemon.run_cycle()
        assert [r["status"] for r in executed] == ["done"]
        assert daemon.counters["merges"] == 1
        assert daemon.journal.pending() == []
        assert relation.tiles[0].header.level == 1
        assert db.sql(self.QUERY).rows == expected

    def test_replay_after_commit_is_a_clean_noop(self, tmp_path):
        db = bursty_db(512)
        relation = db.tables["t"]
        expected = db.sql(self.QUERY).rows
        assert relation.compact_tiles(0, 4)  # the merge DID commit...
        journal = self._journal(tmp_path)
        journal.log("begin", MaintenanceAction(
            ActionKind.COMPACT_TILES, "t", 0, 1.0))
        journal.close()  # ...but the journal commit never made it out

        daemon = self._daemon(tmp_path, relation)
        assert daemon.counters["recovered"] == 1
        executed = daemon.run_cycle()
        assert [r["status"] for r in executed] == ["noop"]
        assert daemon.counters["merges"] == 0
        assert daemon.journal.pending() == []
        assert db.sql(self.QUERY).rows == expected

    def test_barrier_crash_leaves_relation_unchanged(self, tmp_path,
                                                     monkeypatch):
        db = bursty_db(512)
        relation = db.tables["t"]
        expected = db.sql(self.QUERY).rows
        before = list(relation.tiles)

        def explode(rel, old_tiles, merged):
            raise RuntimeError("simulated crash before manifest commit")

        monkeypatch.setattr(relation_module, "_COMPACT_COMMIT_BARRIER",
                            explode)
        daemon = self._daemon(tmp_path, relation)
        daemon.config.max_actions_per_cycle = 8
        executed = daemon.run_cycle()
        statuses = {r["status"] for r in executed
                    if r["kind"] == "compact_tiles"}
        assert statuses == {"error"}
        assert relation.tiles == before  # old world intact
        assert db.sql(self.QUERY).rows == expected
        # the failed action is journalled 'failed', not left pending
        assert daemon.journal.pending() == []

        # lifting the barrier, the next cycle completes the merges
        monkeypatch.setattr(relation_module, "_COMPACT_COMMIT_BARRIER",
                            None)
        daemon.run_cycle()
        assert daemon.counters["merges"] >= 1
        assert db.sql(self.QUERY).rows == expected

    def test_interrupt_at_every_boundary(self, tmp_path, monkeypatch):
        """Kill + replay the same merge at each journal boundary in
        sequence: begin-only, post-merge begin-only, clean commit."""
        db = bursty_db(512)
        relation = db.tables["t"]
        expected = db.sql(self.QUERY).rows

        # boundary 1: begin written, merge never ran
        journal = self._journal(tmp_path)
        journal.log("begin", MaintenanceAction(
            ActionKind.COMPACT_TILES, "t", 0, 1.0))
        journal.close()
        daemon = self._daemon(tmp_path, relation)
        assert [r["status"] for r in daemon.run_cycle()] == ["done"]

        # boundary 2: merge committed, journal commit lost
        journal = self._journal(tmp_path)
        journal.log("begin", MaintenanceAction(
            ActionKind.COMPACT_TILES, "t", 0, 1.0))
        journal.close()
        daemon = self._daemon(tmp_path, relation)
        assert [r["status"] for r in daemon.run_cycle()] == ["noop"]

        # boundary 3: nothing pending — a fresh daemon has no replay
        daemon = self._daemon(tmp_path, relation)
        assert daemon.counters["recovered"] == 0
        assert db.sql(self.QUERY).rows == expected


class TestIngestSoak:
    """Bounded soak: sustained inserts + concurrent queries + forced
    compactions.  No lost or duplicated rows, peak resident bytes
    within the TileStore budget, and the hierarchy actually forms."""

    QUERY = ("select count(*) as n, sum(t.data->>'id'::int) as s "
             "from t t")

    def test_soak(self, tmp_path, global_store):
        config = ExtractionConfig(tile_size=32, partition_size=2,
                                  enable_reordering=False)
        db = Database(StorageFormat.TILES, config)
        relation = db.load_table("t", bursty_documents(256, 32))
        relation.lsm_config = LsmConfig(enabled=True, fanout=4,
                                        max_level=2)
        save_database(db, tmp_path / "store")  # handles become clean
        # the budget must cover the instantaneous dirty working set
        # (fresh flushes and merged tiles are unevictable until the
        # next checkpoint rebinds them) plus one pinned scan tile; 6x
        # the initial clean working set leaves room for that while
        # still catching any residency leak in the compaction path
        budget = int(sum(h.nbytes for h in relation.tiles) * 6)
        global_store.set_budget(budget)
        global_store.reset_stats()  # peak tracking starts here

        daemon = MaintenanceDaemon({"t": relation})
        errors = []
        stop = threading.Event()

        def run(worker):
            try:
                while not stop.is_set():
                    worker()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(f"{worker.__name__}: "
                              f"{type(exc).__name__}: {exc}")

        def query():
            result = db.sql(self.QUERY)
            count, total = result.rows[0]
            # every snapshot is consistent: ids are unique and dense,
            # so the sum of any n acknowledged rows is n*(n-1)/2
            assert total == count * (count - 1) // 2, \
                f"torn snapshot: {count} rows sum {total}"

        state = {"next_id": 256, "rounds": 0}

        def ingest():
            start = state["next_id"]
            relation.insert_many(
                [{"id": i, "score": float(i), "tag": f"t{i % 7}"}
                 for i in range(start, start + 32)])
            state["next_id"] += 32
            relation.flush_inserts()
            save_database(db, tmp_path / "store")
            state["rounds"] += 1
            if state["rounds"] >= 8:
                stop.set()

        def maintain():
            daemon.run_cycle(force=True)

        threads = [threading.Thread(target=run, args=(worker,),
                                    daemon=True)
                   for worker in (query, ingest, maintain)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not [t for t in threads if t.is_alive()], "deadlock"
        assert not errors, errors

        total = state["next_id"]
        count, id_sum = db.sql(self.QUERY).rows[0]
        assert count == total                      # no lost rows
        assert id_sum == total * (total - 1) // 2  # no duplicates
        assert global_store.stats()["peak_resident_bytes"] <= budget
        assert daemon.counters["merges"] >= 1
        assert max(level_histogram(relation)) >= 1


class TestServerIntegration:
    def test_server_stats_carry_lsm_section(self, tmp_path):
        from repro.server import JsonTilesServer, ServerClient

        server = JsonTilesServer(
            tmp_path / "data", wal_sync=False, query_workers=2,
            lsm_config=LsmConfig(enabled=True, fanout=4),
            maintenance_config=MaintenanceConfig(
                enabled=True, interval_s=3600.0,
                max_actions_per_cycle=8))
        assert server.maintenance_enabled  # --lsm implies maintenance
        server.start_in_thread()
        try:
            with ServerClient(port=server.port) as client:
                client.create_table("t", "tiles",
                                    {"tile_size": 32,
                                     "partition_size": 2})
                client.insert_many("t", bursty_documents(256, 32))
                client.flush("t")
                expected = client.query(
                    "select count(*) as n, "
                    "sum(t.data->>'id'::int) as s from t t").rows
                client.maintenance("force")
                stats = client.stats()
                lsm = stats["tables"]["t"]["lsm"]
                assert lsm["enabled"] is True
                assert lsm["counters"]["merges"] >= 1
                levels = {int(k) for k in lsm["levels"]}
                assert max(levels) >= 1
                assert client.query(
                    "select count(*) as n, "
                    "sum(t.data->>'id'::int) as s from t t").rows \
                    == expected
        finally:
            server.stop_in_thread()
