"""Differential tests: shredded fallback scans are bit-identical to
per-path traversal.

``TableScan(..., multipath_shred=False)`` is the reference
implementation — one ``jsonb_get_path`` traversal per (tuple, path).
The shredder must produce the same columns (values, null masks, text
renderings) over the paper's workload generators, including tiles with
Section 3.4 type conflicts where several conflicted requests patch
stored-NULL slots in one pass.
"""

import numpy as np
import pytest

from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType
from repro.engine.batch import concat_batches
from repro.engine.scan import AccessRequest, TableScan
from repro.storage import StorageFormat, load_documents
from repro.tiles import ExtractionConfig
from repro.workloads import hackernews, twitter, yelp

CONFIG = ExtractionConfig(tile_size=64, partition_size=4)


def scan(relation, specs, multipath_shred, as_text=True):
    requests = [AccessRequest.make(relation.name, KeyPath.parse(path),
                                   target, as_text)
                for path, target in specs]
    table_scan = TableScan(relation, requests,
                           multipath_shred=multipath_shred)
    batch = concat_batches(list(table_scan.batches()))
    return batch, table_scan.counters


def assert_identical(relation, specs, as_text=True):
    on, counters_on = scan(relation, specs, True, as_text)
    off, counters_off = scan(relation, specs, False, as_text)
    assert list(on.columns) == list(off.columns)
    for name in on.columns:
        left, right = on.column(name), off.column(name)
        assert left.type == right.type, name
        assert np.array_equal(left.null_mask, right.null_mask), name
        assert all(x == y for x, y, null
                   in zip(left.data, right.data, left.null_mask)
                   if not null), name
    # the logical work accounting must not depend on the physics
    assert counters_on.fallback_lookups == counters_off.fallback_lookups
    assert counters_off.shred_passes == 0
    return on


TWITTER_SPECS = [
    ("user.id", ColumnType.INT64),
    ("user.screen_name", ColumnType.STRING),
    ("user.followers_count", ColumnType.INT64),
    ("retweet_count", ColumnType.INT64),
    ("entities.hashtags[0].text", ColumnType.STRING),
    ("lang", ColumnType.STRING),
    ("user.verified", ColumnType.BOOL),
    ("user.statuses_count", ColumnType.INT64),  # absent everywhere
    ("in_reply_to_status_id", ColumnType.INT64),
    ("user", ColumnType.JSONB),
]

YELP_SPECS = [
    ("business_id", ColumnType.STRING),
    ("stars", ColumnType.FLOAT64),
    ("review_count", ColumnType.INT64),
    ("attributes.WiFi", ColumnType.STRING),
    ("hours.Monday", ColumnType.STRING),
    ("user_id", ColumnType.STRING),
    ("useful", ColumnType.INT64),
]

HN_SPECS = [
    ("id", ColumnType.INT64),
    ("type", ColumnType.STRING),
    ("by", ColumnType.STRING),
    ("score", ColumnType.INT64),
    ("kids[0]", ColumnType.INT64),
    ("title", ColumnType.STRING),
    ("descendants", ColumnType.INT64),
]


@pytest.fixture(scope="module")
def twitter_docs():
    return list(twitter.TwitterGenerator(400).stream())


@pytest.fixture(scope="module")
def yelp_docs():
    return yelp.YelpGenerator(40, reviews_per_business=4).combined()


@pytest.fixture(scope="module")
def hn_docs():
    return hackernews.generate_items(400)


class TestGeneratorsBitIdentical:
    @pytest.mark.parametrize("storage", [StorageFormat.JSONB,
                                         StorageFormat.TILES,
                                         StorageFormat.JSON])
    def test_twitter(self, twitter_docs, storage):
        relation = load_documents("tw", twitter_docs, storage, CONFIG)
        assert_identical(relation, TWITTER_SPECS)

    @pytest.mark.parametrize("storage", [StorageFormat.JSONB,
                                         StorageFormat.TILES])
    def test_yelp(self, yelp_docs, storage):
        relation = load_documents("y", yelp_docs, storage, CONFIG)
        assert_identical(relation, YELP_SPECS)

    @pytest.mark.parametrize("storage", [StorageFormat.JSONB,
                                         StorageFormat.TILES])
    def test_hackernews(self, hn_docs, storage):
        relation = load_documents("hn", hn_docs, storage, CONFIG)
        assert_identical(relation, HN_SPECS)

    def test_twitter_typed_not_text(self, twitter_docs):
        relation = load_documents("tw", twitter_docs,
                                  StorageFormat.JSONB, CONFIG)
        assert_identical(relation, TWITTER_SPECS, as_text=False)

    def test_against_document_lookup(self, twitter_docs):
        # third reference, independent of TableScan: as_text STRING
        # access equals the raw document lookup for present scalars
        relation = load_documents("tw", twitter_docs,
                                  StorageFormat.JSONB, CONFIG)
        batch = assert_identical(
            relation, [("user.screen_name", ColumnType.STRING)])
        values = list(batch.columns.values())[0].to_list()
        expected = [KeyPath.parse("user.screen_name").lookup(doc)
                    for doc in twitter_docs]
        assert values == expected


class TestConflictTiles:
    """Section 3.4: multiple conflicted columns patched in one shred
    pass over the outlier rows must equal per-request patching."""

    def docs(self):
        out = []
        for i in range(96):
            doc = {"a": float(i), "b": i, "c": f"s{i}"}
            if i % 13 == 0:
                doc["a"] = "oops"          # type outlier -> stored NULL
            if i % 17 == 0:
                doc["b"] = {"nested": i}   # another conflicted column
            if i % 19 == 0:
                doc["c"] = i               # int outlier in string column
            out.append(doc)
        return out

    def test_multi_conflict_patch_identical(self):
        relation = load_documents("t", self.docs(), StorageFormat.TILES,
                                  CONFIG)
        specs = [("a", ColumnType.FLOAT64), ("b", ColumnType.INT64),
                 ("c", ColumnType.STRING)]
        assert_identical(relation, specs)

    def test_conflict_shred_counters(self):
        relation = load_documents("t", self.docs(), StorageFormat.TILES,
                                  CONFIG)
        specs = [("a", ColumnType.FLOAT64), ("b", ColumnType.INT64),
                 ("c", ColumnType.STRING)]
        _, counters = scan(relation, specs, True)
        # conflicted outlier rows are walked once each, not once per
        # conflicted request
        assert counters.shred_passes > 0
        assert counters.shred_paths >= counters.shred_passes
