"""Tests for equi-depth histograms and their optimizer integration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, ExtractionConfig
from repro.core.jsonpath import KeyPath
from repro.stats.histogram import EquiDepthHistogram


class TestHistogramBasics:
    def test_uniform_fractions(self):
        histogram = EquiDepthHistogram.from_values(list(range(1000)))
        assert histogram.total == 1000
        assert histogram.fraction_below(499.5) == pytest.approx(0.5, abs=0.05)
        assert histogram.fraction_below(-10) == 0.0
        assert histogram.fraction_below(2000) == 1.0

    def test_between(self):
        histogram = EquiDepthHistogram.from_values(list(range(100)))
        assert histogram.fraction_between(25, 74) == pytest.approx(0.5,
                                                                   abs=0.06)
        assert histogram.fraction_between(None, 49) == pytest.approx(0.5,
                                                                     abs=0.06)
        assert histogram.fraction_between(90, 10) == 0.0

    def test_skewed_distribution_beats_uniform_assumption(self):
        # 90% of mass in [0, 10], 10% in [10, 1000]
        values = [i % 10 for i in range(900)] + \
                 [10 + (i * 99) % 990 for i in range(100)]
        histogram = EquiDepthHistogram.from_values(values)
        below_ten = histogram.fraction_below(10.0)
        assert below_ten > 0.8  # uniform min/max assumption would say 1%

    def test_degenerate_single_value(self):
        histogram = EquiDepthHistogram.from_values([5.0] * 50)
        assert histogram.total == 50
        assert histogram.fraction_below(5.0) == pytest.approx(1.0, abs=0.01)
        assert histogram.fraction_below(4.9) == 0.0

    def test_empty_returns_none(self):
        assert EquiDepthHistogram.from_values([]) is None
        assert EquiDepthHistogram.from_values([float("nan")]) is None

    def test_merge_preserves_total(self):
        left = EquiDepthHistogram.from_values(list(range(100)))
        right = EquiDepthHistogram.from_values(list(range(500, 1000)))
        merged = left.merge(right)
        assert merged.total == pytest.approx(600)
        assert merged.low == 0 and merged.high == 999

    def test_merge_estimates_union(self):
        left = EquiDepthHistogram.from_values(list(range(0, 100)))
        right = EquiDepthHistogram.from_values(list(range(100, 200)))
        merged = left.merge(right)
        assert merged.fraction_below(100) == pytest.approx(0.5, abs=0.07)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200),
           st.floats(-1e6, 1e6))
    def test_property_fraction_monotone_and_bounded(self, values, probe):
        histogram = EquiDepthHistogram.from_values(values)
        fraction = histogram.fraction_below(probe)
        assert 0.0 <= fraction <= 1.0
        assert histogram.fraction_below(probe + 1.0) >= fraction - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=100),
           st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=100))
    def test_property_merge_total(self, left_values, right_values):
        left = EquiDepthHistogram.from_values(left_values)
        right = EquiDepthHistogram.from_values(right_values)
        if left is None or right is None:
            return
        merged = left.merge(right)
        assert merged.total == pytest.approx(left.total + right.total)


class TestHistogramIntegration:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database(config=ExtractionConfig(tile_size=64))
        # heavily skewed: 90% of values are tiny
        docs = [{"v": (i % 10) if i % 10 != 9 else 5000 + i} for i in
                range(1000)]
        database.load_table("t", docs)
        return database

    def test_relation_histogram_exists(self, db):
        stats = db.table("t").statistics
        histogram = stats.histogram(KeyPath.parse("v"))
        assert histogram is not None
        assert histogram.total == pytest.approx(1000)

    def test_range_selectivity_uses_histogram(self, db):
        stats = db.table("t").statistics
        # true selectivity of v <= 10 is 0.9; min/max-uniform would
        # estimate ~0.2%
        selectivity = stats.range_selectivity(KeyPath.parse("v"), high=10)
        assert selectivity > 0.5

    def test_histogram_survives_persistence(self, db, tmp_path):
        from repro.storage.persist import load_relation, save_relation

        save_relation(db.table("t"), tmp_path / "t.jtile")
        restored = load_relation(tmp_path / "t.jtile")
        histogram = restored.statistics.histogram(KeyPath.parse("v"))
        assert histogram is not None
        assert restored.statistics.range_selectivity(
            KeyPath.parse("v"), high=10) > 0.5

    def test_timestamp_histogram(self):
        database = Database(config=ExtractionConfig(tile_size=64))
        docs = [{"d": f"2020-{(i % 12) + 1:02d}-15"} for i in range(240)]
        database.load_table("t", docs)
        stats = database.table("t").statistics
        from repro.core.datetimes import date_literal
        half = stats.range_selectivity(KeyPath.parse("d"),
                                       high=date_literal("2020-06-30"))
        assert 0.3 < half < 0.7
