"""Tests for the JSONB binary format: encoder, decoder, access layer."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jsonpath import KeyPath
from repro.core.types import JsonType
from repro.errors import JsonbDecodeError, JsonbEncodeError
from repro.jsonb import JsonbValue, decode, encode, encoded_size
from repro.jsonb import format as fmt


class TestScalarRoundTrip:
    @pytest.mark.parametrize("value", [None, True, False])
    def test_literals(self, value):
        assert decode(encode(value)) is value

    @pytest.mark.parametrize("value", [0, 1, 7, 8, -1, 255, -256, 2**31,
                                       -(2**31) - 1, 2**63 - 1, -(2**63)])
    def test_integers(self, value):
        assert decode(encode(value)) == value

    def test_small_int_lives_in_header(self):
        # values < 2^3 take exactly one byte (Section 5.1)
        for value in range(8):
            assert len(encode(value)) == 1
        assert len(encode(8)) == 2
        assert len(encode(-1)) == 2

    def test_integer_overflow_rejected(self):
        with pytest.raises((JsonbEncodeError, OverflowError)):
            encode(2**64)

    @pytest.mark.parametrize("value", [0.0, 1.5, -2.25, 3.141592653589793,
                                       1e300, -1e-300, 6.1e-5])
    def test_floats(self, value):
        assert decode(encode(value)) == value

    def test_float_narrowing_is_lossless(self):
        # 1.5 is representable as half precision: 1 header + 2 bytes
        assert len(encode(1.5)) == 3
        # 1/3 needs full double precision
        assert len(encode(1.0 / 3.0)) == 9
        # float32-exact value
        import numpy as np
        single = float(np.float32(1.1))
        assert len(encode(single)) == 5

    def test_float_specials(self):
        assert decode(encode(float("inf"))) == float("inf")
        assert decode(encode(float("-inf"))) == float("-inf")
        assert math.isnan(decode(encode(float("nan"))))

    @pytest.mark.parametrize("value", ["", "a", "hello world", "ünïcodé ✓",
                                       "x" * 27, "x" * 28, "x" * 1000])
    def test_strings(self, value):
        assert decode(encode(value)) == value

    def test_numeric_string_exact_roundtrip(self):
        # Section 5.2: a decimal-valued price stays textually exact.
        for text in ["19.99", "-0.001", "123456789012345678901234567890"]:
            assert decode(encode(text)) == text

    def test_numeric_string_detection_can_be_disabled(self):
        buf = encode("19.99", detect_numeric_strings=False)
        assert JsonbValue(buf).json_type() == JsonType.STRING
        buf = encode("19.99")
        assert JsonbValue(buf).json_type() == JsonType.NUMSTR


class TestContainerRoundTrip:
    def test_empty_containers(self):
        assert decode(encode({})) == {}
        assert decode(encode([])) == []

    def test_object_keys_sorted(self):
        buf = encode({"b": 1, "a": 2, "c": 3})
        assert list(decode(buf).keys()) == ["a", "b", "c"]

    def test_object_values_preserved(self):
        doc = {"id": 0, "name": "JSON"}
        assert decode(encode(doc)) == doc

    def test_nested(self):
        doc = {"user": {"id": 7, "tags": [1, 2, {"deep": True}]}, "geo": None}
        assert decode(encode(doc)) == doc

    def test_tuple_encodes_as_array(self):
        assert decode(encode((1, 2))) == [1, 2]

    def test_paper_twitter_example(self):
        doc = json.loads(
            '{"id":5, "create": "1/10", "text": "b", "user": {"id": 7},'
            ' "replies": 3, "geo": {"lat": 1.9}}'
        )
        assert decode(encode(doc)) == doc

    def test_non_string_key_rejected(self):
        with pytest.raises(JsonbEncodeError):
            encode({1: "x"})

    def test_unencodable_value_rejected(self):
        with pytest.raises(JsonbEncodeError):
            encode({"x": object()})

    def test_encoded_size_matches(self):
        doc = {"a": [1, 2.5, "three"], "b": {"c": None}}
        assert encoded_size(doc) == len(encode(doc))

    def test_large_object_uses_wide_offsets(self):
        doc = {f"key{i:05d}": "v" * 50 for i in range(200)}
        assert decode(encode(doc)) == doc


class TestDecoderRobustness:
    def test_truncated_document(self):
        buf = encode({"a": "hello"})
        with pytest.raises(JsonbDecodeError):
            decode(buf[:-2])

    def test_trailing_garbage(self):
        with pytest.raises(JsonbDecodeError):
            decode(encode(1) + b"\x00")

    def test_empty_buffer(self):
        with pytest.raises(JsonbDecodeError):
            decode(b"")

    def test_invalid_type_id(self):
        with pytest.raises(JsonbDecodeError):
            decode(bytes([0xFF]))


class TestAccess:
    DOC = {"id": 5, "create": "2020-06-01", "text": "b",
           "user": {"id": 7, "name": "bob"},
           "replies": 3, "geo": {"lat": 1.9},
           "tags": ["x", "y", "z"], "price": "19.99", "flag": True}

    @pytest.fixture()
    def root(self):
        return JsonbValue(encode(self.DOC))

    def test_object_get(self, root):
        assert root.get("id").as_python() == 5
        assert root.get("text").as_python() == "b"
        assert root.get("missing") is None

    def test_binary_search_finds_every_key(self):
        doc = {f"k{i:04d}": i for i in range(100)}
        root = JsonbValue(encode(doc))
        for i in range(100):
            assert root.get(f"k{i:04d}").as_python() == i

    def test_nested_path(self, root):
        assert root.get_path(KeyPath(("user", "id"))).as_python() == 7
        assert root.get_path(KeyPath(("geo", "lat"))).as_python() == 1.9
        assert root.get_path(KeyPath(("user", "zip"))) is None

    def test_array_index(self, root):
        tags = root.get("tags")
        assert tags.get(0).as_python() == "x"
        assert tags.get(2).as_python() == "z"
        assert tags.get(3) is None
        assert tags.get(-1).as_python() == "z"
        assert len(tags) == 3

    def test_scalar_navigation_fails_gracefully(self, root):
        assert root.get("id").get("x") is None
        assert root.get("id").get(0) is None

    def test_iter_items_object(self, root):
        items = {key: value.as_python() for key, value in root.iter_items()}
        assert items["id"] == 5
        assert items["user"] == {"id": 7, "name": "bob"}

    def test_iter_items_array(self, root):
        values = [value.as_python() for _, value in root.get("tags").iter_items()]
        assert values == ["x", "y", "z"]

    def test_as_text_matches_postgres_semantics(self, root):
        assert root.get("id").as_text() == "5"
        assert root.get("text").as_text() == "b"
        assert root.get("flag").as_text() == "true"
        assert root.get("geo").get("lat").as_text() == "1.9"
        # ->> on a container yields JSON text
        assert json.loads(root.get("user").as_text()) == {"id": 7, "name": "bob"}

    def test_null_as_text_is_sql_null(self):
        root = JsonbValue(encode({"geo": None}))
        assert root.get("geo").as_text() is None
        assert root.get("geo").is_null()

    def test_typed_getters(self, root):
        assert root.get("id").as_int() == 5
        assert root.get("id").as_float() == 5.0
        assert root.get("price").as_float() == 19.99
        assert root.get("price").as_int() == 19
        assert root.get("flag").as_bool() is True
        assert root.get("text").as_int() is None

    def test_timestamp_getter(self, root):
        micros = root.get("create").as_timestamp()
        assert micros is not None
        from repro.core.datetimes import date_string
        assert date_string(micros) == "2020-06-01"
        assert root.get("text").as_timestamp() is None

    def test_slice_bytes_is_standalone(self, root):
        sub = root.get("user").slice_bytes()
        assert decode(sub) == {"id": 7, "name": "bob"}


# ---------------------------------------------------------------------------
# property-based round-trip

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63 - 1)
    | st.floats(allow_nan=False)
    | st.text(max_size=40),
    lambda children: st.lists(children, max_size=6)
    | st.dictionaries(st.text(max_size=12), children, max_size=6),
    max_leaves=25,
)


class TestPropertyRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(json_values)
    def test_roundtrip(self, value):
        assert decode(encode(value)) == _sorted_keys(value)

    @settings(max_examples=100, deadline=None)
    @given(json_values)
    def test_size_matches(self, value):
        assert encoded_size(value) == len(encode(value))

    @settings(max_examples=100, deadline=None)
    @given(st.dictionaries(st.text(min_size=1, max_size=10), json_values,
                           min_size=1, max_size=8))
    def test_every_key_reachable(self, doc):
        root = JsonbValue(encode(doc))
        for key, value in doc.items():
            hit = root.get(key)
            assert hit is not None
            assert hit.as_python() == _sorted_keys(value)


def _sorted_keys(value):
    """Expected decode result: JSONB sorts object keys."""
    if isinstance(value, dict):
        return {key: _sorted_keys(value[key])
                for key in sorted(value, key=lambda k: k.encode("utf-8"))}
    if isinstance(value, list):
        return [_sorted_keys(item) for item in value]
    return value


class TestHeaderHelpers:
    def test_header_split(self):
        header = fmt.make_header(fmt.TYPE_STRING, 12)
        assert fmt.split_header(header) == (fmt.TYPE_STRING, 12)

    def test_compact_uint_roundtrip(self):
        for value in (0, 1, 250, 251, 65535, 65536, 2**32 - 1, 2**32, 2**63):
            buf = bytearray(16)
            end = fmt.write_compact_uint(buf, 0, value)
            assert fmt.compact_uint_size(value) == end
            read, pos = fmt.read_compact_uint(bytes(buf), 0)
            assert (read, pos) == (value, end)

    def test_offset_width_code(self):
        assert fmt.offset_width_code(0) == 0
        assert fmt.offset_width_code(255) == 0
        assert fmt.offset_width_code(256) == 1
        assert fmt.offset_width_code(2**16) == 2
        assert fmt.offset_width_code(2**32) == 3
