"""Property-based end-to-end invariants.

The central correctness property of the whole system: for any document
collection and any access, the TILES representation (extraction +
fallbacks + skipping) returns exactly what the plain JSONB
representation returns — extraction is an acceleration structure, never
a semantic change.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType
from repro.engine.batch import concat_batches
from repro.engine.scan import AccessRequest, TableScan
from repro.storage import StorageFormat, load_documents
from repro.tiles import ExtractionConfig

# documents with a controlled vocabulary so paths collide across
# documents (exercising extraction) but types and presence vary
value_strategy = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**40), 2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(min_size=0, max_size=12),
    st.dictionaries(st.sampled_from(["x", "y"]),
                    st.integers(0, 9) | st.text(max_size=4), max_size=2),
    st.lists(st.integers(0, 9), max_size=3),
)
document_strategy = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d", "e"]), value_strategy,
    min_size=0, max_size=5,
)

CONFIG = ExtractionConfig(tile_size=8, partition_size=2)

PATHS = [KeyPath.parse(p) for p in
         ["a", "b", "c", "d", "e", "a.x", "a.y", "b.x", "a[0]", "c[1]"]]
TARGETS = [ColumnType.INT64, ColumnType.FLOAT64, ColumnType.STRING,
           ColumnType.BOOL]


def scan_values(relation, path, target, multipath_shred=True):
    request = AccessRequest.make("t", path, target, as_text=True)
    scan = TableScan(relation, [request], enable_skipping=True,
                     multipath_shred=multipath_shred)
    batch = concat_batches(list(scan.batches()))
    if batch is None:
        return []
    return batch.column(request.name).to_list()


class TestTilesEqualJsonb:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(document_strategy, min_size=1, max_size=40),
           st.booleans(), st.booleans())
    def test_every_access_identical(self, documents, shred_tiles,
                                    shred_jsonb):
        tiles = load_documents("t", documents, StorageFormat.TILES, CONFIG)
        jsonb = load_documents("t", documents, StorageFormat.JSONB, CONFIG)
        for path in PATHS:
            for target in TARGETS:
                # the shredder toggle is drawn per example: every
                # on/off pairing of both representations must agree
                left = scan_values(tiles, path, target,
                                   multipath_shred=shred_tiles)
                right = scan_values(jsonb, path, target,
                                    multipath_shred=shred_jsonb)
                # reordering permutes rows: compare as multisets
                assert _multiset(_norm(left)) == _multiset(_norm(right)), \
                    (str(path), target, shred_tiles, shred_jsonb)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(document_strategy, min_size=1, max_size=40))
    def test_multipath_scan_matches_per_path(self, documents):
        # all paths in ONE scan (shared trie, one walk per tuple) must
        # equal the same paths resolved one scan at a time
        jsonb = load_documents("t", documents, StorageFormat.JSONB, CONFIG)
        requests = [AccessRequest.make("t", path, ColumnType.STRING,
                                       as_text=True) for path in PATHS]
        scan = TableScan(jsonb, requests, multipath_shred=True)
        batch = concat_batches(list(scan.batches()))
        for request, path in zip(requests, PATHS):
            single = scan_values(jsonb, path, ColumnType.STRING,
                                 multipath_shred=False)
            assert batch.column(request.name).to_list() == single, \
                str(path)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(document_strategy, min_size=1, max_size=40))
    def test_documents_roundtrip(self, documents):
        relation = load_documents("t", documents, StorageFormat.TILES,
                                  CONFIG)
        stored = list(relation.documents())
        assert len(stored) == len(documents)
        # reordering may permute documents; compare as multisets of
        # canonical JSON
        import json

        def canon(doc):
            return json.dumps(doc, sort_keys=True)

        assert sorted(map(canon, stored)) == sorted(map(canon, documents))

    @settings(max_examples=15, deadline=None)
    @given(st.lists(document_strategy, min_size=2, max_size=30),
           document_strategy)
    def test_update_then_read(self, documents, replacement):
        relation = load_documents("t", documents, StorageFormat.TILES,
                                  CONFIG)
        relation.update(0, replacement)
        assert relation.document(0) == _sorted_keys(replacement)
        # updated values visible through scans too
        for path in PATHS[:5]:
            tiles_view = scan_values(relation, path, ColumnType.STRING)
            raw = path.lookup(replacement)
            expected = _scalar_text(raw)
            assert _one(tiles_view[0]) == expected, str(path)


def _one(value):
    return value


def _scalar_text(raw):
    import json
    if raw is None:
        return None
    if isinstance(raw, bool):
        return "true" if raw else "false"
    if isinstance(raw, (dict, list)):
        return json.dumps(_sorted_keys(raw), separators=(",", ":"))
    if isinstance(raw, float) and raw == int(raw):
        return str(int(raw))
    return str(raw)


def _multiset(values):
    return sorted(values, key=lambda v: (v is None, str(type(v)), str(v)))


def _norm(values):
    # float32-narrowed values and text renderings must compare stably;
    # NaN (reachable via the text "NAN" cast to float) compares unequal
    # to itself, so normalize it to a token both sides agree on
    out = []
    for value in values:
        if isinstance(value, float):
            out.append("__nan__" if value != value else round(value, 4))
        else:
            out.append(value)
    return out


def _sorted_keys(value):
    if isinstance(value, dict):
        return {key: _sorted_keys(value[key])
                for key in sorted(value, key=lambda k: k.encode())}
    if isinstance(value, list):
        return [_sorted_keys(item) for item in value]
    return value
