"""Arrow export: schema derivation, the optional-dependency gate, the
server command, and — when ``pyarrow`` is installed — layout fidelity
(zero-copy fixed-width buffers, null bitmaps, JSONB-as-JSON-strings)
and the IPC stream round trip.

The suite must pass both with and without ``pyarrow``: the metadata
and error-path tests never import it, the positive-path tests
``importorskip`` it (the CI matrix runs them in the pyarrow job).
"""

import importlib.util

import pytest

from repro import Database, ExtractionConfig, StorageFormat
from repro.core.types import ColumnType
from repro.engine.arrow_export import default_export_paths
from repro.errors import ExecutionError
from repro.server import JsonTilesServer, ServerClient, ServerError

CONFIG = ExtractionConfig(tile_size=32, partition_size=2)

HAVE_PYARROW = importlib.util.find_spec("pyarrow") is not None


def _load(rows, name="t", config=CONFIG):
    db = Database(StorageFormat.TILES, config)
    db.load_table(name, rows, config=config)
    return db


@pytest.fixture()
def server(tmp_path):
    instance = JsonTilesServer(tmp_path / "data", wal_sync=False,
                               query_workers=2)
    instance.start_in_thread()
    yield instance
    instance.stop_in_thread()


@pytest.fixture()
def client(server):
    with ServerClient(port=server.port) as connection:
        yield connection


# ----------------------------------------------------------------------
# runs with or without pyarrow


class TestExportSchema:
    def test_union_of_tile_paths_sorted(self):
        rows = [{"a": i, "b": f"s{i}", "f": float(i)} for i in range(40)]
        db = _load(rows)
        paths = default_export_paths(db.table("t"))
        names = [str(path) for path, _type in paths]
        assert names == sorted(names)
        by_name = {str(path): t for path, t in paths}
        assert by_name["a"] == ColumnType.INT64
        assert by_name["b"] == ColumnType.STRING
        assert by_name["f"] == ColumnType.FLOAT64

    def test_cross_tile_type_conflict_degrades_to_jsonb(self):
        # tile 1 sees `k` as INT64, tile 2 as STRING — the exported
        # schema must not pick a lossy winner
        rows = [{"k": i, "v": i} for i in range(32)]
        rows += [{"k": f"s{i}", "v": i} for i in range(32)]
        db = _load(rows)
        by_name = {str(path): t
                   for path, t in default_export_paths(db.table("t"))}
        assert by_name["k"] == ColumnType.JSONB
        assert by_name["v"] == ColumnType.INT64

    def test_empty_relation_has_no_paths(self):
        db = Database(StorageFormat.TILES, CONFIG)
        db.create_table("t")
        assert default_export_paths(db.table("t")) == []


@pytest.mark.skipif(HAVE_PYARROW, reason="pyarrow installed")
class TestMissingPyarrow:
    def test_to_arrow_raises_clean_error(self):
        db = _load([{"a": i} for i in range(10)])
        with pytest.raises(ExecutionError, match="pyarrow"):
            db.table("t").to_arrow()

    def test_server_reports_bad_request(self, client):
        client.create_table("events", "tiles",
                            {"tile_size": 32, "partition_size": 2})
        client.insert_many("events", [{"id": i} for i in range(10)])
        with pytest.raises(ServerError) as excinfo:
            client.export_arrow("events")
        assert excinfo.value.code == "bad_request"
        assert "pyarrow" in str(excinfo.value)


class TestServerCommand:
    def test_unknown_table_is_bad_request(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.export_arrow("nope")
        assert excinfo.value.code == "bad_request"


# ----------------------------------------------------------------------
# positive paths: only when pyarrow is available (CI matrix job)


class TestArrowValues:
    @pytest.fixture(autouse=True)
    def pa(self):
        return pytest.importorskip("pyarrow")

    def test_values_and_schema(self, pa):
        rows = [{"a": i, "b": f"s{i % 4}", "f": i * 0.5,
                 "ok": i % 2 == 0} for i in range(50)]
        db = _load(rows)
        table = db.table("t").to_arrow()
        assert table.num_rows == 50
        assert table.schema.field("a").type == pa.int64()
        assert table.schema.field("b").type == pa.string()
        assert table.schema.field("f").type == pa.float64()
        assert table.schema.field("ok").type == pa.bool_()
        assert table.column("a").to_pylist() == [r["a"] for r in rows]
        assert table.column("b").to_pylist() == [r["b"] for r in rows]
        assert table.column("f").to_pylist() == [r["f"] for r in rows]
        assert table.column("ok").to_pylist() == [r["ok"] for r in rows]

    def test_null_bitmap(self, pa):
        rows = [{"a": i, "b": None if i % 3 == 0 else i}
                for i in range(40)]
        db = _load(rows)
        table = db.table("t").to_arrow()
        column = table.column("b").to_pylist()
        expected = [None if i % 3 == 0 else i for i in range(40)]
        assert column == expected
        assert table.column("b").null_count == \
            sum(1 for v in expected if v is None)

    def test_fixed_width_buffers_are_zero_copy(self, pa):
        import numpy as np

        from repro.engine.arrow_export import vector_to_arrow
        from repro.storage.column import ColumnVector

        data = np.arange(100, dtype=np.int64)
        vector = ColumnVector(ColumnType.INT64, data)
        array = vector_to_arrow(vector, pa)
        # the Arrow value buffer wraps the numpy array's memory
        assert array.buffers()[1].address == data.ctypes.data

    def test_jsonb_exports_json_strings(self, pa):
        import json

        rows = [{"k": i, "v": i} for i in range(32)]
        rows += [{"k": f"s{i}", "v": i} for i in range(32)]
        db = _load(rows)
        table = db.table("t").to_arrow()
        assert table.schema.field("k").type == pa.string()
        decoded = [json.loads(v) for v in table.column("k").to_pylist()]
        assert decoded[:3] == [0, 1, 2]
        assert decoded[32:35] == ["s0", "s1", "s2"]

    def test_empty_relation_exports_empty_table(self, pa):
        db = Database(StorageFormat.TILES, CONFIG)
        db.create_table("t")
        table = db.table("t").to_arrow()
        assert table.num_rows == 0

    def test_server_ipc_round_trip(self, pa, client):
        client.create_table("events", "tiles",
                            {"tile_size": 32, "partition_size": 2})
        docs = [{"id": i, "kind": "a" if i % 2 else "b"}
                for i in range(100)]
        client.insert_many("events", docs)
        payload = client.export_arrow("events")
        with pa.ipc.open_stream(payload) as reader:
            table = reader.read_all()
        assert table.num_rows == 100
        assert table.column("id").to_pylist() == list(range(100))
