"""Differential testing: SQL results vs a naive Python reference.

For randomized document collections, a set of query templates is
evaluated both through the full engine (tiles, pushdown, skipping,
vectorized operators) and by straightforward Python loops over the raw
documents.  Any divergence is a correctness bug somewhere in the
pipeline.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, ExtractionConfig, StorageFormat

CONFIG = ExtractionConfig(tile_size=16, partition_size=2)

documents = st.lists(
    st.fixed_dictionaries(
        {},
        optional={
            "k": st.integers(0, 5),
            "v": st.integers(-100, 100),
            "f": st.floats(-50, 50, allow_nan=False),
            "s": st.sampled_from(["red", "green", "blue", ""]),
            "nested": st.fixed_dictionaries(
                {}, optional={"x": st.integers(0, 3)}),
        },
    ),
    min_size=1, max_size=60,
)


def load(docs, storage_format=StorageFormat.TILES):
    db = Database(storage_format, CONFIG)
    db.load_table("t", docs)
    return db


class TestDifferentialFilters:
    @settings(max_examples=40, deadline=None)
    @given(documents, st.integers(-100, 100))
    def test_range_count(self, docs, threshold):
        db = load(docs)
        got = db.sql(f"select count(*) as n from t x "
                     f"where x.data->>'v'::int >= {threshold}").scalar()
        expected = sum(1 for d in docs
                       if d.get("v") is not None and d["v"] >= threshold)
        assert got == expected

    @settings(max_examples=40, deadline=None)
    @given(documents, st.sampled_from(["red", "green", "blue"]))
    def test_string_equality(self, docs, needle):
        db = load(docs)
        got = db.sql(f"select count(*) as n from t x "
                     f"where x.data->>'s' = '{needle}'").scalar()
        expected = sum(1 for d in docs if d.get("s") == needle)
        assert got == expected

    @settings(max_examples=30, deadline=None)
    @given(documents)
    def test_nested_access(self, docs):
        db = load(docs)
        got = db.sql("select count(*) as n from t x "
                     "where x.data->'nested'->>'x'::int >= 0").scalar()
        expected = sum(
            1 for d in docs
            if isinstance(d.get("nested"), dict)
            and d["nested"].get("x") is not None and d["nested"]["x"] >= 0)
        assert got == expected

    @settings(max_examples=30, deadline=None)
    @given(documents)
    def test_is_not_null(self, docs):
        db = load(docs)
        got = db.sql("select count(*) as n from t x "
                     "where x.data->>'f' is not null").scalar()
        expected = sum(1 for d in docs if d.get("f") is not None)
        assert got == expected

    @settings(max_examples=30, deadline=None)
    @given(documents)
    def test_disjunction(self, docs):
        db = load(docs)
        got = db.sql("select count(*) as n from t x "
                     "where x.data->>'v'::int > 50 or x.data->>'s' = 'red'"
                     ).scalar()
        expected = sum(
            1 for d in docs
            if (d.get("v") is not None and d["v"] > 50)
            or d.get("s") == "red")
        assert got == expected


class TestDifferentialAggregates:
    @settings(max_examples=40, deadline=None)
    @given(documents)
    def test_sum_avg_min_max(self, docs):
        db = load(docs)
        result = db.sql(
            "select sum(x.data->>'v'::int) as s, avg(x.data->>'v'::int) "
            "as a, min(x.data->>'v'::int) as lo, max(x.data->>'v'::int) "
            "as hi, count(x.data->>'v'::int) as c from t x")
        values = [d["v"] for d in docs if d.get("v") is not None]
        s, a, lo, hi, c = result.rows[0]
        assert c == len(values)
        if values:
            assert s == sum(values)
            assert a == pytest.approx(sum(values) / len(values))
            assert lo == min(values) and hi == max(values)

    @settings(max_examples=40, deadline=None)
    @given(documents)
    def test_group_by_key(self, docs):
        db = load(docs)
        result = db.sql(
            "select x.data->>'k'::int as k, count(*) as n, "
            "sum(x.data->>'v'::int) as s from t x "
            "group by x.data->>'k'::int")
        expected = {}
        for d in docs:
            key = d.get("k")
            entry = expected.setdefault(key, [0, 0, False])
            entry[0] += 1
            if d.get("v") is not None:
                entry[1] += d["v"]
                entry[2] = True
        got = {row[0]: (row[1], row[2]) for row in result.rows}
        assert set(got) == set(expected)
        for key, (count, total, _any) in expected.items():
            assert got[key][0] == count
            assert got[key][1] == total

    @settings(max_examples=25, deadline=None)
    @given(documents)
    def test_count_distinct(self, docs):
        db = load(docs)
        got = db.sql("select count(distinct x.data->>'k'::int) as n "
                     "from t x").scalar()
        expected = len({d["k"] for d in docs if d.get("k") is not None})
        assert got == expected

    @settings(max_examples=25, deadline=None)
    @given(documents)
    def test_float_sum_close(self, docs):
        db = load(docs)
        got = db.sql("select sum(x.data->>'f'::float) as s from t x").scalar()
        values = [d["f"] for d in docs if d.get("f") is not None]
        if values:
            assert got == pytest.approx(math.fsum(values), rel=1e-6,
                                        abs=1e-6)


class TestDifferentialJoins:
    @settings(max_examples=25, deadline=None)
    @given(documents, documents)
    def test_inner_join_count(self, left_docs, right_docs):
        db = Database(StorageFormat.TILES, CONFIG)
        db.load_table("l", left_docs)
        db.load_table("r", right_docs)
        got = db.sql(
            "select count(*) as n from l, r "
            "where l.data->>'k'::int = r.data->>'k'::int").scalar()
        expected = sum(
            1 for a in left_docs for b in right_docs
            if a.get("k") is not None and a.get("k") == b.get("k"))
        assert got == expected

    @settings(max_examples=20, deadline=None)
    @given(documents)
    def test_semi_join_via_in(self, docs):
        db = Database(StorageFormat.TILES, CONFIG)
        db.load_table("l", docs)
        db.load_table("r", [{"k": 1}, {"k": 3}, {"k": 5}])
        got = db.sql(
            "select count(*) as n from l where l.data->>'k'::int in "
            "(select r.data->>'k'::int from r)").scalar()
        expected = sum(1 for d in docs if d.get("k") in (1, 3, 5))
        assert got == expected


class TestDifferentialOrderLimit:
    @settings(max_examples=25, deadline=None)
    @given(documents, st.integers(1, 10))
    def test_topk_matches_python_sort(self, docs, limit):
        db = load(docs)
        result = db.sql(f"select x.data->>'v'::int as v from t x "
                        f"where x.data->>'v' is not null "
                        f"order by v limit {limit}")
        expected = sorted(d["v"] for d in docs
                          if d.get("v") is not None)[:limit]
        assert result.column("v") == expected
