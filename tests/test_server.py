"""Tests for ``repro.server``: the concurrent query/ingest service.

Covers the wire protocol, the WAL (framing, torn tails, epochs), the
readers/writer locks, concurrent clients querying during an insert
burst (snapshot-consistent counts, no torn tiles), and WAL replay
after a simulated crash (stop before checkpoint).
"""

import json
import socket
import threading

import pytest

from repro.errors import StorageError
from repro.server import (
    JsonTilesServer,
    ReadWriteLock,
    ServerClient,
    ServerError,
    referenced_tables,
)
from repro.server.wal import WriteAheadLog, records_to_skip
from repro.sql.parser import parse

TINY = {"tile_size": 32, "partition_size": 2}


@pytest.fixture()
def server(tmp_path):
    instance = JsonTilesServer(tmp_path / "data", wal_sync=False,
                               query_workers=4)
    instance.start_in_thread()
    yield instance
    instance.stop_in_thread()


@pytest.fixture()
def client(server):
    with ServerClient(port=server.port) as connection:
        yield connection


# ---------------------------------------------------------------------------


class TestProtocolAndCommands:
    def test_ping(self, client):
        assert client.ping() == "pong"

    def test_create_insert_query(self, client):
        client.create_table("events", "tiles", TINY)
        client.insert_many("events",
                           [{"id": i, "kind": "a" if i % 2 else "b"}
                            for i in range(100)])
        result = client.query("select e.data->>'kind' as k, count(*) as n "
                              "from events e group by e.data->>'kind' "
                              "order by k")
        assert result.rows == [("a", 50), ("b", 50)]
        assert result.counters.tiles_total > 0

    def test_query_sees_every_acknowledged_insert(self, client):
        client.create_table("t", "tiles", TINY)
        client.insert("t", {"id": 1})  # below tile_size: still buffered
        assert client.query("select count(*) as n from t x").scalar() == 1

    def test_explain_and_stats(self, client):
        client.create_table("t", "tiles", TINY)
        client.insert_many("t", [{"id": i} for i in range(40)])
        client.flush("t")
        plan = client.explain("select count(*) as n from t x")
        assert "HashAggregate" in plan
        stats = client.stats()
        assert stats["tables"]["t"]["rows"] == 40
        assert stats["tables"]["t"]["pending"] == 0
        assert stats["counters"]["inserts"] == 40

    def test_json_format_table(self, client):
        client.create_table("raw", "json")
        client.insert_many("raw", [{"v": i} for i in range(10)])
        assert client.query("select count(*) as n from raw r").scalar() == 10

    def test_sql_error_reported_not_fatal(self, client):
        client.create_table("t", "tiles", TINY)
        with pytest.raises(ServerError):
            client.query("select nonsense from nowhere n")
        assert client.ping() == "pong"  # connection survives the error

    def test_unknown_table_insert(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.insert("missing", {"a": 1})
        assert "unknown table" in str(excinfo.value)

    def test_bad_table_names_rejected(self, client):
        for name in ("../evil", "a b", "x__y", ""):
            with pytest.raises(ServerError):
                client.create_table(name)

    def test_duplicate_table_rejected(self, client):
        client.create_table("t")
        with pytest.raises(ServerError):
            client.create_table("t")

    def test_raw_socket_junk_gets_error_response(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=10) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"this is not json\n")
            reply = json.loads(reader.readline())
            assert reply["ok"] is False and reply["code"] == "protocol"
            sock.sendall(b'{"cmd": "teleport"}\n')
            reply = json.loads(reader.readline())
            assert reply["ok"] is False
            sock.sendall(b'{"id": 9, "cmd": "ping"}\n')
            reply = json.loads(reader.readline())
            assert reply == {"ok": True, "id": 9, "result": "pong"}


# ---------------------------------------------------------------------------


class TestConcurrentClients:
    def test_counts_consistent_during_insert_burst(self, server):
        """16 query clients run while one writer streams documents:
        every observed count is a consistent snapshot — monotonically
        non-decreasing per client, never above what was acknowledged,
        and the final count is exact."""
        total = 600
        acked = [0]
        with ServerClient(port=server.port) as admin:
            admin.create_table("s", "tiles", TINY)

        stop = threading.Event()
        errors = []

        def writer():
            with ServerClient(port=server.port) as connection:
                for base in range(0, total, 20):
                    connection.insert_many(
                        "s", [{"id": base + i, "v": float(i)}
                              for i in range(20)])
                    acked[0] = base + 20
            stop.set()

        def reader():
            observed = []
            try:
                with ServerClient(port=server.port) as connection:
                    while not stop.is_set():
                        count = connection.query(
                            "select count(*) as n from s x").scalar()
                        ceiling = acked[0]  # read *after* the query
                        observed.append((count, ceiling))
            except Exception as exc:  # surface in the main thread
                errors.append(exc)
                return
            counts = [count for count, _ in observed]
            assert counts == sorted(counts), "count went backwards"
            for count, ceiling in observed:
                assert count <= ceiling + 20  # never beyond acked work

        readers = [threading.Thread(target=reader) for _ in range(16)]
        writer_thread = threading.Thread(target=writer)
        for thread in readers:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=120)
        for thread in readers:
            thread.join(timeout=120)
        assert not errors
        with ServerClient(port=server.port) as admin:
            assert admin.query(
                "select count(*) as n from s x").scalar() == total
            stats = admin.stats("s")
            assert stats["tables"]["s"]["rows"] == total

    def test_parallel_queries_multiple_tables(self, server):
        with ServerClient(port=server.port) as admin:
            admin.create_table("a", "tiles", TINY)
            admin.create_table("b", "tiles", TINY)
            admin.insert_many("a", [{"x": i} for i in range(64)])
            admin.insert_many("b", [{"x": i} for i in range(32)])

        results = []

        def worker(table, expected):
            with ServerClient(port=server.port) as connection:
                for _ in range(10):
                    value = connection.query(
                        f"select count(*) as n from {table} t").scalar()
                    results.append((expected, value))

        threads = [threading.Thread(target=worker, args=("a", 64)),
                   threading.Thread(target=worker, args=("b", 32)),
                   threading.Thread(target=worker, args=("a", 64)),
                   threading.Thread(target=worker, args=("b", 32))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(results) == 40
        assert all(value == expected for expected, value in results)


# ---------------------------------------------------------------------------


class TestDurability:
    def test_wal_replay_after_crash_before_checkpoint(self, tmp_path):
        """Every acknowledged insert survives a hard stop with no
        checkpoint at all (the end-to-end durability criterion)."""
        data_dir = tmp_path / "data"
        first = JsonTilesServer(data_dir, query_workers=2)
        first.start_in_thread()
        with ServerClient(port=first.port) as connection:
            connection.create_table("a", "tiles", TINY)
            connection.create_table("b", "jsonb", TINY)
            for base in range(0, 90, 30):
                connection.insert_many(
                    "a", [{"id": base + i} for i in range(30)])
            connection.insert_many("b", [{"id": i} for i in range(25)])
        first.stop_in_thread(checkpoint=False)  # simulated crash

        second = JsonTilesServer(data_dir, query_workers=2)
        second.start_in_thread()
        try:
            with ServerClient(port=second.port) as connection:
                assert connection.query(
                    "select count(*) as n from a x").scalar() == 90
                assert connection.query(
                    "select count(*) as n from b x").scalar() == 25
                assert connection.query(
                    "select sum(x.data->>'id'::int) as s from a x"
                ).scalar() == sum(range(90))
        finally:
            second.stop_in_thread()

    def test_crash_after_checkpoint_replays_only_the_tail(self, tmp_path):
        data_dir = tmp_path / "data"
        first = JsonTilesServer(data_dir, query_workers=2)
        first.start_in_thread()
        with ServerClient(port=first.port) as connection:
            connection.create_table("t", "tiles", TINY)
            connection.insert_many("t", [{"id": i} for i in range(50)])
            connection.checkpoint()
            connection.insert_many("t", [{"id": 50 + i} for i in range(7)])
            assert connection.stats("t")["tables"]["t"]["wal_records"] == 7
        first.stop_in_thread(checkpoint=False)

        second = JsonTilesServer(data_dir, query_workers=2)
        second.start_in_thread()
        try:
            with ServerClient(port=second.port) as connection:
                result = connection.query(
                    "select count(*) as n, sum(x.data->>'id'::int) as s "
                    "from t x")
                assert result.rows == [(57, sum(range(57)))]
        finally:
            second.stop_in_thread()

    def test_graceful_shutdown_checkpoints(self, tmp_path):
        data_dir = tmp_path / "data"
        first = JsonTilesServer(data_dir, query_workers=2)
        first.start_in_thread()
        with ServerClient(port=first.port) as connection:
            connection.create_table("t", "tiles", TINY)
            connection.insert_many("t", [{"id": i} for i in range(10)])
        first.stop_in_thread(checkpoint=True)
        assert (data_dir / "t.jtile").exists()

        second = JsonTilesServer(data_dir, query_workers=2)
        second.start_in_thread()
        try:
            with ServerClient(port=second.port) as connection:
                assert connection.query(
                    "select count(*) as n from t x").scalar() == 10
                # graceful stop truncated the WAL: nothing to replay
                assert connection.stats(
                    "t")["tables"]["t"]["wal_records"] == 0
        finally:
            second.stop_in_thread()

    def test_shutdown_command(self, tmp_path):
        instance = JsonTilesServer(tmp_path / "data", query_workers=2)
        instance.start_in_thread()
        with ServerClient(port=instance.port) as connection:
            connection.create_table("t", "tiles", TINY)
            connection.insert("t", {"id": 1})
            connection.shutdown()
        instance._thread.join(timeout=30)
        assert not instance._thread.is_alive()
        instance._thread = None
        assert (tmp_path / "data" / "t.jtile").exists()


# ---------------------------------------------------------------------------


class TestWal:
    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "t.wal")
        wal.append({"a": 1})
        wal.append_many([{"a": 2}, {"a": 3}])
        assert wal.record_count == 3
        assert wal.replay() == [{"a": 1}, {"a": 2}, {"a": 3}]
        wal.close()
        reopened = WriteAheadLog(tmp_path / "t.wal")
        assert reopened.record_count == 3
        assert reopened.replay() == [{"a": 1}, {"a": 2}, {"a": 3}]
        reopened.close()

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "t.wal"
        wal = WriteAheadLog(path)
        wal.append_many([{"a": 1}, {"a": 2}])
        wal.close()
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # cut the last record mid-payload
        reopened = WriteAheadLog(path)
        assert reopened.replay() == [{"a": 1}]
        # appends continue cleanly after the repaired tail
        reopened.append({"a": 9})
        assert reopened.replay() == [{"a": 1}, {"a": 9}]
        reopened.close()

    def test_truncate_bumps_epoch(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "t.wal")
        wal.append({"a": 1})
        position = wal.position()
        assert records_to_skip(wal, position) == 1
        wal.truncate()
        assert wal.epoch == position["epoch"] + 1
        assert wal.record_count == 0
        # snapshot taken before the truncation no longer skips anything
        assert records_to_skip(wal, position) == 0
        wal.close()

    def test_not_a_wal_rejected(self, tmp_path):
        path = tmp_path / "junk.wal"
        path.write_bytes(b"garbage")
        with pytest.raises(StorageError):
            WriteAheadLog(path)


# ---------------------------------------------------------------------------


class TestLocksAndLockSets:
    def test_referenced_tables_from_sql(self):
        statement = parse(
            "with recent as (select t.data->>'id' as id from tweets t) "
            "select r.id as id from recent r, users u "
            "left join badges b on b.data->>'u' = u.data->>'id'")
        assert referenced_tables(statement) == \
            {"tweets", "users", "badges"}

    def test_referenced_tables_subquery_and_union(self):
        derived = parse("select d.v as v from "
                        "(select i.data->>'v' as v from inner_t i) d")
        assert referenced_tables(derived) == {"inner_t"}
        union = parse("select a.data->>'x' as x from a a "
                      "union all select b.data->>'x' as x from b b")
        assert referenced_tables(union) == {"a", "b"}

    def test_rw_lock_readers_share_writer_excludes(self):
        import time

        lock = ReadWriteLock()
        barrier = threading.Barrier(2, timeout=10)

        def reader():
            with lock.read_locked():
                barrier.wait()  # proves both readers are inside at once

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join(timeout=10)
        assert not any(thread.is_alive() for thread in readers)

        observed = []
        lock.acquire_write()
        blocked = threading.Thread(target=lambda: (
            lock.acquire_read(), observed.append("read"),
            lock.release_read()))
        blocked.start()
        time.sleep(0.05)
        assert observed == []  # reader blocked while the writer holds
        lock.release_write()
        blocked.join(timeout=10)
        assert observed == ["read"]
