"""Tests for tile extraction (Section 3.1/3.4/3.5/4.9)."""

import pytest

from repro.core.datetimes import date_literal
from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType, JsonType
from repro.jsonb import encode
from repro.tiles import ExtractionConfig, build_tile


def make_tile(documents, **config_kwargs):
    config = ExtractionConfig(**config_kwargs)
    jsonb_rows = [encode(doc) for doc in documents]
    return build_tile(documents, jsonb_rows, config, tile_number=0, first_row=0)


TILE2_DOCS = [
    {"id": 5, "create": "2010-01-01", "text": "b", "user": {"id": 7},
     "replies": 3, "geo": {"lat": 1.9}},
    {"id": 6, "create": "2011-01-01", "text": "c", "user": {"id": 1},
     "replies": 2, "geo": None},
    {"id": 7, "create": "2012-01-01", "text": "d", "user": {"id": 3},
     "replies": 0, "geo": {"lat": 2.7}},
    {"id": 8, "create": "2013-01-01", "text": "x", "user": {"id": 3},
     "replies": 1, "geo": {"lat": 3.5}},
]


class TestPaperExample:
    """Figure 2 / Section 3.1: tile #2 with threshold 60%."""

    def test_extracted_paths(self):
        tile = make_tile(TILE2_DOCS, threshold=0.6)
        extracted = {str(path) for path in tile.columns}
        assert extracted == {"id", "create", "text", "user.id", "replies",
                             "geo.lat"}

    def test_geo_lat_column_values(self):
        tile = make_tile(TILE2_DOCS, threshold=0.6)
        lat = tile.column(KeyPath.parse("geo.lat"))
        assert lat.to_list() == [1.9, None, 2.7, 3.5]
        assert tile.header.extracted(KeyPath.parse("geo.lat")).nullable

    def test_types_inferred(self):
        tile = make_tile(TILE2_DOCS, threshold=0.6)
        header = tile.header
        assert header.extracted(KeyPath.parse("id")).column_type == ColumnType.INT64
        assert header.extracted(KeyPath.parse("replies")).column_type == ColumnType.INT64
        assert header.extracted(KeyPath.parse("text")).column_type == ColumnType.STRING
        assert header.extracted(KeyPath.parse("geo.lat")).column_type == ColumnType.FLOAT64

    def test_create_detected_as_timestamp(self):
        tile = make_tile(TILE2_DOCS, threshold=0.6)
        column = tile.header.extracted(KeyPath.parse("create"))
        assert column.column_type == ColumnType.TIMESTAMP
        assert column.is_datetime
        values = tile.column(KeyPath.parse("create")).to_list()
        assert values[0] == date_literal("2010-01-01")

    def test_date_detection_can_be_disabled(self):
        tile = make_tile(TILE2_DOCS, threshold=0.6, detect_dates=False)
        column = tile.header.extracted(KeyPath.parse("create"))
        assert column.column_type == ColumnType.STRING


class TestThresholdBehaviour:
    def test_high_threshold_drops_partial_keys(self):
        # geo.lat occurs in 3/4 tuples; with threshold 80% it is dropped
        tile = make_tile(TILE2_DOCS, threshold=0.8)
        assert tile.column(KeyPath.parse("geo.lat")) is None
        assert tile.column(KeyPath.parse("id")) is not None

    def test_dropped_keys_land_in_bloom_filter(self):
        tile = make_tile(TILE2_DOCS, threshold=0.8)
        assert tile.header.may_contain(KeyPath.parse("geo.lat"))
        assert not tile.header.may_contain(KeyPath.parse("definitely.absent"))

    def test_extracted_prefix_visible(self):
        tile = make_tile(TILE2_DOCS, threshold=0.6)
        # `geo` itself is a prefix of the extracted geo.lat
        assert tile.header.may_contain(KeyPath.parse("geo"))


class TestTypeConflicts:
    def test_most_common_type_wins(self):
        documents = (
            [{"v": i} for i in range(7)] + [{"v": float(i) + 0.5} for i in range(3)]
        )
        tile = make_tile(documents, threshold=0.5)
        column = tile.header.extracted(KeyPath.parse("v"))
        assert column.column_type == ColumnType.INT64
        assert column.has_type_conflicts
        values = tile.column(KeyPath.parse("v")).to_list()
        assert values[:7] == list(range(7))
        assert values[7:] == [None, None, None]

    def test_fallback_preserves_outliers(self):
        documents = [{"v": 1}, {"v": 2}, {"v": "three"}, {"v": 4}]
        tile = make_tile(documents, threshold=0.5)
        assert tile.column(KeyPath.parse("v")).to_list() == [1, 2, None, 4]
        fallback = tile.lookup_fallback(2, KeyPath.parse("v"))
        assert fallback.as_python() == "three"

    def test_int_widens_into_float_column(self):
        documents = [{"v": 0.5}, {"v": 1.5}, {"v": 2.5}, {"v": 3}]
        tile = make_tile(documents, threshold=0.7)
        column = tile.header.extracted(KeyPath.parse("v"))
        assert column.column_type == ColumnType.FLOAT64
        assert tile.column(KeyPath.parse("v")).to_list() == [0.5, 1.5, 2.5, 3.0]

    def test_numeric_strings_extract_as_decimal(self):
        documents = [{"price": "19.99"}, {"price": "5.00"}, {"price": "1.25"}]
        tile = make_tile(documents)
        column = tile.header.extracted(KeyPath.parse("price"))
        assert column.column_type == ColumnType.DECIMAL
        assert tile.column(KeyPath.parse("price")).to_list() == [19.99, 5.0, 1.25]


class TestArraysInTiles:
    def test_leading_array_elements_extracted(self):
        documents = [{"a": [1, 2, 3]} for _ in range(4)]
        tile = make_tile(documents)
        assert tile.column(KeyPath.parse("a[0]")).to_list() == [1, 1, 1, 1]
        assert tile.column(KeyPath.parse("a[2]")).to_list() == [3, 3, 3, 3]

    def test_varying_lengths_extract_common_prefix(self):
        documents = [{"a": [1, 2]}, {"a": [1, 2]}, {"a": [1, 2, 3, 4]}]
        tile = make_tile(documents, threshold=0.6)
        assert tile.column(KeyPath.parse("a[0]")) is not None
        assert tile.column(KeyPath.parse("a[1]")) is not None
        assert tile.column(KeyPath.parse("a[2]")) is None

    def test_array_element_cap(self):
        documents = [{"a": list(range(100))} for _ in range(3)]
        tile = make_tile(documents, max_array_elements=8)
        assert tile.column(KeyPath.parse("a[7]")) is not None
        assert tile.column(KeyPath.parse("a[8]")) is None


class TestStatisticsCollection:
    def test_key_counts_stored_in_header(self):
        tile = make_tile(TILE2_DOCS)
        assert tile.header.key_counts["id"] == 4
        assert tile.header.key_counts["geo.lat"] == 3

    def test_column_sketches_observe_values(self):
        documents = [{"k": i % 5} for i in range(100)]
        tile = make_tile(documents)
        stats = tile.header.statistics.columns[KeyPath.parse("k")]
        assert 4 <= stats.distinct() <= 6
        assert stats.non_null_count == 100
        assert stats.min_value == 0
        assert stats.max_value == 4


class TestPlainTile:
    def test_mine_false_extracts_nothing(self):
        tile = make_tile_plain(TILE2_DOCS)
        assert tile.columns == {}
        assert tile.row_count == 4

    def test_jsonb_rows_accessible(self):
        tile = make_tile_plain(TILE2_DOCS)
        value = tile.jsonb_value(0).get_path(KeyPath.parse("user.id"))
        assert value.as_python() == 7


def make_tile_plain(documents):
    config = ExtractionConfig()
    jsonb_rows = [encode(doc) for doc in documents]
    return build_tile(documents, jsonb_rows, config, tile_number=0,
                      first_row=0, mine=False)


class TestSinewStyleGlobalSchema:
    def test_fixed_schema_is_materialized(self):
        from repro.tiles import TileSchema
        from repro.tiles.header import ExtractedColumn

        schema = TileSchema(columns=[
            ExtractedColumn(KeyPath.parse("id"), JsonType.INT, ColumnType.INT64),
        ])
        config = ExtractionConfig()
        docs = TILE2_DOCS
        tile = build_tile(docs, [encode(d) for d in docs], config, 0, 0,
                          schema=schema)
        assert set(tile.columns) == {KeyPath.parse("id")}
        assert tile.column(KeyPath.parse("id")).to_list() == [5, 6, 7, 8]
