"""Server-side tests for online maintenance: the ``maintenance``
command, convergence under shuffled ingest, a bounded soak with
concurrent queries, and journal-backed crash recovery.

The soak duration is ``REPRO_SOAK_SECONDS`` (default: a few seconds,
so the tier-1 run stays fast; CI's soak job raises it).
"""

import os
import threading
import time

import pytest

from repro import ExtractionConfig, MaintenanceConfig, StorageFormat
from repro.maintenance import ActionKind, MaintenanceAction, MaintenanceJournal
from repro.server import JsonTilesServer, ServerClient
from repro.server.wal import WriteAheadLog
from repro.storage import load_documents

TINY = {"tile_size": 32, "partition_size": 4}

DOC_TYPES = {
    "story": lambda i: {"id": i, "type": "story", "score": i % 7,
                        "desc": 2, "title": "t", "url": "u"},
    "poll": lambda i: {"id": i, "type": "poll", "score": i % 5,
                       "desc": 2, "title": "t"},
    "pollop": lambda i: {"id": i, "type": "pollop", "score": i % 3,
                         "poll": 2, "title": "t"},
    "comment": lambda i: {"id": i, "type": "comment", "parent": i - 1,
                          "text": "c"},
}
KINDS = ("story", "comment", "pollop", "poll")

GROUP_QUERY = ("select x.data->>'type' as k, count(*) as n, "
               "sum(x.data->>'id'::int) as s "
               "from t x group by x.data->>'type' order by k")


def shuffled_documents(n):
    return [DOC_TYPES[KINDS[i % len(KINDS)]](i) for i in range(n)]


def expected_groups(documents):
    groups = {}
    for doc in documents:
        count, total = groups.get(doc["type"], (0, 0))
        groups[doc["type"]] = (count + 1, total + doc["id"])
    return [(kind, count, total)
            for kind, (count, total) in sorted(groups.items())]


FAST = MaintenanceConfig(interval_s=0.05, max_actions_per_cycle=8,
                         reorg_cooldown_cycles=0, max_reorg_attempts=4)


def maintained_server(data_dir, config=FAST):
    return JsonTilesServer(data_dir, wal_sync=False, query_workers=4,
                           maintenance=True, maintenance_config=config)


# ---------------------------------------------------------------------------


class TestMaintenanceCommand:
    def test_disabled_server_reports_disabled(self, tmp_path):
        server = JsonTilesServer(tmp_path / "data", wal_sync=False,
                                 query_workers=2)
        server.start_in_thread()
        try:
            with ServerClient(port=server.port) as client:
                response = client.maintenance()
                assert response["enabled"] is False
                assert response["maintenance"]["enabled"] is False
                stats = client.stats()
                assert "maintenance" not in stats
        finally:
            server.stop_in_thread()

    def test_unknown_action_rejected(self, tmp_path):
        server = maintained_server(tmp_path / "data")
        server.start_in_thread()
        try:
            with ServerClient(port=server.port) as client:
                from repro.server import ServerError
                with pytest.raises(ServerError):
                    client.maintenance("explode")
        finally:
            server.stop_in_thread()

    def test_status_pause_resume_force(self, tmp_path):
        server = maintained_server(tmp_path / "data")
        server.start_in_thread()
        try:
            with ServerClient(port=server.port) as client:
                client.create_table("t", "tiles", TINY)
                client.insert_many("t", shuffled_documents(128))

                status = client.maintenance()["maintenance"]
                assert status["enabled"] is True
                assert "t" in status["tables"]

                paused = client.maintenance("pause")["maintenance"]
                assert paused["paused"] is True
                cycles = paused["counters"]["cycles"]
                time.sleep(0.3)  # several intervals pass while paused
                still = client.maintenance()["maintenance"]
                assert still["counters"]["cycles"] == cycles

                forced = client.maintenance("force")
                assert "executed" in forced  # force bypasses pause
                assert forced["maintenance"]["counters"]["cycles"] > cycles

                resumed = client.maintenance("resume")["maintenance"]
                assert resumed["paused"] is False

                stats = client.stats()
                assert stats["maintenance"]["enabled"] is True
        finally:
            server.stop_in_thread()

    def test_journal_segment_created(self, tmp_path):
        data_dir = tmp_path / "data"
        server = maintained_server(data_dir)
        server.start_in_thread()
        try:
            with ServerClient(port=server.port) as client:
                client.create_table("t", "tiles", TINY)
                client.insert_many("t", shuffled_documents(128))
                client.maintenance("force")
            assert (data_dir / "wal" / "maintenance.journal").exists()
        finally:
            server.stop_in_thread()


# ---------------------------------------------------------------------------


class TestConvergence:
    def test_shuffled_ingest_recovers_eager_extraction(self, tmp_path):
        """The acceptance scenario over the wire: shuffled ingest
        through the server (no reordering at seal time) degrades
        extraction; the background daemon restores it to at least the
        eager bulk-load baseline while answers stay exact."""
        documents = shuffled_documents(512)
        eager = load_documents("t", documents, StorageFormat.TILES,
                               ExtractionConfig(tile_size=32,
                                                partition_size=4))
        baseline = eager.extracted_fraction()
        expected = expected_groups(documents)

        server = maintained_server(tmp_path / "data")
        server.start_in_thread()
        try:
            with ServerClient(port=server.port) as client:
                client.create_table("t", "tiles", TINY)
                for base in range(0, len(documents), 64):
                    client.insert_many("t", documents[base : base + 64])
                assert client.query(GROUP_QUERY).rows == expected

                fraction = 0.0
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    status = client.maintenance()["maintenance"]
                    fraction = status["tables"]["t"]["extracted_fraction"]
                    # answers stay exact while tiles are being rebuilt
                    assert client.query(GROUP_QUERY).rows == expected
                    if fraction >= baseline and \
                            status["counters"]["reorders"] > 0:
                        break
                    time.sleep(0.05)
                status = client.maintenance()["maintenance"]
                assert fraction >= baseline
                assert status["counters"]["reorders"] > 0
                assert client.query(GROUP_QUERY).rows == expected
        finally:
            server.stop_in_thread()


# ---------------------------------------------------------------------------


class TestSoak:
    def test_bounded_soak_ingest_queries_maintenance(self, tmp_path):
        """Concurrent ingest + queries + maintenance for a bounded
        wall-clock window: no deadlock, per-client counts monotone,
        and the final answers are exact."""
        duration = float(os.environ.get("REPRO_SOAK_SECONDS", "3"))
        server = maintained_server(tmp_path / "data")
        server.start_in_thread()
        errors = []
        stop = threading.Event()
        inserted = [0]
        try:
            with ServerClient(port=server.port) as admin:
                admin.create_table("t", "tiles", TINY)

            def writer():
                try:
                    with ServerClient(port=server.port) as connection:
                        base = 0
                        while not stop.is_set():
                            batch = [DOC_TYPES[KINDS[(base + i) % 4]](base + i)
                                     for i in range(16)]
                            connection.insert_many("t", batch)
                            base += 16
                            inserted[0] = base
                except Exception as exc:
                    errors.append(exc)

            def reader():
                try:
                    with ServerClient(port=server.port) as connection:
                        counts = []
                        while not stop.is_set():
                            counts.append(connection.query(
                                "select count(*) as n from t x").scalar())
                        assert counts == sorted(counts)
                except Exception as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=writer)] + \
                [threading.Thread(target=reader) for _ in range(3)]
            for thread in threads:
                thread.start()
            time.sleep(duration)
            stop.set()
            for thread in threads:
                thread.join(timeout=60)
            assert not any(thread.is_alive() for thread in threads)
            assert not errors

            total = inserted[0]
            documents = [DOC_TYPES[KINDS[i % 4]](i) for i in range(total)]
            with ServerClient(port=server.port) as client:
                assert client.query(
                    "select count(*) as n from t x").scalar() == total
                assert client.query(GROUP_QUERY).rows == \
                    expected_groups(documents)
                status = client.maintenance()["maintenance"]
                assert status["counters"]["cycles"] > 0
        finally:
            server.stop_in_thread()


# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_crash_with_inflight_reorg_recovers_exact_rows(self, tmp_path):
        """kill -9 mid-reorganization: the journal holds a ``begin``
        with no ``commit``.  On restart every acknowledged row is
        replayed exactly once (a reorganization permutes rows among
        in-memory tiles, never durable state) and the action is
        re-queued."""
        data_dir = tmp_path / "data"
        documents = shuffled_documents(256)
        expected = expected_groups(documents)

        first = maintained_server(
            data_dir, MaintenanceConfig(interval_s=3600))  # no cycles yet
        first.start_in_thread()
        with ServerClient(port=first.port) as client:
            client.create_table("t", "tiles", TINY)
            client.insert_many("t", documents)
        first.stop_in_thread(checkpoint=False)  # simulated crash

        # forge the in-flight action the dying process would have left
        journal = MaintenanceJournal(WriteAheadLog(
            data_dir / "wal" / "maintenance.journal", sync=False))
        journal.log("begin", MaintenanceAction(
            ActionKind.REORDER_PARTITION, "t", 0, 9.9))
        journal.close()

        second = maintained_server(data_dir)
        second.start_in_thread()
        try:
            with ServerClient(port=second.port) as client:
                response = client.maintenance("force")
                counters = response["maintenance"]["counters"]
                assert counters["recovered"] == 1
                # no lost and no duplicated rows
                assert client.query(
                    "select count(*) as n from t x").scalar() == 256
                assert client.query(GROUP_QUERY).rows == expected
                assert client.query(
                    "select sum(x.data->>'id'::int) as s from t x"
                ).scalar() == sum(range(256))
            # the re-queued action committed this round
            assert second.maintenance.journal.pending() == []
        finally:
            second.stop_in_thread()
