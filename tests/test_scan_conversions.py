"""Focused tests for scan-time cast rewriting paths (Section 4.3/4.5)."""

import pytest

from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType
from repro.engine.batch import concat_batches
from repro.engine.scan import AccessRequest, TableScan
from repro.mining.dictionary import encode_documents, subset_dictionary
from repro.storage import StorageFormat, load_documents
from repro.tiles import ExtractionConfig

CONFIG = ExtractionConfig(tile_size=32, partition_size=2)


def scan_one(docs, path, target, as_text=True,
             storage_format=StorageFormat.TILES):
    relation = load_documents("t", docs, storage_format, CONFIG)
    request = AccessRequest.make("t", KeyPath.parse(path), target, as_text)
    scan = TableScan(relation, [request])
    batch = concat_batches(list(scan.batches()))
    return batch.column(request.name).to_list(), scan.counters


class TestStoredToRequested:
    DOCS = [{"i": 7, "f": 2.5, "b": True, "s": "hello", "d": "19.99",
             "t": "2020-06-01"}] * 8

    def test_int_to_bool(self):
        values, counters = scan_one(self.DOCS, "i", ColumnType.BOOL)
        assert values == [True] * 8
        assert counters.fallback_lookups == 0

    def test_int_to_string_is_cheap_cast(self):
        values, counters = scan_one(self.DOCS, "i", ColumnType.STRING)
        assert values == ["7"] * 8
        assert counters.fallback_lookups == 0

    def test_float_to_int(self):
        values, counters = scan_one(self.DOCS, "f", ColumnType.INT64)
        assert values == [2] * 8
        assert counters.fallback_lookups == 0

    def test_float_to_string(self):
        values, _ = scan_one(self.DOCS, "f", ColumnType.STRING)
        assert values == ["2.5"] * 8

    def test_bool_to_int_and_string(self):
        assert scan_one(self.DOCS, "b", ColumnType.INT64)[0] == [1] * 8
        assert scan_one(self.DOCS, "b", ColumnType.STRING)[0] == ["true"] * 8

    def test_string_to_int_parses(self):
        docs = [{"s": str(i)} for i in range(8)]
        values, counters = scan_one(docs, "s", ColumnType.INT64)
        assert values == list(range(8))
        assert counters.fallback_lookups == 0

    def test_decimal_to_float_direct(self):
        values, counters = scan_one(self.DOCS, "d", ColumnType.FLOAT64)
        assert values == [19.99] * 8
        assert counters.fallback_lookups == 0

    def test_decimal_to_text_needs_fallback(self):
        # exact numeric text cannot be rebuilt from float64 storage
        values, counters = scan_one(self.DOCS, "d", ColumnType.STRING)
        assert values == ["19.99"] * 8
        assert counters.fallback_lookups == 8

    def test_timestamp_to_int_needs_fallback(self):
        values, counters = scan_one(self.DOCS, "t", ColumnType.INT64)
        # date strings don't parse as ints even via the fallback
        assert values == [None] * 8
        assert counters.fallback_lookups == 8

    def test_bool_column_refuses_float(self):
        values, counters = scan_one(self.DOCS, "b", ColumnType.FLOAT64)
        assert values == [1.0] * 8
        assert counters.fallback_lookups == 8  # via JSONB typed getter


class TestSubsetDictionary:
    def test_local_ids_and_counts(self):
        docs = [{"a": 1, "b": "x"}, {"a": 2}, {"b": "y"}]
        parent, transactions = encode_documents(docs)
        local, remapped = subset_dictionary(parent, transactions[1:])
        assert len(remapped) == 2
        # local counts reflect the slice only
        from repro.core.types import JsonType
        a_item = (KeyPath.parse("a"), JsonType.INT)
        assert local.counts[local.lookup(a_item)] == 1

    def test_items_preserved(self):
        docs = [{"a": 1}, {"a": "text"}]
        parent, transactions = encode_documents(docs)
        local, _ = subset_dictionary(parent, transactions)
        assert len(local) == len(parent)


class TestVectorizedTextRendering:
    """Pin the exact string forms of the vectorized stored->STRING
    casts (``_int64_to_text`` / ``_float64_to_text`` /
    ``_bool_to_text``): they must match what the per-value JSONB
    fallback renders, so direct-column and fallback tiles agree."""

    def test_int64_exact_forms(self):
        docs = [{"v": n} for n in
                [0, 7, -7, 2**62, -(2**62), 123456789]] * 2
        values, counters = scan_one(docs, "v", ColumnType.STRING)
        assert values == ["0", "7", "-7", str(2**62), str(-(2**62)),
                          "123456789"] * 2
        assert counters.fallback_lookups == 0

    def test_bool_renders_json_literals(self):
        docs = [{"v": b} for b in [True, False]] * 6
        values, counters = scan_one(docs, "v", ColumnType.STRING)
        assert values == ["true", "false"] * 6
        assert counters.fallback_lookups == 0

    def test_float_integral_renders_as_integer(self):
        # JSON 1.0 and 1 are the same number: text access renders the
        # integer form, exactly like JsonbValue.as_text
        docs = [{"v": f} for f in [1.0, -3.0, 0.0, 1e15]] * 2
        values, _ = scan_one(docs, "v", ColumnType.STRING)
        assert values == ["1", "-3", "0", "1000000000000000"] * 2

    def test_float_fractional_shortest_roundtrip(self):
        docs = [{"v": f} for f in [0.1, 2.5, -19.875, 1e-4]] * 2
        values, _ = scan_one(docs, "v", ColumnType.STRING)
        assert values == ["0.1", "2.5", "-19.875", "0.0001"] * 2

    def test_float_beyond_int64_range(self):
        # integral but too large for the vectorized int64 fast path
        docs = [{"v": 1e20} for _ in range(8)]
        values, _ = scan_one(docs, "v", ColumnType.STRING)
        assert values == [str(int(1e20))] * 8

    def test_matches_fallback_rendering(self):
        # the same numbers through the JSONB fallback (no extracted
        # column) must render identically to the vectorized cast
        numbers = [0, 7, -7, 123456789, 1.0, -3.0, 0.1, 2.5, 1e15,
                   1e20]
        docs = [{"v": n} for n in numbers] * 2
        direct, _ = scan_one(docs, "v", ColumnType.STRING)
        fallback, counters = scan_one(docs, "v", ColumnType.STRING,
                                      storage_format=StorageFormat.JSONB)
        assert counters.fallback_lookups == len(docs)
        assert direct == fallback
