"""Tests for the cost-based optimizer: join ordering, cardinality
estimation, skip-path derivation (Section 4.6 / 4.8)."""

import pytest

from repro import Database, ExtractionConfig, QueryOptions, StorageFormat

CONFIG = ExtractionConfig(tile_size=64, partition_size=2)


@pytest.fixture(scope="module")
def db():
    database = Database(config=CONFIG)
    # a big fact table and two small dimensions
    facts = [{"f_id": i, "f_dim1": i % 20, "f_dim2": i % 5,
              "f_value": float(i)} for i in range(2000)]
    dim1 = [{"d1_id": i, "d1_name": f"d1-{i}", "d1_group": i % 4}
            for i in range(20)]
    dim2 = [{"d2_id": i, "d2_name": f"d2-{i}"} for i in range(5)]
    database.load_table("facts", facts)
    database.load_table("dim1", dim1)
    database.load_table("dim2", dim2)
    return database


THREE_WAY = """
select count(*) as n
from dim2 b, facts f, dim1 a
where f.data->>'f_dim1'::int = a.data->>'d1_id'::int
  and f.data->>'f_dim2'::int = b.data->>'d2_id'::int
  and a.data->>'d1_group'::int = 0
"""


class TestJoinOrdering:
    def test_dp_starts_with_filtered_small_table(self, db):
        result = db.sql(THREE_WAY)
        # the filtered dim1 (5 rows) should come before the 2000-row
        # fact table in the chosen order
        order = result.join_order
        assert order.index("a") < order.index("f")

    def test_syntactic_order_without_statistics(self, db):
        result = db.sql(THREE_WAY, QueryOptions(use_statistics=False))
        assert result.join_order == ["b", "f", "a"]  # FROM-clause order

    def test_results_identical_either_way(self, db):
        smart = db.sql(THREE_WAY)
        naive = db.sql(THREE_WAY, QueryOptions(use_statistics=False))
        assert smart.rows == naive.rows

    def test_single_table_no_order(self, db):
        result = db.sql("select count(*) as n from facts f")
        assert result.scalar() == 2000


class TestDPOrderCorners:
    """`_dp_order` edge behaviour: forced cross products, the >11-alias
    syntactic fallback, and order-sensitivity under statistics."""

    DISCONNECTED = """
select count(*) as n
from facts f, dim1 a, dim2 b
where f.data->>'f_dim1'::int = a.data->>'d1_id'::int
"""

    NO_EDGES = """
select count(*) as n from facts f, dim1 a, dim2 b
"""

    def _join_order(self, database, sql, **kw):
        from repro.engine.optimizer import Planner
        from repro.sql.binder import Binder
        from repro.sql.parser import parse

        options = QueryOptions(**kw)
        block = Binder(database.tables, options).bind(parse(sql))
        planner = Planner(options)
        planned, edges, _residuals = planner.fragment_inputs(block)
        aliases = [source.alias for source in block.sources]
        return planner.join_order(aliases, planned, edges)

    def test_disconnected_graph_forces_cross_product_last(self, db):
        # dim2 has no edge to anyone: the DP admits its cross product
        # only against subsets nothing else connects to, and C_out
        # pushes the 2000-row fact fold to the end (tiny b x a first)
        order = self._join_order(db, self.DISCONNECTED)
        assert sorted(order) == ["a", "b", "f"]
        assert order[-1] == "f"

    def test_fully_disconnected_graph_orders_by_cardinality(self, db):
        # no edges at all: every join is a cross product and the DP
        # folds smallest-first (5 x 20, then x 2000)
        order = self._join_order(db, self.NO_EDGES)
        assert order == ["b", "a", "f"]

    def test_disconnected_results_match_syntactic(self, db):
        smart = db.sql(self.DISCONNECTED)
        naive = db.sql(self.DISCONNECTED,
                       QueryOptions(use_statistics=False))
        # every fact matches exactly one dim1 row, crossed with dim2
        assert smart.scalar() == 2000 * 5
        assert smart.rows == naive.rows

    def test_twelve_aliases_fall_back_to_syntactic(self, db):
        aliases = [f"t{i}" for i in range(12)]
        froms = ", ".join(f"dim2 {alias}" for alias in aliases)
        chain = " and ".join(
            f"{a}.data->>'d2_id'::int = {b}.data->>'d2_id'::int"
            for a, b in zip(aliases, aliases[1:]))
        sql = f"select count(*) as n from {froms} where {chain}"
        # 12 aliases exceed the DP's subset budget: written order
        assert self._join_order(db, sql) == aliases
        # the chained self-equi-join keeps one row per d2_id
        assert db.sql(sql).scalar() == 5

    def test_statistics_change_the_order(self, db):
        # the differential that shows ordering is statistics-driven:
        # same rows, different join order with stats off
        smart = db.sql(THREE_WAY)
        naive = db.sql(THREE_WAY, QueryOptions(use_statistics=False))
        assert smart.join_order != naive.join_order
        assert smart.rows == naive.rows


class TestCardinalityEstimation:
    def test_scan_estimate_uses_equality_selectivity(self, db):
        from repro.engine.optimizer import PlannedScan, Planner
        from repro.sql.binder import Binder
        from repro.sql.parser import parse

        stmt = parse("select count(*) as n from facts f "
                     "where f.data->>'f_dim1'::int = 3")
        block = Binder(db.tables, QueryOptions()).bind(stmt)
        planner = Planner(QueryOptions())
        planned = {s.alias: PlannedScan(s) for s in block.sources}
        _edges, _residuals = planner._classify_predicates(block, planned)
        planner._derive_skip_paths(block, planned, _edges, _residuals)
        estimate = planner._estimate_source(planned["f"])
        # true cardinality is 100 (2000 / 20 distinct values)
        assert 30 < estimate < 350

    def test_presence_fraction_discounts_combined_relations(self):
        database = Database(config=CONFIG)
        docs = [{"kind_a": i} for i in range(900)] + \
               [{"kind_b": i} for i in range(100)]
        database.load_table("mixed", docs)
        from repro.engine.optimizer import Planner, PlannedScan
        from repro.sql.binder import Binder
        from repro.sql.parser import parse

        stmt = parse("select count(*) as n from mixed m "
                     "where m.data->>'kind_b'::int >= 0")
        block = Binder(database.tables, QueryOptions()).bind(stmt)
        planner = Planner(QueryOptions())
        planned = {s.alias: PlannedScan(s) for s in block.sources}
        edges, residuals = planner._classify_predicates(block, planned)
        planner._derive_skip_paths(block, planned, edges, residuals)
        estimate = planner._estimate_source(planned["m"])
        assert estimate < 300  # ~100 once presence is considered


class TestSkipPathDerivation:
    def _skip_paths(self, db, query):
        from repro.engine.optimizer import Planner, PlannedScan
        from repro.sql.binder import Binder
        from repro.sql.parser import parse

        block = Binder(db.tables, QueryOptions()).bind(parse(query))
        planner = Planner(QueryOptions())
        planned = {s.alias: PlannedScan(s) for s in block.sources}
        edges, residuals = planner._classify_predicates(block, planned)
        planner._derive_skip_paths(block, planned, edges, residuals)
        return {alias: {str(p) for p in item.skip_paths}
                for alias, item in planned.items()}

    def test_predicates_reject(self, db):
        paths = self._skip_paths(
            db, "select count(*) as n from facts f "
                "where f.data->>'f_value'::float > 1.0")
        assert "f_value" in paths["f"]

    def test_is_null_does_not_reject(self, db):
        paths = self._skip_paths(
            db, "select count(*) as n from facts f "
                "where f.data->>'f_value' is null")
        assert "f_value" not in paths["f"]

    def test_or_rejects_only_common_refs(self, db):
        paths = self._skip_paths(
            db, "select count(*) as n from facts f "
                "where f.data->>'f_value'::float > 1.0 "
                "or f.data->>'f_id'::int = 1")
        # neither side alone is required
        assert paths["f"] == set()

    def test_join_keys_reject(self, db):
        paths = self._skip_paths(db, THREE_WAY)
        assert "f_dim1" in paths["f"] and "f_dim2" in paths["f"]
        assert "d1_id" in paths["a"]

    def test_global_null_skipping_aggregate(self, db):
        paths = self._skip_paths(
            db, "select sum(f.data->>'f_value'::float) as s from facts f")
        assert "f_value" in paths["f"]

    def test_count_star_prevents_aggregate_skipping(self, db):
        paths = self._skip_paths(
            db, "select sum(f.data->>'f_value'::float) as s, "
                "count(*) as n from facts f")
        assert "f_value" not in paths["f"]

    def test_group_by_prevents_aggregate_skipping(self, db):
        paths = self._skip_paths(
            db, "select f.data->>'f_dim2'::int as g, "
                "sum(f.data->>'f_value'::float) as s "
                "from facts f group by f.data->>'f_dim2'::int")
        assert paths["f"] == set()


class TestScalarSubqueryResolution:
    def test_resolved_once_and_reused(self, db):
        query = ("select count(*) as n from facts f where "
                 "f.data->>'f_value'::float > "
                 "(select avg(g.data->>'f_value'::float) from facts g)")
        first = db.sql(query)
        second = db.sql(query)
        assert first.scalar() == second.scalar() == 1000

    def test_empty_scalar_subquery_is_null(self, db):
        result = db.sql(
            "select count(*) as n from facts f where "
            "f.data->>'f_value'::float > (select max(g.data->>'f_value'"
            "::float) from facts g where g.data->>'f_id'::int < 0)")
        assert result.scalar() == 0  # NULL comparison -> no rows
