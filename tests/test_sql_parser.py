"""Direct tests of the SQL lexer and parser (AST construction)."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.parser import parse


class TestLexer:
    def test_operators(self):
        kinds = [(t.kind, t.value) for t in tokenize("->> -> :: <= <> !=")]
        assert kinds[:-1] == [("op", "->>"), ("op", "->"), ("op", "::"),
                              ("op", "<="), ("op", "<>"), ("op", "!=")]

    def test_string_escapes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_line_comment_skipped(self):
        tokens = tokenize("select -- a comment\n 1")
        assert [t.kind for t in tokens] == ["keyword", "number", "eof"]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT From WHERE")
        assert all(t.kind == "keyword" for t in tokens[:-1])

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select ?")


class TestParserExpressions:
    def _where(self, condition):
        stmt = parse(f"select 1 as x from t where {condition}")
        return stmt.where

    def test_json_access_chain(self):
        expr = self._where("t.data->'user'->>'id' = '5'")
        assert isinstance(expr, ast.Binary)
        access = expr.left
        assert isinstance(access, ast.JsonAccess)
        assert access.as_text and access.step == "id"
        inner = access.base
        assert isinstance(inner, ast.JsonAccess)
        assert not inner.as_text and inner.step == "user"

    def test_array_index_access(self):
        expr = self._where("t.data->'tags'->0 is not null")
        assert isinstance(expr, ast.IsNullExpr) and expr.negated
        assert expr.operand.step == 0

    def test_cast_binds_tighter_than_comparison(self):
        expr = self._where("t.data->>'v'::int < 3")
        assert isinstance(expr, ast.Binary) and expr.op == "<"
        assert isinstance(expr.left, ast.CastExpr)

    def test_precedence_and_or(self):
        expr = self._where("a = 1 or b = 2 and c = 3")
        assert isinstance(expr, ast.Binary) and expr.op == "or"
        assert expr.right.op == "and"

    def test_not_like(self):
        expr = self._where("t.data->>'c' not like '%x%'")
        assert isinstance(expr, ast.LikeExpr) and expr.negated

    def test_between(self):
        expr = self._where("v between 1 and 2")
        assert isinstance(expr, ast.BetweenExpr)

    def test_in_list_and_subquery(self):
        in_list = self._where("v in (1, 2, 3)")
        assert isinstance(in_list, ast.InListExpr)
        in_sub = self._where("v in (select 1 as a from u)")
        assert isinstance(in_sub, ast.InSubquery)

    def test_exists(self):
        expr = self._where("exists (select 1 as a from u)")
        assert isinstance(expr, ast.ExistsExpr)

    def test_case(self):
        stmt = parse("select case when a = 1 then 2 else 3 end as c from t")
        expr = stmt.items[0].expr
        assert isinstance(expr, ast.CaseExpr)
        assert len(expr.branches) == 1 and expr.default is not None

    def test_date_and_interval(self):
        expr = self._where("d < date '1994-01-01' + interval '3' month")
        assert isinstance(expr.right, ast.Binary)
        assert isinstance(expr.right.left, ast.DateLit)
        assert expr.right.right == ast.IntervalLit(3, "month")

    def test_extract_and_substring(self):
        stmt = parse("select extract(year from d) as y, "
                     "substring(s from 1 for 2) as c from t")
        assert isinstance(stmt.items[0].expr, ast.ExtractExpr)
        assert isinstance(stmt.items[1].expr, ast.SubstringExpr)

    def test_aggregates(self):
        stmt = parse("select count(*) as a, count(distinct x) as b, "
                     "sum(v) as c from t")
        assert stmt.items[0].expr.star
        assert stmt.items[1].expr.distinct
        assert stmt.items[2].expr.name == "sum"

    def test_unary_minus(self):
        stmt = parse("select -3 as v from t")
        assert stmt.items[0].expr == ast.Unary("-", ast.NumberLit(3))


class TestParserStatements:
    def test_from_list_and_aliases(self):
        stmt = parse("select 1 as x from orders o, customer as c")
        assert [t.alias for t in stmt.from_tables] == ["o", "c"]

    def test_left_join(self):
        stmt = parse("select 1 as x from a left outer join b on a.k = b.k")
        assert len(stmt.left_joins) == 1
        assert stmt.left_joins[0].right.alias == "b"

    def test_inner_join_folds_to_where(self):
        stmt = parse("select 1 as x from a join b on a.k = b.k "
                     "where a.v = 1")
        assert stmt.left_joins == ()
        # both the join condition and the filter end up in WHERE
        assert isinstance(stmt.where, ast.Binary) and stmt.where.op == "and"

    def test_group_having_order_limit(self):
        stmt = parse("select g as g, count(*) as n from t group by g "
                     "having count(*) > 1 order by n desc, 1 limit 7")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0] == ast.OrderItem("n", True)
        assert stmt.order_by[1] == ast.OrderItem(1, False)
        assert stmt.limit == 7

    def test_derived_table(self):
        stmt = parse("select d.x as x from (select 1 as x from t) as d")
        assert stmt.from_tables[0].subquery is not None
        assert stmt.from_tables[0].alias == "d"

    def test_cte(self):
        stmt = parse("with v as (select 1 as x from t) "
                     "select v.x as x from v")
        assert stmt.ctes[0][0] == "v"

    def test_distinct(self):
        assert parse("select distinct x as x from t").distinct

    def test_nested_subquery_inner_joins_stay_scoped(self):
        stmt = parse(
            "select 1 as x from a where a.k in "
            "(select b.k as k from b join c on b.i = c.i where b.v = 1)")
        # outer where holds only the IN; the inner join condition lives
        # in the subquery's where
        assert isinstance(stmt.where, ast.InSubquery)
        inner = stmt.where.query
        assert inner.where is not None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("select 1 as x from t t2 t3")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("select 1 as x")

    def test_semicolon_allowed(self):
        assert parse("select 1 as x from t;") is not None
