"""Tests for date/time string detection and conversion (Section 4.9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.datetimes import (
    MICROS_PER_DAY,
    add_interval,
    date_literal,
    date_string,
    looks_like_datetime,
    micros_to_datetime,
    parse_datetime_string,
    timestamp_string,
)


class TestParsing:
    def test_iso_date(self):
        micros = parse_datetime_string("1994-01-01")
        assert micros is not None
        assert date_string(micros) == "1994-01-01"

    def test_iso_datetime(self):
        micros = parse_datetime_string("2020-06-01 17:33:11")
        assert timestamp_string(micros) == "2020-06-01 17:33:11"

    def test_iso_datetime_t_separator_and_fraction(self):
        micros = parse_datetime_string("2020-06-01T17:33:11.250Z")
        assert micros is not None
        assert micros % 1_000_000 == 250_000

    def test_us_date(self):
        micros = parse_datetime_string("6/1/2020")
        assert date_string(micros) == "2020-06-01"

    def test_twitter_format(self):
        micros = parse_datetime_string("Mon Jun 01 17:33:11 +0000 2020")
        assert timestamp_string(micros) == "2020-06-01 17:33:11"

    @pytest.mark.parametrize("text", [
        "", "hello", "2020-13-01", "2020-02-30", "99/99/2020",
        "2020-06-01x", "not a date at all honestly", "12345678",
        "1/08",  # the paper's shorthand is ambiguous, we reject it
    ])
    def test_rejects_non_dates(self, text):
        assert parse_datetime_string(text) is None
        assert not looks_like_datetime(text)

    def test_epoch(self):
        assert parse_datetime_string("1970-01-01") == 0

    def test_ordering_preserved(self):
        earlier = parse_datetime_string("1994-01-01")
        later = parse_datetime_string("1994-01-02")
        assert later - earlier == MICROS_PER_DAY


class TestLiterals:
    def test_date_literal(self):
        assert date_literal("1994-01-01") == parse_datetime_string("1994-01-01")

    def test_invalid_literal_raises(self):
        with pytest.raises(ValueError):
            date_literal("tomorrow")


class TestIntervals:
    def test_add_days(self):
        base = date_literal("1998-12-01")
        assert date_string(add_interval(base, days=-90)) == "1998-09-02"

    def test_add_months(self):
        base = date_literal("1993-07-01")
        assert date_string(add_interval(base, months=3)) == "1993-10-01"

    def test_add_years(self):
        base = date_literal("1994-01-01")
        assert date_string(add_interval(base, years=1)) == "1995-01-01"

    def test_month_end_clamping(self):
        base = date_literal("2020-01-31")
        assert date_string(add_interval(base, months=1)) == "2020-02-29"
        assert date_string(add_interval(base, months=13)) == "2021-02-28"

    def test_year_across_leap(self):
        base = date_literal("2020-02-29")
        assert date_string(add_interval(base, years=1)) == "2021-02-28"


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(st.dates(min_value=__import__("datetime").date(1900, 1, 1),
                    max_value=__import__("datetime").date(2100, 1, 1)))
    def test_property_iso_roundtrip(self, day):
        micros = parse_datetime_string(day.isoformat())
        assert micros is not None
        assert date_string(micros) == day.isoformat()
        assert micros_to_datetime(micros).date() == day
