"""Tests for the public Database API and the engine's scalar functions."""

import pytest

from repro import Database, ExtractionConfig, QueryOptions, StorageFormat
from repro.core.jsonpath import KeyPath
from repro.errors import SqlBindError

CONFIG = ExtractionConfig(tile_size=32, partition_size=2)


class TestDatabase:
    def test_load_and_query(self):
        db = Database(config=CONFIG)
        db.load_table("t", [{"a": i} for i in range(10)])
        assert db.sql("select count(*) as n from t x").scalar() == 10

    def test_register_alias_names(self):
        db = Database(config=CONFIG)
        relation = db.load_table("orig", [{"a": 1}])
        db.register("alias", relation)
        assert db.table("alias") is relation

    def test_drop_table(self):
        db = Database(config=CONFIG)
        db.load_table("t", [{"a": 1}])
        db.drop_table("t")
        with pytest.raises(SqlBindError):
            db.sql("select count(*) as n from t x")

    def test_drop_removes_children(self):
        db = Database(config=CONFIG)
        docs = [{"id": i, "tags": [{"v": j} for j in range(i % 7)]}
                for i in range(40)]
        db.load_table("t", docs, StorageFormat.TILES_STAR,
                      array_paths=[KeyPath.parse("tags")])
        assert "t__tags" in db.tables
        db.drop_table("t")
        assert "t__tags" not in db.tables

    def test_unknown_table_raises(self):
        with pytest.raises(SqlBindError):
            Database().table("nope")

    def test_explain_lists_accesses(self):
        db = Database(config=CONFIG)
        db.load_table("t", [{"a": 1, "b": "x"}])
        text = db.explain("select t.data->>'a'::int as a from t "
                          "where t.data->>'b' = 'x'")
        assert "a :: INT64" in text
        assert "b :: STRING" in text

    def test_default_format_applied(self):
        db = Database(StorageFormat.JSONB, CONFIG)
        relation = db.load_table("t", [{"a": 1}])
        assert relation.format == StorageFormat.JSONB

    def test_rowid_pseudo_column(self):
        db = Database(config=CONFIG)
        db.load_table("t", [{"a": i * 10} for i in range(5)])
        result = db.sql("select t.rowid as r, t.data->>'a'::int as a "
                        "from t order by r")
        assert result.rows == [(i, i * 10) for i in range(5)]


class TestScalarFunctions:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database(config=CONFIG)
        docs = [
            {"id": 1, "tags": [{"k": "x"}, {"k": "y"}], "name": "Alice"},
            {"id": 2, "tags": [{"k": "y"}], "name": "BOB"},
            {"id": 3, "tags": [], "name": None},
            {"id": 4, "vals": [1, 2, 3], "name": "carol"},
        ]
        database.load_table("t", docs)
        return database

    def test_json_contains_object_elements(self, db):
        result = db.sql("select count(*) as n from t x "
                        "where json_contains(x.data->'tags', 'k', 'y')")
        assert result.scalar() == 2

    def test_json_contains_scalar_elements(self, db):
        result = db.sql("select count(*) as n from t x "
                        "where json_contains(x.data->'vals', '', 2)")
        assert result.scalar() == 1

    def test_json_length(self, db):
        result = db.sql("select x.data->>'id'::int as id, "
                        "json_length(x.data->'tags') as n from t x "
                        "where x.data->'tags' is not null order by id")
        assert result.rows == [(1, 2), (2, 1), (3, 0)]

    def test_lower_upper(self, db):
        result = db.sql("select lower(x.data->>'name') as lo, "
                        "upper(x.data->>'name') as hi from t x "
                        "where x.data->>'id'::int = 2")
        assert result.rows == [("bob", "BOB")]

    def test_coalesce(self, db):
        result = db.sql("select coalesce(x.data->>'name', 'unknown') as n "
                        "from t x where x.data->>'id'::int = 3")
        assert result.rows == [("unknown",)]

    def test_unknown_function_raises(self, db):
        with pytest.raises(SqlBindError):
            db.sql("select frobnicate(x.data->>'id') as y from t x")

    def test_json_contains_requires_literals(self, db):
        with pytest.raises(SqlBindError):
            db.sql("select count(*) as n from t x where "
                   "json_contains(x.data->'tags', x.data->>'name', 'y')")


class TestResultApi:
    def test_format_table_and_helpers(self):
        db = Database(config=CONFIG)
        db.load_table("t", [{"a": 1, "b": None}, {"a": 2, "b": "x"}])
        result = db.sql("select t.data->>'a'::int as a, t.data->>'b' as b "
                        "from t order by a")
        text = result.format_table()
        assert "NULL" in text and "a" in text
        assert result.column("a") == [1, 2]
        with pytest.raises(ValueError):
            result.scalar()

    def test_limit_rendering(self):
        db = Database(config=CONFIG)
        db.load_table("t", [{"a": i} for i in range(50)])
        result = db.sql("select t.data->>'a'::int as a from t order by a")
        text = result.format_table(limit=3)
        assert "50 rows total" in text


class TestExplainTree:
    def test_renders_operator_tree(self):
        db = Database(config=CONFIG)
        db.load_table("t", [{"a": i, "g": i % 3} for i in range(64)])
        db.load_table("d", [{"k": i} for i in range(3)])
        text = db.explain(
            "select d.data->>'k'::int as k, count(*) as n "
            "from t x, d where x.data->>'g'::int = d.data->>'k'::int "
            "and x.data->>'a'::int > 5 "
            "group by d.data->>'k'::int order by n desc limit 2")
        assert "TableScan" in text
        assert "HashJoin" in text
        assert "HashAggregate" in text
        assert "TopK" in text
        assert "zone maps" in text

    def test_renders_union(self):
        db = Database(config=CONFIG)
        db.load_table("t", [{"a": 1}])
        text = db.explain("select count(*) as n from t x union all "
                          "select count(*) as n from t y")
        assert "UnionAll (2 branches)" in text
