"""Tests for the vectorized engine: scans, expressions, operators."""

import numpy as np
import pytest

from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType
from repro.engine.batch import Batch, concat_batches
from repro.engine.expressions import (
    Arithmetic,
    BoolAnd,
    BoolOr,
    Case,
    Cast,
    ColumnRef,
    Comparison,
    ExtractYear,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Substring,
)
from repro.engine.operators import (
    AggregateSpec,
    BatchSource,
    FilterOp,
    HashAggregateOp,
    HashJoinOp,
    JoinKind,
    LimitOp,
    ProjectOp,
    SortKey,
    SortOp,
)
from repro.engine.scan import ROWID_PATH, AccessRequest, TableScan
from repro.storage import StorageFormat, load_documents
from repro.storage.column import ColumnVector
from repro.tiles import ExtractionConfig


def batch_of(**columns):
    vectors = {}
    length = None
    for name, (ctype, values) in columns.items():
        vectors[name] = ColumnVector.from_values(ctype, values)
        length = len(values)
    return Batch(vectors, length)


class TestExpressions:
    def setup_method(self):
        self.batch = batch_of(
            a=(ColumnType.INT64, [1, 2, None, 4]),
            b=(ColumnType.INT64, [1, 0, 3, None]),
            s=(ColumnType.STRING, ["foo", "bar", None, "foobar"]),
        )

    def col(self, name, ctype=ColumnType.INT64):
        return ColumnRef(name, ctype)

    def test_comparison_propagates_null(self):
        result = Comparison("=", self.col("a"), self.col("b")).evaluate(self.batch)
        assert result.to_list() == [True, False, None, None]

    def test_less_than(self):
        result = Comparison("<", self.col("a"), self.col("b")).evaluate(self.batch)
        assert result.to_list() == [False, False, None, None]

    def test_arithmetic(self):
        result = Arithmetic("+", self.col("a"), self.col("b")).evaluate(self.batch)
        assert result.to_list() == [2, 2, None, None]

    def test_division_is_float_and_null_on_zero(self):
        result = Arithmetic("/", self.col("a"), self.col("b")).evaluate(self.batch)
        assert result.to_list() == [1.0, None, None, None]

    def test_kleene_and(self):
        t = Literal(True, ColumnType.BOOL)
        null_bool = IsNull(self.col("a"))  # false,false,true,false
        expr = BoolAnd(t, null_bool)
        assert expr.evaluate(self.batch).to_list() == [False, False, True, False]

    def test_kleene_or_with_null(self):
        # (a = b) OR (a IS NULL): row3 null=null -> true via IS NULL
        expr = BoolOr(Comparison("=", self.col("a"), self.col("b")),
                      IsNull(self.col("a")))
        assert expr.evaluate(self.batch).to_list() == [True, False, True, None]

    def test_not(self):
        expr = Not(Comparison("=", self.col("a"), self.col("b")))
        assert expr.evaluate(self.batch).to_list() == [False, True, None, None]

    def test_is_null_and_is_not_null(self):
        assert IsNull(self.col("a")).evaluate(self.batch).to_list() == \
            [False, False, True, False]
        assert IsNull(self.col("a"), negated=True).evaluate(self.batch).to_list() == \
            [True, True, False, True]

    def test_in_list(self):
        expr = InList(self.col("a"), [1, 4])
        assert expr.evaluate(self.batch).to_list() == [True, False, None, True]

    def test_like(self):
        expr = Like(ColumnRef("s", ColumnType.STRING), "foo%")
        assert expr.evaluate(self.batch).to_list() == [True, False, None, True]

    def test_like_underscore(self):
        expr = Like(ColumnRef("s", ColumnType.STRING), "b_r")
        assert expr.evaluate(self.batch).to_list() == [False, True, None, False]

    def test_case(self):
        expr = Case(
            [(Comparison("=", self.col("a"), Literal(1, ColumnType.INT64)),
              Literal(10, ColumnType.INT64))],
            Literal(0, ColumnType.INT64),
            ColumnType.INT64,
        )
        assert expr.evaluate(self.batch).to_list() == [10, 0, 0, 0]

    def test_extract_year(self):
        from repro.core.datetimes import date_literal
        batch = batch_of(ts=(ColumnType.TIMESTAMP,
                             [date_literal("1994-03-15"),
                              date_literal("2020-12-31"), None]))
        expr = ExtractYear(ColumnRef("ts", ColumnType.TIMESTAMP))
        assert expr.evaluate(batch).to_list() == [1994, 2020, None]

    def test_substring(self):
        expr = Substring(ColumnRef("s", ColumnType.STRING), 1, 2)
        assert expr.evaluate(self.batch).to_list() == ["fo", "ba", None, "fo"]

    def test_cast_string_to_int(self):
        batch = batch_of(x=(ColumnType.STRING, ["12", "oops", None]))
        result = Cast(ColumnRef("x", ColumnType.STRING),
                      ColumnType.INT64).evaluate(batch)
        assert result.to_list() == [12, None, None]

    def test_null_rejection_analysis(self):
        a, b = self.col("a"), self.col("b")
        eq = Comparison("=", a, b)
        assert eq.null_rejected_refs() == {"a", "b"}
        assert BoolOr(eq, IsNull(a)).null_rejected_refs() == set()
        assert BoolAnd(eq, IsNull(a)).null_rejected_refs() == {"a", "b"}
        assert IsNull(a).null_rejected_refs() == set()
        assert IsNull(a, negated=True).null_rejected_refs() == {"a"}


DOCS = [
    {"id": i, "price": float(i) * 1.5, "label": f"item{i % 3}",
     "created": "2020-06-01", "user": {"id": i % 5}}
    for i in range(100)
]
CONFIG = ExtractionConfig(tile_size=32, partition_size=2)


def scan_relation(storage_format, requests, **kwargs):
    relation = load_documents("t", DOCS, storage_format, CONFIG)
    return relation, TableScan(relation, requests, **kwargs)


def request(path, target, as_text=True, alias="t"):
    return AccessRequest.make(alias, KeyPath.parse(path), target, as_text)


class TestScanResolution:
    @pytest.mark.parametrize("storage_format", [
        StorageFormat.JSON, StorageFormat.JSONB, StorageFormat.SINEW,
        StorageFormat.TILES,
    ])
    def test_int_access_identical_across_formats(self, storage_format):
        req = request("id", ColumnType.INT64)
        _, scan = scan_relation(storage_format, [req])
        batch = concat_batches(list(scan.batches()))
        assert batch.column(req.name).to_list() == list(range(100))

    @pytest.mark.parametrize("storage_format", [
        StorageFormat.JSON, StorageFormat.JSONB, StorageFormat.TILES,
    ])
    def test_nested_access(self, storage_format):
        req = request("user.id", ColumnType.INT64)
        _, scan = scan_relation(storage_format, [req])
        batch = concat_batches(list(scan.batches()))
        assert batch.column(req.name).to_list() == [i % 5 for i in range(100)]

    def test_tiles_avoid_fallback_for_extracted(self):
        req = request("id", ColumnType.INT64)
        _, scan = scan_relation(StorageFormat.TILES, [req])
        list(scan.batches())
        assert scan.counters.fallback_lookups == 0

    def test_jsonb_always_falls_back(self):
        req = request("id", ColumnType.INT64)
        _, scan = scan_relation(StorageFormat.JSONB, [req])
        list(scan.batches())
        assert scan.counters.fallback_lookups == 100

    def test_cast_rewriting_int_to_float(self):
        req = request("id", ColumnType.FLOAT64)
        _, scan = scan_relation(StorageFormat.TILES, [req])
        batch = concat_batches(list(scan.batches()))
        assert batch.column(req.name).to_list() == [float(i) for i in range(100)]
        assert scan.counters.fallback_lookups == 0

    def test_timestamp_access_uses_date_column(self):
        req = request("created", ColumnType.TIMESTAMP)
        _, scan = scan_relation(StorageFormat.TILES, [req])
        batch = concat_batches(list(scan.batches()))
        from repro.core.datetimes import date_literal
        assert batch.column(req.name).value(0) == date_literal("2020-06-01")
        assert scan.counters.fallback_lookups == 0

    def test_text_access_on_date_column_falls_back(self):
        # Section 4.9: Date/Time -> text is forbidden; the original
        # string must come from JSONB
        req = request("created", ColumnType.STRING)
        _, scan = scan_relation(StorageFormat.TILES, [req])
        batch = concat_batches(list(scan.batches()))
        assert batch.column(req.name).value(0) == "2020-06-01"
        assert scan.counters.fallback_lookups == 100

    def test_missing_path_yields_nulls(self):
        req = request("nope", ColumnType.INT64)
        _, scan = scan_relation(StorageFormat.JSONB, [req])
        batch = concat_batches(list(scan.batches()))
        assert batch.column(req.name).to_list() == [None] * 100

    def test_rowid_request(self):
        req = AccessRequest.make("t", ROWID_PATH, ColumnType.INT64, False)
        _, scan = scan_relation(StorageFormat.TILES, [req])
        batch = concat_batches(list(scan.batches()))
        assert batch.column(req.name).to_list() == list(range(100))

    def test_jsonb_mode_access_returns_python_values(self):
        req = request("user", ColumnType.JSONB, as_text=False)
        _, scan = scan_relation(StorageFormat.TILES, [req])
        batch = concat_batches(list(scan.batches()))
        assert batch.column(req.name).value(3) == {"id": 3}

    def test_type_conflict_fallback(self):
        docs = [{"v": i} for i in range(30)] + [{"v": "4.5"}, {"v": 31}]
        relation = load_documents("t", docs, StorageFormat.TILES,
                                  ExtractionConfig(tile_size=32))
        req = request("v", ColumnType.FLOAT64)
        scan = TableScan(relation, [req])
        batch = concat_batches(list(scan.batches()))
        values = batch.column(req.name).to_list()
        assert values[30] == 4.5  # outlier served from JSONB
        assert values[31] == 31.0


class TestTileSkipping:
    def make_relation(self):
        docs = [{"kind": "a", "x": i} for i in range(64)] + \
               [{"kind": "b", "y": i} for i in range(64)]
        return load_documents("t", docs, StorageFormat.TILES,
                              ExtractionConfig(tile_size=32, partition_size=2,
                                               enable_reordering=False))

    def test_skips_tiles_without_path(self):
        relation = self.make_relation()
        req = request("y", ColumnType.INT64)
        scan = TableScan(relation, [req], skip_paths=[KeyPath.parse("y")])
        batch = concat_batches(list(scan.batches()))
        assert scan.counters.tiles_skipped == 2
        assert batch.column(req.name).to_list() == list(range(64))

    def test_skipping_disabled(self):
        relation = self.make_relation()
        req = request("y", ColumnType.INT64)
        scan = TableScan(relation, [req], skip_paths=[KeyPath.parse("y")],
                         enable_skipping=False)
        list(scan.batches())
        assert scan.counters.tiles_skipped == 0

    def test_jsonb_format_cannot_skip(self):
        docs = [{"kind": "a", "x": i} for i in range(64)] + \
               [{"kind": "b", "y": i} for i in range(64)]
        relation = load_documents("t", docs, StorageFormat.JSONB,
                                  ExtractionConfig(tile_size=32))
        req = request("y", ColumnType.INT64)
        scan = TableScan(relation, [req], skip_paths=[KeyPath.parse("y")])
        list(scan.batches())
        assert scan.counters.tiles_skipped == 0


class TestOperators:
    def test_filter(self):
        source = BatchSource([batch_of(a=(ColumnType.INT64, [1, 2, 3, None]))])
        predicate = Comparison(">", ColumnRef("a", ColumnType.INT64),
                               Literal(1, ColumnType.INT64))
        result = FilterOp(source, predicate).materialize()
        assert result.column("a").to_list() == [2, 3]

    def test_project(self):
        source = BatchSource([batch_of(a=(ColumnType.INT64, [1, 2]))])
        out = ProjectOp(source, [("b", Arithmetic(
            "*", ColumnRef("a", ColumnType.INT64),
            Literal(10, ColumnType.INT64)))]).materialize()
        assert out.column("b").to_list() == [10, 20]

    def _join_sides(self):
        left = BatchSource([batch_of(
            lk=(ColumnType.INT64, [1, 2, 2, 3, None]),
            lv=(ColumnType.STRING, ["a", "b", "c", "d", "e"]),
        )])
        right = BatchSource([batch_of(
            rk=(ColumnType.INT64, [2, 3, 3, 4]),
            rv=(ColumnType.STRING, ["x", "y", "z", "w"]),
        )])
        keys = ([ColumnRef("lk", ColumnType.INT64)],
                [ColumnRef("rk", ColumnType.INT64)])
        return left, right, keys

    def test_inner_join(self):
        left, right, (lk, rk) = self._join_sides()
        result = HashJoinOp(left, right, lk, rk).materialize()
        pairs = sorted(zip(result.column("lv").to_list(),
                           result.column("rv").to_list()))
        assert pairs == [("b", "x"), ("c", "x"), ("d", "y"), ("d", "z")]

    def test_left_join_pads_nulls(self):
        left, right, (lk, rk) = self._join_sides()
        result = HashJoinOp(left, right, lk, rk, JoinKind.LEFT).materialize()
        rows = sorted(zip(result.column("lv").to_list(),
                          result.column("rv").to_list()),
                      key=lambda r: (r[0], r[1] or ""))
        assert rows == [("a", None), ("b", "x"), ("c", "x"), ("d", "y"),
                        ("d", "z"), ("e", None)]

    def test_semi_join(self):
        left, right, (lk, rk) = self._join_sides()
        result = HashJoinOp(left, right, lk, rk, JoinKind.SEMI).materialize()
        assert sorted(result.column("lv").to_list()) == ["b", "c", "d"]

    def test_anti_join(self):
        left, right, (lk, rk) = self._join_sides()
        result = HashJoinOp(left, right, lk, rk, JoinKind.ANTI).materialize()
        assert sorted(result.column("lv").to_list()) == ["a", "e"]

    def test_join_string_keys(self):
        left = BatchSource([batch_of(lk=(ColumnType.STRING, ["x", "y"]))])
        right = BatchSource([batch_of(rk=(ColumnType.STRING, ["y", "z"]))])
        result = HashJoinOp(left, right,
                            [ColumnRef("lk", ColumnType.STRING)],
                            [ColumnRef("rk", ColumnType.STRING)]).materialize()
        assert result.column("lk").to_list() == ["y"]

    def test_join_residual_predicate(self):
        left, right, (lk, rk) = self._join_sides()
        residual = Comparison("<", ColumnRef("lv", ColumnType.STRING),
                              ColumnRef("rv", ColumnType.STRING))
        result = HashJoinOp(left, right, lk, rk, JoinKind.INNER,
                            residual=residual).materialize()
        pairs = sorted(zip(result.column("lv").to_list(),
                           result.column("rv").to_list()))
        assert pairs == [("b", "x"), ("c", "x"), ("d", "y"), ("d", "z")]

    def test_aggregate_group_by(self):
        source = BatchSource([batch_of(
            g=(ColumnType.STRING, ["a", "b", "a", "a", None]),
            v=(ColumnType.INT64, [1, 2, 3, None, 5]),
        )])
        op = HashAggregateOp(
            source,
            [("g", ColumnRef("g", ColumnType.STRING))],
            [AggregateSpec("sum", ColumnRef("v", ColumnType.INT64), "total"),
             AggregateSpec("count", ColumnRef("v", ColumnType.INT64), "cnt"),
             AggregateSpec("count_star", None, "stars"),
             AggregateSpec("avg", ColumnRef("v", ColumnType.INT64), "mean"),
             AggregateSpec("min", ColumnRef("v", ColumnType.INT64), "lo"),
             AggregateSpec("max", ColumnRef("v", ColumnType.INT64), "hi")],
        )
        result = op.materialize()
        rows = {result.column("g").value(i): i for i in range(result.length)}
        a = rows["a"]
        assert result.column("total").value(a) == 4
        assert result.column("cnt").value(a) == 2
        assert result.column("stars").value(a) == 3
        assert result.column("mean").value(a) == 2.0
        assert result.column("lo").value(a) == 1
        assert result.column("hi").value(a) == 3
        assert None in rows  # NULL is its own group

    def test_count_distinct(self):
        source = BatchSource([batch_of(
            v=(ColumnType.INT64, [1, 1, 2, None, 2, 3]))])
        op = HashAggregateOp(source, [], [
            AggregateSpec("count_distinct", ColumnRef("v", ColumnType.INT64),
                          "distinct")])
        assert op.materialize().column("distinct").value(0) == 3

    def test_scalar_aggregate_on_empty_input(self):
        source = BatchSource([])
        op = HashAggregateOp(source, [], [AggregateSpec("count_star", None, "n")])
        assert op.materialize().column("n").value(0) == 0

    def test_sort_asc_desc_with_nulls(self):
        source = BatchSource([batch_of(
            a=(ColumnType.INT64, [3, None, 1, 2]),
            b=(ColumnType.STRING, ["x", "y", "z", "w"]),
        )])
        result = SortOp(source, [SortKey("a")]).materialize()
        assert result.column("a").to_list() == [1, 2, 3, None]
        result = SortOp(source, [SortKey("a", descending=True)]).materialize()
        assert result.column("a").to_list() == [3, 2, 1, None]

    def test_sort_multi_key(self):
        source = BatchSource([batch_of(
            a=(ColumnType.INT64, [1, 1, 2]),
            b=(ColumnType.INT64, [2, 1, 0]),
        )])
        result = SortOp(source, [SortKey("a"), SortKey("b", True)]).materialize()
        assert result.column("b").to_list() == [2, 1, 0]

    def test_limit(self):
        source = BatchSource([
            batch_of(a=(ColumnType.INT64, [1, 2, 3])),
            batch_of(a=(ColumnType.INT64, [4, 5, 6])),
        ])
        result = LimitOp(source, 4).materialize()
        assert result.column("a").to_list() == [1, 2, 3, 4]
