"""Tests for ``repro.cluster``: coordinator, shard fleet, replicas.

The load-bearing property is *bit-identity*: any query answered by the
coordinator over N shards must equal — values AND row order — the same
query on one server that received every insert in global order.  The
differential fixtures here run the twitter and yelp suites through a
4-shard coordinator against a single-node reference, plus the failure
surfaces (dead shard, oversized frame, version mismatch, staleness
fallback) the design documents.
"""

import json
import socket
import threading
import time

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterTopology,
    ReplicaServer,
    TopologyError,
    load_topology,
    shard_rows,
)
from repro.engine.morsels import block_ranges
from repro.errors import StorageError
from repro.server import JsonTilesServer, ServerClient, ServerError
from repro.server import protocol
from repro.server.wal import WriteAheadLog
from repro.workloads.twitter import TWITTER_QUERIES, TwitterGenerator
from repro.workloads.yelp import YELP_QUERIES, YelpGenerator

TINY = {"tile_size": 32, "partition_size": 2}
SHARDS = 4


def _rows(result):
    return [tuple(row) for row in result.rows]


# ---------------------------------------------------------------------------


class TestTopology:
    def test_from_dict_and_defaults(self):
        topology = ClusterTopology.from_dict(
            {"shards": [{"port": 7701},
                        {"host": "10.0.0.2", "port": 7702,
                         "replicas": [{"port": 7712}]}]})
        assert topology.shard_count == 2
        assert topology.max_replica_lag == 0
        assert topology.read_from_replicas is True
        assert topology.shards[0].primary.address == "127.0.0.1:7701"
        assert topology.shards[1].replicas[0].port == 7712

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(TopologyError):
            ClusterTopology.from_dict({"shards": []})
        with pytest.raises(TopologyError):
            ClusterTopology.from_dict(
                {"shards": [{"port": 7701}, {"port": 7701}]})
        with pytest.raises(TopologyError):
            ClusterTopology.from_dict({"shards": [{"host": "x"}]})

    def test_load_topology_file(self, tmp_path):
        path = tmp_path / "cluster.json"
        path.write_text(json.dumps(
            {"shards": [{"port": 7701}], "max_replica_lag": 5}))
        topology = load_topology(path)
        assert topology.max_replica_lag == 5
        with pytest.raises(TopologyError):
            load_topology(tmp_path / "missing.json")

    def test_shard_rows_matches_routing(self):
        # brute-force the block round-robin over many (total, B, S)
        for tile_rows in (1, 3, 8):
            for shard_count in (1, 2, 3, 4):
                for total in range(0, 70):
                    owners = [((row // tile_rows) % shard_count)
                              for row in range(total)]
                    for shard in range(shard_count):
                        assert shard_rows(total, tile_rows, shard_count,
                                          shard) == owners.count(shard)

    def test_block_ranges(self):
        assert list(block_ranges(10, 4)) == [(0, 4), (4, 8), (8, 10)]
        assert list(block_ranges(0, 4)) == []
        with pytest.raises(ValueError):
            list(block_ranges(5, 0))


# ---------------------------------------------------------------------------


class TestWalShipping:
    def test_cumulative_total_survives_truncate(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "t.wal", sync=False)
        wal.append_many([{"i": i} for i in range(5)])
        wal.truncate()
        wal.append_many([{"i": i} for i in range(5, 8)])
        assert wal.total_records() == 8
        docs, nxt = wal.fetch(0, limit=100)
        assert [doc["i"] for doc in docs] == list(range(8))
        assert nxt == 8
        docs, nxt = wal.fetch(6, limit=100)
        assert [doc["i"] for doc in docs] == [6, 7]
        wal.close()

    def test_fetch_spans_epochs_with_limit(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "t.wal", sync=False)
        for epoch in range(3):
            wal.append_many([{"i": epoch * 4 + i} for i in range(4)])
            wal.truncate()
        docs, nxt = wal.fetch(2, limit=5)
        assert [doc["i"] for doc in docs] == [2, 3, 4, 5, 6]
        assert nxt == 7
        wal.close()

    def test_pruned_offset_requires_resync(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "t.wal", sync=False,
                            archive_keep=1)
        for epoch in range(3):
            wal.append_many([{"i": epoch * 4 + i} for i in range(4)])
            wal.truncate()
        with pytest.raises(StorageError, match="resync"):
            wal.fetch(0)
        # the kept archive still serves recent history
        docs, _ = wal.fetch(8, limit=100)
        assert [doc["i"] for doc in docs] == [8, 9, 10, 11]
        wal.close()

    def test_truncate_archives_atomically(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "t.wal", sync=False)
        for epoch in range(3):
            wal.append_many([{"i": epoch * 4 + i} for i in range(4)])
            wal.truncate()
        archive_dir = tmp_path / "archive"
        # only fully renamed archives exist — a reader can never see a
        # half-copied .tmp through the fetch glob
        assert sorted(p.name for p in archive_dir.iterdir()) == [
            "t.00000001.wal", "t.00000002.wal", "t.00000003.wal"]
        wal.close()

    def test_fetch_refuses_non_contiguous_stream(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "t.wal", sync=False)
        for epoch in range(3):
            wal.append_many([{"i": epoch * 4 + i} for i in range(4)])
            wal.truncate()
        # simulate a prune racing the fetch: the middle archive is gone
        (tmp_path / "archive" / "t.00000002.wal").unlink()
        with pytest.raises(StorageError, match="resync"):
            wal.fetch(0, limit=100)
        # offsets after the gap still serve fine
        docs, _ = wal.fetch(8, limit=100)
        assert [doc["i"] for doc in docs] == [8, 9, 10, 11]
        wal.close()

    def test_server_wal_fetch_resync_flag(self, tmp_path):
        server = JsonTilesServer(tmp_path / "data", wal_sync=False)
        server.start_in_thread()
        try:
            with ServerClient(port=server.port) as client:
                client.create_table("events", "tiles", TINY)
                client.insert_many("events", [{"i": i} for i in range(10)])
                page = client.wal_fetch("events", from_total=4)
                assert [doc["i"] for doc in page["docs"]] == list(range(4, 10))
                assert not page.get("resync")
                # prune history under the replica's feet
                wal = server.wals.for_table("events")
                wal.archive = False
                wal.truncate()
                page = client.wal_fetch("events", from_total=0)
                assert page["resync"] is True and page["docs"] == []
                # resync path: documents by row index
                page = client.fetch_docs("events", start=4)
                assert [doc["i"] for doc in page["docs"]] == list(range(4, 10))
                assert page["total"] == 10
        finally:
            server.stop_in_thread()


# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """4 shards + coordinator + a single-node reference, twitter and
    yelp pre-loaded through both in identical uneven batches."""
    root = tmp_path_factory.mktemp("cluster")
    single = JsonTilesServer(root / "single", wal_sync=False)
    single.start_in_thread()
    shards = [JsonTilesServer(root / f"shard{index}", wal_sync=False,
                              role="shard")
              for index in range(SHARDS)]
    for shard in shards:
        shard.start_in_thread()
    topology = ClusterTopology.from_dict({
        "shards": [{"host": "127.0.0.1", "port": shard.port}
                   for shard in shards]})
    coordinator = ClusterCoordinator(topology, port=0, timeout=30.0)
    coordinator.start_in_thread()

    with ServerClient(port=coordinator.port) as cc, \
            ServerClient(port=single.port) as sc:
        tweets = list(TwitterGenerator(300, seed=7).stream())
        yelp = list(YelpGenerator(40, reviews_per_business=3,
                                  seed=11).combined())
        for name, docs in (("tweets", tweets), ("yelp", yelp)):
            cc.create_table(name, "tiles", TINY)
            sc.create_table(name, "tiles", TINY)
            # uneven batches that straddle block boundaries
            for start in range(0, len(docs), 53):
                chunk = docs[start:start + 53]
                cc.insert_many(name, chunk)
                sc.insert_many(name, chunk)
        cc.flush()
        sc.flush()
        yield {"coordinator": coordinator, "single": single,
               "cc": cc, "sc": sc, "shards": shards,
               "tweets": tweets, "yelp": yelp}

    coordinator.stop_in_thread()
    for shard in shards:
        shard.stop_in_thread()
    single.stop_in_thread()


class TestClusterDifferential:
    @pytest.mark.parametrize("name", sorted(TWITTER_QUERIES))
    def test_twitter_suite_bit_identical(self, cluster, name):
        a = cluster["cc"].query(TWITTER_QUERIES[name])
        b = cluster["sc"].query(TWITTER_QUERIES[name])
        assert a.columns == b.columns
        assert _rows(a) == _rows(b)

    @pytest.mark.parametrize("name", sorted(YELP_QUERIES))
    def test_yelp_suite_bit_identical(self, cluster, name):
        a = cluster["cc"].query(YELP_QUERIES[name])
        b = cluster["sc"].query(YELP_QUERIES[name])
        assert a.columns == b.columns
        assert _rows(a) == _rows(b)

    @pytest.mark.parametrize("sql", [
        "select count(*) as n from tweets t",
        "select min(t.data->>'id'::int) as lo, "
        "max(t.data->>'id'::int) as hi, count(*) as n from tweets t",
        "select count(distinct t.data->>'lang') as langs from tweets t",
        "select t.data->>'lang' as lang, count(*) as n from tweets t "
        "group by t.data->>'lang' order by n desc, lang limit 3",
        "select t.data->>'id'::int as id, t.data->>'lang' as lang "
        "from tweets t where t.data->>'id'::int < 80 "
        "order by id desc limit 25",
        "select t.data->>'id'::int as id from tweets t limit 7",
    ])
    def test_shapes_bit_identical(self, cluster, sql):
        a = cluster["cc"].query(sql)
        b = cluster["sc"].query(sql)
        assert a.columns == b.columns
        assert _rows(a) == _rows(b)

    def test_read_your_writes_through_coordinator(self, cluster):
        before = cluster["cc"].query(
            "select count(*) as n from tweets t").scalar()
        extra = list(TwitterGenerator(30, seed=42).stream())
        cluster["cc"].insert_many("tweets", extra)
        cluster["sc"].insert_many("tweets", extra)
        a = cluster["cc"].query("select count(*) as n from tweets t")
        b = cluster["sc"].query("select count(*) as n from tweets t")
        assert a.scalar() == before + len(extra)
        assert _rows(a) == _rows(b)
        # and a gather query sees them too (cache refresh)
        q = ("select t.data->>'lang' as lang, count(*) as n from tweets t "
             "group by t.data->>'lang' "
             "having count(*) > 1 order by lang")
        assert _rows(cluster["cc"].query(q)) == _rows(cluster["sc"].query(q))

    def test_explain_carries_cluster_header(self, cluster):
        plan = cluster["cc"].explain("select count(*) as n from tweets t")
        assert plan.startswith(f"Cluster[{SHARDS} shards")
        assert "per-shard plan" in plan

    def test_stats_aggregates_fleet(self, cluster):
        stats = cluster["cc"].stats()
        assert stats["role"] == "coordinator"
        assert len(stats["shards"]) == SHARDS
        table = stats["tables"]["tweets"]
        assert table["rows"] + table["pending"] == table["routed_rows"]
        single_rows = cluster["sc"].stats()["tables"]["tweets"]
        assert table["routed_rows"] == (single_rows["rows"]
                                        + single_rows["pending"])
        assert stats["counters"]["queries"] > 0

    def test_shard_tables_created_without_reordering(self, cluster):
        # the canonical block layout depends on physical row order, so
        # the coordinator must force enable_reordering off on every
        # shard table regardless of the client-supplied config
        stats = cluster["cc"].stats()
        for shard in stats["shards"]:
            for name, table in shard["tables"].items():
                assert table["config"]["enable_reordering"] is False, name

    def test_hello_and_admin_fanouts(self, cluster):
        hello = cluster["cc"].hello()
        assert hello["role"] == "coordinator"
        assert hello["shards"] == SHARDS
        assert cluster["cc"].flush() >= 0
        written = cluster["cc"].checkpoint()
        assert set(written) == {f"shard{i}" for i in range(SHARDS)}
        maintenance = cluster["cc"].maintenance()
        assert set(maintenance["shards"]) == \
            {f"shard{i}" for i in range(SHARDS)}

    def test_duplicate_create_table_rejected(self, cluster):
        with pytest.raises(ServerError) as excinfo:
            cluster["cc"].create_table("tweets")
        assert excinfo.value.code == "SqlBindError"

    def test_unknown_table_and_command_surface_cleanly(self, cluster):
        with pytest.raises(ServerError):
            cluster["cc"].query("select count(*) as n from nope t")
        with pytest.raises(ServerError) as excinfo:
            cluster["cc"]._call("partial_query", sql="select 1",
                                shard_index=0, shard_count=1)
        assert excinfo.value.code == "bad_request"

    def test_coordinator_discovers_existing_tables(self, cluster):
        """A restarted coordinator rebuilds its routing catalog from
        shard stats and keeps answering identically."""
        topology = cluster["coordinator"].topology
        fresh = ClusterCoordinator(topology, port=0, timeout=30.0)
        fresh.start_in_thread()
        try:
            with ServerClient(port=fresh.port) as client:
                sql = ("select t.data->>'lang' as lang, count(*) as n "
                       "from tweets t group by t.data->>'lang' "
                       "order by n desc, lang limit 3")
                assert _rows(client.query(sql)) == \
                    _rows(cluster["sc"].query(sql))
        finally:
            fresh.stop_in_thread()


# ---------------------------------------------------------------------------


class TestDistributedJoins:
    """Shard-side broadcast joins (DESIGN.md §10): engage on a small
    build side, decline to gather on anything else — bit-identical to
    the single node either way."""

    # dim is 8 docs = one routed block on shard 0, so shards 1-3 plan
    # it at cardinality 0 — every shard still votes the same
    # orientation (320-row big probes, 8-row dim builds)
    JOIN_SQL = (
        "select d.data->>'label' as label, count(*) as n, "
        "sum(b.data->>'v'::int) as s from big b, dim d "
        "where b.data->>'k'::int = d.data->>'d'::int "
        "group by d.data->>'label' order by label")

    # force-enable so the engage/decline assertions hold even under
    # the CI leg that ablates the default (REPRO_DISTJOIN=0)
    ON = {"enable_distributed_joins": True}
    OFF = {"enable_distributed_joins": False}

    @pytest.fixture(scope="class")
    def joined(self, cluster):
        cc, sc = cluster["cc"], cluster["sc"]
        if "big" not in cc.stats()["tables"]:
            big = [{"k": i % 8, "v": i % 13} for i in range(320)]
            dim = [{"d": i, "label": f"l-{i}"} for i in range(8)]
            for name, docs in (("big", big), ("dim", dim)):
                cc.create_table(name, "tiles", TINY)
                sc.create_table(name, "tiles", TINY)
                for start in range(0, len(docs), 53):
                    cc.insert_many(name, docs[start:start + 53])
                    sc.insert_many(name, docs[start:start + 53])
        return cluster

    @pytest.fixture(scope="class")
    def tpch(self, cluster):
        from repro.workloads.tpch.generator import generate_tables

        cc, sc = cluster["cc"], cluster["sc"]
        if "lineitem" not in cc.stats()["tables"]:
            for name, docs in generate_tables(0.0005, seed=5).items():
                cc.create_table(name, "tiles", TINY)
                sc.create_table(name, "tiles", TINY)
                for start in range(0, len(docs), 53):
                    cc.insert_many(name, docs[start:start + 53])
                    sc.insert_many(name, docs[start:start + 53])
        return cluster

    def test_broadcast_join_engages(self, joined):
        raw = joined["cc"]._call("query", sql=self.JOIN_SQL,
                                 options=self.ON)
        section = raw["cluster"]
        assert section["mode"] == "broadcast_join"
        assert section["probe"] == "b"
        assert section["build"] == "d"
        assert section["join_order"] == ["d", "b"]
        # 8 build rows broadcast to every shard
        assert section["broadcast_rows"] == 8 * SHARDS
        assert section["exchange_bytes"] > 0
        ref = joined["sc"].query(self.JOIN_SQL)
        assert raw["columns"] == ref.columns
        assert [tuple(row) for row in raw["rows"]] == _rows(ref)

    def test_distjoin_off_falls_back_to_gather(self, joined):
        on = joined["cc"]._call("query", sql=self.JOIN_SQL,
                                options=self.ON)
        off = joined["cc"]._call("query", sql=self.JOIN_SQL,
                                 options=self.OFF)
        assert off["cluster"]["mode"] == "gather"
        assert off["columns"] == on["columns"]
        assert off["rows"] == on["rows"]

    def test_non_equi_join_declines_counted(self, joined):
        sql = ("select count(*) as n from big b, dim d "
               "where b.data->>'k'::int < d.data->>'d'::int")
        before = joined["cc"].stats()["counters"]["distjoin_declines"]
        raw = joined["cc"]._call("query", sql=sql, options=self.ON)
        assert raw["cluster"]["mode"] == "gather"
        stats = joined["cc"].stats()
        assert stats["counters"]["distjoin_declines"] == before + 1
        assert stats["last_distjoin_decline"] == "cross-product"
        assert [tuple(row) for row in raw["rows"]] == \
            _rows(joined["sc"].query(sql))

    def test_build_cap_declines_to_gather(self, joined):
        raw = joined["cc"]._call(
            "query", sql=self.JOIN_SQL,
            options=dict(self.ON, broadcast_max_rows=4))
        assert raw["cluster"]["mode"] == "gather"
        stats = joined["cc"].stats()
        assert stats["last_distjoin_decline"] == "build-too-large"
        assert [tuple(row) for row in raw["rows"]] == \
            _rows(joined["sc"].query(self.JOIN_SQL))

    def test_stats_expose_join_telemetry(self, joined):
        joined["cc"]._call("query", sql=self.JOIN_SQL, options=self.ON)
        stats = joined["cc"].stats()
        counters = stats["counters"]
        assert counters["distributed_joins"] > 0
        assert counters["broadcast_rows"] >= 8 * SHARDS
        assert counters["exchange_bytes"] > 0
        assert stats["last_join_order"] == ["d", "b"]

    def test_explain_announces_broadcast_strategy(self, joined):
        plan = joined["cc"].explain(self.JOIN_SQL, options=self.ON)
        assert "broadcast join (on unanimous shard vote)" in plan
        assert "build[d] =broadcast=> probe[b]" in plan

    @pytest.mark.parametrize("name", [1, 3, 5])
    def test_yelp_joins_on_off_identical(self, cluster, name):
        on = cluster["cc"]._call(
            "query", sql=YELP_QUERIES[name],
            options=TestDistributedJoins.ON)
        off = cluster["cc"]._call(
            "query", sql=YELP_QUERIES[name],
            options=TestDistributedJoins.OFF)
        assert on["columns"] == off["columns"]
        assert on["rows"] == off["rows"]

    def test_twitter_self_join_on_off_identical(self, cluster):
        sql = ("select a.data->>'lang' as lang, count(*) as n "
               "from tweets a, tweets b "
               "where a.data->>'id'::int = b.data->>'id'::int "
               "group by a.data->>'lang' order by n desc, lang")
        on = cluster["cc"]._call("query", sql=sql,
                                 options=TestDistributedJoins.ON)
        off = cluster["cc"]._call("query", sql=sql,
                                  options=TestDistributedJoins.OFF)
        ref = cluster["sc"].query(sql)
        assert on["columns"] == off["columns"] == ref.columns
        assert on["rows"] == off["rows"]
        assert [tuple(row) for row in on["rows"]] == _rows(ref)

    @pytest.mark.parametrize("number", [3, 4, 12, 14])
    def test_tpch_joins_bit_identical(self, tpch, number):
        from repro.workloads.tpch import TPCH_QUERIES

        sql = TPCH_QUERIES[number]
        ref = tpch["sc"].query(sql)
        on = tpch["cc"]._call("query", sql=sql, options=self.ON)
        off = tpch["cc"]._call("query", sql=sql, options=self.OFF)
        assert on["columns"] == off["columns"] == ref.columns
        assert [tuple(row) for row in on["rows"]] == _rows(ref)
        assert on["rows"] == off["rows"]


# ---------------------------------------------------------------------------


class TestReplicaAndFailures:
    def _wait(self, predicate, timeout=15.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            if predicate():
                return True
            time.sleep(0.05)
        return False

    def test_replica_staleness_and_fallback(self, tmp_path):
        shard = JsonTilesServer(tmp_path / "shard", wal_sync=False,
                                role="shard").start_in_thread()
        replica = ReplicaServer(tmp_path / "replica", "127.0.0.1",
                                shard.port, poll_interval=0.05,
                                wal_sync=False).start_in_thread()
        topology = ClusterTopology.from_dict({
            "shards": [{"host": "127.0.0.1", "port": shard.port,
                        "replicas": [{"host": "127.0.0.1",
                                      "port": replica.port}]}],
            "max_replica_lag": 0})
        coordinator = ClusterCoordinator(topology, port=0,
                                         timeout=30.0).start_in_thread()
        try:
            with ServerClient(port=coordinator.port) as client:
                client.create_table("events", "tiles", TINY)
                docs = [{"i": i, "k": "ab"[i % 2]} for i in range(100)]
                client.insert_many("events", docs)

                def caught_up():
                    with ServerClient(port=replica.port) as rep:
                        status = rep.replica_status()
                    return status["tables"].get("events",
                                                {}).get("applied") == 100

                assert self._wait(caught_up)
                # fresh replica serves the read
                result = client.query(
                    "select count(*) as n from events e")
                assert result.scalar() == 100
                counters = client.stats()["counters"]
                assert counters["replica_queries"] >= 1

                # replica writes are refused at the protocol
                with ServerClient(port=replica.port) as rep:
                    assert rep.hello()["read_only"] is True
                    with pytest.raises(ServerError) as excinfo:
                        rep.insert("events", {"i": -1})
                    assert excinfo.value.code == "read_only"

                # freeze the replica in the past -> primary fallback
                replica.pause()
                client.insert_many("events",
                                   [{"i": i, "k": "c"} for i in range(7)])
                before = client.stats()["counters"]
                result = client.query(
                    "select count(*) as n from events e")
                assert result.scalar() == 107
                after = client.stats()["counters"]
                assert after["primary_fallbacks"] > \
                    before["primary_fallbacks"]

                # resume -> replica catches up and serves again
                replica.resume()

                def caught_up_again():
                    with ServerClient(port=replica.port) as rep:
                        status = rep.replica_status()
                    return status["tables"]["events"]["applied"] == 107

                assert self._wait(caught_up_again)
                before = client.stats()["counters"]
                assert client.query(
                    "select count(*) as n from events e").scalar() == 107
                after = client.stats()["counters"]
                assert after["replica_queries"] > before["replica_queries"]

                # replica status is visible in cluster stats
                stats = client.stats()
                replicas = stats["shards"][0]["replicas"]
                assert replicas and replicas[0]["replica"] is True
        finally:
            coordinator.stop_in_thread()
            replica.stop_in_thread()
            shard.stop_in_thread()

    def test_partial_insert_failure_degrades_then_recovers(self, tmp_path):
        """A failed insert fan-out marks the table degraded; the table
        refuses traffic until per-shard counts re-verify against the
        canonical block layout, then heals automatically."""
        shards = [JsonTilesServer(tmp_path / f"shard{index}",
                                  wal_sync=False,
                                  role="shard").start_in_thread()
                  for index in range(2)]
        ports = [shard.port for shard in shards]
        topology = ClusterTopology.from_dict({
            "shards": [{"host": "127.0.0.1", "port": port}
                       for port in ports]})
        coordinator = ClusterCoordinator(topology, port=0,
                                         timeout=5.0).start_in_thread()
        try:
            with ServerClient(port=coordinator.port) as client:
                client.create_table("events", "tiles", TINY)
                entry = coordinator.tables["events"]
                # rows 0..31 are block 0 -> routed to shard 0 only
                shards[0].stop_in_thread(checkpoint=False)
                with pytest.raises(ServerError) as excinfo:
                    client.insert_many("events",
                                       [{"i": i} for i in range(32)])
                assert excinfo.value.code == "unavailable"
                assert entry["degraded"] is True
                # while the shard is down, reconciliation cannot run
                # and queries must not serve the corrupt layout
                with pytest.raises(ServerError):
                    client.query("select count(*) as n from events e")
                assert entry["degraded"] is True
                # the failed batch never reached the dead shard, so
                # after a restart the counts re-verify and traffic flows
                shards[0] = JsonTilesServer(
                    tmp_path / "shard0", wal_sync=False, role="shard",
                    port=ports[0]).start_in_thread()
                assert client.query(
                    "select count(*) as n from events e").scalar() == 0
                assert entry["degraded"] is False
                client.insert_many("events", [{"i": i} for i in range(64)])
                assert client.query(
                    "select count(*) as n from events e").scalar() == 64
                assert client.stats()["tables"]["events"]["degraded"] \
                    is False
        finally:
            coordinator.stop_in_thread()
            for shard in shards:
                shard.stop_in_thread()

    def test_replica_refuses_reordering_primary(self, tmp_path):
        """Replication assumes physical row order == WAL order, which
        breaks when the primary may reorder rows at seal time — the
        replica must refuse such tables unless explicitly overridden."""
        primary = JsonTilesServer(tmp_path / "primary",
                                  wal_sync=False).start_in_thread()
        try:
            with ServerClient(port=primary.port) as client:
                # TINY leaves enable_reordering at its default (True)
                client.create_table("events", "tiles", TINY)
                client.insert_many("events", [{"i": i} for i in range(10)])
            replica = ReplicaServer(tmp_path / "replica", "127.0.0.1",
                                    primary.port, wal_sync=False)
            replica.server.start_in_thread()
            try:
                with pytest.warns(RuntimeWarning,
                                  match="enable_reordering"):
                    assert replica.poll_once() == 0
                status = replica._status()
                assert "events" in status["refused"]
                assert "events" not in status["tables"]
            finally:
                replica.server.stop_in_thread()
            # explicit override replicates anyway
            permissive = ReplicaServer(tmp_path / "replica2", "127.0.0.1",
                                       primary.port, wal_sync=False,
                                       allow_reordering=True)
            permissive.server.start_in_thread()
            try:
                assert permissive.poll_once() == 10
                status = permissive._status()
                assert status["refused"] == {}
                assert status["tables"]["events"]["applied"] == 10
            finally:
                permissive.server.stop_in_thread()
        finally:
            primary.stop_in_thread()

    def test_dead_shard_surfaces_unavailable(self, tmp_path):
        shards = [JsonTilesServer(tmp_path / f"shard{index}",
                                  wal_sync=False,
                                  role="shard").start_in_thread()
                  for index in range(2)]
        topology = ClusterTopology.from_dict({
            "shards": [{"host": "127.0.0.1", "port": shard.port}
                       for shard in shards]})
        coordinator = ClusterCoordinator(topology, port=0,
                                         timeout=5.0).start_in_thread()
        try:
            with ServerClient(port=coordinator.port) as client:
                client.create_table("events", "tiles", TINY)
                client.insert_many("events",
                                   [{"i": i} for i in range(100)])
                assert client.query(
                    "select count(*) as n from events e").scalar() == 100
                shards[1].stop_in_thread(checkpoint=False)
                with pytest.raises(ServerError) as excinfo:
                    client.query("select count(*) as n from events e")
                assert excinfo.value.code == "unavailable"
                assert shards[1].port and \
                    str(shards[1].port) in str(excinfo.value)
                with pytest.raises(ServerError) as excinfo:
                    client.insert_many("events",
                                       [{"i": i} for i in range(40)])
                assert excinfo.value.code == "unavailable"
        finally:
            coordinator.stop_in_thread()
            shards[0].stop_in_thread()

    def test_shard_role_disables_maintenance_reordering(self, tmp_path):
        # --maintenance is safe on shards: the role forces the
        # planner's reorder proposals off while the rest of the daemon
        # (recomputes, buffer compaction) keeps running
        server = JsonTilesServer(tmp_path / "shard", wal_sync=False,
                                 role="shard", maintenance=True)
        server.start_in_thread()
        try:
            assert server.maintenance is not None
            assert server.maintenance.config.enabled is True
            assert server.maintenance.config.allow_reordering is False
        finally:
            server.stop_in_thread()


# ---------------------------------------------------------------------------


class TestProtocolLimits:
    def test_client_rejects_oversized_request(self, tmp_path):
        server = JsonTilesServer(tmp_path / "data", wal_sync=False)
        server.start_in_thread()
        try:
            with ServerClient(port=server.port) as client:
                client.create_table("events")
                huge = [{"blob": "x" * 1024}
                        for _ in range(protocol.MAX_MESSAGE_BYTES // 1024)]
                with pytest.raises(ServerError) as excinfo:
                    client.insert_many("events", huge)
                assert excinfo.value.code == "protocol"
                # nothing was sent: the connection still works
                assert client.ping() == "pong"
        finally:
            server.stop_in_thread()

    def test_server_rejects_oversized_frame(self, tmp_path, monkeypatch):
        # shrink the limit so the test does not ship 32 MiB
        monkeypatch.setattr(protocol, "MAX_MESSAGE_BYTES", 4096)
        server = JsonTilesServer(tmp_path / "data", wal_sync=False)
        server.start_in_thread()
        try:
            with socket.create_connection(("127.0.0.1", server.port),
                                          timeout=10.0) as sock:
                try:
                    sock.sendall(b'{"cmd": "ping", "pad": "' +
                                 b"x" * 8192 + b'"}\n')
                except (BrokenPipeError, ConnectionResetError):
                    pass  # server may close while we are still sending
                response = json.loads(
                    sock.makefile("rb").readline().decode())
            assert response["ok"] is False
            assert response["code"] == "protocol"
        finally:
            server.stop_in_thread()

    def test_hello_version_mismatch(self):
        # a fake peer speaking a future protocol revision
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def fake_peer():
            conn, _ = listener.accept()
            with conn:
                conn.makefile("rb").readline()
                conn.sendall(json.dumps(
                    {"ok": True, "version": 99}).encode() + b"\n")

        thread = threading.Thread(target=fake_peer, daemon=True)
        thread.start()
        try:
            client = ServerClient(port=port, timeout=5.0, retries=0)
            with pytest.raises(ServerError) as excinfo:
                client.hello()
            assert excinfo.value.code == "version_mismatch"
            client.close()
        finally:
            listener.close()
            thread.join(timeout=5.0)

    def test_client_reconnects_after_server_restart(self, tmp_path):
        server = JsonTilesServer(tmp_path / "data", wal_sync=False)
        server.start_in_thread()
        port = server.port
        client = ServerClient(port=port, timeout=10.0, retries=1,
                              retry_backoff=0.3)
        assert client.ping() == "pong"
        server.stop_in_thread()
        server = JsonTilesServer(tmp_path / "data", wal_sync=False,
                                 port=port)
        server.start_in_thread()
        try:
            assert client.ping() == "pong"  # transparent reconnect
        finally:
            client.close()
            server.stop_in_thread()

    def test_client_never_retries_insert(self, tmp_path):
        """Even with retries enabled, an insert whose connection died
        is never re-sent (it may have been applied without an ack);
        idempotent commands still reconnect transparently."""
        server = JsonTilesServer(tmp_path / "data", wal_sync=False)
        server.start_in_thread()
        port = server.port
        client = ServerClient(port=port, timeout=10.0, retries=1,
                              retry_backoff=0.3)
        client.create_table("events")
        client.insert("events", {"i": 0})
        server.stop_in_thread()
        server = JsonTilesServer(tmp_path / "data", wal_sync=False,
                                 port=port)
        server.start_in_thread()
        try:
            with pytest.raises((ServerError, OSError)):
                client.insert("events", {"i": 1})
            # the idempotent ping reconnects and the session continues
            assert client.ping() == "pong"
            assert client.query(
                "select count(*) as n from events e").scalar() == 1
        finally:
            client.close()
            server.stop_in_thread()


class TestBackendRetrySafety:
    """BackendLink must only re-send idempotent commands after a
    dropped connection — a re-sent insert could double-apply."""

    @staticmethod
    def _flaky_peer(drops):
        """A fake backend: reads one request per connection; while
        ``drops[0] > 0`` it closes without answering, else answers ok.
        Returns (listener, port, received, stop)."""
        received = []
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        stop = threading.Event()

        def peer():
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                with conn:
                    line = conn.makefile("rb").readline()
                    if not line:
                        continue
                    request = json.loads(line)
                    received.append(request)
                    if drops[0] > 0:
                        drops[0] -= 1
                        continue  # close without a response
                    conn.sendall(json.dumps(
                        {"ok": True, "id": request["id"],
                         "tables": {}}).encode() + b"\n")

        thread = threading.Thread(target=peer, daemon=True)
        thread.start()
        return listener, port, received, stop

    def _call(self, port, command, **fields):
        import asyncio

        from repro.cluster.coordinator import BackendLink
        from repro.cluster.topology import Endpoint

        async def run():
            link = BackendLink(Endpoint("127.0.0.1", port), timeout=5.0)
            try:
                return await link.call(command, **fields)
            finally:
                await link._close()

        return asyncio.run(run())

    def test_idempotent_command_is_resent(self):
        drops = [1]
        listener, port, received, stop = self._flaky_peer(drops)
        try:
            response = self._call(port, "stats")
            assert response["ok"] is True
            assert [r["cmd"] for r in received] == ["stats", "stats"]
        finally:
            stop.set()
            listener.close()

    def test_insert_is_never_resent(self):
        from repro.cluster.coordinator import BackendError

        drops = [1]
        listener, port, received, stop = self._flaky_peer(drops)
        try:
            with pytest.raises(BackendError) as excinfo:
                self._call(port, "insert", table="events",
                           docs=[{"i": 1}])
            assert excinfo.value.code == "unavailable"
            assert "unacknowledged" in str(excinfo.value)
            # exactly one request line ever reached the backend
            assert [r["cmd"] for r in received] == ["insert"]
        finally:
            stop.set()
            listener.close()
