"""Edge-case tests across the engine: empty inputs, NULL torture,
duplicate keys, deep nesting, large batches."""

import pytest

from repro import Database, ExtractionConfig, QueryOptions, StorageFormat

CONFIG = ExtractionConfig(tile_size=16, partition_size=2)


def make_db(docs, storage_format=StorageFormat.TILES, **config):
    db = Database(storage_format, ExtractionConfig(**{"tile_size": 16,
                                                      **config}))
    db.load_table("t", docs)
    return db


class TestEmptyAndTiny:
    def test_empty_table(self):
        db = make_db([])
        assert db.sql("select count(*) as n from t x").scalar() == 0

    def test_empty_table_group_by(self):
        db = make_db([])
        result = db.sql("select x.data->>'k' as k, count(*) as n "
                        "from t x group by x.data->>'k'")
        assert result.rows == []

    def test_single_document(self):
        db = make_db([{"a": 1}])
        assert db.sql("select x.data->>'a'::int as a from t x").rows == [(1,)]

    def test_join_with_empty_side(self):
        db = make_db([{"a": 1}])
        db.load_table("empty", [])
        result = db.sql(
            "select count(*) as n from t x, empty e "
            "where x.data->>'a'::int = e.data->>'a'::int")
        assert result.scalar() == 0

    def test_left_join_empty_right(self):
        db = make_db([{"a": 1}, {"a": 2}])
        db.load_table("empty", [])
        result = db.sql(
            "select x.data->>'a'::int as a, e.data->>'b'::int as b "
            "from t x left join empty e "
            "on x.data->>'a'::int = e.data->>'a'::int order by a")
        assert result.rows == [(1, None), (2, None)]

    def test_limit_zero(self):
        db = make_db([{"a": i} for i in range(5)])
        assert db.sql("select x.data->>'a'::int as a from t x "
                      "limit 0").rows == []


class TestNullTorture:
    DOCS = [{"v": 1}, {"v": None}, {}, {"v": 2}, {"v": None}]

    def test_aggregates_skip_nulls(self):
        db = make_db(self.DOCS)
        result = db.sql(
            "select count(*) as stars, count(x.data->>'v'::int) as vals, "
            "sum(x.data->>'v'::int) as s, avg(x.data->>'v'::int) as a "
            "from t x")
        assert result.rows == [(5, 2, 3, 1.5)]

    def test_group_by_null_key(self):
        db = make_db(self.DOCS)
        result = db.sql("select x.data->>'v'::int as v, count(*) as n "
                        "from t x group by x.data->>'v'::int order by v")
        assert (None, 3) in result.rows

    def test_null_never_equals_null(self):
        db = make_db(self.DOCS)
        result = db.sql("select count(*) as n from t x "
                        "where x.data->>'v'::int = x.data->>'v'::int")
        assert result.scalar() == 2

    def test_json_null_vs_absent_key(self):
        db = make_db([{"v": None}, {}])
        # both are SQL NULL under ->> (PostgreSQL semantics)
        result = db.sql("select count(*) as n from t x "
                        "where x.data->>'v' is null")
        assert result.scalar() == 2

    def test_not_in_with_nulls_in_probe(self):
        db = make_db(self.DOCS)
        db.load_table("keys", [{"k": 1}])
        result = db.sql(
            "select count(*) as n from t x where x.data->>'v'::int not in "
            "(select k.data->>'k'::int from keys k)")
        # NULL probes keep NOT-EXISTS semantics: they survive
        assert result.scalar() == 4


class TestDuplicatesAndCollisions:
    def test_same_relation_joined_to_itself(self):
        db = make_db([{"a": i % 3} for i in range(9)])
        result = db.sql(
            "select count(*) as n from t x, t y "
            "where x.data->>'a'::int = y.data->>'a'::int")
        assert result.scalar() == 27  # 3 groups of 3, squared each

    def test_many_duplicate_join_keys(self):
        db = make_db([{"k": 1} for _ in range(50)])
        db.load_table("r", [{"k": 1} for _ in range(40)])
        result = db.sql("select count(*) as n from t x, r y "
                        "where x.data->>'k'::int = y.data->>'k'::int")
        assert result.scalar() == 2000

    def test_distinct_on_duplicates(self):
        db = make_db([{"a": i % 4, "b": i % 2} for i in range(32)])
        result = db.sql("select distinct x.data->>'a'::int as a, "
                        "x.data->>'b'::int as b from t x")
        # a % 4 determines b = a % 2, so exactly 4 distinct pairs
        assert len(result) == 4
        assert len(set(result.rows)) == len(result.rows)


class TestDeepNesting:
    def test_deeply_nested_access(self):
        doc = value = {}
        for depth in range(20):
            value["level"] = {}
            value = value["level"]
        value["leaf"] = 42
        db = make_db([doc] * 4)
        path = "->'level'" * 20
        result = db.sql(f"select x.data{path}->>'leaf'::int as leaf "
                        f"from t x limit 1")
        assert result.rows == [(42,)]

    def test_unicode_keys_and_values(self):
        db = make_db([{"ключ": "значение", "数": 7}] * 4)
        result = db.sql("select x.data->>'ключ' as v, "
                        "x.data->>'数'::int as n from t x limit 1")
        assert result.rows == [("значение", 7)]

    def test_key_with_quotes_and_spaces(self):
        db = make_db([{"weird key": 1, "it''s": 2}] * 4)
        result = db.sql("select x.data->>'weird key'::int as a from t x "
                        "limit 1")
        assert result.rows == [(1,)]


class TestLargeBatches:
    def test_multibatch_scan(self):
        db = Database(config=ExtractionConfig(tile_size=512))
        db.load_table("t", [{"v": i} for i in range(5000)])
        options = QueryOptions(batch_rows=128)
        result = db.sql("select sum(x.data->>'v'::int) as s from t x",
                        options)
        assert result.scalar() == sum(range(5000))

    def test_order_stability_across_tiles(self):
        db = Database(config=ExtractionConfig(
            tile_size=64, enable_reordering=False))
        db.load_table("t", [{"v": i} for i in range(1000)])
        result = db.sql("select x.data->>'v'::int as v from t x "
                        "order by v limit 1000")
        assert result.column("v") == list(range(1000))
