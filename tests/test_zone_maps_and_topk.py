"""Tests for zone-map tile pruning, the vectorized single-key group-by
fast path, and the Top-K operator."""

import numpy as np
import pytest

from repro import Database, ExtractionConfig, QueryOptions, StorageFormat
from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType
from repro.engine.operators import (
    AggregateSpec,
    BatchSource,
    HashAggregateOp,
    SortKey,
    TopKOp,
)
from repro.engine.scan import RangePrune
from repro.storage.column import ColumnVector
from repro.engine.batch import Batch

CONFIG = ExtractionConfig(tile_size=32, partition_size=2,
                          enable_reordering=False)


def batch_of(**columns):
    vectors = {}
    length = None
    for name, (ctype, values) in columns.items():
        vectors[name] = ColumnVector.from_values(ctype, values)
        length = len(values)
    return Batch(vectors, length)


class TestRangePrune:
    def test_equality(self):
        prune = RangePrune(KeyPath.parse("v"), "=", 50)
        assert prune.excludes(0, 10)
        assert prune.excludes(60, 90)
        assert not prune.excludes(0, 100)

    def test_inequalities(self):
        path = KeyPath.parse("v")
        assert RangePrune(path, "<", 5).excludes(5, 10)
        assert not RangePrune(path, "<", 5).excludes(4, 10)
        assert RangePrune(path, "<=", 5).excludes(6, 10)
        assert RangePrune(path, ">", 5).excludes(0, 5)
        assert RangePrune(path, ">=", 5).excludes(0, 4)

    def test_incomparable_types_never_prune(self):
        prune = RangePrune(KeyPath.parse("v"), "<", "text")
        assert not prune.excludes(1, 2)


class TestZoneMapSkipping:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database(config=CONFIG)
        # sorted values: tile i covers [32*i, 32*i+31]
        database.load_table("t", [{"v": i, "s": f"x{i}"}
                                  for i in range(256)])
        return database

    def test_range_query_skips_tiles(self, db):
        result = db.sql("select count(*) as n from t x "
                        "where x.data->>'v'::int < 40")
        assert result.scalar() == 40
        assert result.counters.tiles_skipped == 6  # tiles 2..7

    def test_equality_skips(self, db):
        result = db.sql("select count(*) as n from t x "
                        "where x.data->>'v'::int = 100")
        assert result.scalar() == 1
        assert result.counters.tiles_skipped == 7

    def test_zone_maps_can_be_disabled(self, db):
        options = QueryOptions(enable_zone_maps=False)
        result = db.sql("select count(*) as n from t x "
                        "where x.data->>'v'::int = 100", options)
        assert result.scalar() == 1
        assert result.counters.tiles_skipped == 0

    def test_string_bounds(self, db):
        # lexical bounds on the string column
        result = db.sql("select count(*) as n from t x "
                        "where x.data->>'s' = 'x0'")
        assert result.scalar() == 1
        assert result.counters.tiles_skipped > 0

    def test_between_prunes_both_sides(self, db):
        result = db.sql("select count(*) as n from t x "
                        "where x.data->>'v'::int between 100 and 110")
        assert result.scalar() == 11
        # [100, 110] lives entirely in tile 3 (rows 96..127)
        assert result.counters.tiles_skipped == 7

    def test_type_conflicts_disable_pruning(self):
        database = Database(config=ExtractionConfig(tile_size=32))
        docs = [{"v": i} for i in range(31)] + [{"v": "999"}]
        database.load_table("t", docs)
        # the numeric-string outlier lives in the fallback; pruning on
        # the column bounds (0..30) would wrongly skip it
        result = database.sql("select count(*) as n from t x "
                              "where x.data->>'v'::int = 999")
        assert result.scalar() == 1

    def test_updates_widen_bounds(self):
        database = Database(config=ExtractionConfig(tile_size=32))
        relation = database.load_table("t", [{"v": i} for i in range(32)])
        relation.update(0, {"v": 10_000})
        result = database.sql("select count(*) as n from t x "
                              "where x.data->>'v'::int = 10000")
        assert result.scalar() == 1


class TestVectorizedGroupBy:
    def _run(self, key_type, keys, values, funcs):
        source = BatchSource([batch_of(k=(key_type, keys),
                                       v=(ColumnType.INT64, values))])
        aggregates = [AggregateSpec(func, None if func == "count_star"
                                    else __import__("repro.engine.expressions",
                                                    fromlist=["ColumnRef"])
                                    .ColumnRef("v", ColumnType.INT64),
                                    f"out{i}")
                      for i, func in enumerate(funcs)]
        op = HashAggregateOp(
            source,
            [("k", __import__("repro.engine.expressions",
                              fromlist=["ColumnRef"])
              .ColumnRef("k", key_type))],
            aggregates)
        return op.materialize()

    def test_int_key_all_aggregates(self):
        result = self._run(ColumnType.INT64,
                           [1, 2, 1, 2, 1, None],
                           [10, 20, 30, None, 50, 60],
                           ["sum", "count", "count_star", "avg", "min",
                            "max"])
        rows = {result.column("k").value(i): i for i in range(result.length)}
        one = rows[1]
        assert result.column("out0").value(one) == 90
        assert result.column("out1").value(one) == 3
        assert result.column("out2").value(one) == 3
        assert result.column("out3").value(one) == 30.0
        assert result.column("out4").value(one) == 10
        assert result.column("out5").value(one) == 50
        # NULL key forms its own group
        assert None in rows
        assert result.column("out0").value(rows[None]) == 60

    def test_string_key(self):
        result = self._run(ColumnType.STRING,
                           ["a", "b", "a"], [1, 2, 3], ["sum"])
        rows = {result.column("k").value(i): i for i in range(result.length)}
        assert result.column("out0").value(rows["a"]) == 4

    def test_matches_generic_path(self):
        # count_distinct forces the generic path; compare both
        keys = [i % 7 for i in range(500)] + [None] * 5
        values = [i % 13 for i in range(505)]
        fast = self._run(ColumnType.INT64, keys, values, ["sum", "max"])
        slow = self._run(ColumnType.INT64, keys, values,
                         ["sum", "max", "count_distinct"])
        fast_map = {fast.column("k").value(i):
                    (fast.column("out0").value(i), fast.column("out1").value(i))
                    for i in range(fast.length)}
        slow_map = {slow.column("k").value(i):
                    (slow.column("out0").value(i), slow.column("out1").value(i))
                    for i in range(slow.length)}
        assert fast_map == slow_map


class TestTopK:
    def test_topk_matches_sort_limit(self):
        import random
        rng = random.Random(3)
        values = [rng.randrange(1000) for _ in range(500)]
        source = BatchSource([batch_of(v=(ColumnType.INT64, values))])
        top = TopKOp(source, [SortKey("v", descending=True)], 10)
        result = top.materialize()
        assert result.column("v").to_list() == sorted(values,
                                                      reverse=True)[:10]

    def test_topk_with_nulls_last(self):
        source = BatchSource([batch_of(
            v=(ColumnType.INT64, [3, None, 1, None, 2]))])
        result = TopKOp(source, [SortKey("v")], 4).materialize()
        assert result.column("v").to_list() == [1, 2, 3, None]

    def test_sql_order_limit_uses_topk(self):
        db = Database(config=CONFIG)
        db.load_table("t", [{"v": (i * 37) % 100} for i in range(200)])
        result = db.sql("select x.data->>'v'::int as v from t x "
                        "order by v desc limit 5")
        assert result.column("v") == [99, 99, 98, 98, 97]
