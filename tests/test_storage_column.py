"""Tests for typed column vectors and the LZ4 codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import ColumnType
from repro.errors import StorageError
from repro.storage.column import ColumnBuilder, ColumnVector
from repro.storage.compression import compress, compression_ratio, decompress


class TestColumnBuilder:
    def test_int_column(self):
        vector = ColumnVector.from_values(ColumnType.INT64, [1, None, 3])
        assert vector.to_list() == [1, None, 3]
        assert vector.data.dtype == np.int64
        assert vector.non_null_count() == 2

    def test_float_column(self):
        vector = ColumnVector.from_values(ColumnType.FLOAT64, [1.5, None])
        assert vector.to_list() == [1.5, None]

    def test_string_column(self):
        vector = ColumnVector.from_values(ColumnType.STRING, ["a", None, "c"])
        assert vector.to_list() == ["a", None, "c"]

    def test_bool_column(self):
        vector = ColumnVector.from_values(ColumnType.BOOL, [True, False, None])
        assert vector.to_list() == [True, False, None]

    def test_timestamp_column(self):
        vector = ColumnVector.from_values(ColumnType.TIMESTAMP, [10**15, None])
        assert vector.to_list() == [10**15, None]

    def test_decimal_coerces_to_float(self):
        vector = ColumnVector.from_values(ColumnType.DECIMAL, ["19.99", 3])
        assert vector.to_list() == [19.99, 3.0]

    def test_empty_column(self):
        vector = ColumnBuilder(ColumnType.INT64).finish()
        assert len(vector) == 0
        assert vector.to_list() == []

    def test_all_null(self):
        vector = ColumnVector.all_null(ColumnType.STRING, 4)
        assert vector.to_list() == [None] * 4


class TestColumnVectorOps:
    def test_take(self):
        vector = ColumnVector.from_values(ColumnType.INT64, [10, 20, None, 40])
        taken = vector.take(np.array([3, 0]))
        assert taken.to_list() == [40, 10]

    def test_filter(self):
        vector = ColumnVector.from_values(ColumnType.INT64, [10, 20, None, 40])
        kept = vector.filter(np.array([True, False, True, False]))
        assert kept.to_list() == [10, None]

    def test_null_mask_length_checked(self):
        with pytest.raises(StorageError):
            ColumnVector(ColumnType.INT64, np.zeros(3, dtype=np.int64),
                         np.zeros(2, dtype=bool))

    def test_nbytes_counts_strings(self):
        small = ColumnVector.from_values(ColumnType.STRING, ["a"])
        big = ColumnVector.from_values(ColumnType.STRING, ["a" * 1000])
        assert big.nbytes() > small.nbytes()

    def test_raw_bytes_nonempty(self):
        vector = ColumnVector.from_values(ColumnType.INT64, list(range(100)))
        assert len(vector.raw_bytes()) >= 800


class TestLz4:
    def test_empty(self):
        assert decompress(compress(b"")) == b""

    def test_short_incompressible(self):
        data = b"abcdefghijklm"
        assert decompress(compress(data)) == data

    def test_repetitive_compresses(self):
        data = b"abcd" * 1000
        block = compress(data)
        assert len(block) < len(data) / 10
        assert decompress(block) == data

    def test_overlapping_match_rle(self):
        data = b"a" * 500
        assert decompress(compress(data)) == data

    def test_long_literals(self):
        import random
        rng = random.Random(7)
        data = bytes(rng.randrange(256) for _ in range(5000))
        assert decompress(compress(data)) == data

    def test_columnar_data_ratio(self):
        # int64 columns with small values compress well (Table 6's 2-3x)
        column = ColumnVector.from_values(ColumnType.INT64,
                                          [i % 50 for i in range(5000)])
        assert compression_ratio(column.raw_bytes()) > 2.0

    def test_corrupt_block_raises(self):
        block = compress(b"hello world, hello world, hello world")
        with pytest.raises(StorageError):
            decompress(block[:3])

    def test_bad_offset_raises(self):
        # token: 0 literals + match, offset 0 is invalid
        with pytest.raises(StorageError):
            decompress(bytes([0x01, 0x00, 0x00]))

    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=4000))
    def test_property_roundtrip(self, data):
        assert decompress(compress(data)) == data

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.sampled_from([b"alpha", b"beta", b"gamma", b"\x00" * 8]),
                    max_size=200))
    def test_property_roundtrip_repetitive(self, chunks):
        data = b"".join(chunks)
        assert decompress(compress(data)) == data
