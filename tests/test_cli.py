"""Tests for the ``python -m repro`` command-line interface."""

import io
import json

import pytest

from repro.cli import main


@pytest.fixture()
def ndjson_file(tmp_path):
    path = tmp_path / "events.ndjson"
    docs = [{"id": i, "kind": "a" if i % 2 else "b", "v": float(i)}
            for i in range(40)]
    path.write_text("\n".join(json.dumps(d) for d in docs))
    return str(path)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    def test_load_and_query(self, ndjson_file):
        code, text = run_cli(
            "--load", f"events={ndjson_file}",
            "--tile-size", "16",
            "--sql", "select count(*) as n from events e",
        )
        assert code == 0
        assert "loaded 40 documents" in text
        assert "40" in text

    def test_group_by_query(self, ndjson_file):
        code, text = run_cli(
            "--load", f"events={ndjson_file}", "--tile-size", "16",
            "--sql", "select e.data->>'kind' as k, count(*) as n "
                     "from events e group by e.data->>'kind' order by k",
        )
        assert code == 0
        assert "a" in text and "b" in text and "20" in text

    def test_multiple_queries(self, ndjson_file):
        code, text = run_cli(
            "--load", f"events={ndjson_file}", "--tile-size", "16",
            "--sql", "select count(*) as n from events e",
            "--sql", "select max(e.data->>'v'::float) as m from events e",
        )
        assert code == 0
        assert "39" in text

    def test_explain_flag(self, ndjson_file):
        code, text = run_cli(
            "--load", f"events={ndjson_file}", "--tile-size", "16",
            "--explain",
            "--sql", "select e.data->>'id'::int as id from events e "
                     "where e.data->>'kind' = 'a' order by id limit 1",
        )
        assert code == 0
        assert "join order" in text

    def test_describe(self, ndjson_file):
        code, text = run_cli(
            "--load", f"events={ndjson_file}", "--tile-size", "16",
            "--describe", "events",
        )
        assert code == 0
        assert "tile #0" in text
        assert "id :: INT64" in text

    def test_format_choice(self, ndjson_file):
        code, text = run_cli(
            "--load", f"events={ndjson_file}", "--format", "jsonb",
            "--sql", "select count(*) as n from events e",
        )
        assert code == 0

    def test_sql_error_reported(self, ndjson_file):
        code, text = run_cli(
            "--load", f"events={ndjson_file}",
            "--sql", "select nope from nowhere",
        )
        assert code == 1
        assert "error:" in text

    def test_missing_file(self):
        code, text = run_cli("--load", "x=/does/not/exist.ndjson")
        assert code == 1
        assert "error:" in text

    def test_bad_load_spec(self, ndjson_file):
        with pytest.raises(SystemExit):
            run_cli("--load", "justaname")

    def test_describe_unknown_table(self, ndjson_file):
        code, text = run_cli(
            "--load", f"events={ndjson_file}", "--describe", "ghost")
        assert code == 1

    def test_options_flags(self, ndjson_file):
        code, _text = run_cli(
            "--load", f"events={ndjson_file}", "--no-skipping",
            "--no-statistics",
            "--sql", "select count(*) as n from events e "
                     "where e.data->>'v'::float > 5",
        )
        assert code == 0


class TestCliPersistence:
    def test_save_and_open(self, ndjson_file, tmp_path):
        store = str(tmp_path / "store")
        code, text = run_cli(
            "--load", f"events={ndjson_file}", "--tile-size", "16",
            "--save", store,
        )
        assert code == 0 and "saved 'events'" in text
        code, text = run_cli(
            "--open", store,
            "--sql", "select count(*) as n from events e",
        )
        assert code == 0
        assert "opened 'events': 40 documents" in text
        assert "40" in text


class TestCliServe:
    def test_serve_parser_requires_data_dir(self):
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_serve_subprocess_end_to_end(self, tmp_path):
        """`python -m repro serve` binds, answers a client, and a
        graceful SIGTERM checkpoints the data directory."""
        import os
        import re
        import signal
        import subprocess
        import sys

        from repro.server import ServerClient

        from pathlib import Path

        data_dir = tmp_path / "data"
        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--data-dir", str(data_dir), "--port", "0",
             "--tile-size", "16"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            banner = process.stdout.readline()
            match = re.search(r"listening on [\d.]+:(\d+)", banner)
            assert match, f"unexpected banner: {banner!r}"
            port = int(match.group(1))
            with ServerClient(port=port) as client:
                assert client.ping() == "pong"
                client.create_table("t", "tiles", {"tile_size": 16})
                client.insert_many("t", [{"id": i} for i in range(20)])
                assert client.query(
                    "select count(*) as n from t x").scalar() == 20
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
        assert (data_dir / "t.jtile").exists()  # graceful checkpoint
