"""Morsel-driven parallel execution: results must be bit-identical to
the serial engine on every workload — the merge stage replays the
serial float-operation sequence in morsel order."""

import random
import struct

import pytest

from repro import Database, ExtractionConfig, StorageFormat
from repro.engine.morsels import pool_stats, run_ordered
from repro.engine.plan import QueryOptions
from repro.workloads import hackernews, yelp

CONFIG = ExtractionConfig(tile_size=128, partition_size=4)


def bits(value):
    """A bit-exact comparison key (floats by their IEEE bytes)."""
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    return (type(value).__name__, value)


def assert_bit_identical(serial, parallel, context=""):
    assert serial.columns == parallel.columns, context
    assert len(serial.rows) == len(parallel.rows), context
    for row_s, row_p in zip(serial.rows, parallel.rows):
        assert [bits(v) for v in row_s] == [bits(v) for v in row_p], \
            f"{context}: {row_s!r} != {row_p!r}"


def run_both(db, sql, batch_rows=64, **kwargs):
    serial = db.sql(sql, QueryOptions(parallelism=1, batch_rows=batch_rows,
                                      **kwargs))
    parallel = db.sql(sql, QueryOptions(parallelism=8, batch_rows=batch_rows,
                                        **kwargs))
    assert_bit_identical(serial, parallel, sql)
    return serial


class TestRunOrdered:
    def test_results_in_submission_order(self):
        import time

        def slow(value):
            time.sleep(0.02 if value % 3 == 0 else 0.0)
            return value * value

        tasks = [lambda v=v: slow(v) for v in range(40)]
        assert list(run_ordered(tasks, workers=6)) == \
            [v * v for v in range(40)]

    def test_serial_fallback(self):
        assert list(run_ordered([lambda: 1, lambda: 2], workers=1)) == [1, 2]

    def test_pool_stats_shape(self):
        list(run_ordered([lambda: None] * 8, workers=4))
        stats = pool_stats()
        assert stats["tasks_completed"] >= 8
        assert stats["workers"] >= 4


class TestYelpDeterminism:
    @pytest.fixture(scope="class")
    def db(self):
        return yelp.make_database(80, StorageFormat.TILES, CONFIG)

    def test_all_yelp_queries_bit_identical(self, db):
        for number, sql in yelp.YELP_QUERIES.items():
            run_both(db, sql)

    def test_uneven_morsel_boundaries(self, db):
        # batch sizes that do not divide the tile size exercise partial
        # trailing morsels
        for batch_rows in (17, 37, 128, 4096):
            run_both(db, yelp.YELP_QUERIES[1], batch_rows=batch_rows)

    def test_counters_match_serial(self, db):
        sql = yelp.YELP_QUERIES[2]
        serial = db.sql(sql, QueryOptions(parallelism=1, batch_rows=64))
        parallel = db.sql(sql, QueryOptions(parallelism=8, batch_rows=64))
        assert serial.counters.as_dict() == parallel.counters.as_dict()


class TestCombinedLogDeterminism:
    @pytest.fixture(scope="class")
    def db(self):
        return hackernews.make_database(600, StorageFormat.TILES, CONFIG)

    def test_all_hackernews_queries_bit_identical(self, db):
        for name, sql in hackernews.HACKERNEWS_QUERIES.items():
            run_both(db, sql)

    def test_scalar_aggregates(self, db):
        run_both(db, "select count(*) as n, sum(i.data->>'score'::int) as s, "
                     "min(i.data->>'score'::int) as lo, "
                     "max(i.data->>'score'::int) as hi, "
                     "avg(i.data->>'score'::float) as a from items i")

    def test_count_distinct(self, db):
        run_both(db, "select count(distinct i.data->>'type') as n "
                     "from items i")

    def test_group_by_count_distinct_generic_path(self, db):
        run_both(db, "select i.data->>'type' as t, "
                     "count(distinct i.data->>'by') as users "
                     "from items i group by i.data->>'type'")

    def test_filtered_aggregate(self, db):
        run_both(db, "select count(*) as n, avg(i.data->>'score'::float) as a "
                     "from items i where i.data->>'score'::int > 40")

    def test_top_k(self, db):
        run_both(db, "select i.data->>'id'::int as id, "
                     "i.data->>'score'::int as score from items i "
                     "order by i.data->>'score'::int desc limit 25")


class TestShuffledWithReordering:
    @pytest.fixture(scope="class")
    def db(self):
        documents = yelp.YelpGenerator(60, seed=11).combined()
        random.Random(4).shuffle(documents)
        config = ExtractionConfig(tile_size=128, partition_size=4,
                                  enable_reordering=True)
        db = Database(StorageFormat.TILES, config)
        db.load_table("yelp", documents, StorageFormat.TILES, config)
        return db

    def test_shuffled_queries_bit_identical(self, db):
        for number, sql in yelp.YELP_QUERIES.items():
            run_both(db, sql)


class TestOtherFormatsAndModes:
    def test_json_text_format_parallel(self):
        db = hackernews.make_database(300, StorageFormat.JSON, CONFIG)
        run_both(db, "select i.data->>'type' as t, count(*) as n "
                     "from items i group by i.data->>'type'")

    def test_jsonb_format_parallel(self):
        db = hackernews.make_database(300, StorageFormat.JSONB, CONFIG)
        run_both(db, hackernews.HACKERNEWS_QUERIES[1])

    def test_parallel_with_cache_bit_identical(self):
        db = yelp.make_database(50, StorageFormat.TILES, CONFIG)
        sql = yelp.YELP_QUERIES[2]
        serial = db.sql(sql, QueryOptions(parallelism=1, tile_cache=False))
        for _ in range(2):  # second round is served from the cache
            cached = db.sql(sql, QueryOptions(parallelism=8,
                                              tile_cache=True))
            assert_bit_identical(serial, cached, sql)

    def test_explain_analyze_reports_counters(self):
        db = yelp.make_database(40, StorageFormat.TILES, CONFIG)
        text = db.explain(yelp.YELP_QUERIES[2],
                          QueryOptions(parallelism=4), analyze=True)
        assert "rows_scanned=" in text
        assert "parallelism=4" in text
        assert "pool: workers=" in text
