"""Tests for the out-of-core tile residency layer (repro.storage.tilestore).

Covers the TileHandle pin/unpin protocol, LRU eviction under a byte
budget, the never-evict rules (pinned, dirty), checkpoint rebinding,
weakref byte accounting, and the budget shared with the resolved-column
cache.
"""

import gc

import pytest

from repro import Database, ExtractionConfig, StorageFormat
from repro.errors import StorageError
from repro.storage.persist import load_relation, save_relation
from repro.storage.tile_cache import GLOBAL_TILE_CACHE, ResolvedTileCache
from repro.storage.tilestore import (
    GLOBAL_TILE_STORE,
    TileHandle,
    TileStore,
    _default_budget,
)

CONFIG = ExtractionConfig(tile_size=32, partition_size=2)


def tweets(n):
    return [{"id": i, "text": f"tweet number {i} " * 4,
             "user": {"id": i % 17}, "score": float(i) / 3}
            for i in range(n)]


def make_paged_relation(tmp_path, n=128, budget=None, name="t"):
    """Build, checkpoint and reload a relation whose tiles page in and
    out of a private store."""
    db = Database(StorageFormat.TILES, CONFIG)
    relation = db.load_table(name, tweets(n))
    path = tmp_path / f"{name}.jtile"
    save_relation(relation, path)
    store = TileStore(budget, cache=ResolvedTileCache())
    return load_relation(path, store=store), store


@pytest.fixture
def global_store():
    """Hand out the process-wide store; undo any budget the test set."""
    GLOBAL_TILE_CACHE.clear()
    try:
        yield GLOBAL_TILE_STORE
    finally:
        GLOBAL_TILE_STORE.set_budget(None)
        GLOBAL_TILE_STORE.reset_stats()


class TestTileHandle:
    def test_bulk_loaded_handles_are_dirty_and_resident(self):
        db = Database(StorageFormat.TILES, CONFIG)
        relation = db.load_table("t", tweets(96))
        assert all(isinstance(h, TileHandle) for h in relation.tiles)
        assert all(h.dirty and h.resident for h in relation.tiles)
        assert all(h.disk_bytes == 0 for h in relation.tiles)

    def test_reloaded_relation_pages_lazily(self, tmp_path):
        relation, store = make_paged_relation(tmp_path)
        assert len(relation.tiles) == 4
        assert not any(h.resident for h in relation.tiles)
        assert store.resident_bytes == 0
        # headers are resident without any load
        assert relation.row_count == 128
        assert relation.tiles[0].header.columns
        assert store.loads == 0

    def test_pin_materializes_and_protects(self, tmp_path):
        relation, store = make_paged_relation(tmp_path)
        handle = relation.tiles[0]
        with handle.pinned() as tile:
            assert handle.resident
            assert handle.pin_count == 1
            assert tile.row_count == handle.row_count
        assert handle.pin_count == 0
        assert handle.resident  # unlimited budget: stays resident
        assert store.loads == 1
        assert store.resident_bytes == handle.nbytes > 0

    def test_compat_proxies_load_on_demand(self, tmp_path):
        relation, store = make_paged_relation(tmp_path)
        handle = relation.tiles[0]
        assert handle.peek() is None
        columns = handle.columns
        assert columns  # the Tile surface works through the handle
        assert handle.peek() is not None
        assert handle.size_bytes() > 0

    def test_pin_after_discard_raises(self, tmp_path):
        relation, store = make_paged_relation(tmp_path)
        handle = relation.tiles[0]
        store.discard(handle)
        with pytest.raises(StorageError):
            handle.pin()


class TestEviction:
    def test_lru_keeps_resident_bytes_under_budget(self, tmp_path):
        probe, _ = make_paged_relation(tmp_path, name="probe")
        tile_bytes = max(h.disk_bytes for h in probe.tiles)
        budget = int(tile_bytes * 2.5)
        relation, store = make_paged_relation(tmp_path, budget=budget)
        for handle in relation.tiles:
            with handle.pinned():
                pass
            assert store.resident_bytes <= budget
        stats = store.stats()
        assert stats["evictions"] > 0
        assert stats["peak_resident_bytes"] <= budget
        assert sum(1 for h in relation.tiles if h.resident) < \
            len(relation.tiles)

    def test_lru_order_evicts_coldest_first(self, tmp_path):
        relation, store = make_paged_relation(tmp_path)
        for handle in relation.tiles:
            with handle.pinned():
                pass
        # re-touch tile 0 so tile 1 is the LRU victim
        with relation.tiles[0].pinned():
            pass
        store.set_budget(store.resident_bytes - 1)
        assert not relation.tiles[1].resident
        assert relation.tiles[0].resident

    def test_evicted_tile_reloads_bit_identical(self, tmp_path):
        relation, store = make_paged_relation(tmp_path)
        before = list(relation.documents())
        uids = [h.uid for h in relation.tiles]
        store.set_budget(1)  # evict everything evictable
        assert store.resident_bytes == 0
        store.set_budget(None)
        assert list(relation.documents()) == before
        # handle identity is stable across the evict/reload cycle
        assert [h.uid for h in relation.tiles] == uids

    def test_pinned_tiles_never_evicted(self, tmp_path):
        relation, store = make_paged_relation(tmp_path)
        victim = relation.tiles[0]
        tile = victim.pin()
        store.set_budget(1)
        assert victim.resident
        assert victim.peek() is tile
        assert store.resident_bytes == victim.nbytes  # only the pin survives
        victim.unpin()
        assert not victim.resident  # released pin unblocked the eviction
        store.set_budget(None)

    def test_dirty_tiles_never_evicted(self):
        db = Database(StorageFormat.TILES, CONFIG)
        relation = db.load_table("t", tweets(96))
        store = TileStore(cache=ResolvedTileCache())
        handles = [TileHandle.wrap(h.peek(), store, "t")
                   for h in relation.tiles]
        store.set_budget(1)
        assert all(h.resident for h in handles)
        assert store.stats()["evictions"] == 0
        assert store.resident_bytes > 1  # over budget rather than corrupt

    def test_mark_dirty_blocks_eviction(self, tmp_path):
        relation, store = make_paged_relation(tmp_path)
        handle = relation.tiles[0]
        with handle.pinned():
            handle.mark_dirty()
        store.set_budget(1)
        assert handle.resident
        assert handle.disk_bytes == 0  # the segment is stale now

    def test_rebind_after_save_makes_handles_evictable(
            self, tmp_path, global_store):
        db = Database(StorageFormat.TILES, CONFIG)
        relation = db.load_table("t", tweets(96))
        assert all(h.dirty for h in relation.tiles)
        save_relation(relation, tmp_path / "t.jtile")
        assert not any(h.dirty for h in relation.tiles)
        assert all(h.disk_bytes > 0 for h in relation.tiles)
        before = list(relation.documents())
        global_store.set_budget(1)
        assert not any(h.resident for h in relation.tiles)
        global_store.set_budget(None)
        assert list(relation.documents()) == before

    def test_update_marks_dirty_until_next_checkpoint(
            self, tmp_path, global_store):
        db = Database(StorageFormat.TILES, CONFIG)
        relation = db.load_table("t", tweets(96))
        path = tmp_path / "t.jtile"
        save_relation(relation, path)
        relation.update(0, {"patched": True})
        touched = relation.tile_of_row(0)
        assert touched.dirty
        global_store.set_budget(1)
        assert touched.resident  # the only copy of the update
        global_store.set_budget(None)
        save_relation(relation, path)
        assert not touched.dirty
        assert load_relation(path).document(0)["patched"] is True


class TestAccounting:
    def test_weakrefs_release_dropped_relations(self, tmp_path):
        relation, store = make_paged_relation(tmp_path)
        for handle in relation.tiles:
            with handle.pinned():
                pass
        assert store.resident_bytes > 0
        del relation, handle
        gc.collect()
        assert store.resident_bytes == 0
        assert store.stats()["resident_tiles"] == 0

    def test_discard_table_releases_everything(self, tmp_path):
        relation, store = make_paged_relation(tmp_path)
        for handle in relation.tiles:
            with handle.pinned():
                pass
        dropped = store.discard_table(relation.name)
        assert dropped == len(relation.tiles)
        assert store.resident_bytes == 0

    def test_load_and_eviction_counters(self, tmp_path):
        probe, _ = make_paged_relation(tmp_path, name="probe")
        budget = int(max(h.disk_bytes for h in probe.tiles) * 1.5)
        relation, store = make_paged_relation(tmp_path, budget=budget)
        for handle in relation.tiles:
            with handle.pinned():
                pass
        stats = store.stats()
        assert stats["loads"] == len(relation.tiles)
        assert stats["load_bytes"] > 0
        assert stats["evictions_by_table"].get("t", 0) > 0
        store.reset_stats()
        assert store.stats()["loads"] == 0
        assert store.stats()["peak_resident_bytes"] == store.resident_bytes

    def test_eviction_fires_relation_event(self, tmp_path):
        relation, store = make_paged_relation(tmp_path)
        events = []
        relation.add_event_hook(
            lambda event, rel, payload: events.append((event, payload)))
        for handle in relation.tiles:
            with handle.pinned():
                pass
        store.set_budget(1)
        evicted = [payload for event, payload in events if event == "evict"]
        assert len(evicted) == len(relation.tiles)
        assert all(payload.pin_count == 0 for payload in evicted)


class TestSharedBudget:
    def test_cache_capped_at_its_share(self, tmp_path):
        relation, store = make_paged_relation(tmp_path, budget=1_000_000)
        cache = store.cache
        # fill the cache past a quarter of the budget
        tile = relation.tiles[0]
        with tile.pinned() as payload:
            path = next(iter(payload.columns))
            vector = payload.column(path)
        import repro.storage.tile_cache as tc
        size = tc._vector_bytes(vector)
        for i in range(1_000_000 // (4 * max(size, 1)) + 2):
            cache.store(tc.make_key("t", i, path, None, False), vector)
        store.enforce()
        assert cache.used_bytes <= store.budget_bytes // TileStore.CACHE_SHARE

    def test_cache_overseer_evicts_tiles_for_cache_growth(self, tmp_path):
        relation, store = make_paged_relation(tmp_path, budget=None)
        cache = store.cache
        cache.attach_overseer(store.enforce)
        for handle in relation.tiles:
            with handle.pinned():
                pass
        store.budget_bytes = store.resident_bytes + 64
        tile = relation.tiles[0]
        with tile.pinned() as payload:
            path = next(iter(payload.columns))
            vector = payload.column(path)
        import repro.storage.tile_cache as tc
        cache.store(tc.make_key("t", 1, path, None, False), vector)
        # the insert pushed the pool over budget; the overseer paged
        # tiles out to make room
        assert store.resident_bytes + cache.used_bytes <= store.budget_bytes


class TestBudgetConfiguration:
    def test_set_budget_mb(self):
        store = TileStore(cache=ResolvedTileCache())
        store.set_budget_mb(2.5)
        assert store.budget_bytes == int(2.5 * 2**20)
        store.set_budget_mb(0)
        assert store.budget_bytes is None
        store.set_budget_mb(None)
        assert store.budget_bytes is None

    def test_env_budget_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_MB", "16")
        assert _default_budget() == 16 * 2**20
        monkeypatch.setenv("REPRO_MEMORY_MB", "0")
        assert _default_budget() is None
        monkeypatch.setenv("REPRO_MEMORY_MB", "junk")
        assert _default_budget() is None
        monkeypatch.delenv("REPRO_MEMORY_MB")
        assert _default_budget() is None


class TestQueriesOverPagedTiles:
    QUERY = ("select count(*) as n, sum(t.data->>'score'::float) as s "
             "from t t where t.data->'user'->>'id'::int >= 3")

    def test_results_match_fully_resident(self, tmp_path):
        db = Database(StorageFormat.TILES, CONFIG)
        resident = db.load_table("t", tweets(128))
        expected = db.sql(self.QUERY).rows

        probe, _ = make_paged_relation(tmp_path, name="probe")
        budget = int(max(h.disk_bytes for h in probe.tiles) * 2)
        relation, store = make_paged_relation(tmp_path, budget=budget)
        paged_db = Database(StorageFormat.TILES, CONFIG)
        paged_db.register("t", relation)
        result = paged_db.sql(self.QUERY)
        assert result.rows == expected
        assert store.stats()["peak_resident_bytes"] <= budget
        assert result.counters.tile_loads == len(relation.tiles)
        assert result.counters.tile_evictions > 0

    def test_counters_absent_when_resident(self):
        db = Database(StorageFormat.TILES, CONFIG)
        db.load_table("t", tweets(64))
        result = db.sql(self.QUERY)
        assert result.counters.tile_loads == 0
        assert result.counters.tile_evictions == 0
