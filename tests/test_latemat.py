"""Differential suite for late materialization (DESIGN.md §9).

The selection-vector scan must be invisible in results: every query of
the twitter / yelp / TPC-H workloads returns bit-identical rows with
``enable_late_materialization`` on vs off, serial and parallel, with
LSM compaction forced on vs left off.  The counters prove the path
actually engaged (``fallback_rows_skipped`` > 0 on selective queries
that project fallback paths) or declined honestly
(``latemat_declines`` with type-conflicted columns).  Block-granular
zone maps (``blocks_pruned``) are exercised on LSM-merged tiles, the
shape where a single tile spans many canonical-chop blocks.
"""

import struct

import pytest

from repro import (
    Database,
    ExtractionConfig,
    LsmConfig,
    QueryOptions,
    StorageFormat,
)
from repro.engine.scan import RangePrune
from repro.lsm import plan_compactions
from repro.storage.persist import open_database, save_database
from repro.workloads import twitter, yelp
from repro.workloads.tpch import TPCH_QUERIES
from repro.workloads.tpch import make_database as make_tpch

CONFIG = ExtractionConfig(tile_size=128, partition_size=4)


def bits(value):
    """A bit-exact comparison key (floats by their IEEE bytes)."""
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    return (type(value).__name__, value)


def assert_bit_identical(reference, candidate, context=""):
    assert reference.columns == candidate.columns, context
    assert len(reference.rows) == len(candidate.rows), context
    for row_r, row_c in zip(reference.rows, candidate.rows):
        assert [bits(v) for v in row_r] == [bits(v) for v in row_c], \
            f"{context}: {row_r!r} != {row_c!r}"


def run_on_off(db, sql, batch_rows=64, parallelism=1, **kwargs):
    """Execute with late materialization on and off; rows must match
    bit for bit.  Returns ``(on, off)`` for counter assertions."""
    on = db.sql(sql, QueryOptions(enable_late_materialization=True,
                                  batch_rows=batch_rows,
                                  parallelism=parallelism, **kwargs))
    off = db.sql(sql, QueryOptions(enable_late_materialization=False,
                                   batch_rows=batch_rows,
                                   parallelism=parallelism, **kwargs))
    assert_bit_identical(off, on, sql)
    return on, off


def force_compact(relation, config=None):
    """Compact until the planner runs dry; returns the merge count."""
    config = config or LsmConfig(enabled=True, fanout=4, max_level=2)
    merges = 0
    while True:
        candidates = plan_compactions(relation, config)
        progress = False
        for candidate in candidates:
            if relation.compact_tiles(candidate.start_number,
                                      candidate.count):
                progress = True
                merges += 1
        if not progress:
            return merges


# ----------------------------------------------------------------------
# workload differentials: latemat on vs off x parallelism x LSM


class TestYelpLatemat:
    @pytest.fixture(scope="class")
    def db(self):
        return yelp.make_database(160, StorageFormat.TILES, CONFIG)

    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_all_queries_bit_identical(self, db, parallelism):
        for _number, sql in yelp.YELP_QUERIES.items():
            run_on_off(db, sql, parallelism=parallelism)

    def test_compacted_bit_identical(self):
        db = yelp.make_database(160, StorageFormat.TILES,
                                ExtractionConfig(tile_size=32,
                                                 partition_size=4))
        assert force_compact(db.tables["yelp"]) > 0
        for parallelism in (1, 4):
            for _number, sql in yelp.YELP_QUERIES.items():
                run_on_off(db, sql, parallelism=parallelism)


class TestTwitterLatemat:
    @pytest.fixture(scope="class")
    def db(self):
        return twitter.make_database(400, StorageFormat.TILES, CONFIG)

    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_all_queries_bit_identical(self, db, parallelism):
        for _number, sql in twitter.TWITTER_QUERIES.items():
            run_on_off(db, sql, parallelism=parallelism)

    def test_compacted_bit_identical(self):
        db = twitter.make_database(400, StorageFormat.TILES,
                                   ExtractionConfig(tile_size=64,
                                                    partition_size=4))
        assert force_compact(db.tables["tweets"]) > 0
        for parallelism in (1, 4):
            for _number, sql in twitter.TWITTER_QUERIES.items():
                run_on_off(db, sql, parallelism=parallelism)


class TestTpchLatemat:
    @pytest.fixture(scope="class")
    def db(self):
        return make_tpch(0.002, StorageFormat.TILES,
                         ExtractionConfig(tile_size=256, partition_size=4),
                         combined=True)

    @pytest.mark.parametrize("query", sorted(TPCH_QUERIES))
    def test_query_bit_identical(self, db, query):
        run_on_off(db, TPCH_QUERIES[query])
        run_on_off(db, TPCH_QUERIES[query], parallelism=4)


# ----------------------------------------------------------------------
# counters: the path engages, skips work, and declines honestly


def _selective_db(num_rows=512, tile_size=128):
    """Every row has an extracted int ``k`` plus four paths that stay
    below the 60 % threshold in rotation, forcing fallback decodes."""
    rows = []
    for i in range(num_rows):
        doc = {"k": i, "v": float(i) / 4}
        # each fb column is present in 25 % of rows: never extracted
        doc[f"fb{i % 4}"] = f"payload-{i}"
        rows.append(doc)
    db = Database(StorageFormat.TILES,
                  ExtractionConfig(tile_size=tile_size, partition_size=4))
    db.load_table("t", rows)
    return db


SELECTIVE_SQL = (
    "select t.data->>'k'::int as k, t.data->>'fb0' as a, "
    "t.data->>'fb1' as b, t.data->>'fb2' as c, t.data->>'fb3' as d "
    "from t t where t.data->>'k'::int < 16 order by k")


class TestCounters:
    def test_fallback_rows_skipped_on_selective_query(self):
        db = _selective_db()
        on, off = run_on_off(db, SELECTIVE_SQL, batch_rows=4096)
        assert len(on.rows) == 16
        # 512 rows x 4 fallback paths; only 16 rows survive the early
        # conjunct, and whole tiles past k=127 are zone-map skipped
        assert on.counters.fallback_rows_skipped > 0
        assert on.counters.fallback_lookups < off.counters.fallback_lookups
        assert off.counters.fallback_rows_skipped == 0
        assert on.counters.latemat_declines == 0

    def test_unselective_predicate_skips_nothing(self):
        db = _selective_db()
        on, _off = run_on_off(
            db, "select t.data->>'k'::int as k, t.data->>'fb0' as a "
                "from t t where t.data->>'k'::int >= 0 order by k",
            batch_rows=4096)
        assert len(on.rows) == 512
        assert on.counters.fallback_rows_skipped == 0

    def test_cache_keeps_keys_selection_independent(self):
        # with the resolved-tile cache on, a miss decodes the full tile
        # (so any later slice hits), hence no decode is skipped — the
        # counter stays honest at 0 — but results are identical and the
        # second run is served from cache
        from repro.storage.tile_cache import GLOBAL_TILE_CACHE

        GLOBAL_TILE_CACHE.clear()
        db = _selective_db()
        first = db.sql(SELECTIVE_SQL, QueryOptions(
            enable_late_materialization=True, tile_cache=True,
            batch_rows=4096))
        assert first.counters.fallback_rows_skipped == 0
        assert first.counters.cache_misses > 0
        second = db.sql(SELECTIVE_SQL, QueryOptions(
            enable_late_materialization=True, tile_cache=True,
            batch_rows=4096))
        assert second.counters.cache_hits > 0
        assert_bit_identical(first, second)
        eager = db.sql(SELECTIVE_SQL, QueryOptions(
            enable_late_materialization=False, batch_rows=4096))
        assert_bit_identical(eager, second)
        GLOBAL_TILE_CACHE.clear()

    def test_conflict_columns_decline(self):
        # `k` is int in most rows but a string in some: a slice that
        # needs Section 3.4 conflict patching declines per tile (other
        # tiles may still run late) — and the results still match the
        # eager path exactly
        rows = []
        for i in range(256):
            doc = {"k": str(i) if i % 10 == 0 else i}
            doc[f"fb{i % 4}"] = i
            rows.append(doc)
        db = Database(StorageFormat.TILES, CONFIG)
        db.load_table("t", rows)
        on, _off = run_on_off(
            db, "select t.data->>'k'::int as k, t.data->>'fb1'::int as b "
                "from t t where t.data->>'k'::int < 20 order by k",
            batch_rows=4096)
        assert on.counters.latemat_declines > 0

    def test_no_early_conjunct_declines(self):
        # the only conjunct references a fallback path: nothing can run
        # early, the tile declines to full materialization
        db = _selective_db(128)
        on, _off = run_on_off(
            db, "select t.data->>'k'::int as k from t t "
                "where t.data->>'fb0' = 'payload-4'", batch_rows=4096)
        assert on.counters.latemat_declines > 0
        assert on.counters.fallback_rows_skipped == 0


# ----------------------------------------------------------------------
# block-granular zone maps


class TestBlockPruning:
    def _merged_db(self):
        """8 L0 tiles of 64 rows compacted into 2 tiles of 256 rows:
        one tile spans 4 canonical-chop blocks, so a selective range
        predicate prunes whole blocks inside a surviving tile."""
        rows = [{"k": i, "fb": f"p{i}" if i % 3 else None}
                for i in range(512)]
        db = Database(StorageFormat.TILES,
                      ExtractionConfig(tile_size=64, partition_size=4,
                                       enable_reordering=False))
        db.load_table("t", rows)
        assert force_compact(db.tables["t"]) > 0
        assert any(tile.row_count > 64
                   for tile in db.tables["t"].manifest().tiles)
        return db

    def test_blocks_pruned_inside_merged_tile(self):
        db = self._merged_db()
        sql = ("select t.data->>'k'::int as k, t.data->>'fb' as f "
               "from t t where t.data->>'k'::int < 20 order by k")
        on, off = run_on_off(db, sql, batch_rows=64)
        assert on.counters.blocks_pruned > 0
        assert off.counters.blocks_pruned > 0  # pruning is latemat-free
        assert len(on.rows) == 20
        # pruned rows never count as scanned
        assert on.counters.rows_scanned < 512

    def test_pruning_off_with_zone_maps_disabled(self):
        db = self._merged_db()
        sql = ("select t.data->>'k'::int as k from t t "
               "where t.data->>'k'::int < 20 order by k")
        result = db.sql(sql, QueryOptions(enable_zone_maps=False,
                                          batch_rows=64))
        assert result.counters.blocks_pruned == 0
        assert len(result.rows) == 20

    def test_update_widens_block_bounds(self):
        db = self._merged_db()
        relation = db.tables["t"]
        # move a huge key into the first block of the first tile: the
        # per-block bounds must widen, so k=9999 is still found
        relation.update(3, {"k": 9999, "fb": "patched"})
        sql = ("select t.data->>'k'::int as k from t t "
               "where t.data->>'k'::int > 5000")
        on, _off = run_on_off(db, sql, batch_rows=64)
        assert [row[0] for row in on.rows] == [9999]

    def test_range_prune_incomparable_bounds_never_prunes(self):
        prune = RangePrune(path=None, op="<", value=10)
        assert prune.excludes(50, 99) is True
        assert prune.excludes("a", "z") is False  # int vs str: keep
        assert RangePrune(None, "=", "x").excludes(1, 2) is False
        assert RangePrune(None, ">", None).excludes(1, 2) is False

    def test_block_bounds_survive_persistence(self, tmp_path):
        db = self._merged_db()
        save_database(db, tmp_path)
        restored = open_database(tmp_path)
        old = db.tables["t"].manifest().tiles
        new = restored.tables["t"].manifest().tiles
        for tile_old, tile_new in zip(old, new):
            assert tile_new.header.block_bounds_rows == \
                tile_old.header.block_bounds_rows
            assert tile_new.header.block_bounds == \
                tile_old.header.block_bounds
        sql = ("select t.data->>'k'::int as k, t.data->>'fb' as f "
               "from t t where t.data->>'k'::int < 20 order by k")
        on, _off = run_on_off(restored, sql, batch_rows=64)
        assert on.counters.blocks_pruned > 0

    def test_pre_block_bounds_files_still_load(self, tmp_path):
        # a header without block bounds (pre-§9 .jtile) must load and
        # simply keep pruning tile-granular
        db = self._merged_db()
        save_database(db, tmp_path)
        import json as jsonlib
        import struct as structlib

        path = tmp_path / "t.jtile"
        raw = bytearray(path.read_bytes())
        length = structlib.unpack("<Q", raw[-13:-5])[0]
        catalog = jsonlib.loads(bytes(raw[-13 - length:-13]))

        def strip(meta):
            for tile_meta in meta.get("tiles", []):
                tile_meta.pop("block_bounds", None)
                tile_meta.pop("block_rows", None)
            for child in meta.get("children", {}).values():
                strip(child)

        strip(catalog)
        body = jsonlib.dumps(catalog,
                             separators=(",", ":")).encode("utf-8")
        stripped = bytes(raw[:-13 - length]) + body + \
            structlib.pack("<Q", len(body)) + raw[-5:]
        path.write_bytes(stripped)
        restored = open_database(tmp_path)
        for tile in restored.tables["t"].manifest().tiles:
            assert tile.header.block_bounds_rows == 0
            assert tile.header.block_bounds == {}
        sql = ("select t.data->>'k'::int as k from t t "
               "where t.data->>'k'::int < 20 order by k")
        on, _off = run_on_off(restored, sql, batch_rows=64)
        assert on.counters.blocks_pruned == 0
        assert len(on.rows) == 20


# ----------------------------------------------------------------------
# expression satellites


class TestExpressionSatellites:
    def _load(self, rows):
        db = Database(StorageFormat.TILES, CONFIG)
        db.load_table("t", rows)
        return db

    def test_less_than_on_nullable_object_column(self):
        # `->` projections build object columns; rows lacking `a` give
        # NULL slots.  The placeholder fill must be type-appropriate:
        # an empty string against int payloads raised TypeError before
        rows = [{"a": i, "b": i * 2} if i % 3 else {"b": 1}
                for i in range(64)]
        db = self._load(rows)
        result = db.sql("select count(*) as n from t t "
                        "where t.data->'a' < t.data->'b'")
        expected = sum(1 for i in range(64) if i % 3 and i < i * 2)
        assert result.rows[0][0] == expected

    def test_all_null_object_side_uses_other_side_placeholder(self):
        rows = [{"b": i} for i in range(32)]
        db = self._load(rows)
        result = db.sql("select count(*) as n from t t "
                        "where t.data->'a' < t.data->'b'")
        assert result.rows[0][0] == 0

    def test_like_on_nullable_column(self):
        rows = [{"s": f"user-{i}"} if i % 2 else {"x": i}
                for i in range(100)]
        db = self._load(rows)
        result = db.sql("select count(*) as n from t t "
                        "where t.data->>'s' like 'user-1%'")
        expected = sum(1 for i in range(100)
                       if i % 2 and f"user-{i}".startswith("user-1"))
        assert result.rows[0][0] == expected
        negated = db.sql("select count(*) as n from t t "
                         "where t.data->>'s' not like 'user-1%'")
        assert negated.rows[0][0] == 50 - expected

    def test_in_list_on_nullable_column(self):
        rows = [{"s": f"t{i % 7}"} if i % 2 else {"x": i}
                for i in range(100)]
        db = self._load(rows)
        result = db.sql("select count(*) as n from t t "
                        "where t.data->>'s' in ('t1', 't3')")
        expected = sum(1 for i in range(100)
                       if i % 2 and (i % 7) in (1, 3))
        assert result.rows[0][0] == expected
        negated = db.sql("select count(*) as n from t t "
                         "where t.data->>'s' not in ('t1', 't3')")
        assert negated.rows[0][0] == 50 - expected
