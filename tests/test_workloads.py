"""Tests for the Yelp / Twitter / HackerNews / docs workloads."""

import json

import pytest

from repro import ExtractionConfig, StorageFormat
from repro.workloads import docs, hackernews, twitter, yelp

CONFIG = ExtractionConfig(tile_size=128, partition_size=4)


class TestYelpGenerator:
    def test_deterministic(self):
        a = yelp.YelpGenerator(50, seed=3).combined()
        b = yelp.YelpGenerator(50, seed=3).combined()
        assert a == b

    def test_five_document_types(self):
        documents = yelp.YelpGenerator(50).combined()
        kinds = set()
        for doc in documents:
            if "review_id" in doc:
                kinds.add("review")
            elif "yelping_since" in doc:
                kinds.add("user")
            elif "compliment_count" in doc:
                kinds.add("tip")
            elif "stars" in doc:
                kinds.add("business")
            else:
                kinds.add("checkin")
        assert kinds == {"review", "user", "tip", "business", "checkin"}

    def test_nested_attributes(self):
        businesses = yelp.YelpGenerator(50).businesses()
        assert any("Ambience" in b["attributes"] for b in businesses)


class TestYelpQueries:
    @pytest.fixture(scope="class")
    def db(self):
        return yelp.make_database(80, StorageFormat.TILES, CONFIG)

    def test_all_queries_run(self, db):
        for query, text in yelp.YELP_QUERIES.items():
            assert db.sql(text) is not None

    def test_q4_star_histogram(self, db):
        result = db.sql(yelp.YELP_QUERIES[4])
        stars = [row[0] for row in result.rows]
        assert stars == [1, 2, 3, 4, 5]
        assert all(count > 0 for _, count in result.rows)

    def test_formats_agree(self):
        def key(row):
            return tuple((value is None, str(value)) for value in row)

        reference = yelp.make_database(60, StorageFormat.TILES, CONFIG)
        expected = {q: sorted(reference.sql(t).rows, key=key)
                    for q, t in yelp.YELP_QUERIES.items()}
        for fmt in (StorageFormat.JSONB, StorageFormat.SINEW):
            db = yelp.make_database(60, fmt, CONFIG)
            for query, text in yelp.YELP_QUERIES.items():
                assert sorted(db.sql(text).rows, key=key) == \
                    expected[query], (fmt, query)


class TestTwitterGenerator:
    def test_modern_stream_has_all_features(self):
        stream = twitter.TwitterGenerator(300, evolving=False).stream()
        tweets = [d for d in stream if "id" in d]
        assert any("entities" in t for t in tweets)
        assert any("geo" in t for t in tweets)
        assert any("retweeted_status" in t for t in tweets)

    def test_evolving_stream_follows_timeline(self):
        stream = twitter.TwitterGenerator(600, evolving=True).stream()
        tweets = [d for d in stream if "id" in d]
        early = tweets[:15]  # strictly 2006-era
        late = tweets[-50:]
        # 2006-era tweets have no hashtags/geo/retweets
        assert not any("entities" in t for t in early)
        assert not any("geo" in t for t in early)
        assert any("entities" in t for t in late)

    def test_delete_records_interleaved(self):
        stream = twitter.TwitterGenerator(500).stream()
        deletes = [d for d in stream if "delete" in d]
        assert 0 < len(deletes) < len(stream) / 2
        assert all("status" in d["delete"] for d in deletes)

    def test_created_at_parses(self):
        from repro.core.datetimes import parse_datetime_string
        stream = twitter.TwitterGenerator(50).stream()
        tweet = next(d for d in stream if "created_at" in d)
        assert parse_datetime_string(tweet["created_at"]) is not None


class TestTwitterQueries:
    @pytest.fixture(scope="class")
    def tiles_db(self):
        return twitter.make_database(600, StorageFormat.TILES, CONFIG)

    @pytest.fixture(scope="class")
    def star_db(self):
        return twitter.make_database(600, StorageFormat.TILES_STAR, CONFIG)

    def test_all_queries_run(self, tiles_db):
        for text in twitter.TWITTER_QUERIES.values():
            assert tiles_db.sql(text) is not None

    def test_star_children_registered(self, star_db):
        assert "tweets__entities_hashtags" in star_db.tables
        assert "tweets__entities_user_mentions" in star_db.tables

    def test_star_variants_agree_with_base(self, tiles_db, star_db):
        for query in (3, 4):
            base = tiles_db.sql(twitter.TWITTER_QUERIES[query]).rows
            star = star_db.sql(twitter.TWITTER_QUERIES_STAR[query]).rows
            assert base == star

    def test_delete_query_finds_deletions(self, tiles_db):
        result = tiles_db.sql(twitter.TWITTER_QUERIES[2])
        assert len(result) > 0
        assert all(count >= 1 for _, count in result.rows)

    def test_formats_agree(self):
        reference = twitter.make_database(400, StorageFormat.TILES, CONFIG)
        jsonb_db = twitter.make_database(400, StorageFormat.JSONB, CONFIG)
        for query, text in twitter.TWITTER_QUERIES.items():
            assert sorted(reference.sql(text).rows) == \
                sorted(jsonb_db.sql(text).rows), query


class TestHackerNews:
    def test_item_types(self):
        items = hackernews.generate_items(500)
        kinds = {item["type"] for item in items}
        assert kinds == set(hackernews.ITEM_TYPES)

    def test_queries_run(self):
        db = hackernews.make_database(400, config=CONFIG)
        for text in hackernews.HACKERNEWS_QUERIES.values():
            assert db.sql(text) is not None

    def test_interleaving_has_low_locality(self):
        items = hackernews.generate_items(200)
        changes = sum(1 for a, b in zip(items, items[1:])
                      if a["type"] != b["type"])
        assert changes > 50  # heavily interleaved


class TestDocsCorpora:
    def test_all_corpora_json_serializable(self):
        for name, generate in docs.CORPORA.items():
            document = generate()
            assert json.loads(json.dumps(document)) == document, name

    def test_deterministic(self):
        for name, generate in docs.CORPORA.items():
            assert generate() == generate(), name

    def test_access_paths_resolve(self):
        for name, generate in docs.CORPORA.items():
            document = generate()
            for path in docs.ACCESS_PATHS[name]:
                assert path.lookup(document) is not None, (name, str(path))

    def test_canada_is_array_heavy(self):
        doc = docs.canada()
        rings = doc["features"][0]["geometry"]["coordinates"]
        assert sum(len(ring) for ring in rings) > 1000

    def test_numbers_is_flat_doubles(self):
        doc = docs.numbers()
        assert isinstance(doc, list)
        assert all(isinstance(x, float) for x in doc[:100])
