"""Epoch-stamped level manifests: consistent tile-set snapshots.

An LSM-tiered relation swaps tiles underneath running queries — a
compaction replaces a run of level-``L`` tiles with one level-``L+1``
tile while scans, morsel workers and cluster ``partial_query`` chunks
are in flight.  The manifest is the read-side contract: an immutable
snapshot of ``relation.tiles`` stamped with the epoch at which it was
taken.  Readers enumerate *one* manifest for the whole operation and
therefore always see either the pre-merge tiles or the post-merge tile,
never a torn mixture; every tiles-list mutation (seal, recompute,
reorganize, compact) bumps the relation's epoch and invalidates the
cached snapshot.

Payload lifetime rides the existing machinery, not the manifest: a
morsel pins its tile while resolving it, and the append guard (the
server's per-table writer lock) keeps swaps out of the read critical
sections.  The manifest only guarantees enumeration consistency — which
is exactly the part a mutable shared list cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class LevelManifest:
    """One immutable snapshot of a relation's sealed tiles.

    ``epoch`` increases monotonically with every tiles-list mutation;
    two manifests with equal epochs describe identical tile sets.
    ``tiles`` holds the relation's :class:`TileHandle` objects in row
    order (``first_row`` ascending), the same order the live list has.
    """

    epoch: int
    tiles: Tuple[object, ...]

    def __len__(self) -> int:
        return len(self.tiles)

    def __iter__(self):
        return iter(self.tiles)

    @property
    def row_count(self) -> int:
        return sum(tile.row_count for tile in self.tiles)

    def levels(self) -> Dict[int, List[object]]:
        """Tiles grouped by level, preserving row order within each."""
        grouped: Dict[int, List[object]] = {}
        for tile in self.tiles:
            grouped.setdefault(tile.header.level, []).append(tile)
        return grouped

    def level_report(self) -> Dict[int, Dict[str, object]]:
        """Per-level occupancy from resident headers only (never faults
        a paged-out payload in): tile count, rows, bytes and the
        extracted fraction — the metric the tentpole's acceptance
        criterion compares across levels."""
        report: Dict[int, Dict[str, object]] = {}
        for level, tiles in sorted(self.levels().items()):
            extracted = sum(len(tile.header.columns) for tile in tiles)
            seen = sum(len(tile.header.key_counts) for tile in tiles)
            report[level] = {
                "tiles": len(tiles),
                "rows": sum(tile.row_count for tile in tiles),
                "disk_bytes": sum(tile.disk_bytes for tile in tiles),
                "resident_bytes": sum(tile.nbytes for tile in tiles
                                      if tile.resident),
                "extracted_fraction": round(extracted / max(1, seen), 4),
            }
        return report
