"""Leveled tile compaction: config, planning and merge prediction.

Fresh sealed tiles are level 0.  Once ``fanout`` adjacent tiles of the
same level sit next to each other in the tiles list, the planner
proposes merging them into one tile of the next level, re-mining
frequent itemsets over the union of their documents (the paper's §3
mining applied at merge time, following the AsterixDB tuple-compaction
idea).  Deeper levels therefore see strictly more documents per mining
run: a path that is frequent across the run but fell below the 60 %
threshold in some individual input becomes an extracted column of the
merged tile — extraction quality is monotone in level for such paths.

Planning is header-only: candidate runs come from the level stamps and
the run's merge *gain* is predicted from the headers' key-path
frequency databases (``combined_key_counts``), so a planner cycle never
faults a paged-out payload in.  The merge itself is
:meth:`repro.storage.relation.Relation.compact_tiles`; it preserves row
order (the output is the concatenation of the inputs), which keeps
global row ids, morsel spans and the cluster's canonical block layout
intact — this is why cluster shards may compact even though §3.2
reordering is forced off for them.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.mining.dictionary import combined_key_counts


def _env(env: Mapping[str, str], key: str, cast, default):
    raw = env.get(key)
    if raw is None or raw == "":
        return default
    try:
        return cast(raw)
    except (TypeError, ValueError):
        return default


def _env_bool(env: Mapping[str, str], key: str, default: bool) -> bool:
    raw = env.get(key)
    if raw is None or raw == "":
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off")


@dataclasses.dataclass
class LsmConfig:
    """Knobs of the LSM tier (``serve --lsm`` / ``REPRO_LSM_*``)."""

    #: master switch; off keeps the flat (level-0 only) legacy layout
    enabled: bool = False
    #: adjacent same-level tiles merged into one next-level tile
    fanout: int = 4
    #: deepest level compaction may produce (L0..max_level)
    max_level: int = 2
    #: propose a merge only when the predicted extraction gain is at
    #: least this many new columns, or the run has grown past
    #: ``fanout`` tiles anyway (size pressure wins eventually)
    min_gain_columns: int = 0

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None,
                 **overrides) -> "LsmConfig":
        """Build a config from ``REPRO_LSM_*`` variables; keyword
        *overrides* (e.g. from CLI flags) win over the environment."""
        env = os.environ if env is None else env
        fields = {
            "enabled": _env_bool(env, "REPRO_LSM", False),
            "fanout": max(2, _env(env, "REPRO_LSM_FANOUT", int, 4)),
            "max_level": max(0, _env(env, "REPRO_LSM_MAX_LEVEL", int, 2)),
            "min_gain_columns": _env(env, "REPRO_LSM_MIN_GAIN", int, 0),
        }
        fields.update({key: value for key, value in overrides.items()
                       if value is not None})
        return cls(**fields)


@dataclasses.dataclass(frozen=True)
class CompactionCandidate:
    """One plannable merge: ``count`` adjacent tiles at ``level``
    starting at the tile numbered ``start_number``."""

    start_number: int
    level: int
    count: int
    #: predicted newly-extractable columns of the merged tile (paths
    #: clearing the threshold combined but not extracted in every input)
    predicted_gain: int

    @property
    def score(self) -> float:
        # lower levels first (L0 backlog hurts scans most), then runs
        # whose merge is predicted to actually improve extraction
        return float(self.count + self.predicted_gain)


def predicted_extraction_gain(tiles: Sequence[object],
                              threshold: float) -> int:
    """Paths that clear *threshold* over the merged rows but are not
    extracted in every input tile — a header-only lower bound on the
    columns merge-time re-mining adds.  (A lower bound because type
    splits within a path can only be resolved by the real mining pass.)
    """
    total_rows = sum(tile.row_count for tile in tiles)
    if total_rows == 0:
        return 0
    combined = combined_key_counts(tile.header.key_counts
                                   for tile in tiles)
    min_count = threshold * total_rows
    everywhere = None
    for tile in tiles:
        extracted = {str(path) for path in tile.header.columns}
        everywhere = extracted if everywhere is None \
            else everywhere & extracted
    gain = 0
    for text, count in combined.items():
        if count >= min_count and text not in (everywhere or set()):
            gain += 1
    return gain


def plan_compactions(relation, config: LsmConfig,
                     ) -> List[CompactionCandidate]:
    """Candidate merges over the relation's current manifest.

    Scans the tiles list for maximal runs of adjacent tiles sharing a
    level below ``max_level``; every complete ``fanout``-sized prefix of
    such a run becomes one candidate (only the first is usually
    executed per cycle — the others document the backlog).  Runs with no
    predicted gain are still proposed once they exist — tiered storage
    must bound the tile count even for perfectly homogeneous data — but
    gain breaks ties through the score.
    """
    if not config.enabled or relation.text_rows is not None:
        return []
    tiles = list(relation.manifest().tiles)
    candidates: List[CompactionCandidate] = []
    index = 0
    while index < len(tiles):
        level = tiles[index].header.level
        run = [tiles[index]]
        cursor = index + 1
        while cursor < len(tiles) \
                and tiles[cursor].header.level == level:
            run.append(tiles[cursor])
            cursor += 1
        if level < config.max_level:
            offset = 0
            while len(run) - offset >= config.fanout:
                inputs = run[offset : offset + config.fanout]
                gain = predicted_extraction_gain(
                    inputs, relation.config.threshold)
                if gain >= config.min_gain_columns:
                    candidates.append(CompactionCandidate(
                        inputs[0].header.tile_number, level,
                        config.fanout, gain))
                offset += config.fanout
        index = cursor
    return candidates


def level_histogram(relation) -> Dict[int, int]:
    """Cheap ``level -> tile count`` summary from resident headers."""
    histogram: Dict[int, int] = {}
    for tile in relation.manifest().tiles:
        level = tile.header.level
        histogram[level] = histogram.get(level, 0) + 1
    return histogram
