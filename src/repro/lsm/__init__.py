"""``repro.lsm`` — LSM-tiered ingest: leveled tile compaction with
snapshot reads.

Fresh sealed tiles land in level 0; the compaction planner
(:mod:`repro.lsm.compactor`) merges runs of adjacent same-level tiles
into one larger next-level tile, re-mining frequent itemsets over the
merged documents so deeper levels get strictly better extraction.
Readers take an epoch-stamped :class:`~repro.lsm.manifest.LevelManifest`
snapshot so queries, morsel scans and cluster partial queries see a
consistent tile set while compaction swaps tiles underneath.  The merge
itself lives on :meth:`repro.storage.relation.Relation.compact_tiles`
and runs through the maintenance daemon's WAL-backed action journal
(DESIGN.md §8).
"""

from repro.lsm.compactor import (
    CompactionCandidate,
    LsmConfig,
    level_histogram,
    plan_compactions,
    predicted_extraction_gain,
)
from repro.lsm.manifest import LevelManifest

__all__ = [
    "CompactionCandidate",
    "LevelManifest",
    "LsmConfig",
    "level_histogram",
    "plan_compactions",
    "predicted_extraction_gain",
]
