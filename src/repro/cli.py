"""Command-line interface: load ndjson files, run SQL, inspect tiles.

Examples::

    # one-shot query over an ndjson file
    python -m repro --load tweets=stream.ndjson \
        --sql "select t.data->>'lang' as l, count(*) as n from tweets t \
               group by t.data->>'lang' order by n desc limit 5"

    # interactive shell
    python -m repro --load logs=events.ndjson --format tiles

    # describe the extracted tiles instead of querying
    python -m repro --load logs=events.ndjson --describe logs

    # run the durable query/ingest server (see repro.server)
    python -m repro serve --data-dir ./data --port 7617

    # horizontal sharding (see repro.cluster): shards, a replica and
    # the coordinator clients actually talk to
    python -m repro serve-shard --data-dir ./shard0 --port 7701
    python -m repro serve-replica --data-dir ./replica0 \
        --primary 127.0.0.1:7701 --port 7711
    python -m repro serve-coordinator --topology cluster.json --port 7618
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro import Database, ExtractionConfig, QueryOptions, StorageFormat
from repro.errors import ReproError

_FORMATS = {fmt.value: fmt for fmt in StorageFormat}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JSON Tiles: fast analytics on semi-structured data "
                    "(SIGMOD 2021 reproduction)",
    )
    parser.add_argument(
        "--load", action="append", default=[], metavar="NAME=FILE",
        help="load an ndjson file as a table (repeatable)")
    parser.add_argument(
        "--open", metavar="DIR", dest="open_dir",
        help="open a database directory written with --save")
    parser.add_argument(
        "--save", metavar="DIR", dest="save_dir",
        help="persist all loaded tables to a directory and exit "
             "(after any --sql queries)")
    parser.add_argument(
        "--format", default="tiles", choices=sorted(_FORMATS),
        help="storage format for loaded tables (default: tiles)")
    parser.add_argument("--tile-size", type=int, default=1024)
    parser.add_argument("--partition-size", type=int, default=8)
    parser.add_argument("--threshold", type=float, default=0.6,
                        help="extraction threshold (default 0.6)")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel loading workers")
    parser.add_argument("--sql", action="append", default=[],
                        metavar="QUERY", help="run a query and exit "
                        "(repeatable; omit for an interactive shell)")
    parser.add_argument("--explain", action="store_true",
                        help="print the plan for each --sql query")
    parser.add_argument("--describe", metavar="TABLE",
                        help="print the tile headers of a table and exit")
    parser.add_argument("--no-skipping", action="store_true",
                        help="disable tile skipping (Section 4.8)")
    parser.add_argument("--no-statistics", action="store_true",
                        help="disable statistics-driven join ordering")
    return parser


def _load_tables(db: Database, specs: List[str], storage_format,
                 config, workers: int, out) -> None:
    for spec in specs:
        name, _, path = spec.partition("=")
        if not path:
            raise SystemExit(f"--load expects NAME=FILE, got {spec!r}")
        started = time.perf_counter()
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        relation = db.load_table(name, lines, storage_format, config,
                                 num_workers=workers)
        seconds = time.perf_counter() - started
        print(f"loaded {relation.row_count} documents into {name!r} "
              f"({len(relation.tiles)} tiles, {seconds:.2f}s)", file=out)


def _run_query(db: Database, query: str, options: QueryOptions,
               explain: bool, out) -> None:
    if explain:
        print(db.explain(query, options), file=out)
    started = time.perf_counter()
    result = db.sql(query, options)
    seconds = time.perf_counter() - started
    print(result.format_table(50), file=out)
    print(f"({len(result)} rows, {seconds:.3f}s, "
          f"{result.counters.tiles_skipped}/{result.counters.tiles_total} "
          f"tiles skipped)", file=out)


def _shell(db: Database, options: QueryOptions, out) -> None:
    print("repro shell — end queries with ';', \\q to quit", file=out)
    buffer: List[str] = []
    while True:
        try:
            prompt = "repro> " if not buffer else "   ...> "
            line = input(prompt)
        except EOFError:
            break
        if line.strip() in ("\\q", "exit", "quit"):
            break
        buffer.append(line)
        if line.rstrip().endswith(";"):
            query = "\n".join(buffer)
            buffer = []
            try:
                _run_query(db, query, options, False, out)
            except ReproError as exc:
                print(f"error: {exc}", file=out)


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="serve a durable database directory over TCP "
                    "(JSON-lines protocol, see repro.server)")
    parser.add_argument("--data-dir", required=True, metavar="DIR",
                        help="database directory (created if missing; "
                             "holds .jtile snapshots and the wal/)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7617)
    parser.add_argument("--format", default="tiles",
                        choices=sorted(_FORMATS),
                        help="storage format for new tables")
    parser.add_argument("--tile-size", type=int, default=1024)
    parser.add_argument("--partition-size", type=int, default=8)
    parser.add_argument("--threshold", type=float, default=0.6)
    parser.add_argument("--query-workers", type=int, default=8,
                        help="thread pool size for concurrent queries")
    parser.add_argument("--workers", type=int, default=1,
                        metavar="N",
                        help="morsel-parallelism per query: worker "
                             "threads scanning tiles concurrently "
                             "(1 = serial)")
    parser.add_argument("--cache-mb", type=float, default=64.0,
                        metavar="MB",
                        help="resolved-tile cache capacity in MiB "
                             "(0 disables the cache)")
    parser.add_argument("--memory-mb", type=float, default=None,
                        metavar="MB",
                        help="tile residency budget in MiB shared by "
                             "raw tile bytes and the resolved-tile "
                             "cache; clean tiles beyond it are paged "
                             "out to their .jtile segments and "
                             "re-read on demand (default: unlimited, "
                             "or REPRO_MEMORY_MB; 0 = unlimited)")
    parser.add_argument("--no-shred", action="store_true",
                        help="resolve fallback paths one traversal per "
                             "path instead of the single-pass "
                             "multi-path shredder (ablation; also "
                             "REPRO_MULTIPATH_SHRED=0)")
    parser.add_argument("--no-kernels", action="store_true",
                        help="disable the vectorized batch kernels "
                             "(group-by/join/sort) and run the "
                             "per-tuple reference paths instead "
                             "(ablation; also REPRO_KERNELS=0)")
    parser.add_argument("--no-latemat", action="store_true",
                        help="disable late materialization and always "
                             "decode fallback columns for every row "
                             "of a surviving tile "
                             "(ablation; also REPRO_LATEMAT=0)")
    parser.add_argument("--checkpoint-interval", type=float, default=60.0,
                        metavar="SECONDS",
                        help="periodic checkpoint cadence (0 disables)")
    parser.add_argument("--no-wal-sync", action="store_true",
                        help="skip fsync on insert acknowledgement "
                             "(faster ingest, weaker durability)")
    parser.add_argument("--maintenance", action="store_true",
                        help="run the online maintenance daemon: tile "
                             "health tracking, background §3.2 "
                             "partition reordering and re-extraction "
                             "(tunable via REPRO_MAINT_* environment "
                             "variables)")
    parser.add_argument("--maintenance-interval", type=float,
                        default=None, metavar="SECONDS",
                        help="seconds between maintenance cycles "
                             "(default 1.0, or REPRO_MAINT_INTERVAL)")
    parser.add_argument("--lsm", action="store_true",
                        help="LSM-tiered ingest: fresh sealed tiles "
                             "land in L0 and the maintenance daemon "
                             "merges fanout-sized runs into larger "
                             "re-mined L1/L2 tiles (implies "
                             "--maintenance; tunable via REPRO_LSM_* "
                             "environment variables)")
    parser.add_argument("--lsm-fanout", type=int, default=None,
                        metavar="N",
                        help="tiles merged per compaction (default 4, "
                             "or REPRO_LSM_FANOUT)")
    parser.add_argument("--lsm-max-level", type=int, default=None,
                        metavar="N",
                        help="deepest level compaction produces "
                             "(default 2, or REPRO_LSM_MAX_LEVEL)")
    return parser


def serve_main(argv: List[str], out, role: str = "server") -> int:
    from repro.server import run_server

    parser = build_serve_parser()
    if role == "shard":
        parser.prog = "repro serve-shard"
    args = parser.parse_args(argv)
    config = ExtractionConfig(tile_size=args.tile_size,
                              partition_size=args.partition_size,
                              threshold=args.threshold)
    maintenance_config = None
    if args.maintenance or args.lsm:
        from repro.maintenance import MaintenanceConfig

        maintenance_config = MaintenanceConfig.from_env(
            interval_s=args.maintenance_interval)
    lsm_config = None
    if args.lsm:
        from repro.lsm import LsmConfig

        lsm_config = LsmConfig.from_env(
            enabled=True,
            fanout=args.lsm_fanout,
            max_level=args.lsm_max_level)
    try:
        run_server(
            args.data_dir, args.host, args.port,
            default_format=_FORMATS[args.format],
            config=config,
            wal_sync=not args.no_wal_sync,
            query_workers=args.query_workers,
            parallelism=args.workers,
            cache_mb=args.cache_mb,
            memory_mb=args.memory_mb,
            multipath_shred=not args.no_shred,
            enable_kernels=not args.no_kernels,
            late_materialization=not args.no_latemat,
            checkpoint_interval=args.checkpoint_interval or None,
            maintenance=args.maintenance or args.lsm,
            maintenance_config=maintenance_config,
            lsm_config=lsm_config,
            role=role,
        )
    except OSError as exc:
        print(f"error: {exc}", file=out)
        return 1
    return 0


def serve_replica_main(argv: List[str], out) -> int:
    from repro.cluster import run_replica

    parser = argparse.ArgumentParser(
        prog="repro serve-replica",
        description="serve a read replica that follows one primary "
                    "shard over WAL shipping (see repro.cluster)")
    parser.add_argument("--data-dir", required=True, metavar="DIR",
                        help="the replica's own database directory")
    parser.add_argument("--primary", required=True, metavar="HOST:PORT",
                        help="address of the primary shard to follow")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7627)
    parser.add_argument("--poll-interval", type=float, default=0.25,
                        metavar="SECONDS",
                        help="seconds between replication polls")
    parser.add_argument("--allow-reordering", action="store_true",
                        help="follow tables extracted with "
                             "enable_reordering=true even though the "
                             "replica may silently diverge from the "
                             "primary (refused by default)")
    args = parser.parse_args(argv)
    try:
        primary_host, primary_port = args.primary.rsplit(":", 1)
        run_replica(args.data_dir, primary_host, int(primary_port),
                    args.host, args.port,
                    poll_interval=args.poll_interval,
                    allow_reordering=args.allow_reordering)
    except ValueError:
        print(f"error: --primary must be HOST:PORT, got "
              f"{args.primary!r}", file=out)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=out)
        return 1
    return 0


def serve_coordinator_main(argv: List[str], out) -> int:
    from repro.cluster import TopologyError, run_coordinator

    parser = argparse.ArgumentParser(
        prog="repro serve-coordinator",
        description="serve a cluster coordinator routing the JSON-lines "
                    "protocol over a shard fleet (see repro.cluster)")
    parser.add_argument("--topology", required=True, metavar="FILE",
                        help="JSON topology file listing the shards "
                             "(and their replicas)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7618)
    parser.add_argument("--timeout", type=float, default=60.0,
                        metavar="SECONDS",
                        help="per-request timeout talking to backends")
    parser.add_argument("--max-inflight-queries", type=int, default=32,
                        help="admission-control bound on concurrent "
                             "queries (excess get code 'overloaded')")
    parser.add_argument("--no-distjoin", action="store_true",
                        help="disable shard-side broadcast joins; every "
                             "join answers through the gather fallback "
                             "(equivalent to REPRO_DISTJOIN=0)")
    args = parser.parse_args(argv)
    kwargs = {}
    if args.no_distjoin:
        from repro.engine.plan import QueryOptions

        kwargs["default_options"] = QueryOptions(
            enable_distributed_joins=False)
    try:
        run_coordinator(args.topology, args.host, args.port,
                        timeout=args.timeout,
                        max_inflight_queries=args.max_inflight_queries,
                        **kwargs)
    except (TopologyError, OSError, ReproError) as exc:
        print(f"error: {exc}", file=out)
        return 1
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:], out)
    if argv and argv[0] == "serve-shard":
        return serve_main(argv[1:], out, role="shard")
    if argv and argv[0] == "serve-replica":
        return serve_replica_main(argv[1:], out)
    if argv and argv[0] == "serve-coordinator":
        return serve_coordinator_main(argv[1:], out)
    args = build_parser().parse_args(argv)
    storage_format = _FORMATS[args.format]
    config = ExtractionConfig(tile_size=args.tile_size,
                              partition_size=args.partition_size,
                              threshold=args.threshold)
    options = QueryOptions(enable_skipping=not args.no_skipping,
                           use_statistics=not args.no_statistics)
    db = Database(storage_format, config)
    if args.open_dir:
        from repro.storage.persist import open_database

        db = open_database(args.open_dir)
        for name, relation in db.tables.items():
            print(f"opened {name!r}: {relation.row_count} documents",
                  file=out)
    try:
        _load_tables(db, args.load, storage_format, config, args.workers,
                     out)
    except OSError as exc:
        print(f"error: {exc}", file=out)
        return 1

    if args.describe:
        try:
            relation = db.table(args.describe)
        except ReproError as exc:
            print(f"error: {exc}", file=out)
            return 1
        for tile in relation.tiles:
            print(tile.header.describe(), file=out)
        return 0

    if args.sql:
        for query in args.sql:
            try:
                _run_query(db, query, options, args.explain, out)
            except ReproError as exc:
                print(f"error: {exc}", file=out)
                return 1
    if args.save_dir:
        from repro.storage.persist import save_database

        written = save_database(db, args.save_dir)
        for name, size in written.items():
            print(f"saved {name!r} ({size} bytes)", file=out)
        return 0
    if args.sql:
        return 0

    _shell(db, options, out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
