"""Relation-wide frequency counters for key paths (Section 4.6).

A fixed number of slots (the paper suggests 256) tracks how many tuples
of the relation contain each key path.  Slots are updated from each new
tile's key-path database; when all slots are taken, replacement prefers
slots that were least recently touched and have the lowest counts, so
"new values can overwrite existing ones, however, the most frequent
ones are always stored".
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple


class FrequencyCounters:
    """Bounded map: key-path text -> (count, last tile number)."""

    __slots__ = ("capacity", "_slots")

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._slots: Dict[str, Tuple[int, int]] = {}

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, key: str) -> bool:
        return key in self._slots

    def update_from_tile(self, tile_number: int, key_counts: Dict[str, int]) -> None:
        """Fold one tile's key-path frequency database into the
        relation-wide counters."""
        for key, count in key_counts.items():
            existing = self._slots.get(key)
            if existing is not None:
                self._slots[key] = (existing[0] + count, tile_number)
            elif len(self._slots) < self.capacity:
                self._slots[key] = (count, tile_number)
            else:
                self._replace(key, count, tile_number)

    def _replace(self, key: str, count: int, tile_number: int) -> None:
        # Victim: the stalest slot; among equally stale ones the least
        # frequent.  Only evict when the incoming count would actually
        # rank above the victim, so hot keys are never displaced by
        # one-off keys.
        victim_key, (victim_count, victim_tile) = min(
            self._slots.items(), key=lambda item: (item[1][1], item[1][0])
        )
        if tile_number > victim_tile or count > victim_count:
            del self._slots[victim_key]
            self._slots[key] = (count, tile_number)

    def count(self, key: str) -> Optional[int]:
        """Exact-slot count, or ``None`` if the key has no slot."""
        entry = self._slots.get(key)
        return entry[0] if entry is not None else None

    def estimate(self, key: str) -> int:
        """Cardinality estimate for a key path.

        When the key has no counter, the smallest retained counter is
        the best stand-in: a missing key behaves most similarly to the
        least frequent key we still track (Section 4.6).
        """
        entry = self._slots.get(key)
        if entry is not None:
            return entry[0]
        if not self._slots:
            return 0
        return min(count for count, _ in self._slots.values())

    def items(self) -> Iterable[Tuple[str, int]]:
        for key, (count, _) in self._slots.items():
            yield key, count

    def top(self, limit: int = 10) -> list:
        """The most frequent tracked key paths."""
        ranked = sorted(self._slots.items(), key=lambda item: -item[1][0])
        return [(key, count) for key, (count, _) in ranked[:limit]]
