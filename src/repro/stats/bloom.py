"""Bloom filter over key paths (Section 4.4).

Each tile header stores the key paths that were *not* extracted in a
bloom filter, so a scan can decide whether a tile may contain a path at
all (tile skipping, Section 4.8) without storing the unbounded key set.
Uses the double-hashing scheme of Kirsch & Mitzenmacher [35]: k hash
functions derived from two independent 32-bit halves of one 64-bit
hash.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.stats.hyperloglog import hash64


class BloomFilter:
    """A fixed-size bloom filter keyed by strings (key path text)."""

    __slots__ = ("num_bits", "num_hashes", "bits")

    def __init__(self, expected_items: int = 64, bits_per_item: int = 10):
        self.num_bits = max(64, expected_items * bits_per_item)
        self.num_hashes = max(1, round(bits_per_item * math.log(2)))
        self.bits = np.zeros((self.num_bits + 7) // 8, dtype=np.uint8)

    def _positions(self, item: str) -> Iterable[int]:
        hashed = hash64(item)
        h1 = hashed & 0xFFFFFFFF
        h2 = (hashed >> 32) | 1  # odd so the stride cycles
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, item: str) -> None:
        for position in self._positions(item):
            self.bits[position >> 3] |= 1 << (position & 7)

    def __contains__(self, item: str) -> bool:
        return all(
            self.bits[position >> 3] & (1 << (position & 7))
            for position in self._positions(item)
        )

    def might_contain(self, item: str) -> bool:
        """Alias that reads well at call sites: bloom filters can return
        false positives but never false negatives."""
        return item in self

    def fill_ratio(self) -> float:
        """Fraction of set bits; useful to detect saturated filters."""
        return float(np.unpackbits(self.bits).sum()) / self.num_bits

    def merge(self, other: "BloomFilter") -> None:
        if other.num_bits != self.num_bits or other.num_hashes != self.num_hashes:
            raise ValueError("cannot merge differently-shaped bloom filters")
        np.bitwise_or(self.bits, other.bits, out=self.bits)

    def size_bytes(self) -> int:
        return len(self.bits)
