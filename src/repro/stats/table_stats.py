"""Per-tile and relation-level statistics (Section 4.6).

While a tile is constructed, the frequency of every key path is already
known from itemset mining, and the inserted values are sampled directly
into HyperLogLog sketches ("without noticeable overhead").  Tile
statistics are aggregated into :class:`TableStatistics`, which the
query optimizer consults for scan selectivities and join cardinalities.

Budgets follow the paper: at most 64 HyperLogLog sketches and 256
frequency counter slots per relation, replaced by recency+count when
full.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.jsonpath import KeyPath
from repro.stats.frequency import FrequencyCounters
from repro.stats.hyperloglog import HyperLogLog

MAX_SKETCHES = 64
MAX_FREQUENCY_SLOTS = 256


class ColumnStatistics:
    """Statistics of one extracted key path inside one tile."""

    __slots__ = ("sketch", "non_null_count", "min_value", "max_value",
                 "histogram")

    def __init__(self, precision: int = 9):
        self.sketch = HyperLogLog(precision)
        self.non_null_count = 0
        self.min_value: Optional[object] = None
        self.max_value: Optional[object] = None
        #: equi-width histogram for numeric/timestamp columns (built at
        #: tile finalization; "histograms would work analogously")
        self.histogram = None

    def observe(self, value: object) -> None:
        if value is None:
            return
        self.sketch.add(value)
        self.non_null_count += 1
        try:
            if self.min_value is None or value < self.min_value:
                self.min_value = value
            if self.max_value is None or value > self.max_value:
                self.max_value = value
        except TypeError:
            # mixed-type outliers: keep the domain bounds we have
            pass

    def distinct(self) -> float:
        return self.sketch.estimate()


class TileStatistics:
    """Key-path frequencies + per-column sketches of a single tile."""

    __slots__ = ("key_counts", "columns", "row_count")

    def __init__(self, row_count: int = 0):
        self.key_counts: Dict[str, int] = {}
        self.columns: Dict[KeyPath, ColumnStatistics] = {}
        self.row_count = row_count

    def observe_key(self, path_text: str, count: int = 1) -> None:
        self.key_counts[path_text] = self.key_counts.get(path_text, 0) + count

    def column(self, path: KeyPath) -> ColumnStatistics:
        stats = self.columns.get(path)
        if stats is None:
            stats = ColumnStatistics()
            self.columns[path] = stats
        return stats


class TableStatistics:
    """Relation-level aggregate the optimizer reads.

    * ``row_count`` — total tuples.
    * frequency counters — how many tuples contain a key path; also
      answers ``IS NOT NULL`` selectivities and acts as the "table
      cardinality" of a document type in combined relations.
    * sketches — per key path distinct-value estimates for equality
      selectivity and join cardinality estimation.
    """

    def __init__(self, sketch_budget: int = MAX_SKETCHES,
                 counter_budget: int = MAX_FREQUENCY_SLOTS):
        self.row_count = 0
        self.frequencies = FrequencyCounters(counter_budget)
        self.sketch_budget = sketch_budget
        self._sketches: Dict[KeyPath, Tuple[HyperLogLog, int]] = {}
        self._bounds: Dict[KeyPath, Tuple[object, object]] = {}
        #: relation-level histograms, bounded by the sketch budget (a
        #: path gets a histogram only while it holds a sketch slot)
        self._histograms: Dict[KeyPath, object] = {}

    # -- aggregation ----------------------------------------------------

    def absorb_tile(self, tile_number: int, tile_stats: TileStatistics) -> None:
        self.row_count += tile_stats.row_count
        self.frequencies.update_from_tile(tile_number, tile_stats.key_counts)
        for path, column in tile_stats.columns.items():
            self._absorb_sketch(tile_number, path, column)

    def _absorb_sketch(self, tile_number: int, path: KeyPath,
                       column: ColumnStatistics) -> None:
        entry = self._sketches.get(path)
        if entry is not None:
            entry[0].merge(column.sketch)
            self._sketches[path] = (entry[0], tile_number)
            self._merge_histogram(path, column)
        elif len(self._sketches) < self.sketch_budget:
            self._sketches[path] = (column.sketch.copy(), tile_number)
            self._merge_histogram(path, column)
        else:
            # same replacement strategy as the frequency counters:
            # stalest slot, ties broken by smallest estimate
            victim = min(
                self._sketches.items(),
                key=lambda item: (item[1][1], item[1][0].estimate()),
            )
            if tile_number > victim[1][1]:
                del self._sketches[victim[0]]
                self._histograms.pop(victim[0], None)
                self._sketches[path] = (column.sketch.copy(), tile_number)
                self._merge_histogram(path, column)
        if column.min_value is not None:
            low, high = self._bounds.get(path, (column.min_value, column.max_value))
            try:
                low = min(low, column.min_value)
                high = max(high, column.max_value)
            except TypeError:
                pass
            self._bounds[path] = (low, high)

    # -- estimators -----------------------------------------------------

    def key_count(self, path: KeyPath) -> int:
        """Estimated number of tuples containing *path*."""
        return min(self.frequencies.estimate(str(path)), self.row_count)

    def distinct(self, path: KeyPath) -> float:
        """Estimated number of distinct values under *path*.

        Falls back to the key count when no sketch is available — the
        pessimistic relational default the paper improves on.
        """
        entry = self._sketches.get(path)
        if entry is not None:
            return max(1.0, entry[0].estimate())
        return float(max(1, self.key_count(path)))

    def has_sketch(self, path: KeyPath) -> bool:
        return path in self._sketches

    def bounds(self, path: KeyPath) -> Optional[Tuple[object, object]]:
        return self._bounds.get(path)

    def equality_selectivity(self, path: KeyPath) -> float:
        """P(path = literal) among tuples that *have* the path."""
        return 1.0 / max(1.0, self.distinct(path))

    def _merge_histogram(self, path: KeyPath,
                         column: ColumnStatistics) -> None:
        if column.histogram is None:
            return
        existing = self._histograms.get(path)
        if existing is None:
            self._histograms[path] = column.histogram.copy()
        else:
            self._histograms[path] = existing.merge(column.histogram)

    def histogram(self, path: KeyPath):
        return self._histograms.get(path)

    def range_selectivity(self, path: KeyPath, low: object = None,
                          high: object = None) -> float:
        """P(low <= value <= high), from the relation histogram when one
        exists, otherwise from the tracked domain bounds.

        Only meaningful for numeric/timestamp domains; returns 1/3 (the
        textbook default) when neither is usable.
        """
        histogram = self._histograms.get(path)
        if histogram is not None:
            lo = float(low) if isinstance(low, (int, float)) else None
            hi = float(high) if isinstance(high, (int, float)) else None
            if lo is not None or hi is not None:
                return histogram.fraction_between(lo, hi)
        bounds = self._bounds.get(path)
        default = 1.0 / 3.0
        if bounds is None:
            return default
        domain_low, domain_high = bounds
        if not isinstance(domain_low, (int, float)) or domain_high == domain_low:
            return default
        span = float(domain_high) - float(domain_low)
        lo = float(domain_low) if low is None or not isinstance(low, (int, float)) \
            else max(float(low), float(domain_low))
        hi = float(domain_high) if high is None or not isinstance(high, (int, float)) \
            else min(float(high), float(domain_high))
        if hi <= lo:
            return 0.0
        return min(1.0, (hi - lo) / span)

    def presence_fraction(self, path: KeyPath) -> float:
        """Fraction of tuples containing *path* (IS NOT NULL selectivity)."""
        if self.row_count == 0:
            return 0.0
        return self.key_count(path) / self.row_count
