"""Equi-depth histograms over numeric extracted columns.

Section 4.6 uses HyperLogLog sketches as Umbra's primary domain
statistic and notes that "the collection of regular histograms would
work analogously".  This module provides that analogous path with the
histogram flavour database systems actually use: *equi-depth* buckets,
whose quantile boundaries carry the skew that fixed-width buckets
smear out.  Per-tile histograms are built at tile finalization and
merged into a relation-level histogram used for range selectivities.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

DEFAULT_BUCKETS = 32


class EquiDepthHistogram:
    """Quantile-boundary histogram.

    ``boundaries`` has ``b + 1`` sorted entries; bucket *i* covers
    ``[boundaries[i], boundaries[i+1])`` and holds ``counts[i]`` values.
    Zero-width buckets represent point masses (heavy duplicates) and
    count fully once the probe reaches their edge.
    """

    __slots__ = ("boundaries", "counts")

    def __init__(self, boundaries: np.ndarray, counts: np.ndarray):
        self.boundaries = np.asarray(boundaries, dtype=np.float64)
        self.counts = np.asarray(counts, dtype=np.float64)

    # ------------------------------------------------------------------

    @classmethod
    def from_values(cls, values: Sequence[float],
                    buckets: int = DEFAULT_BUCKETS
                    ) -> Optional["EquiDepthHistogram"]:
        """Build from raw values; ``None`` for empty input."""
        data = np.asarray(values, dtype=np.float64)
        data = data[np.isfinite(data)]
        if len(data) == 0:
            return None
        buckets = min(buckets, len(data))
        quantiles = np.linspace(0.0, 1.0, buckets + 1)
        boundaries = np.quantile(data, quantiles)
        counts = np.full(buckets, len(data) / buckets, dtype=np.float64)
        return cls(boundaries, counts)

    @property
    def total(self) -> float:
        return float(self.counts.sum())

    @property
    def low(self) -> float:
        return float(self.boundaries[0])

    @property
    def high(self) -> float:
        return float(self.boundaries[-1])

    @property
    def num_buckets(self) -> int:
        return len(self.counts)

    # ------------------------------------------------------------------
    # estimation

    def count_below(self, value: float) -> float:
        """Number of values <= *value* (inclusive for point masses)."""
        if value < self.boundaries[0]:
            return 0.0
        total = 0.0
        for index in range(self.num_buckets):
            left = self.boundaries[index]
            right = self.boundaries[index + 1]
            if right <= value:
                total += self.counts[index]
            elif left <= value < right:
                total += self.counts[index] * (value - left) / (right - left)
            else:
                break
        return float(total)

    def fraction_below(self, value: float) -> float:
        """P(x <= value)."""
        if self.total == 0:
            return 0.0
        return min(1.0, self.count_below(value) / self.total)

    def fraction_between(self, low: Optional[float],
                         high: Optional[float]) -> float:
        """P(low <= x <= high); open bounds with ``None``."""
        upper = self.fraction_below(high) if high is not None else 1.0
        lower = self.fraction_below(low) if low is not None else 0.0
        # the lower bound is inclusive: add back the point mass at low
        if low is not None:
            lower -= self._point_mass(low) / max(1.0, self.total)
            lower = max(0.0, lower)
        return max(0.0, upper - lower)

    def _point_mass(self, value: float) -> float:
        """Mass concentrated in zero-width buckets exactly at *value*."""
        mass = 0.0
        for index in range(self.num_buckets):
            left = self.boundaries[index]
            right = self.boundaries[index + 1]
            if left == right == value:
                mass += self.counts[index]
            elif left > value:
                break
        return mass

    # ------------------------------------------------------------------
    # merging (tile histograms -> relation histogram)

    def merge(self, other: "EquiDepthHistogram") -> "EquiDepthHistogram":
        """Combine two histograms by re-quantiling the summed CDF.

        The merged cumulative distribution is evaluated on the union of
        both boundary grids and inverted at equi-depth targets — exact
        in total mass, approximate within buckets (as any bounded
        summary must be).
        """
        total = self.total + other.total
        if total == 0:
            return self.copy()
        grid = np.unique(np.concatenate([self.boundaries, other.boundaries]))
        cumulative = np.array([
            self.count_below(x) + other.count_below(x) for x in grid
        ])
        # np.interp needs strictly increasing sample points; point
        # masses make the CDF locally flat, so nudge it minimally
        cumulative = cumulative + np.arange(len(grid)) * 1e-9
        buckets = max(self.num_buckets, other.num_buckets)
        targets = np.linspace(0.0, total, buckets + 1)
        # invert the CDF: for each target mass find the grid position
        boundaries = np.interp(targets, cumulative, grid)
        boundaries[0] = min(self.low, other.low)
        boundaries[-1] = max(self.high, other.high)
        counts = np.full(buckets, total / buckets, dtype=np.float64)
        return EquiDepthHistogram(boundaries, counts)

    def copy(self) -> "EquiDepthHistogram":
        return EquiDepthHistogram(self.boundaries.copy(), self.counts.copy())

    def __repr__(self) -> str:
        return (f"EquiDepthHistogram([{self.low}, {self.high}], "
                f"n={self.total:.0f}, b={self.num_buckets})")


#: Backwards-compatible alias (the histogram flavour is an
#: implementation choice; the stats layer only uses the shared API).
EquiWidthHistogram = EquiDepthHistogram
