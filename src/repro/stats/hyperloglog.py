"""HyperLogLog cardinality sketches (Flajolet et al., used in Section 4.6).

Umbra's primary source of domain statistics is the HyperLogLog sketch;
JSON tiles samples inserted values directly into per-tile sketches and
merges them into relation-level sketches (merging is a register-wise
maximum, which is why "HyperLogLog sketches are easy to combine").
"""

from __future__ import annotations

import hashlib
import math
import struct
from typing import Iterable, Optional

import numpy as np

_ALPHA = {16: 0.673, 32: 0.697, 64: 0.709}


def _alpha(m: int) -> float:
    if m in _ALPHA:
        return _ALPHA[m]
    return 0.7213 / (1.0 + 1.079 / m)


def hash64(value: object) -> int:
    """Stable 64-bit hash of any JSON scalar.

    Python's builtin ``hash`` is randomized per process for strings, so
    sketches would not be reproducible across runs; blake2b keeps every
    experiment deterministic.
    """
    if value is None:
        data = b"\x00null"
    elif isinstance(value, bool):
        data = b"\x01T" if value else b"\x01F"
    elif isinstance(value, int):
        data = b"\x02" + value.to_bytes(16, "little", signed=True)
    elif isinstance(value, float):
        if value == int(value) and abs(value) < 2**63:
            # ints and equal floats hash identically (SQL equality)
            data = b"\x02" + int(value).to_bytes(16, "little", signed=True)
        else:
            data = b"\x03" + struct.pack("<d", value)
    elif isinstance(value, str):
        data = b"\x04" + value.encode("utf-8")
    elif isinstance(value, bytes):
        data = b"\x05" + value
    else:
        data = b"\x06" + repr(value).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "little")


class HyperLogLog:
    """A HyperLogLog sketch with 2**precision registers.

    The default precision of 9 (512 registers, ~4.6 % standard error)
    keeps the 64-sketches-per-relation budget of Section 4.6 small.
    """

    __slots__ = ("precision", "registers")

    def __init__(self, precision: int = 9):
        if not 4 <= precision <= 16:
            raise ValueError("precision must be in [4, 16]")
        self.precision = precision
        self.registers = np.zeros(1 << precision, dtype=np.uint8)

    @property
    def num_registers(self) -> int:
        return len(self.registers)

    def add(self, value: object) -> None:
        self.add_hash(hash64(value))

    def add_hash(self, hashed: int) -> None:
        index = hashed & (self.num_registers - 1)
        remainder = hashed >> self.precision
        rank = (64 - self.precision) - remainder.bit_length() + 1
        if rank > self.registers[index]:
            self.registers[index] = rank

    def add_many(self, values: Iterable[object]) -> None:
        for value in values:
            self.add_hash(hash64(value))

    def estimate(self) -> float:
        m = self.num_registers
        raw = _alpha(m) * m * m / float(np.sum(np.exp2(-self.registers.astype(np.float64))))
        if raw <= 2.5 * m:
            zeros = int(np.count_nonzero(self.registers == 0))
            if zeros:
                return m * math.log(m / zeros)  # linear counting
        return raw

    def merge(self, other: "HyperLogLog") -> None:
        """Register-wise maximum; the merged sketch estimates the union."""
        if other.precision != self.precision:
            raise ValueError("cannot merge sketches of different precision")
        np.maximum(self.registers, other.registers, out=self.registers)

    def copy(self) -> "HyperLogLog":
        clone = HyperLogLog(self.precision)
        clone.registers = self.registers.copy()
        return clone

    def __len__(self) -> int:
        return round(self.estimate())


def estimate_distinct(values: Iterable[object], precision: int = 9) -> float:
    """One-shot distinct-count estimate."""
    sketch = HyperLogLog(precision)
    sketch.add_many(values)
    return sketch.estimate()
