"""Statistics substrate for query optimization (Section 4.6).

* :class:`HyperLogLog` — distinct-count sketches (64 per relation).
* :class:`FrequencyCounters` — bounded key-path frequency slots (256).
* :class:`BloomFilter` — non-extracted key paths per tile header.
* :class:`TileStatistics` / :class:`TableStatistics` — the per-tile
  collection and relation-level aggregation the optimizer reads.
"""

from repro.stats.bloom import BloomFilter
from repro.stats.frequency import FrequencyCounters
from repro.stats.hyperloglog import HyperLogLog, estimate_distinct, hash64
from repro.stats.table_stats import (
    ColumnStatistics,
    TableStatistics,
    TileStatistics,
)

__all__ = [
    "BloomFilter",
    "ColumnStatistics",
    "FrequencyCounters",
    "HyperLogLog",
    "TableStatistics",
    "TileStatistics",
    "estimate_distinct",
    "hash64",
]
