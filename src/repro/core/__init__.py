"""Core value model shared by every subsystem.

This package defines the primitive JSON value types (:mod:`~repro.core.types`),
typed key paths used by the extraction algorithms
(:mod:`~repro.core.jsonpath`), and date/time string detection
(:mod:`~repro.core.datetimes`).
"""

from repro.core.jsonpath import KeyPath, collect_key_paths
from repro.core.types import ColumnType, JsonType, json_type_of

__all__ = [
    "ColumnType",
    "JsonType",
    "KeyPath",
    "collect_key_paths",
    "json_type_of",
]
