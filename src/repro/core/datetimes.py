"""Detection and conversion of date/time strings (Section 4.9).

JSON has no date type, so real data stores dates as strings.  When a
tile column of strings looks like dates or timestamps, JSON tiles
extracts it as a SQL ``TIMESTAMP`` so that date-typed accesses avoid
per-tuple string parsing.  Access *as text* keeps returning the original
string from the JSONB fallback, because the internal representation
does not guarantee exact recreation of arbitrary input formats.

Timestamps are represented as integer microseconds since the Unix epoch
(UTC), which maps directly onto an int64 numpy column.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Optional

EPOCH = _dt.datetime(1970, 1, 1)

MICROS_PER_SECOND = 1_000_000
MICROS_PER_DAY = 86_400 * MICROS_PER_SECOND

# The formats we detect, tried in order.  Each entry: (regex, parser).
_ISO_DATE_RE = re.compile(r"(\d{4})-(\d{2})-(\d{2})\Z")
_ISO_DATETIME_RE = re.compile(
    r"(\d{4})-(\d{2})-(\d{2})[T ](\d{2}):(\d{2}):(\d{2})(?:\.(\d{1,6}))?Z?\Z"
)
_US_DATE_RE = re.compile(r"(\d{1,2})/(\d{1,2})/(\d{4})\Z")
# Twitter's created_at format: "Mon Jun 01 17:33:11 +0000 2020"
_TWITTER_RE = re.compile(
    r"(Mon|Tue|Wed|Thu|Fri|Sat|Sun) "
    r"(Jan|Feb|Mar|Apr|May|Jun|Jul|Aug|Sep|Oct|Nov|Dec) "
    r"(\d{2}) (\d{2}):(\d{2}):(\d{2}) \+0000 (\d{4})\Z"
)
_MONTHS = {
    name: number
    for number, name in enumerate(
        ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"],
        start=1,
    )
}


def _micros(year: int, month: int, day: int, hour: int = 0, minute: int = 0,
            second: int = 0, micro: int = 0) -> Optional[int]:
    try:
        moment = _dt.datetime(year, month, day, hour, minute, second, micro)
    except ValueError:
        return None
    return int((moment - EPOCH) // _dt.timedelta(microseconds=1))


def parse_datetime_string(text: str) -> Optional[int]:
    """Parse *text* as one of the supported date/time formats.

    Returns epoch microseconds, or ``None`` when the string is not a
    recognized date/time.
    """
    if not 8 <= len(text) <= 40:
        return None
    match = _ISO_DATE_RE.match(text)
    if match:
        year, month, day = (int(g) for g in match.groups())
        return _micros(year, month, day)
    match = _ISO_DATETIME_RE.match(text)
    if match:
        year, month, day, hour, minute, second = (int(g) for g in match.groups()[:6])
        fraction = match.group(7)
        micro = int(fraction.ljust(6, "0")) if fraction else 0
        return _micros(year, month, day, hour, minute, second, micro)
    match = _US_DATE_RE.match(text)
    if match:
        month, day, year = (int(g) for g in match.groups())
        return _micros(year, month, day)
    match = _TWITTER_RE.match(text)
    if match:
        month = _MONTHS[match.group(2)]
        day, hour, minute, second = (int(match.group(i)) for i in (3, 4, 5, 6))
        year = int(match.group(7))
        return _micros(year, month, day, hour, minute, second)
    return None


def looks_like_datetime(text: str) -> bool:
    """Cheap check used when sampling a candidate column (Section 4.9)."""
    return parse_datetime_string(text) is not None


def micros_to_datetime(micros: int) -> _dt.datetime:
    """Convert epoch microseconds back to a ``datetime``."""
    return EPOCH + _dt.timedelta(microseconds=int(micros))


def date_string(micros: int) -> str:
    """ISO date string (``YYYY-MM-DD``) for epoch microseconds."""
    return micros_to_datetime(micros).strftime("%Y-%m-%d")


def timestamp_string(micros: int) -> str:
    """ISO timestamp string for epoch microseconds."""
    return micros_to_datetime(micros).strftime("%Y-%m-%d %H:%M:%S")


def date_literal(text: str) -> int:
    """Parse a SQL date/timestamp literal; raise ``ValueError`` if invalid."""
    micros = parse_datetime_string(text)
    if micros is None:
        raise ValueError(f"invalid date/timestamp literal: {text!r}")
    return micros


def add_interval(micros: int, years: int = 0, months: int = 0, days: int = 0) -> int:
    """SQL ``date + interval`` arithmetic on epoch microseconds."""
    moment = micros_to_datetime(micros)
    month_index = moment.month - 1 + months + 12 * years
    year = moment.year + month_index // 12
    month = month_index % 12 + 1
    day = min(moment.day, _days_in_month(year, month))
    moved = moment.replace(year=year, month=month, day=day)
    moved += _dt.timedelta(days=days)
    return int((moved - EPOCH) // _dt.timedelta(microseconds=1))


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        nxt = _dt.date(year + 1, 1, 1)
    else:
        nxt = _dt.date(year, month + 1, 1)
    return (nxt - _dt.date(year, month, 1)).days
