"""Typed key paths.

A *key path* (Section 3.1) is the path of nested objects and arrays
followed to an actual key-value pair.  Object steps are key strings,
array steps are integer slots.  The extraction algorithm encodes the
nesting into the path (Section 3.5), so ``{"geo": {"lat": 1.9}}``
contributes the key path ``geo.lat`` and ``{"a": [7, 8]}`` contributes
``a[0]`` and ``a[1]``.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Tuple, Union

Step = Union[str, int]

_STEP_RE = re.compile(r"\[(\d+)\]|((?:[^.\[\\]|\\.)+)")


def _escape(key: str) -> str:
    return key.replace("\\", "\\\\").replace(".", "\\.").replace("[", "\\[")


def _unescape(key: str) -> str:
    return re.sub(r"\\(.)", r"\1", key)


class KeyPath:
    """Immutable sequence of object-key / array-slot steps.

    Instances are hashable and are used as dictionary keys throughout
    tile headers, itemset mining and the query engine.
    """

    __slots__ = ("steps", "_hash")

    def __init__(self, steps: Tuple[Step, ...] = ()):
        for step in steps:
            if not isinstance(step, (str, int)) or isinstance(step, bool):
                raise TypeError(f"invalid key path step: {step!r}")
        self.steps = tuple(steps)
        self._hash = hash(self.steps)

    @classmethod
    def parse(cls, text: str) -> "KeyPath":
        """Parse the dotted/bracketed textual form, e.g. ``user.id`` or
        ``entities.hashtags[0].text``.  Dots, brackets and backslashes
        inside keys are backslash-escaped."""
        if text == "":
            return cls(())
        steps: List[Step] = []
        pos = 0
        while pos < len(text):
            if text[pos] == ".":
                pos += 1
                continue
            match = _STEP_RE.match(text, pos)
            if match is None:
                raise ValueError(f"invalid key path text: {text!r}")
            if match.group(1) is not None:
                steps.append(int(match.group(1)))
            else:
                steps.append(_unescape(match.group(2)))
            pos = match.end()
        return cls(tuple(steps))

    def child(self, step: Step) -> "KeyPath":
        return KeyPath(self.steps + (step,))

    def parent(self) -> "KeyPath":
        if not self.steps:
            raise ValueError("the root path has no parent")
        return KeyPath(self.steps[:-1])

    def startswith(self, prefix: "KeyPath") -> bool:
        return self.steps[: len(prefix.steps)] == prefix.steps

    def relative_to(self, prefix: "KeyPath") -> "KeyPath":
        if not self.startswith(prefix):
            raise ValueError(f"{self} does not start with {prefix}")
        return KeyPath(self.steps[len(prefix.steps) :])

    @property
    def depth(self) -> int:
        """Nesting level: number of steps followed to reach the value."""
        return len(self.steps)

    @property
    def leaf(self) -> Step:
        if not self.steps:
            raise ValueError("the root path has no leaf step")
        return self.steps[-1]

    def lookup(self, value: object) -> object:
        """Follow this path inside a parsed JSON value.

        Returns ``None`` when any step is absent, mirroring the
        PostgreSQL semantics the paper adopts (Section 4.1).
        """
        current = value
        for step in self.steps:
            if isinstance(step, str):
                if not isinstance(current, dict) or step not in current:
                    return None
                current = current[step]
            else:
                if not isinstance(current, list) or step >= len(current) or step < 0:
                    return None
                current = current[step]
        return current

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KeyPath) and self.steps == other.steps

    def __lt__(self, other: "KeyPath") -> bool:
        # Mixed str/int steps: order by textual form for determinism.
        return str(self) < str(other)

    def __str__(self) -> str:
        parts: List[str] = []
        for step in self.steps:
            if isinstance(step, int):
                parts.append(f"[{step}]")
            else:
                if parts:
                    parts.append(".")
                parts.append(_escape(step))
        return "".join(parts)

    def __repr__(self) -> str:
        return f"KeyPath({str(self)!r})"


def collect_key_paths(
    document: object,
    max_array_elements: int = 8,
    _prefix: Optional[KeyPath] = None,
    _out: Optional[List[Tuple[KeyPath, "JsonType"]]] = None,
) -> List[Tuple[KeyPath, "JsonType"]]:
    """Collect all typed leaf key paths of *document* (Section 3.1 step 1).

    Arrays contribute their leading ``max_array_elements`` slots only
    (Section 3.5): when element counts vary between documents, only the
    leading elements can be frequent across a tile, so deeper slots are
    never extraction candidates and are left to the JSONB fallback.

    Empty objects/arrays contribute themselves as a single item so that
    their presence is still visible to the itemset miner.
    """
    from repro.core.types import JsonType, json_type_of

    if _out is None:
        _out = []
    prefix = _prefix if _prefix is not None else KeyPath()
    jtype = json_type_of(document)
    if jtype == JsonType.OBJECT:
        assert isinstance(document, dict)
        if not document:
            _out.append((prefix, JsonType.OBJECT))
        for key, value in document.items():
            collect_key_paths(value, max_array_elements, prefix.child(key), _out)
    elif jtype == JsonType.ARRAY:
        assert isinstance(document, (list, tuple))
        if not document:
            _out.append((prefix, JsonType.ARRAY))
        for slot, value in enumerate(document):
            if slot >= max_array_elements:
                break
            collect_key_paths(value, max_array_elements, prefix.child(slot), _out)
    else:
        if prefix.steps:
            _out.append((prefix, jtype))
        else:
            _out.append((KeyPath(), jtype))
    return _out
