"""Primitive JSON types and SQL column types.

The extraction algorithm of Section 3.4 treats a key path together with
its *primitive JSON type* as the itemset item: two key paths only match
if their value types match as well.  :class:`JsonType` enumerates those
primitive types, and :class:`ColumnType` enumerates the SQL types a
materialized tile column can carry.
"""

from __future__ import annotations

import enum
import re


class JsonType(enum.IntEnum):
    """Primitive type of a JSON value, as used in itemset items.

    ``NUMSTR`` is the paper's "numeric string" (Section 5.2): a JSON
    string whose content is an exact decimal number.  It is detected at
    encoding time so that typed accesses avoid expensive string casts
    while round-trip safety is preserved.
    """

    NULL = 0
    BOOL = 1
    INT = 2
    FLOAT = 3
    STRING = 4
    NUMSTR = 5
    OBJECT = 6
    ARRAY = 7

    @property
    def is_scalar(self) -> bool:
        return self not in (JsonType.OBJECT, JsonType.ARRAY)


class ColumnType(enum.IntEnum):
    """SQL type of a materialized tile column."""

    BOOL = 1
    INT64 = 2
    FLOAT64 = 3
    STRING = 4
    DECIMAL = 5
    TIMESTAMP = 6
    JSONB = 7

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INT64, ColumnType.FLOAT64, ColumnType.DECIMAL)


#: Mapping from the primitive JSON type of extracted values to the SQL
#: column type the tile column uses (Section 3.4).
COLUMN_TYPE_FOR_JSON = {
    JsonType.BOOL: ColumnType.BOOL,
    JsonType.INT: ColumnType.INT64,
    JsonType.FLOAT: ColumnType.FLOAT64,
    JsonType.STRING: ColumnType.STRING,
    JsonType.NUMSTR: ColumnType.DECIMAL,
}

# RFC 8259 number grammar, anchored.  Used both by the numeric-string
# detection (Section 5.2) and by tests.
_NUMERIC_STRING_RE = re.compile(r"-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?\Z")


def is_numeric_string(text: str) -> bool:
    """Return True if *text* is exactly an RFC 8259 number.

    Such strings are stored as the JSONB "numeric string" type so typed
    accesses can read them without a string-to-number cast while the
    exact textual representation is preserved (Section 5.2).
    """
    # Keep pathologically long inputs as plain strings: they are almost
    # certainly identifiers, and Decimal conversion cost would not pay off.
    if not text or len(text) > 64:
        return False
    return _NUMERIC_STRING_RE.match(text) is not None


def json_type_of(value: object) -> JsonType:
    """Classify a parsed Python JSON value into its primitive type."""
    if value is None:
        return JsonType.NULL
    # bool must be tested before int: bool is an int subclass.
    if isinstance(value, bool):
        return JsonType.BOOL
    if isinstance(value, int):
        return JsonType.INT
    if isinstance(value, float):
        return JsonType.FLOAT
    if isinstance(value, str):
        if is_numeric_string(value):
            return JsonType.NUMSTR
        return JsonType.STRING
    if isinstance(value, dict):
        return JsonType.OBJECT
    if isinstance(value, (list, tuple)):
        return JsonType.ARRAY
    raise TypeError(f"value of type {type(value).__name__} is not a JSON value")
