"""The wire protocol: newline-delimited JSON messages.

Every request is one JSON object on one line; every response is one
JSON object on one line.  A request carries a ``cmd`` and optionally an
``id`` that is echoed back, so simple clients can pipeline:

    {"id": 1, "cmd": "insert", "table": "tweets", "doc": {"a": 1}}
    {"id": 1, "ok": true, "inserted": 1, "pending": 1}

Human-debuggable by design: ``nc localhost 7617`` is a valid client.
"""

from __future__ import annotations

import datetime
import decimal
import json
from typing import Optional

#: one message (request or response) may not exceed this many bytes;
#: also passed as the asyncio stream limit so oversized lines fail
#: cleanly instead of buffering without bound
MAX_MESSAGE_BYTES = 32 * 1024 * 1024

#: bumped whenever the command set or a command's wire shape changes;
#: ``hello`` exchanges it so a coordinator refuses to drive a shard
#: built against a different protocol instead of failing mid-query
PROTOCOL_VERSION = 4

#: commands the server understands (kept here so client and server
#: cannot drift); the cluster-facing commands (``hello`` onward) are
#: spoken shard-to-coordinator but remain valid from any client
COMMANDS = ("ping", "create_table", "insert", "flush", "query", "explain",
            "stats", "checkpoint", "maintenance", "shutdown",
            "hello", "partial_query", "plan_fragments", "fetch_docs",
            "wal_fetch", "replica_status", "export_arrow")


class ProtocolError(Exception):
    """Malformed frame: not JSON, not an object, or missing ``cmd``."""


def _json_default(value):
    # query results may carry dates/decimals from ::date / numeric casts
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    if isinstance(value, decimal.Decimal):
        return float(value)
    if isinstance(value, bytes):
        return value.decode("utf-8", "replace")
    return str(value)


def encode(message: dict) -> bytes:
    """One response/request object as a newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":"),
                       default=_json_default) + "\n").encode("utf-8")


def decode_request(line: bytes) -> dict:
    """Parse one request line; raises :class:`ProtocolError` on junk."""
    text = line.decode("utf-8", "replace").strip()
    if not text:
        raise ProtocolError("empty request line")
    try:
        message = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    command = message.get("cmd")
    if not isinstance(command, str):
        raise ProtocolError('request must carry a string "cmd" field')
    if command not in COMMANDS:
        raise ProtocolError(f"unknown command {command!r}; "
                            f"expected one of {', '.join(COMMANDS)}")
    return message


def ok_response(request_id=None, **fields) -> dict:
    message = {"ok": True}
    if request_id is not None:
        message["id"] = request_id
    message.update(fields)
    return message


def error_response(message: str, request_id=None,
                   code: Optional[str] = None) -> dict:
    response = {"ok": False, "error": message}
    if code is not None:
        response["code"] = code
    if request_id is not None:
        response["id"] = request_id
    return response
