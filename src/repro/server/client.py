"""A small blocking client for the JSON-lines protocol.

Used by the tests, the CLI and the throughput benchmark; it is also a
reference for writing clients in other languages — one JSON object per
line in, one per line out.

    from repro.server import ServerClient

    with ServerClient("127.0.0.1", 7617) as client:
        client.create_table("events", "tiles", {"tile_size": 1024})
        client.insert_many("events", [{"id": 1}, {"id": 2}])
        result = client.query("select count(*) as n from events e")
        print(result.scalar())

The same class speaks to a cluster coordinator unchanged — the
coordinator serves the identical protocol, so pointing the client at
the coordinator's port *is* the cluster client (the ``ClusterClient``
alias exists for readability at call sites).
"""

from __future__ import annotations

import base64
import dataclasses
import json
import socket
import time
from typing import List, Optional, Sequence, Tuple

from repro.engine.executor import QueryResult
from repro.engine.scan import ScanCounters
from repro.errors import ReproError

from repro.server import protocol


class ServerError(ReproError):
    """The server answered ``ok: false``; carries its error code."""

    def __init__(self, message: str, code: Optional[str] = None):
        super().__init__(message)
        self.code = code


#: commands safe to re-send after a dropped connection — re-applying
#: them cannot change server state.  ``insert``, ``create_table`` and
#: ``shutdown`` are never auto-retried: the original request may have
#: been applied even though its ack was lost, and a blind re-send
#: would double-apply it.
_IDEMPOTENT_COMMANDS = frozenset({
    "ping", "hello", "query", "explain", "stats", "partial_query",
    "fetch_docs", "wal_fetch", "replica_status", "maintenance",
    "flush", "checkpoint", "export_arrow",
})


class ServerClient:
    """One blocking connection; requests are serialized per client.

    ``timeout`` bounds connect *and* every read, so a caller talking to
    a hung server gets ``socket.timeout`` instead of blocking forever.
    With ``retries`` > 0 a connection dropped mid-request (server
    restart) is reconnected and retried after ``retry_backoff``
    seconds, but only for idempotent commands; an ``insert`` whose ack
    was lost is **never** re-sent automatically — it surfaces as an
    error and the caller decides, because the server may have applied
    it (at-most-once stays the default ingest semantics).  The default
    is ``retries=0``: opt into reconnects at read-mostly call sites.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7617,
                 timeout: Optional[float] = 60.0, retries: int = 0,
                 retry_backoff: float = 0.2):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.retry_backoff = retry_backoff
        self._request_id = 0
        self._socket = None
        self._reader = None
        self._connect()

    def _connect(self) -> None:
        self._socket = socket.create_connection((self.host, self.port),
                                                timeout=self.timeout)
        self._reader = self._socket.makefile("rb")

    def _reconnect(self) -> None:
        self.close()
        time.sleep(self.retry_backoff)
        self._connect()

    # ------------------------------------------------------------------

    def _call(self, command: str, **fields) -> dict:
        self._request_id += 1
        request = {"id": self._request_id, "cmd": command, **fields}
        payload = protocol.encode(request)
        if len(payload) > protocol.MAX_MESSAGE_BYTES:
            raise ServerError(
                f"request of {len(payload)} bytes exceeds the protocol "
                f"frame limit of {protocol.MAX_MESSAGE_BYTES} bytes; "
                f"split the batch", code="protocol")
        # never auto-retry a command whose re-send could double-apply
        attempts = (self.retries + 1
                    if command in _IDEMPOTENT_COMMANDS else 1)
        for attempt in range(attempts):
            try:
                self._socket.sendall(payload)
                line = self._reader.readline()
            except (ConnectionResetError, BrokenPipeError):
                if attempt + 1 >= attempts:
                    raise
                self._reconnect()
                continue
            if not line:
                # orderly close between requests: one bounded retry
                if attempt + 1 >= attempts:
                    raise ServerError("connection closed by server",
                                      code="disconnected")
                self._reconnect()
                continue
            response = json.loads(line.decode("utf-8"))
            if not response.get("ok"):
                raise ServerError(
                    response.get("error", "unknown server error"),
                    code=response.get("code"))
            return response
        raise ServerError("connection closed by server",
                          code="disconnected")  # pragma: no cover

    # ------------------------------------------------------------------

    def ping(self) -> str:
        return self._call("ping")["result"]

    def hello(self, role: str = "client") -> dict:
        """Exchange protocol versions; raises :class:`ServerError` with
        code ``version_mismatch`` when the peer speaks a different
        protocol revision."""
        response = self._call("hello", version=protocol.PROTOCOL_VERSION,
                              role=role)
        peer = response.get("version")
        if peer != protocol.PROTOCOL_VERSION:
            raise ServerError(
                f"protocol version mismatch: peer speaks {peer}, "
                f"this client speaks {protocol.PROTOCOL_VERSION}",
                code="version_mismatch")
        return response

    def create_table(self, name: str, storage_format: Optional[str] = None,
                     config: Optional[dict] = None) -> dict:
        fields = {"name": name}
        if storage_format is not None:
            fields["format"] = storage_format
        if config is not None:
            fields["config"] = config
        return self._call("create_table", **fields)

    def insert(self, table: str, document: object) -> int:
        """Insert one document; returns the table's pending count."""
        return self._call("insert", table=table, doc=document)["pending"]

    def insert_many(self, table: str, documents: Sequence) -> int:
        """Insert a batch (one WAL group commit); returns pending."""
        return self._call("insert", table=table,
                          docs=list(documents))["pending"]

    def flush(self, table: Optional[str] = None) -> int:
        fields = {"table": table} if table else {}
        return self._call("flush", **fields)["sealed_tables"]

    def query(self, sql: str, options: Optional[dict] = None) -> QueryResult:
        fields = {"sql": sql}
        if options:
            fields["options"] = options
        response = self._call("query", **fields)
        wire = response.get("counters", {})
        known = {field.name for field in dataclasses.fields(ScanCounters)}
        counters = ScanCounters(**{key: value for key, value in wire.items()
                                   if key in known})
        return QueryResult(columns=response["columns"],
                           rows=[tuple(row) for row in response["rows"]],
                           counters=counters)

    def export_arrow(self, table: str) -> bytes:
        """Fetch *table* as Arrow IPC stream bytes.

        The client does not need ``pyarrow`` — it relays the decoded
        bytes; feed them to ``pyarrow.ipc.open_stream`` (or any Arrow
        implementation) to materialize the table.  The server raises
        ``bad_request`` when it lacks the optional ``pyarrow``
        dependency or the table does not exist.
        """
        response = self._call("export_arrow", table=table)
        return base64.b64decode(response["data"])

    def partial_query(self, sql: str, shard_index: int, shard_count: int,
                      mode: Optional[str] = None,
                      options: Optional[dict] = None) -> dict:
        """Shard half of a scatter/gather query; returns the raw
        ``{"mode", "pieces", "counters"}`` payload for the coordinator
        merge (``repro.engine.partial``)."""
        fields = {"sql": sql, "shard_index": shard_index,
                  "shard_count": shard_count}
        if mode is not None:
            fields["mode"] = mode
        if options:
            fields["options"] = options
        return self._call("partial_query", **fields)

    def fetch_docs(self, table: str, start: int = 0,
                   limit: int = 2000) -> dict:
        """One page of a table's documents in row order:
        ``{"docs", "next", "total"}``."""
        return self._call("fetch_docs", table=table, start=start,
                          limit=limit)

    def wal_fetch(self, table: str, from_total: int = 0,
                  limit: int = 10000) -> dict:
        """WAL records from a cumulative offset:
        ``{"docs", "next", "total", "resync"}`` (``resync`` true when
        the offset was pruned and the caller must re-page documents)."""
        return self._call("wal_fetch", table=table, from_total=from_total,
                          limit=limit)

    def replica_status(self) -> dict:
        return self._call("replica_status")

    def explain(self, sql: str, options: Optional[dict] = None) -> str:
        fields = {"sql": sql}
        if options:
            fields["options"] = options
        return self._call("explain", **fields)["plan"]

    def stats(self, table: Optional[str] = None) -> dict:
        fields = {"table": table} if table else {}
        return self._call("stats", **fields)

    def checkpoint(self) -> dict:
        return self._call("checkpoint")["written"]

    def maintenance(self, action: str = "status") -> dict:
        """Drive the server's maintenance daemon: ``status`` (default),
        ``pause``, ``resume`` or ``force`` (run one cycle now).  The
        response carries ``enabled``, the daemon's ``maintenance``
        status dict and — for ``force`` — the ``executed`` actions."""
        return self._call("maintenance", action=action)

    def shutdown(self, checkpoint: bool = True) -> None:
        self._call("shutdown", checkpoint=checkpoint)

    # ------------------------------------------------------------------

    def close(self) -> None:
        try:
            if self._reader is not None:
                self._reader.close()
        finally:
            if self._socket is not None:
                self._socket.close()
            self._reader = None
            self._socket = None


    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: the coordinator speaks the same protocol on its own port, so the
#: cluster-transparent client is the plain client pointed at it
ClusterClient = ServerClient
