"""A small blocking client for the JSON-lines protocol.

Used by the tests, the CLI and the throughput benchmark; it is also a
reference for writing clients in other languages — one JSON object per
line in, one per line out.

    from repro.server import ServerClient

    with ServerClient("127.0.0.1", 7617) as client:
        client.create_table("events", "tiles", {"tile_size": 1024})
        client.insert_many("events", [{"id": 1}, {"id": 2}])
        result = client.query("select count(*) as n from events e")
        print(result.scalar())
"""

from __future__ import annotations

import dataclasses
import json
import socket
from typing import List, Optional, Sequence, Tuple

from repro.engine.executor import QueryResult
from repro.engine.scan import ScanCounters
from repro.errors import ReproError

from repro.server import protocol


class ServerError(ReproError):
    """The server answered ``ok: false``; carries its error code."""

    def __init__(self, message: str, code: Optional[str] = None):
        super().__init__(message)
        self.code = code


class ServerClient:
    """One blocking connection; requests are serialized per client."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7617,
                 timeout: Optional[float] = 60.0):
        self.host = host
        self.port = port
        self._socket = socket.create_connection((host, port),
                                                timeout=timeout)
        self._reader = self._socket.makefile("rb")
        self._request_id = 0

    # ------------------------------------------------------------------

    def _call(self, command: str, **fields) -> dict:
        self._request_id += 1
        request = {"id": self._request_id, "cmd": command, **fields}
        self._socket.sendall(protocol.encode(request))
        line = self._reader.readline()
        if not line:
            raise ServerError("connection closed by server",
                              code="disconnected")
        response = json.loads(line.decode("utf-8"))
        if not response.get("ok"):
            raise ServerError(response.get("error", "unknown server error"),
                              code=response.get("code"))
        return response

    # ------------------------------------------------------------------

    def ping(self) -> str:
        return self._call("ping")["result"]

    def create_table(self, name: str, storage_format: Optional[str] = None,
                     config: Optional[dict] = None) -> dict:
        fields = {"name": name}
        if storage_format is not None:
            fields["format"] = storage_format
        if config is not None:
            fields["config"] = config
        return self._call("create_table", **fields)

    def insert(self, table: str, document: object) -> int:
        """Insert one document; returns the table's pending count."""
        return self._call("insert", table=table, doc=document)["pending"]

    def insert_many(self, table: str, documents: Sequence) -> int:
        """Insert a batch (one WAL group commit); returns pending."""
        return self._call("insert", table=table,
                          docs=list(documents))["pending"]

    def flush(self, table: Optional[str] = None) -> int:
        fields = {"table": table} if table else {}
        return self._call("flush", **fields)["sealed_tables"]

    def query(self, sql: str, options: Optional[dict] = None) -> QueryResult:
        fields = {"sql": sql}
        if options:
            fields["options"] = options
        response = self._call("query", **fields)
        wire = response.get("counters", {})
        known = {field.name for field in dataclasses.fields(ScanCounters)}
        counters = ScanCounters(**{key: value for key, value in wire.items()
                                   if key in known})
        return QueryResult(columns=response["columns"],
                           rows=[tuple(row) for row in response["rows"]],
                           counters=counters)

    def explain(self, sql: str, options: Optional[dict] = None) -> str:
        fields = {"sql": sql}
        if options:
            fields["options"] = options
        return self._call("explain", **fields)["plan"]

    def stats(self, table: Optional[str] = None) -> dict:
        fields = {"table": table} if table else {}
        return self._call("stats", **fields)

    def checkpoint(self) -> dict:
        return self._call("checkpoint")["written"]

    def maintenance(self, action: str = "status") -> dict:
        """Drive the server's maintenance daemon: ``status`` (default),
        ``pause``, ``resume`` or ``force`` (run one cycle now).  The
        response carries ``enabled``, the daemon's ``maintenance``
        status dict and — for ``force`` — the ``executed`` actions."""
        return self._call("maintenance", action=action)

    def shutdown(self, checkpoint: bool = True) -> None:
        self._call("shutdown", checkpoint=checkpoint)

    # ------------------------------------------------------------------

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
