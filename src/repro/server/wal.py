"""Per-table write-ahead logging for the ingest path.

Durability contract (the paper's §4.7 visibility rule, made crash
safe): an ``insert`` is acknowledged only after its document is
appended (and optionally fsync'ed) to the table's WAL segment.  Tiles
are sealed from the in-memory buffer later, in the background; a
checkpoint persists the relation — sealed tiles *and* the still
buffered tail — via ``storage/persist.py`` and then truncates the WAL.

Crash-recovery bookkeeping uses epochs instead of a separate position
file, so there is no window where the snapshot and the WAL disagree:

* every WAL segment carries an *epoch* in its header; truncation
  atomically replaces the segment with an empty one at ``epoch + 1``;
* a checkpoint stores ``(epoch, record_count)`` *inside* the ``.jtile``
  snapshot (``save_relation(extra=...)``), committing snapshot and WAL
  position in one atomic rename;
* replay skips the first ``record_count`` records when the on-disk
  epoch still equals the snapshot's epoch (crash after snapshot
  rename, before truncate) and replays everything when the epoch is
  newer (normal restart).

Replication (DESIGN.md §7) adds a *cumulative* coordinate system on
top of the per-segment one: each segment header also stores ``base``,
the number of records that lived in earlier epochs of the same table.
``base + record_count`` is the table's total acknowledged record count
across all epochs — a monotone shipping offset that survives
checkpoint truncation.  Truncation archives the sealed segment under
``wal/archive/`` (pruned to the newest few) so a replica that is a few
epochs behind can still :meth:`~WriteAheadLog.fetch` the records it
missed; a replica further behind than the archive window must resync
from the primary's documents instead.

File layout: magic ``JWAL2``, little-endian u32 epoch, u64 base, then
records of ``u32 length | u32 crc32 | payload`` where the payload is
the UTF-8 JSON document.  ``JWAL1`` segments (no base field) are still
readable — their base is taken as zero.  A torn tail (partial record
or crc mismatch) is dropped on open — those records were never
acknowledged.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import threading
import zlib
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.errors import StorageError

WAL_MAGIC = b"JWAL2"
WAL_MAGIC_V1 = b"JWAL1"
_HEADER = struct.Struct("<IQ")         # epoch, cumulative base
_HEADER_V1 = struct.Struct("<I")       # epoch only
_RECORD = struct.Struct("<II")         # payload length, crc32
_HEADER_BYTES = len(WAL_MAGIC) + _HEADER.size

#: how many archived (truncated) segments to keep per table for
#: replica catch-up before they are pruned
ARCHIVE_KEEP = 16


def _scan(data: bytes, path: Path) -> Tuple[int, int, int, List[bytes]]:
    """Validate *data*; returns (epoch, base, valid prefix bytes,
    payloads).  Accepts both the current ``JWAL2`` and the legacy
    ``JWAL1`` layout (base 0)."""
    magic = data[:len(WAL_MAGIC)]
    if magic == WAL_MAGIC:
        if len(data) < _HEADER_BYTES:
            raise StorageError(f"{path} is not a WAL segment")
        epoch, base = _HEADER.unpack_from(data, len(WAL_MAGIC))
        pos = _HEADER_BYTES
    elif magic == WAL_MAGIC_V1:
        if len(data) < len(WAL_MAGIC_V1) + _HEADER_V1.size:
            raise StorageError(f"{path} is not a WAL segment")
        (epoch,) = _HEADER_V1.unpack_from(data, len(WAL_MAGIC_V1))
        base = 0
        pos = len(WAL_MAGIC_V1) + _HEADER_V1.size
    else:
        raise StorageError(f"{path} is not a WAL segment")
    payloads: List[bytes] = []
    while pos + _RECORD.size <= len(data):
        length, crc = _RECORD.unpack_from(data, pos)
        end = pos + _RECORD.size + length
        if end > len(data):
            break  # torn tail: record was cut mid-write
        payload = data[pos + _RECORD.size : end]
        if zlib.crc32(payload) != crc:
            break  # torn tail: payload corrupted
        payloads.append(payload)
        pos = end
    return epoch, base, pos, payloads


class WriteAheadLog:
    """One append-only segment file for one table."""

    def __init__(self, path: Union[str, Path], sync: bool = True,
                 archive: bool = True, archive_keep: int = ARCHIVE_KEEP):
        self.path = Path(path)
        self.sync = sync
        #: keep truncated segments under ``archive/`` for replica
        #: catch-up; off for journals, whose history has no reader
        self.archive = archive
        self.archive_keep = archive_keep
        self._lock = threading.Lock()
        self._handle = None
        self.epoch = 1
        self.base = 0
        self.record_count = 0
        self._open()

    def _open(self) -> None:
        if self.path.exists():
            data = self.path.read_bytes()
            epoch, base, valid, payloads = _scan(data, self.path)
            self.epoch = epoch
            self.base = base
            self.record_count = len(payloads)
            self._handle = self.path.open("r+b")
            if valid < len(data):  # drop the unacknowledged torn tail
                self._handle.truncate(valid)
            self._handle.seek(valid)
        else:
            self._handle = self.path.open("w+b")
            self._handle.write(WAL_MAGIC + _HEADER.pack(self.epoch,
                                                        self.base))
            self._flush()

    def _flush(self) -> None:
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------

    def append(self, document: object) -> int:
        """Durably log one document; returns the new record count."""
        return self.append_many([document])

    def append_many(self, documents: Iterable[object]) -> int:
        """Durably log a batch with a single flush/fsync (group commit)."""
        parts = []
        count = 0
        for document in documents:
            payload = json.dumps(document,
                                 separators=(",", ":")).encode("utf-8")
            parts.append(_RECORD.pack(len(payload), zlib.crc32(payload)))
            parts.append(payload)
            count += 1
        if not count:
            return self.record_count
        with self._lock:
            self._handle.write(b"".join(parts))
            self._flush()
            self.record_count += count
            return self.record_count

    def replay(self) -> List[object]:
        """Every acknowledged document in the segment, in append order."""
        with self._lock:
            data = self.path.read_bytes()
        _epoch, _base, _valid, payloads = _scan(data, self.path)
        return [json.loads(payload.decode("utf-8")) for payload in payloads]

    def position(self) -> Dict[str, int]:
        """The ``(epoch, records)`` pair a checkpoint stores in its
        snapshot — see :func:`records_to_skip`."""
        with self._lock:
            return {"epoch": self.epoch, "records": self.record_count}

    def total_records(self) -> int:
        """Cumulative acknowledged records across all epochs — the
        monotone offset replicas ship against."""
        with self._lock:
            return self.base + self.record_count

    def truncate(self) -> None:
        """Atomically replace the segment with an empty next-epoch one
        (called after a checkpoint made its records redundant).  The
        sealed segment is archived for replica catch-up first."""
        with self._lock:
            next_epoch = self.epoch + 1
            next_base = self.base + self.record_count
            if self.archive and self.record_count:
                archive_dir = self.path.parent / "archive"
                archive_dir.mkdir(exist_ok=True)
                final = archive_dir / \
                    f"{self.path.stem}.{self.epoch:08d}.wal"
                # copy to a .tmp name then rename, so a concurrent
                # ``fetch`` never observes a half-copied archive (the
                # .tmp suffix also keeps it out of the archive glob)
                temp_archive = final.with_name(final.name + ".tmp")
                shutil.copy2(self.path, temp_archive)
                os.replace(temp_archive, final)
                self._prune_archives(archive_dir)
            temp = self.path.with_name(self.path.name + ".tmp")
            with temp.open("wb") as handle:
                handle.write(WAL_MAGIC + _HEADER.pack(next_epoch, next_base))
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.close()
            os.replace(temp, self.path)
            self.epoch = next_epoch
            self.base = next_base
            self.record_count = 0
            self._handle = self.path.open("r+b")
            self._handle.seek(0, os.SEEK_END)

    def _prune_archives(self, archive_dir: Path) -> None:
        archives = sorted(archive_dir.glob(f"{self.path.stem}.*.wal"))
        stale = archives[:-self.archive_keep]
        # a crash between copy and rename can strand a .tmp copy
        stale += list(archive_dir.glob(f"{self.path.stem}.*.wal.tmp"))
        for path in stale:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent prune
                pass

    # ------------------------------------------------------------------

    def fetch(self, from_total: int, limit: int = 10000
              ) -> Tuple[List[object], int]:
        """Records starting at cumulative offset *from_total*, reading
        archived segments when the offset predates the live one.
        Returns ``(documents, next_total)``.  Raises
        :class:`StorageError` when the offset has been pruned — or when
        a concurrent prune opened a gap mid-assembly — because the
        returned stream must be contiguous; the caller resyncs from the
        primary's documents instead."""
        with self._lock:
            base = self.base
            data = self.path.read_bytes()
        segments: List[Tuple[int, List[bytes]]] = []
        if from_total < base:
            archive_dir = self.path.parent / "archive"
            for archived in sorted(archive_dir.glob(
                    f"{self.path.stem}.*.wal")):
                try:
                    raw = archived.read_bytes()
                except OSError:
                    continue  # pruned between glob and read
                _a_epoch, a_base, _valid, payloads = _scan(raw, archived)
                if a_base + len(payloads) > from_total:
                    segments.append((a_base, payloads))
        _epoch, _base, _valid, live = _scan(data, self.path)
        segments.append((base, live))
        documents: List[object] = []
        for seg_base, payloads in segments:
            if len(documents) >= limit:
                break
            needed = from_total + len(documents)
            if seg_base > needed:
                # a gap: the records at ``needed`` were pruned (or an
                # archive vanished mid-read) — never paper over it by
                # skipping ahead, the stream must stay contiguous
                raise StorageError(
                    f"WAL records at offset {needed} of "
                    f"{self.path.stem} are no longer available; "
                    f"resync required")
            start = needed - seg_base
            for payload in payloads[start:start + (limit - len(documents))]:
                documents.append(json.loads(payload.decode("utf-8")))
        return documents, from_total + len(documents)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def records_to_skip(wal: WriteAheadLog, snapshot_position: dict) -> int:
    """How many leading WAL records the ``.jtile`` snapshot already
    contains.  Same epoch → the snapshot covered the first ``records``
    entries (crash happened before truncation); newer WAL epoch → the
    segment was truncated after the snapshot, nothing to skip."""
    if not snapshot_position:
        return 0
    if wal.epoch == snapshot_position.get("epoch"):
        return int(snapshot_position.get("records", 0))
    return 0


class WalManager:
    """The ``wal/`` directory of a data dir: one segment per table."""

    def __init__(self, directory: Union[str, Path], sync: bool = True):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync = sync
        self._segments: Dict[str, WriteAheadLog] = {}
        self._lock = threading.Lock()

    def for_table(self, table: str) -> WriteAheadLog:
        with self._lock:
            segment = self._segments.get(table)
            if segment is None:
                segment = WriteAheadLog(self.directory / f"{table}.wal",
                                        sync=self.sync)
                self._segments[table] = segment
            return segment

    def journal(self, name: str) -> WriteAheadLog:
        """A non-table WAL segment (``<name>.journal``) for subsystem
        bookkeeping — e.g. the maintenance action journal.  Excluded
        from :meth:`existing_tables` (which only globs ``*.wal``) so
        recovery never mistakes it for an ingest log.  Never fsynced
        or archived: the journal records *that* an action ran, not row
        data."""
        key = f"{name}.journal"
        with self._lock:
            segment = self._segments.get(key)
            if segment is None:
                segment = WriteAheadLog(self.directory / key, sync=False,
                                        archive=False)
                self._segments[key] = segment
            return segment

    def existing_tables(self) -> List[str]:
        return sorted(path.stem for path in self.directory.glob("*.wal"))

    def close(self) -> None:
        with self._lock:
            for segment in self._segments.values():
                segment.close()
            self._segments.clear()
