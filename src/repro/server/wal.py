"""Per-table write-ahead logging for the ingest path.

Durability contract (the paper's §4.7 visibility rule, made crash
safe): an ``insert`` is acknowledged only after its document is
appended (and optionally fsync'ed) to the table's WAL segment.  Tiles
are sealed from the in-memory buffer later, in the background; a
checkpoint persists the relation — sealed tiles *and* the still
buffered tail — via ``storage/persist.py`` and then truncates the WAL.

Crash-recovery bookkeeping uses epochs instead of a separate position
file, so there is no window where the snapshot and the WAL disagree:

* every WAL segment carries an *epoch* in its header; truncation
  atomically replaces the segment with an empty one at ``epoch + 1``;
* a checkpoint stores ``(epoch, record_count)`` *inside* the ``.jtile``
  snapshot (``save_relation(extra=...)``), committing snapshot and WAL
  position in one atomic rename;
* replay skips the first ``record_count`` records when the on-disk
  epoch still equals the snapshot's epoch (crash after snapshot
  rename, before truncate) and replays everything when the epoch is
  newer (normal restart).

File layout: magic ``JWAL1``, little-endian u32 epoch, then records of
``u32 length | u32 crc32 | payload`` where the payload is the UTF-8
JSON document.  A torn tail (partial record or crc mismatch) is
dropped on open — those records were never acknowledged.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.errors import StorageError

WAL_MAGIC = b"JWAL1"
_HEADER = struct.Struct("<I")          # epoch
_RECORD = struct.Struct("<II")         # payload length, crc32
_HEADER_BYTES = len(WAL_MAGIC) + _HEADER.size


def _scan(data: bytes, path: Path) -> Tuple[int, int, List[bytes]]:
    """Validate *data*; returns (epoch, bytes of valid prefix, payloads)."""
    if len(data) < _HEADER_BYTES or data[:len(WAL_MAGIC)] != WAL_MAGIC:
        raise StorageError(f"{path} is not a WAL segment")
    (epoch,) = _HEADER.unpack_from(data, len(WAL_MAGIC))
    payloads: List[bytes] = []
    pos = _HEADER_BYTES
    while pos + _RECORD.size <= len(data):
        length, crc = _RECORD.unpack_from(data, pos)
        end = pos + _RECORD.size + length
        if end > len(data):
            break  # torn tail: record was cut mid-write
        payload = data[pos + _RECORD.size : end]
        if zlib.crc32(payload) != crc:
            break  # torn tail: payload corrupted
        payloads.append(payload)
        pos = end
    return epoch, pos, payloads


class WriteAheadLog:
    """One append-only segment file for one table."""

    def __init__(self, path: Union[str, Path], sync: bool = True):
        self.path = Path(path)
        self.sync = sync
        self._lock = threading.Lock()
        self._handle = None
        self.epoch = 1
        self.record_count = 0
        self._open()

    def _open(self) -> None:
        if self.path.exists():
            data = self.path.read_bytes()
            epoch, valid, payloads = _scan(data, self.path)
            self.epoch = epoch
            self.record_count = len(payloads)
            self._handle = self.path.open("r+b")
            if valid < len(data):  # drop the unacknowledged torn tail
                self._handle.truncate(valid)
            self._handle.seek(valid)
        else:
            self._handle = self.path.open("w+b")
            self._handle.write(WAL_MAGIC + _HEADER.pack(self.epoch))
            self._flush()

    def _flush(self) -> None:
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------

    def append(self, document: object) -> int:
        """Durably log one document; returns the new record count."""
        return self.append_many([document])

    def append_many(self, documents: Iterable[object]) -> int:
        """Durably log a batch with a single flush/fsync (group commit)."""
        parts = []
        count = 0
        for document in documents:
            payload = json.dumps(document,
                                 separators=(",", ":")).encode("utf-8")
            parts.append(_RECORD.pack(len(payload), zlib.crc32(payload)))
            parts.append(payload)
            count += 1
        if not count:
            return self.record_count
        with self._lock:
            self._handle.write(b"".join(parts))
            self._flush()
            self.record_count += count
            return self.record_count

    def replay(self) -> List[object]:
        """Every acknowledged document in the segment, in append order."""
        with self._lock:
            data = self.path.read_bytes()
        _epoch, _valid, payloads = _scan(data, self.path)
        return [json.loads(payload.decode("utf-8")) for payload in payloads]

    def position(self) -> Dict[str, int]:
        """The ``(epoch, records)`` pair a checkpoint stores in its
        snapshot — see :func:`records_to_skip`."""
        with self._lock:
            return {"epoch": self.epoch, "records": self.record_count}

    def truncate(self) -> None:
        """Atomically replace the segment with an empty next-epoch one
        (called after a checkpoint made its records redundant)."""
        with self._lock:
            next_epoch = self.epoch + 1
            temp = self.path.with_name(self.path.name + ".tmp")
            with temp.open("wb") as handle:
                handle.write(WAL_MAGIC + _HEADER.pack(next_epoch))
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.close()
            os.replace(temp, self.path)
            self.epoch = next_epoch
            self.record_count = 0
            self._handle = self.path.open("r+b")
            self._handle.seek(0, os.SEEK_END)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def records_to_skip(wal: WriteAheadLog, snapshot_position: dict) -> int:
    """How many leading WAL records the ``.jtile`` snapshot already
    contains.  Same epoch → the snapshot covered the first ``records``
    entries (crash happened before truncation); newer WAL epoch → the
    segment was truncated after the snapshot, nothing to skip."""
    if not snapshot_position:
        return 0
    if wal.epoch == snapshot_position.get("epoch"):
        return int(snapshot_position.get("records", 0))
    return 0


class WalManager:
    """The ``wal/`` directory of a data dir: one segment per table."""

    def __init__(self, directory: Union[str, Path], sync: bool = True):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync = sync
        self._segments: Dict[str, WriteAheadLog] = {}
        self._lock = threading.Lock()

    def for_table(self, table: str) -> WriteAheadLog:
        with self._lock:
            segment = self._segments.get(table)
            if segment is None:
                segment = WriteAheadLog(self.directory / f"{table}.wal",
                                        sync=self.sync)
                self._segments[table] = segment
            return segment

    def journal(self, name: str) -> WriteAheadLog:
        """A non-table WAL segment (``<name>.journal``) for subsystem
        bookkeeping — e.g. the maintenance action journal.  Excluded
        from :meth:`existing_tables` (which only globs ``*.wal``) so
        recovery never mistakes it for an ingest log.  Never fsynced:
        the journal records *that* an action ran, not row data."""
        key = f"{name}.journal"
        with self._lock:
            segment = self._segments.get(key)
            if segment is None:
                segment = WriteAheadLog(self.directory / key, sync=False)
                self._segments[key] = segment
            return segment

    def existing_tables(self) -> List[str]:
        return sorted(path.stem for path in self.directory.glob("*.wal"))

    def close(self) -> None:
        with self._lock:
            for segment in self._segments.values():
                segment.close()
            self._segments.clear()
