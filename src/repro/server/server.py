"""The asyncio TCP server: concurrent queries + durable ingest.

One process serves many clients over the JSON-lines protocol
(``repro.server.protocol``).  The division of labour:

* the **event loop** owns connection IO and dispatch — it never parses
  documents, mines tiles, or touches disk;
* **insert** appends the documents to the table's WAL (fsync before
  acknowledgement when ``wal_sync``) and into the relation's insert
  buffer, on the IO pool;
* a **background sealer** turns full insert buffers into tiles
  (mining + extraction) on the query pool, holding the table's writer
  lock only for the instant the finished tile becomes visible — the
  paper's §4.7 rule: "the tile is visible to scanners only once it is
  fully created";
* **queries** run on the query pool under per-table reader locks
  (``repro.server.executor``);
* a **checkpoint** persists each relation (sealed tiles and the
  buffered tail) with its WAL position into the ``.jtile`` snapshot,
  then truncates the WAL.  Restart = load snapshots, replay WAL tails.

Data directory layout::

    data_dir/
      catalog.json        # table name -> storage format + config
      <table>.jtile       # checkpointed snapshot (atomic rename)
      wal/<table>.wal     # inserts acknowledged since the checkpoint
"""

from __future__ import annotations

import asyncio
import base64
import dataclasses
import json
import os
import re
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Optional, Union

from repro.database import Database
from repro.engine.morsels import pool_stats
from repro.maintenance import (
    MaintenanceConfig,
    MaintenanceDaemon,
    MaintenanceJournal,
)
from repro.engine.plan import QueryOptions
from repro.errors import ExecutionError, ReproError
from repro.storage.formats import StorageFormat
from repro.storage.tile_cache import GLOBAL_TILE_CACHE
from repro.storage.tilestore import GLOBAL_TILE_STORE
from repro.storage.persist import (
    read_relation_extra,
    save_relation,
)
from repro.storage.relation import Relation
from repro.tiles.extractor import ExtractionConfig

from repro.server import protocol
from repro.server.executor import QueryExecutor, options_from_dict
from repro.server.locks import TableLockRegistry
from repro.server.wal import WalManager, records_to_skip

_TABLE_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

_FORMATS = {fmt.value: fmt for fmt in StorageFormat}

_CONFIG_FIELDS = ("tile_size", "partition_size", "threshold",
                  "mining_budget", "max_array_elements", "detect_dates",
                  "enable_reordering")


def _config_from_dict(raw: Optional[dict],
                      base: ExtractionConfig) -> ExtractionConfig:
    if not raw:
        return base
    fields = {name: getattr(base, name) for name in _CONFIG_FIELDS}
    fields.update({key: value for key, value in raw.items()
                   if key in fields})
    return ExtractionConfig(**fields)


class JsonTilesServer:
    """A durable query/ingest service over one data directory."""

    def __init__(self, data_dir: Union[str, Path],
                 host: str = "127.0.0.1", port: int = 0, *,
                 default_format: StorageFormat = StorageFormat.TILES,
                 config: Optional[ExtractionConfig] = None,
                 wal_sync: bool = True,
                 query_workers: int = 8,
                 parallelism: int = 1,
                 cache_mb: float = 64.0,
                 memory_mb: Optional[float] = None,
                 multipath_shred: Optional[bool] = None,
                 enable_kernels: Optional[bool] = None,
                 late_materialization: Optional[bool] = None,
                 checkpoint_interval: Optional[float] = None,
                 maintenance: bool = False,
                 maintenance_config: Optional[MaintenanceConfig] = None,
                 lsm_config=None,
                 read_only: bool = False,
                 role: str = "server"):
        self.data_dir = Path(data_dir)
        self.host = host
        self.port = port
        self.default_format = default_format
        self.config = config or ExtractionConfig()
        self.wal_sync = wal_sync
        self.query_workers = query_workers
        #: morsel workers per query; combined with the resolved-tile
        #: cache these are the server's execution-policy defaults for
        #: every query that doesn't pin its own options
        self.parallelism = max(1, parallelism)
        self.cache_mb = cache_mb
        #: process-wide tile residency budget (``serve --memory-mb``);
        #: None keeps whatever ``REPRO_MEMORY_MB`` configured at import
        #: (default: unlimited — every loaded tile stays resident)
        self.memory_mb = memory_mb
        self.default_options = QueryOptions(
            parallelism=self.parallelism,
            tile_cache=cache_mb > 0)
        if multipath_shred is not None:
            # None keeps the QueryOptions default (on, or the
            # REPRO_MULTIPATH_SHRED override)
            self.default_options.enable_multipath_shred = multipath_shred
        if enable_kernels is not None:
            # None keeps the QueryOptions default (on, or the
            # REPRO_KERNELS override)
            self.default_options.enable_kernels = enable_kernels
        if late_materialization is not None:
            # None keeps the QueryOptions default (on, or the
            # REPRO_LATEMAT override)
            self.default_options.enable_late_materialization = \
                late_materialization
        self.checkpoint_interval = checkpoint_interval
        #: online maintenance (DESIGN.md §6d): tile health, §3.2
        #: reordering and re-extraction as a background asyncio task
        self.maintenance_enabled = maintenance
        self.maintenance_config = maintenance_config
        self.maintenance: Optional[MaintenanceDaemon] = None
        self._maintenance_task: Optional[asyncio.Task] = None
        #: LSM tiering (``serve --lsm`` / ``REPRO_LSM_*``): stamped on
        #: every base table so the maintenance planner proposes merges;
        #: an enabled config implies the maintenance daemon, which is
        #: the only thing that executes compactions
        self.lsm_config = lsm_config
        if lsm_config is not None and lsm_config.enabled:
            self.maintenance_enabled = True
        #: read replicas reject client writes over the protocol; the
        #: replication task applies documents through internal calls
        self.read_only = read_only
        #: advertised in ``hello``/``stats`` ("server", "shard",
        #: "replica", "coordinator") — observability only
        self.role = role
        #: hook for the replication subsystem (cluster/replica.py): a
        #: callable returning the replica's applied offsets and lag,
        #: surfaced verbatim by the ``replica_status`` command
        self.replication_status = None

        self.db: Optional[Database] = None
        self.wals: Optional[WalManager] = None
        self.locks = TableLockRegistry()
        self.executor: Optional[QueryExecutor] = None
        #: base (non-child) relations served for ingest, by name
        self._base: Dict[str, Relation] = {}

        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._stop_checkpoint = True
        self._thread: Optional[threading.Thread] = None
        self._checkpoint_task: Optional[asyncio.Task] = None
        #: small pool for blocking disk work (WAL appends, checkpoints)
        self._io_pool = ThreadPoolExecutor(max_workers=4,
                                           thread_name_prefix="repro-io")
        self._seal_flags_lock = threading.Lock()
        self._seal_inflight: Dict[str, bool] = {}
        self._counters_lock = threading.Lock()
        self._counters = {"inserts": 0, "queries": 0, "seals": 0,
                          "checkpoints": 0, "connections_total": 0}
        self._connections_active = 0
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # durable open / recovery

    def _catalog_path(self) -> Path:
        return self.data_dir / "catalog.json"

    def _load_catalog(self) -> Dict[str, dict]:
        path = self._catalog_path()
        if not path.exists():
            return {}
        return json.loads(path.read_text(encoding="utf-8")).get("tables", {})

    def _write_catalog(self) -> None:
        tables = {
            name: {
                "format": relation.format.value,
                "config": {field: getattr(relation.config, field)
                           for field in _CONFIG_FIELDS},
            }
            for name, relation in sorted(self._base.items())
        }
        path = self._catalog_path()
        temp = path.with_name(path.name + ".tmp")
        with temp.open("w", encoding="utf-8") as handle:
            json.dump({"tables": tables}, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)

    def _open_database(self) -> None:
        """Load snapshots, re-create cataloged tables, replay WALs."""
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.db = Database.open(self.data_dir, self.default_format,
                                self.config)
        catalog = self._load_catalog()
        snapshot_names = {path.stem
                          for path in self.data_dir.glob("*.jtile")}
        for name, entry in catalog.items():
            if name not in self.db.tables:
                self.db.create_table(
                    name, _FORMATS[entry["format"]],
                    _config_from_dict(entry.get("config"), self.config))
        for name in sorted(snapshot_names | set(catalog)):
            self._base[name] = self.db.tables[name]
            # snapshot reload built fresh tile handles: residency
            # charges and cache entries keyed on the previous
            # incarnation can never be served again
            GLOBAL_TILE_STORE.discard_table(name)
            GLOBAL_TILE_CACHE.invalidate_table(name)
        self.wals = WalManager(self.data_dir / "wal", sync=self.wal_sync)
        for name in self.wals.existing_tables():
            relation = self._base.get(name)
            if relation is None:
                continue  # WAL without catalog entry or snapshot: stale
            wal = self.wals.for_table(name)
            position = {}
            snapshot = self.data_dir / f"{name}.jtile"
            if snapshot.exists():
                position = read_relation_extra(snapshot).get("wal", {})
            records = wal.replay()
            for document in records[records_to_skip(wal, position):]:
                relation.insert(document)
        for relation in self._base.values():
            # the background sealer owns tile creation from here on
            relation.auto_seal = False
            relation.lsm_config = self.lsm_config

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        if self.cache_mb > 0:
            GLOBAL_TILE_CACHE.set_capacity(int(self.cache_mb * 2**20))
        if self.memory_mb is not None:
            GLOBAL_TILE_STORE.set_budget_mb(self.memory_mb)
        self._open_database()
        self.executor = QueryExecutor(self.db, self.locks,
                                      max_workers=self.query_workers)
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=protocol.MAX_MESSAGE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        if self.checkpoint_interval:
            self._checkpoint_task = self._loop.create_task(
                self._checkpoint_periodically())
        if self.maintenance_enabled:
            config = self.maintenance_config or MaintenanceConfig.from_env()
            if self.role == "shard" and config.allow_reordering:
                # a coordinator's block routing depends on this shard's
                # physical row order: reordering would silently corrupt
                # the global layout (DESIGN.md §7)
                config = dataclasses.replace(config, allow_reordering=False)
            self.maintenance = MaintenanceDaemon(
                lambda: dict(self._base), config,
                journal=MaintenanceJournal(self.wals.journal("maintenance")),
                append_guard_for=lambda name:
                    (lambda: self.locks.write_locked(name)),
                backpressure=lambda:
                    self.executor.active_queries
                    >= config.backpressure_active_queries)
            self._maintenance_task = self._loop.create_task(
                self._maintain_periodically())

    @property
    def address(self):
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_stop` (or the ``shutdown``
        command), then shut down gracefully."""
        await self._stop_event.wait()
        await self.stop(checkpoint=self._stop_checkpoint)

    def request_stop(self, checkpoint: bool = True) -> None:
        self._stop_checkpoint = checkpoint
        self._loop.call_soon_threadsafe(self._stop_event.set)

    async def stop(self, checkpoint: bool = True) -> None:
        """Stop accepting, drain, optionally checkpoint, release."""
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            self._checkpoint_task = None
        if self._maintenance_task is not None:
            self._maintenance_task.cancel()
            self._maintenance_task = None
        if self._server is not None:
            self._server.close()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)
            await self._server.wait_closed()
            self._server = None
        if checkpoint:
            await self._loop.run_in_executor(self._io_pool,
                                             self._checkpoint_all)
        self.executor.shutdown()
        self._io_pool.shutdown(wait=True)
        self.wals.close()

    # -- background-thread embedding (tests, benchmarks, CLI) ----------

    def start_in_thread(self) -> "JsonTilesServer":
        """Run the server on a daemon thread; returns once the socket
        is bound (``self.port`` holds the real port)."""
        started = threading.Event()
        failure: list = []

        def runner():
            async def main():
                try:
                    await self.start()
                except Exception as exc:  # surface bind/recovery errors
                    failure.append(exc)
                    started.set()
                    return
                started.set()
                await self.serve_forever()

            asyncio.run(main())

        self._thread = threading.Thread(target=runner, daemon=True,
                                        name="repro-server")
        self._thread.start()
        started.wait()
        if failure:
            raise failure[0]
        return self

    def stop_in_thread(self, checkpoint: bool = True,
                       timeout: float = 30.0) -> None:
        """Graceful stop from another thread.  ``checkpoint=False``
        skips the final checkpoint — the WAL alone must then carry
        every acknowledged insert (the crash-recovery tests use this
        as a hard kill)."""
        if self._thread is None:
            return
        self.request_stop(checkpoint=checkpoint)
        self._thread.join(timeout=timeout)
        self._thread = None

    # ------------------------------------------------------------------
    # ingest path

    def _append_and_buffer(self, name: str, relation: Relation,
                           documents: list) -> int:
        """WAL first, buffer second, atomically with respect to a
        concurrent checkpoint (which holds the write lock)."""
        with self.locks.read_locked([name]):
            self.wals.for_table(name).append_many(documents)
            relation.insert_many(documents)
            return relation.pending_inserts

    def _seal_table(self, name: str, relation: Relation) -> None:
        try:
            while relation.pending_inserts >= relation.config.tile_size:
                relation.flush_inserts(
                    append_guard=lambda: self.locks.write_locked(name))
                self._bump("seals")
        finally:
            with self._seal_flags_lock:
                self._seal_inflight[name] = False
        if relation.pending_inserts >= relation.config.tile_size:
            self._schedule_seal(name, relation)  # raced a late insert

    def _schedule_seal(self, name: str, relation: Relation) -> None:
        with self._seal_flags_lock:
            if self._seal_inflight.get(name):
                return
            self._seal_inflight[name] = True
        self.executor.submit_call(self._seal_table, name, relation)

    # ------------------------------------------------------------------
    # checkpointing

    def _checkpoint_table(self, name: str, relation: Relation) -> int:
        """Snapshot one table and truncate its WAL.  The write lock
        freezes ingest for the duration, so the stored WAL position
        exactly matches the snapshot's contents."""
        wal = self.wals.for_table(name)
        # seal_paused first (same seal-lock -> write-lock order as
        # flush_inserts): an in-flight background seal holds documents
        # in neither the buffer nor the tiles, and a snapshot taken in
        # that window would lose them once the WAL is truncated
        with relation.seal_paused():
            with self.locks.write_locked(name):
                position = wal.position()
                size = save_relation(relation,
                                     self.data_dir / f"{name}.jtile",
                                     extra={"wal": position})
                wal.truncate()
        return size

    def _checkpoint_all(self) -> Dict[str, int]:
        written = {}
        for name in sorted(self._base):
            written[name] = self._checkpoint_table(name, self._base[name])
        self._write_catalog()
        self._bump("checkpoints")
        return written

    async def _checkpoint_periodically(self) -> None:
        while True:
            await asyncio.sleep(self.checkpoint_interval)
            await self._loop.run_in_executor(self._io_pool,
                                             self._checkpoint_all)

    # ------------------------------------------------------------------
    # online maintenance (DESIGN.md §6d)

    async def _maintain_periodically(self) -> None:
        """Run maintenance cycles on the query pool.  ``run_cycle``
        swallows per-action failures itself; the extra guard here only
        keeps a planner-level surprise from killing the task."""
        while True:
            await asyncio.sleep(self.maintenance.config.interval_s)
            try:
                await asyncio.wrap_future(
                    self.executor.submit_call(self.maintenance.run_cycle))
            except asyncio.CancelledError:
                raise
            except Exception:
                self.maintenance._bump("errors")

    # ------------------------------------------------------------------
    # connection handling

    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._counters_lock:
            self._counters[counter] += amount

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._bump("connections_total")
        self._connections_active += 1
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    writer.write(protocol.encode(protocol.error_response(
                        "request line exceeds the message size limit",
                        code="protocol")))
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    request = protocol.decode_request(line)
                except protocol.ProtocolError as exc:
                    writer.write(protocol.encode(protocol.error_response(
                        str(exc), code="protocol")))
                    await writer.drain()
                    continue
                response = await self._dispatch(request)
                writer.write(protocol.encode(response))
                await writer.drain()
                if request["cmd"] == "shutdown" and response.get("ok"):
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(task)
            self._connections_active -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: dict) -> dict:
        request_id = request.get("id")
        command = request["cmd"]
        try:
            handler = getattr(self, f"_cmd_{command}")
            return await handler(request, request_id)
        except ReproError as exc:
            return protocol.error_response(str(exc), request_id,
                                           code=type(exc).__name__)
        except (KeyError, TypeError, ValueError) as exc:
            return protocol.error_response(f"bad request: {exc}",
                                           request_id, code="bad_request")

    # -- command handlers ----------------------------------------------

    async def _cmd_ping(self, request: dict, request_id) -> dict:
        return protocol.ok_response(request_id, result="pong")

    async def _cmd_hello(self, request: dict, request_id) -> dict:
        """Version/capability handshake.  Always answers — a peer on a
        different protocol revision gets a well-formed response telling
        it so, instead of ``unknown command`` mid-query."""
        return protocol.ok_response(
            request_id,
            version=protocol.PROTOCOL_VERSION,
            role=self.role,
            read_only=self.read_only,
            commands=list(protocol.COMMANDS))

    async def _cmd_create_table(self, request: dict, request_id) -> dict:
        if self.read_only:
            return protocol.error_response(
                "this server is a read replica; create tables on the "
                "primary", request_id, code="read_only")
        name = request["name"]
        if not isinstance(name, str) or not _TABLE_NAME.match(name):
            return protocol.error_response(
                f"invalid table name {name!r}", request_id,
                code="bad_request")
        if "__" in name:
            return protocol.error_response(
                "table names may not contain '__' "
                "(reserved for Tiles-* child tables)", request_id,
                code="bad_request")
        format_name = request.get("format", self.default_format.value)
        if format_name not in _FORMATS:
            return protocol.error_response(
                f"unknown storage format {format_name!r}", request_id,
                code="bad_request")
        await self._loop.run_in_executor(
            self._io_pool, self.register_table, name, format_name,
            request.get("config"))
        return protocol.ok_response(request_id, table=name,
                                    format=format_name)

    def register_table(self, name: str, format_name: Optional[str] = None,
                       config_dict: Optional[dict] = None) -> Relation:
        """Create and catalog a base table (blocking; call off the
        event loop).  Also the entry point the replication subsystem
        uses to mirror the primary's catalog — catalog + WAL segment
        exist before this returns, so the table definition survives a
        crash even with zero checkpoints."""
        config = _config_from_dict(config_dict, self.config)
        relation = self.db.create_table(
            name, _FORMATS[format_name or self.default_format.value],
            config)
        relation.auto_seal = False
        relation.lsm_config = self.lsm_config
        self._base[name] = relation
        self._write_catalog()
        self.wals.for_table(name)
        return relation

    def apply_replicated(self, name: str, documents: list) -> int:
        """Apply replicated documents through the normal ingest path
        (own WAL + buffer + background seal), bypassing the protocol's
        read-only gate.  Blocking; call off the event loop."""
        relation = self._base[name]
        pending = self._append_and_buffer(name, relation, documents)
        self._bump("inserts", len(documents))
        if pending >= relation.config.tile_size:
            self._schedule_seal(name, relation)
        return pending

    async def _cmd_insert(self, request: dict, request_id) -> dict:
        if self.read_only:
            return protocol.error_response(
                "this server is a read replica; write to the primary",
                request_id, code="read_only")
        name = request["table"]
        relation = self._base.get(name)
        if relation is None:
            return protocol.error_response(f"unknown table {name!r}",
                                           request_id, code="bad_request")
        documents = request["docs"] if "docs" in request \
            else [request["doc"]]
        if not isinstance(documents, list):
            return protocol.error_response(
                '"docs" must be a JSON array of documents', request_id,
                code="bad_request")
        # parse JSON-text documents up front, so nothing that can fail
        # later reaches the WAL (an acknowledged record must replay)
        documents = [json.loads(doc) if isinstance(doc, str) else doc
                     for doc in documents]
        pending = await self._loop.run_in_executor(
            self._io_pool, self._append_and_buffer, name, relation,
            documents)
        self._bump("inserts", len(documents))
        if pending >= relation.config.tile_size:
            self._schedule_seal(name, relation)
        return protocol.ok_response(request_id, inserted=len(documents),
                                    pending=pending)

    async def _cmd_flush(self, request: dict, request_id) -> dict:
        name = request.get("table")
        tables = [name] if name else sorted(self._base)
        if name and name not in self._base:
            return protocol.error_response(f"unknown table {name!r}",
                                           request_id, code="bad_request")

        def flush_all():
            sealed = 0
            for table in tables:
                relation = self._base[table]
                had_pending = relation.pending_inserts > 0
                relation.flush_inserts(
                    append_guard=lambda table=table:
                        self.locks.write_locked(table))
                sealed += had_pending
            return sealed

        sealed = await asyncio.wrap_future(
            self.executor.submit_call(flush_all))
        return protocol.ok_response(request_id, sealed_tables=sealed)

    async def _cmd_query(self, request: dict, request_id) -> dict:
        options = options_from_dict(request.get("options"),
                                    self.default_options)
        result = await asyncio.wrap_future(
            self.executor.submit(request["sql"], options))
        self._bump("queries")
        return protocol.ok_response(
            request_id,
            columns=result.columns,
            rows=[list(row) for row in result.rows],
            counters=result.counters.as_dict(),
        )

    async def _cmd_partial_query(self, request: dict, request_id) -> dict:
        """Shard half of a coordinator scatter/gather query: flush,
        bind locally, return ``(block, chunk)``-tagged partial states
        (``repro.engine.partial``).  ``shard_index``/``shard_count``
        fix this shard's place in the global block round-robin;
        ``mode`` (optional) is the coordinator's own classification,
        double-checked shard-side against planner drift."""
        options = options_from_dict(request.get("options"),
                                    self.default_options)
        result = await asyncio.wrap_future(self.executor.submit_call(
            self.executor.execute_partial, request["sql"], options,
            int(request["shard_index"]), int(request["shard_count"]),
            request.get("mode"), request.get("fragment")))
        self._bump("queries")
        return protocol.ok_response(request_id, **result)

    async def _cmd_plan_fragments(self, request: dict, request_id) -> dict:
        """Plan (never execute) a statement as a fragment DAG from this
        shard's local statistics (DESIGN.md §10).  The coordinator
        gathers one vote per shard and proceeds with a broadcast join
        only on unanimity — any disagreement declines to gather."""
        options = options_from_dict(request.get("options"),
                                    self.default_options)
        plan = await asyncio.wrap_future(self.executor.submit_call(
            self.executor.plan_fragments, request["sql"], options))
        return protocol.ok_response(request_id, plan=plan)

    async def _cmd_fetch_docs(self, request: dict, request_id) -> dict:
        """Page through a table's documents in row order (flushing
        first, so the page reflects every acknowledged insert).  Used
        by the coordinator's gather fallback and by replica resync."""
        name = request["table"]
        relation = self._base.get(name)
        if relation is None:
            return protocol.error_response(f"unknown table {name!r}",
                                           request_id, code="bad_request")
        start = max(0, int(request.get("start", 0)))
        limit = max(1, int(request.get("limit", 2000)))

        def fetch():
            relation.flush_inserts(
                append_guard=lambda: self.locks.write_locked(name))
            with self.locks.read_locked([name]):
                total = relation.row_count
                stop = min(total, start + limit)
                return [relation.document(row)
                        for row in range(start, stop)], total

        documents, total = await asyncio.wrap_future(
            self.executor.submit_call(fetch))
        return protocol.ok_response(request_id, docs=documents,
                                    next=start + len(documents),
                                    total=total)

    async def _cmd_export_arrow(self, request: dict, request_id) -> dict:
        """Export a table's resolved tile columns as an Arrow IPC
        stream (base64 on the wire).  Zero-copy on the server side —
        see ``repro.engine.arrow_export``; requires the optional
        ``pyarrow`` dependency on the server (the client needs none to
        relay the bytes)."""
        name = request["table"]
        relation = self._base.get(name)
        if relation is None:
            return protocol.error_response(f"unknown table {name!r}",
                                           request_id, code="bad_request")

        def export() -> bytes:
            from repro.engine.arrow_export import (relation_to_arrow,
                                                   table_to_ipc_bytes)

            relation.flush_inserts(
                append_guard=lambda: self.locks.write_locked(name))
            with self.locks.read_locked([name]):
                return table_to_ipc_bytes(relation_to_arrow(relation))

        try:
            payload = await asyncio.wrap_future(
                self.executor.submit_call(export))
        except ExecutionError as exc:  # pyarrow missing on the server
            return protocol.error_response(str(exc), request_id,
                                           code="bad_request")
        return protocol.ok_response(
            request_id,
            format="arrow_ipc_stream",
            data=base64.b64encode(payload).decode("ascii"))

    async def _cmd_wal_fetch(self, request: dict, request_id) -> dict:
        """Ship WAL records from a cumulative offset (live segment +
        archived epochs).  ``resync: true`` — not an error — when the
        offset predates the archive window; the replica then falls
        back to ``fetch_docs``."""
        name = request["table"]
        if name not in self._base:
            return protocol.error_response(f"unknown table {name!r}",
                                           request_id, code="bad_request")
        wal = self.wals.for_table(name)
        from_total = max(0, int(request.get("from_total", 0)))
        limit = max(1, int(request.get("limit", 10000)))
        try:
            documents, next_total = await self._loop.run_in_executor(
                self._io_pool, wal.fetch, from_total, limit)
        except (ReproError, OSError):
            # pruned offset, a mid-stream gap, or an archive file that
            # vanished under the read — all mean the same thing to the
            # replica: this offset cannot be served, resync instead
            return protocol.ok_response(
                request_id, resync=True, docs=[], next=from_total,
                total=wal.total_records())
        return protocol.ok_response(
            request_id, resync=False, docs=documents, next=next_total,
            total=wal.total_records())

    async def _cmd_replica_status(self, request: dict, request_id) -> dict:
        if self.replication_status is None:
            return protocol.ok_response(request_id, replica=False,
                                        role=self.role)
        status = self.replication_status()
        return protocol.ok_response(request_id, replica=True,
                                    role=self.role, **status)

    async def _cmd_explain(self, request: dict, request_id) -> dict:
        options = options_from_dict(request.get("options"),
                                    self.default_options)
        plan = await asyncio.wrap_future(self.executor.submit_call(
            self.executor.explain, request["sql"], options))
        return protocol.ok_response(request_id, plan=plan)

    async def _cmd_stats(self, request: dict, request_id) -> dict:
        name = request.get("table")
        tables = {}
        for table, relation in sorted(self._base.items()):
            if name and table != name:
                continue
            wal = self.wals.for_table(table)
            tables[table] = {
                "format": relation.format.value,
                "rows": relation.row_count,
                "pending": relation.pending_inserts,
                "tiles": len(relation.tiles),
                "wal_records": wal.record_count,
                # cumulative shipping offset + table definition: enough
                # for a coordinator or replica to rebuild its catalog
                # and resume replication from stats alone
                "wal_total": wal.total_records(),
                "config": {field: getattr(relation.config, field)
                           for field in _CONFIG_FIELDS},
                "scan": dict(relation.scan_totals),
                "residency": relation.residency_report(),
                # per-level occupancy + compaction counters (repro.lsm)
                "lsm": relation.lsm_status(),
            }
        with self._counters_lock:
            counters = dict(self._counters)
        counters["connections_active"] = self._connections_active
        uptime = time.monotonic() - self._started_at
        pool = pool_stats()
        wall = max(uptime, 1e-9) * max(pool["workers"], 1)
        pool["utilization"] = round(min(1.0, pool["busy_seconds"] / wall), 4)
        extra = {}
        if self.maintenance is not None:
            extra["maintenance"] = await asyncio.wrap_future(
                self.executor.submit_call(self.maintenance.status))
        return protocol.ok_response(
            request_id, tables=tables, counters=counters,
            cache=GLOBAL_TILE_CACHE.stats(),
            residency=GLOBAL_TILE_STORE.stats(), pool=pool,
            uptime_s=round(uptime, 3), role=self.role,
            read_only=self.read_only, **extra)

    async def _cmd_maintenance(self, request: dict, request_id) -> dict:
        """Operator surface of the maintenance daemon:
        ``status`` (default) / ``pause`` / ``resume`` / ``force``
        (run one cycle immediately, ignoring pause + backpressure)."""
        action = request.get("action", "status")
        if action not in ("status", "pause", "resume", "force"):
            return protocol.error_response(
                f"unknown maintenance action {action!r}; expected "
                "status, pause, resume or force", request_id,
                code="bad_request")
        if self.maintenance is None:
            return protocol.ok_response(request_id, enabled=False,
                                        maintenance={"enabled": False})
        executed = None
        if action == "pause":
            self.maintenance.pause()
        elif action == "resume":
            self.maintenance.resume()
        elif action == "force":
            executed = await asyncio.wrap_future(
                self.executor.submit_call(self.maintenance.run_cycle, True))
        status = await asyncio.wrap_future(
            self.executor.submit_call(self.maintenance.status))
        fields = {"enabled": True, "maintenance": status}
        if executed is not None:
            fields["executed"] = executed
        return protocol.ok_response(request_id, **fields)

    async def _cmd_checkpoint(self, request: dict, request_id) -> dict:
        written = await self._loop.run_in_executor(self._io_pool,
                                                   self._checkpoint_all)
        return protocol.ok_response(request_id, written=written)

    async def _cmd_shutdown(self, request: dict, request_id) -> dict:
        checkpoint = bool(request.get("checkpoint", True))
        self._stop_checkpoint = checkpoint
        self._loop.call_soon_threadsafe(self._stop_event.set)
        return protocol.ok_response(request_id, stopping=True)


def run_server(data_dir: Union[str, Path], host: str = "127.0.0.1",
               port: int = 7617, **kwargs) -> None:
    """Blocking entry point used by ``python -m repro serve``."""

    async def main():
        server = JsonTilesServer(data_dir, host, port, **kwargs)
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except NotImplementedError:  # non-Unix event loops
                pass
        print(f"repro server listening on {server.host}:{server.port} "
              f"(data dir: {server.data_dir})", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            await server.stop()
            raise

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
