"""Concurrent query execution over immutable sealed tiles.

SELECTs run on a :class:`~concurrent.futures.ThreadPoolExecutor` so
multiple client sessions make progress at once (scans are numpy-heavy,
which releases the GIL for the vectorized kernels).  Each query takes
the *read* side of every referenced table's readers/writer lock for
its whole lifetime; tile sealing and checkpointing take the write side
— so a scan can never observe a half-appended tile.

Visibility: acknowledged inserts sit in the relation's insert buffer
until sealed.  By default the executor seals a table's pending buffer
(under the write lock) before scanning it, so a query observes every
insert acknowledged before it started — the tile-granular snapshot the
paper's §4.7 rule implies, extended with read-your-writes.
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Optional, Set

from repro.engine.executor import QueryResult
from repro.engine.plan import QueryOptions
from repro.sql.ast import SelectStmt, TableRefAst
from repro.sql.parser import parse

from repro.server.locks import TableLockRegistry

_OPTION_FIELDS = {field.name for field in dataclasses.fields(QueryOptions)}


def options_from_dict(raw: Optional[dict],
                      defaults: Optional[QueryOptions] = None) -> QueryOptions:
    """Build :class:`QueryOptions` from a wire dict, ignoring unknown
    keys so older clients keep working against newer servers.

    *defaults* supplies the server's execution policy (query
    parallelism, resolved-tile cache) for every key the client leaves
    unspecified — a client can still pin any option explicitly.
    """
    base = defaults if defaults is not None else QueryOptions()
    known = {key: value for key, value in (raw or {}).items()
             if key in _OPTION_FIELDS}
    return dataclasses.replace(base, **known)


def _tables_of_ref(ref: TableRefAst, cte_names: frozenset) -> Set[str]:
    if ref.subquery is not None:
        return referenced_tables(ref.subquery, cte_names)
    if ref.name and ref.name not in cte_names:
        return {ref.name}
    return set()


def referenced_tables(statement: SelectStmt,
                      cte_names: frozenset = frozenset()) -> Set[str]:
    """Every base-table name a statement touches (CTEs excluded),
    across FROM items, LEFT JOINs, derived tables and UNION branches —
    the lock set of a query."""
    scope = cte_names | frozenset(name for name, _ in statement.ctes)
    names: Set[str] = set()
    for _name, cte in statement.ctes:
        names |= referenced_tables(cte, scope)
    for ref in statement.from_tables:
        names |= _tables_of_ref(ref, scope)
    for join in statement.left_joins:
        names |= _tables_of_ref(join.right, scope)
    for branch in statement.unions:
        names |= referenced_tables(branch, scope)
    return names


class QueryExecutor:
    """Runs SELECTs for the server, one worker thread per in-flight
    query, with per-table read locks held for the query's duration."""

    def __init__(self, db, locks: Optional[TableLockRegistry] = None,
                 max_workers: int = 8, auto_flush: bool = True):
        self.db = db
        self.locks = locks or TableLockRegistry()
        self.auto_flush = auto_flush
        self._pool = ThreadPoolExecutor(max_workers=max_workers,
                                        thread_name_prefix="repro-query")
        self._counter_lock = threading.Lock()
        self.queries_executed = 0
        self._active = 0

    @property
    def active_queries(self) -> int:
        """Queries currently executing (not merely queued) — the
        maintenance daemon's backpressure signal."""
        with self._counter_lock:
            return self._active

    # ------------------------------------------------------------------

    def lock_set(self, sql: str) -> Set[str]:
        """The registered tables a query would lock (parse-only)."""
        return referenced_tables(parse(sql)) & set(self.db.tables)

    def _prepare(self, tables: Set[str]) -> None:
        """Seal pending inserts of every referenced table so the scan
        observes all acknowledged documents (write lock guards the
        instant each new tile becomes visible).

        Called unconditionally — not only when the buffer looks
        non-empty — because ``flush_inserts`` serializes on the
        relation's seal lock: it therefore also *waits out* an
        in-flight background seal, whose documents are momentarily in
        neither the buffer nor the tiles."""
        if not self.auto_flush:
            return
        for name in sorted(tables):
            relation = self.db.tables.get(name)
            if relation is not None:
                relation.flush_inserts(
                    append_guard=lambda name=name:
                        self.locks.write_locked(name))

    def execute(self, sql: str,
                options: Optional[QueryOptions] = None) -> QueryResult:
        """Blocking execution with locking; called from pool threads."""
        with self._counter_lock:
            self._active += 1
        try:
            tables = self.lock_set(sql)
            self._prepare(tables)
            with self.locks.read_locked(tables):
                result = self.db.sql(sql, options)
        finally:
            with self._counter_lock:
                self._active -= 1
                self.queries_executed += 1
        return result

    def execute_partial(self, sql: str, options: Optional[QueryOptions],
                        shard_index: int, shard_count: int,
                        expected_mode: Optional[str] = None,
                        fragment: Optional[dict] = None) -> dict:
        """Shard side of a coordinator's scatter/gather query
        (DESIGN.md §7): bind locally, then compute JSON-serializable
        partial states over this shard's rows.  Same flush-then-lock
        discipline as :meth:`execute`, so the partial observes every
        insert acknowledged before it started.

        With *fragment*, runs one half of a broadcast join instead
        (DESIGN.md §10): ``{"phase": "build", "build": alias}`` scans
        the build alias and ships its surviving rows;
        ``{"phase": "probe", "probe", "build", "columns", "types",
        "rows"}`` joins this shard's probe chunks against the
        broadcast build relation.
        """
        from repro.engine.partial import (
            execute_build_fragment,
            execute_partial,
            execute_probe_fragment,
        )
        from repro.sql.binder import Binder

        with self._counter_lock:
            self._active += 1
        try:
            tables = self.lock_set(sql)
            self._prepare(tables)
            with self.locks.read_locked(tables):
                block = Binder(self.db.tables, options).bind(parse(sql))
                options = options or QueryOptions()
                if fragment is not None:
                    if fragment.get("phase") == "build":
                        return execute_build_fragment(
                            block, options, shard_index, shard_count,
                            fragment["build"])
                    return execute_probe_fragment(
                        block, options, shard_index, shard_count,
                        fragment, expected_mode)
                return execute_partial(block, options,
                                       shard_index, shard_count,
                                       expected_mode)
        finally:
            with self._counter_lock:
                self._active -= 1
                self.queries_executed += 1

    def plan_fragments(self, sql: str,
                       options: Optional[QueryOptions]) -> dict:
        """Plan (never execute) a statement as a fragment DAG from this
        shard's local statistics — the coordinator's consensus vote
        (its own catalog skeleton carries no sketches, so orientation
        is decided where the data lives)."""
        from repro.engine.fragments import plan_fragments
        from repro.sql.binder import Binder

        tables = self.lock_set(sql)
        self._prepare(tables)
        with self.locks.read_locked(tables):
            block = Binder(self.db.tables, options).bind(parse(sql))
            return plan_fragments(block, options or QueryOptions()).to_dict()

    def explain(self, sql: str,
                options: Optional[QueryOptions] = None) -> str:
        tables = self.lock_set(sql)
        self._prepare(tables)
        with self.locks.read_locked(tables):
            return self.db.explain(sql, options)

    def submit(self, sql: str,
               options: Optional[QueryOptions] = None) -> Future:
        return self._pool.submit(self.execute, sql, options)

    def submit_call(self, fn, *args) -> Future:
        """Run an arbitrary callable on the query pool (used by the
        server for explain and background sealing)."""
        return self._pool.submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)
