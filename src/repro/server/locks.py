"""Per-table readers/writer locks.

Scans take the read side for the duration of a query; tile sealing and
checkpointing take the write side for the instant a finished tile (or
snapshot) becomes visible.  The lock is writer-preferring so a steady
stream of queries cannot starve the sealer, which would let the insert
buffer grow without bound.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterable, List


class ReadWriteLock:
    """A writer-preferring readers/writer lock."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()


class TableLockRegistry:
    """One :class:`ReadWriteLock` per table name, created on demand.

    Multi-table acquisition is always in sorted-name order, so a query
    joining ``a`` and ``b`` cannot deadlock against a sealer or a
    checkpoint walking the same tables.
    """

    def __init__(self):
        self._locks: Dict[str, ReadWriteLock] = {}
        self._registry_lock = threading.Lock()

    def lock(self, table: str) -> ReadWriteLock:
        with self._registry_lock:
            lock = self._locks.get(table)
            if lock is None:
                lock = self._locks[table] = ReadWriteLock()
            return lock

    @contextmanager
    def read_locked(self, tables: Iterable[str]):
        ordered: List[ReadWriteLock] = [self.lock(name)
                                        for name in sorted(set(tables))]
        for lock in ordered:
            lock.acquire_read()
        try:
            yield
        finally:
            for lock in reversed(ordered):
                lock.release_read()

    @contextmanager
    def write_locked(self, table: str):
        with self.lock(table).write_locked():
            yield
