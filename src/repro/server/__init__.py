"""``repro.server`` — a concurrent query/ingest service with
WAL-backed durability.

The embedded library (``repro.Database``) becomes a network service:

* :class:`JsonTilesServer` — asyncio TCP server speaking a JSON-lines
  protocol (``query``, ``explain``, ``insert``, ``flush``,
  ``create_table``, ``stats``, ``checkpoint``, ``maintenance``,
  ``ping``, ``shutdown``);
* :class:`QueryExecutor` — SELECTs on a thread pool under per-table
  readers/writer locks, so tile sealing never races a scan;
* :mod:`repro.server.wal` — every insert is logged (and optionally
  fsync'ed) before acknowledgement, replayed on restart, truncated at
  checkpoints;
* :class:`ServerClient` — a small blocking client.

Start one with ``python -m repro serve --data-dir ./data``.
"""

from repro.server.client import ServerClient, ServerError
from repro.server.executor import QueryExecutor, referenced_tables
from repro.server.locks import ReadWriteLock, TableLockRegistry
from repro.server.server import JsonTilesServer, run_server
from repro.server.wal import WalManager, WriteAheadLog

__all__ = [
    "JsonTilesServer",
    "QueryExecutor",
    "ReadWriteLock",
    "ServerClient",
    "ServerError",
    "TableLockRegistry",
    "WalManager",
    "WriteAheadLog",
    "referenced_tables",
    "run_server",
]
