"""Benchmark harness: timing, geometric means, report tables.

Every benchmark regenerates one table or figure of the paper's
evaluation (Section 6): it prints the measured values next to the
paper's reference numbers and appends the table to
``benchmarks/results/``.  Absolute numbers are not comparable (the
substrate here is a Python engine, not Umbra on a 32-core box); the
*shape* — who wins, by roughly what factor — is what each bench checks.
"""

from __future__ import annotations

import math
import os
import statistics
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence

DEFAULT_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))

#: benchmark scale knob: 1.0 = the default small scale used in CI;
#: raise via REPRO_BENCH_SCALE for closer-to-paper data volumes.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(value: float) -> float:
    return value * SCALE


def time_call(fn: Callable[[], object],
              repeats: int = DEFAULT_REPEATS) -> float:
    """Median wall-clock seconds of *fn* over *repeats* runs."""
    samples = []
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def time_query(db, query: str, options=None,
               repeats: int = DEFAULT_REPEATS) -> float:
    return time_call(lambda: db.sql(query, options), repeats)


def geomean(values: Iterable[float]) -> float:
    values = [max(v, 1e-9) for v in values]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


class Report:
    """A results table streamed to stdout and a results file."""

    def __init__(self, name: str, title: str,
                 results_dir: Optional[Path] = None):
        self.name = name
        self.title = title
        self.lines: List[str] = []
        self.results_dir = results_dir

    def section(self, text: str) -> None:
        self.lines.append("")
        self.lines.append(f"-- {text}")

    def note(self, text: str) -> None:
        self.lines.append(f"   {text}")

    def table(self, headers: Sequence[str],
              rows: Sequence[Sequence[object]]) -> None:
        cells = [[_fmt(value) for value in row] for row in rows]
        widths = [
            max(len(str(header)), *(len(row[i]) for row in cells))
            if cells else len(str(header))
            for i, header in enumerate(headers)
        ]
        self.lines.append("  ".join(
            str(header).ljust(widths[i]) for i, header in enumerate(headers)
        ).rstrip())
        self.lines.append("  ".join("-" * width for width in widths))
        for row in cells:
            self.lines.append("  ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)
            ).rstrip())

    def render(self) -> str:
        bar = "=" * max(len(self.title), 20)
        return "\n".join([bar, self.title, bar] + self.lines + [""])

    def emit(self) -> str:
        text = self.render()
        print("\n" + text)
        if self.results_dir is not None:
            self.results_dir.mkdir(parents=True, exist_ok=True)
            (self.results_dir / f"{self.name}.txt").write_text(text)
        return text


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


def speedup(baseline: float, candidate: float) -> float:
    """How many times faster *candidate* is than *baseline*."""
    return baseline / max(candidate, 1e-9)
