"""Shared, cached benchmark databases.

Loading the combined TPC-H relation dominates bench wall time, so every
bench file pulls its databases from this module-level cache.  Scales
are deliberately small (Python engine); `REPRO_BENCH_SCALE` multiplies
them.
"""

from __future__ import annotations

from functools import lru_cache

from repro.bench.harness import SCALE
from repro.storage.formats import StorageFormat
from repro.tiles.extractor import ExtractionConfig
from repro.workloads import twitter, yelp
from repro.workloads import tpch

#: defaults from Section 6: tile size 2^10, partition size 8,
#: threshold 60% — the tile size is scaled down with the data so the
#: tiles-per-relation ratio resembles the paper's.
TILE_SIZE = 256
PARTITION_SIZE = 8

TPCH_SF = 0.002 * SCALE
YELP_BUSINESSES = int(250 * SCALE)
TWITTER_TWEETS = int(3000 * SCALE)

INTERNAL_FORMATS = (StorageFormat.JSON, StorageFormat.JSONB,
                    StorageFormat.SINEW, StorageFormat.TILES)


def default_config(**overrides) -> ExtractionConfig:
    kwargs = dict(tile_size=TILE_SIZE, partition_size=PARTITION_SIZE)
    kwargs.update(overrides)
    return ExtractionConfig(**kwargs)


@lru_cache(maxsize=None)
def tpch_db(storage_format: StorageFormat, shuffled: bool = False,
            tile_size: int = TILE_SIZE, partition_size: int = PARTITION_SIZE,
            detect_dates: bool = True, enable_reordering: bool = True):
    config = ExtractionConfig(tile_size=tile_size,
                              partition_size=partition_size,
                              detect_dates=detect_dates,
                              enable_reordering=enable_reordering)
    return tpch.make_database(TPCH_SF, storage_format, config,
                              combined=True, shuffled=shuffled)


@lru_cache(maxsize=None)
def tpch_split_db(storage_format: StorageFormat):
    return tpch.make_database(TPCH_SF, storage_format, default_config(),
                              combined=False)


@lru_cache(maxsize=None)
def yelp_db(storage_format: StorageFormat, tile_size: int = TILE_SIZE,
            partition_size: int = PARTITION_SIZE,
            detect_dates: bool = True):
    config = ExtractionConfig(tile_size=tile_size,
                              partition_size=partition_size,
                              detect_dates=detect_dates)
    return yelp.make_database(YELP_BUSINESSES, storage_format, config)


@lru_cache(maxsize=None)
def twitter_db(storage_format: StorageFormat, evolving: bool = False,
               tile_size: int = TILE_SIZE,
               partition_size: int = PARTITION_SIZE):
    config = ExtractionConfig(tile_size=tile_size,
                              partition_size=partition_size)
    return twitter.make_database(TWITTER_TWEETS, storage_format, config,
                                 evolving=evolving)
