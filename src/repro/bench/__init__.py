"""Benchmark harness shared by the `benchmarks/` suite.

* :mod:`repro.bench.harness` — timing, geometric means, report tables.
* :mod:`repro.bench.datasets` — cached benchmark databases.
"""

from repro.bench.harness import Report, geomean, speedup, time_call, time_query

__all__ = ["Report", "geomean", "speedup", "time_call", "time_query"]
