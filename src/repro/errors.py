"""Exception hierarchy for the JSON Tiles reproduction.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class JsonbError(ReproError):
    """Malformed JSONB bytes or an unencodable input value."""


class JsonbEncodeError(JsonbError):
    """The input value cannot be represented in the JSONB format."""


class JsonbDecodeError(JsonbError):
    """The byte sequence is not a valid JSONB document."""


class MiningError(ReproError):
    """Invalid parameters for frequent itemset mining."""


class StorageError(ReproError):
    """Invalid storage operation (bad format, unknown column, ...)."""


class SqlError(ReproError):
    """SQL front-end failure."""


class SqlSyntaxError(SqlError):
    """The query text does not parse."""


class SqlBindError(SqlError):
    """The query parses but references unknown tables/columns or
    combines types illegally."""


class ExecutionError(ReproError):
    """Runtime failure while executing a query plan."""
