"""Tile partitions and tuple reordering (Section 3.2).

When insertion order has little spatial locality (shuffled data,
combined logs, Figure 3's per-type news items), per-tile mining finds
nothing above the threshold.  Reordering groups ``partition_size``
neighbouring tiles into a partition, mines with a reduced threshold,
matches every tuple to the frequent itemset that describes it best, and
redistributes tuples so that each itemset cluster satisfies the
*original* threshold inside a single tile.

The implementation follows the paper's six steps:

1. mine each tile with ``threshold / partition_size``;
2. exchange itemsets between the tiles of the partition — itemsets with
   an aggregate frequency above ``threshold * tile_size`` survive;
3. match every tuple to its best itemset (largest overlap, largest
   itemset, ties resolved by the minimal sum of item ids so ties are
   deterministic);
4. aggregate itemset counts per tile and partition in a hash table and
   greedily map itemset clusters to tiles so the original threshold is
   reached where possible;
5. compute swap positions between tiles — tuples already where they are
   needed stay, everything else is exchanged pairwise;
6. the final extraction mining runs on the reordered tiles (performed
   by the regular tile construction that follows).

Partitions are disjoint, so partitions can be processed by independent
workers without interaction (the parallel-loading story of Figure 4).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.mining.dictionary import encode_documents
from repro.mining.fpgrowth import FPGrowth, ItemsetMatcher, closed_itemsets
from repro.tiles.extractor import ExtractionConfig

Itemset = FrozenSet[int]


def _tile_boundaries(num_rows: int, tile_size: int,
                     occupancy: Optional[Sequence[int]]) -> List[int]:
    """Start offsets of each tile.  Without *occupancy* the classic
    bulk-load layout is assumed (every tile full except the last); with
    it, the actual per-tile row counts of already-sealed tiles are used
    (online maintenance reorders tiles that partial flushes may have
    sealed below ``tile_size``)."""
    if occupancy is None:
        return list(range(0, num_rows, tile_size))
    starts = []
    offset = 0
    for count in occupancy:
        starts.append(offset)
        offset += count
    if offset != num_rows:
        raise ValueError(
            f"occupancy covers {offset} rows, partition has {num_rows}")
    return starts


def mine_partition_itemsets(
    transactions: Sequence[Sequence[int]], config: ExtractionConfig,
    occupancy: Optional[Sequence[int]] = None,
) -> List[Itemset]:
    """Steps 1-2: per-tile mining with the reduced threshold, then the
    itemset exchange.  Returns surviving itemsets, largest first."""
    tile_size = config.tile_size
    reduced_fraction = config.threshold / max(1, config.partition_size)
    aggregate: Dict[Itemset, int] = defaultdict(int)
    starts = _tile_boundaries(len(transactions), tile_size, occupancy)
    sizes = (occupancy if occupancy is not None
             else [tile_size] * len(starts))
    for start, size in zip(starts, sizes):
        chunk = transactions[start : start + size]
        min_count = max(1, math.ceil(reduced_fraction * len(chunk)))
        miner = FPGrowth(min_count, config.mining_budget)
        for itemset, support in miner.mine(chunk).items():
            aggregate[itemset] += support
    survive_count = config.threshold * tile_size
    survivors = {
        itemset: count for itemset, count in aggregate.items()
        if count > survive_count
    }
    # Matching wants descriptions, not every frequent fragment of one:
    # the closed itemsets are exactly the distinct document signatures
    # (a fragment shared by several types keeps its higher support and
    # survives; a fragment of a single type is dominated).
    survivors = closed_itemsets(survivors)
    ranked = sorted(survivors,
                    key=lambda s: (-len(s), -survivors[s], sorted(s)))
    # When the eq. (1) budget caps the mined itemset size, many small
    # closed fragments survive; matching only needs the best
    # descriptions, so bound the candidate list (largest, most frequent
    # first — ties in matching stay deterministic).
    return ranked[:MAX_MATCH_ITEMSETS]


#: upper bound on the itemsets considered during matching (step 3)
MAX_MATCH_ITEMSETS = 64


def match_tuples(
    transactions: Sequence[Sequence[int]], itemsets: Sequence[Itemset]
) -> List[Optional[Itemset]]:
    """Step 3: the itemset that describes each tuple best (or None)."""
    matcher = ItemsetMatcher(itemsets)
    return [matcher.match(transaction) for transaction in transactions]


def assign_rows_to_tiles(
    matches: Sequence[Optional[Itemset]],
    tile_of_row: Sequence[int],
    tile_occupancy: Sequence[int],
    threshold: float,
    tile_size: int,
) -> List[int]:
    """Step 4: greedy cluster-to-tile mapping.

    Returns ``desired[row] -> tile`` with the feasibility invariant that
    every tile receives exactly as many rows as it currently holds (the
    redistribution is a permutation).  Clusters are placed largest
    first; a cluster claims tiles as long as it can fill at least the
    extraction threshold of each; rows of unplaced clusters and
    unmatched rows keep their tile when possible.
    """
    num_tiles = len(tile_occupancy)
    slots = list(tile_occupancy)
    desired = [-1] * len(matches)

    rows_by_cluster: Dict[Itemset, List[int]] = defaultdict(list)
    for row, match in enumerate(matches):
        if match is not None:
            rows_by_cluster[match].append(row)
    ranked = sorted(rows_by_cluster.items(),
                    key=lambda entry: (-len(entry[1]), sorted(entry[0])))

    for itemset, rows in ranked:
        remaining = list(rows)
        while remaining:
            if len(remaining) < threshold * tile_size:
                break  # cannot satisfy the threshold anywhere: leave them
            # pick the tile that already holds most of this cluster
            # (minimizes swaps), among tiles with free slots
            per_tile: Dict[int, int] = defaultdict(int)
            for row in remaining:
                if slots[tile_of_row[row]] > 0:
                    per_tile[tile_of_row[row]] += 1
            candidates = [t for t in range(num_tiles) if slots[t] > 0]
            if not candidates:
                break
            tile = max(candidates, key=lambda t: (per_tile.get(t, 0), -t))
            take = min(slots[tile], len(remaining))
            # residents of the chosen tile first (they stay in place)
            remaining.sort(key=lambda row: tile_of_row[row] != tile)
            for row in remaining[:take]:
                desired[row] = tile
            slots[tile] -= take
            remaining = remaining[take:]

    # unmatched / leftover rows: keep the current tile when it has slots
    homeless: List[int] = []
    for row, tile in enumerate(desired):
        if tile != -1:
            continue
        home = tile_of_row[row]
        if slots[home] > 0:
            desired[row] = home
            slots[home] -= 1
        else:
            homeless.append(row)
    free_tiles = [t for t in range(num_tiles) for _ in range(slots[t])]
    for row, tile in zip(homeless, free_tiles):
        desired[row] = tile
    return desired


def plan_swaps(
    tile_of_row: Sequence[int], desired: Sequence[int]
) -> List[Tuple[int, int]]:
    """Step 5: pairwise swap positions realizing the mapping.

    A tuple needed in its current tile is never touched.  Misplaced
    tuples are exchanged pairwise; whenever possible the counterpart is
    a tuple that benefits from the same swap (it wants to move exactly
    where this one lives), otherwise any tuple of the target tile that
    has to leave it.
    """
    num_rows = len(desired)
    current = list(tile_of_row)
    # misplaced rows living in tile t, grouped by the tile they want
    misplaced: Dict[int, Dict[int, List[int]]] = defaultdict(
        lambda: defaultdict(list)
    )
    worklist: List[int] = []
    for row in range(num_rows):
        if current[row] != desired[row]:
            misplaced[current[row]][desired[row]].append(row)
            worklist.append(row)

    def _take_counterpart(target_tile: int, preferred_destination: int):
        groups = misplaced[target_tile]
        rows = groups.get(preferred_destination)
        if rows:
            return rows.pop()
        for rows in groups.values():
            if rows:
                return rows.pop()
        return None

    swaps: List[Tuple[int, int]] = []
    while worklist:
        row = worklist.pop()
        if current[row] == desired[row]:
            continue
        target_tile = desired[row]
        # mutual swap first (benefits both tiles), else any occupant
        # that has to leave the target tile.  Flow conservation (the
        # desired mapping is a permutation) guarantees one exists.
        counterpart = _take_counterpart(target_tile, current[row])
        if counterpart is None:
            continue
        # this row leaves its own misplaced bucket
        bucket = misplaced[current[row]][desired[row]]
        if row in bucket:
            bucket.remove(row)
        swaps.append((row, counterpart))
        current[row], current[counterpart] = current[counterpart], current[row]
        if current[counterpart] != desired[counterpart]:
            misplaced[current[counterpart]][desired[counterpart]].append(
                counterpart
            )
            worklist.append(counterpart)
    return swaps


def reorder_partition(
    documents: Sequence[object], config: ExtractionConfig
) -> List[int]:
    """Reorder one partition; returns the permutation ``order`` such
    that ``[documents[i] for i in order]`` clusters tuples of the same
    frequent itemset into the same tile."""
    _dictionary, transactions = encode_documents(
        documents, config.max_array_elements
    )
    return reorder_transactions(transactions, config)


def reorder_transactions(
    transactions: Sequence[Sequence[int]], config: ExtractionConfig,
    occupancy: Optional[Sequence[int]] = None,
) -> List[int]:
    """Reordering over pre-encoded transactions (the loader encodes a
    partition once and reuses the transactions for tile construction).

    *occupancy* gives the actual row count of each tile in the
    partition; without it every tile is assumed full except the last
    (the bulk-load layout).  The maintenance daemon passes the sealed
    tiles' real sizes so partitions containing partially-flushed tiles
    reorder correctly.
    """
    num_rows = len(transactions)
    tile_size = config.tile_size
    if occupancy is None:
        num_tiles = math.ceil(num_rows / tile_size)
    else:
        num_tiles = len(occupancy)
        if sum(occupancy) != num_rows:
            raise ValueError(
                f"occupancy covers {sum(occupancy)} rows, "
                f"partition has {num_rows}")
    if num_tiles <= 1:
        return list(range(num_rows))
    itemsets = mine_partition_itemsets(transactions, config, occupancy)
    if not itemsets:
        return list(range(num_rows))
    matches = match_tuples(transactions, itemsets)
    if occupancy is None:
        tile_of_row = [min(row // tile_size, num_tiles - 1)
                       for row in range(num_rows)]
        tile_occupancy = [0] * num_tiles
        for tile in tile_of_row:
            tile_occupancy[tile] += 1
    else:
        tile_of_row = []
        for tile, count in enumerate(occupancy):
            tile_of_row.extend([tile] * count)
        tile_occupancy = list(occupancy)
    desired = assign_rows_to_tiles(matches, tile_of_row, tile_occupancy,
                                   config.threshold, tile_size)

    swaps = plan_swaps(tile_of_row, desired)
    order = list(range(num_rows))
    position_of = list(range(num_rows))  # row -> slot
    for left, right in swaps:
        left_slot, right_slot = position_of[left], position_of[right]
        order[left_slot], order[right_slot] = order[right_slot], order[left_slot]
        position_of[left], position_of[right] = right_slot, left_slot
    return order


def apply_order(documents: Sequence[object], order: Sequence[int]) -> List[object]:
    """Materialize a permutation produced by :func:`reorder_partition`."""
    return [documents[index] for index in order]
