"""Tile extraction: local schema detection and column materialization
(Sections 3.1, 3.4, 3.5 and 4.9).

For every chunk of ``tile_size`` tuples the extractor

1. collects the typed key paths of each tuple,
2. mines frequent itemsets with FPGrowth above the extraction
   threshold (60 % by default),
3. extracts the union of the maximum itemsets — equivalently, every
   (path, type) item whose frequency reaches the threshold — as typed
   relational columns, choosing the most common primitive type when a
   path occurs with several types,
4. recognizes date/time strings and materializes them as TIMESTAMP
   columns, and
5. fills the tile header: statistics, key-path frequency database and
   the bloom filter of non-extracted paths.

Values that do not match the extracted type stay NULL in the column and
remain reachable through the per-tuple JSONB fallback, preserving JSON
semantics for outliers.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.datetimes import parse_datetime_string
from repro.core.jsonpath import KeyPath
from repro.core.types import COLUMN_TYPE_FOR_JSON, ColumnType, JsonType
from repro.mining.dictionary import ItemDictionary, encode_documents
from repro.mining.fpgrowth import FPGrowth
from repro.storage.column import ColumnBuilder
from repro.tiles.header import ExtractedColumn, TileHeader
from repro.tiles.tile import Tile


@dataclass
class ExtractionConfig:
    """Knobs of the extraction pipeline; defaults follow Section 6
    ("we use the tile size 2^10, partition size 8, and extraction
    threshold 60%")."""

    tile_size: int = 1024
    partition_size: int = 8
    threshold: float = 0.6
    mining_budget: int = 4096
    max_array_elements: int = 8
    detect_dates: bool = True
    date_sample_size: int = 64
    date_match_fraction: float = 0.95
    enable_reordering: bool = True
    #: statistics precision of the per-column HyperLogLog sketches
    sketch_precision: int = 9

    def min_count(self, num_rows: int) -> int:
        return max(1, math.ceil(self.threshold * num_rows))


#: Primitive types that can become a column of their own.
_EXTRACTABLE = (JsonType.BOOL, JsonType.INT, JsonType.FLOAT,
                JsonType.STRING, JsonType.NUMSTR)


@dataclass
class TileSchema:
    """The extraction decision for one tile (or, for Sinew, globally)."""

    columns: List[ExtractedColumn] = field(default_factory=list)

    def paths(self) -> List[KeyPath]:
        return [column.path for column in self.columns]


def choose_schema(dictionary: ItemDictionary, num_rows: int,
                  config: ExtractionConfig,
                  frequent_items: Optional[set] = None) -> TileSchema:
    """Decide which typed key paths become columns.

    ``frequent_items`` is the union of the mined maximum itemsets; when
    omitted, item frequencies from the dictionary are used directly
    (the union of all frequent itemsets equals the set of frequent
    single items by downward closure).
    """
    min_count = config.min_count(num_rows)
    candidates: Dict[KeyPath, List[Tuple[JsonType, int]]] = {}
    conflict_paths: Dict[KeyPath, int] = {}
    for (path, jtype), item_id in dictionary.items():
        count = dictionary.counts[item_id]
        conflict_paths[path] = conflict_paths.get(path, 0) + count
        if jtype not in _EXTRACTABLE:
            continue
        if frequent_items is not None and item_id not in frequent_items:
            continue
        if count < min_count:
            continue
        candidates.setdefault(path, []).append((jtype, count))

    schema = TileSchema()
    for path, typed_counts in candidates.items():
        # Section 3.4: the most common type wins; other types fall back
        # to the binary representation.
        typed_counts.sort(key=lambda entry: (-entry[1], entry[0]))
        jtype, count = typed_counts[0]
        has_conflicts = conflict_paths[path] > count
        schema.columns.append(
            ExtractedColumn(
                path=path,
                json_type=jtype,
                column_type=COLUMN_TYPE_FOR_JSON[jtype],
                has_type_conflicts=has_conflicts,
                nullable=count < num_rows or has_conflicts,
            )
        )
    schema.columns.sort(key=lambda column: str(column.path))
    return schema


def _detect_datetime_columns(schema: TileSchema, documents: Sequence[object],
                             config: ExtractionConfig) -> None:
    """Section 4.9: sample candidate STRING columns; when (almost) every
    sampled value parses as a date/time, store the column as TIMESTAMP."""
    for column in schema.columns:
        if column.column_type != ColumnType.STRING:
            continue
        sampled = 0
        matched = 0
        step = max(1, len(documents) // config.date_sample_size)
        for row in range(0, len(documents), step):
            value = column.path.lookup(documents[row])
            if not isinstance(value, str):
                continue
            sampled += 1
            if parse_datetime_string(value) is not None:
                matched += 1
            if sampled >= config.date_sample_size:
                break
        if sampled and matched / sampled >= config.date_match_fraction:
            column.column_type = ColumnType.TIMESTAMP
            column.is_datetime = True


def _materialize_value(value: object, column: ExtractedColumn) -> object:
    """Coerce a document value into the column type, or ``None`` when the
    primitive type does not match (the JSONB fallback keeps it)."""
    if value is None:
        return None
    ctype = column.column_type
    if ctype == ColumnType.INT64:
        return value if isinstance(value, int) and not isinstance(value, bool) else None
    if ctype == ColumnType.FLOAT64:
        if isinstance(value, float):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return float(value)  # lossless widening, not a conflict
        return None
    if ctype == ColumnType.BOOL:
        return value if isinstance(value, bool) else None
    if ctype == ColumnType.STRING:
        return value if isinstance(value, str) else None
    if ctype == ColumnType.DECIMAL:
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                return None
        return None
    if ctype == ColumnType.TIMESTAMP:
        if isinstance(value, str):
            return parse_datetime_string(value)
        return None
    raise AssertionError(f"unexpected column type {ctype}")


def _block_bounds(vector, block_rows: int, num_rows: int) -> List[Optional[list]]:
    """Per-block [min, max] entries for one extracted column
    (DESIGN.md §9): ``[]`` marks an all-NULL block, ``None`` a block
    whose values are mutually incomparable (pruning must not trust it)."""
    entries: List[Optional[list]] = []
    for start in range(0, num_rows, block_rows):
        stop = min(start + block_rows, num_rows)
        nulls = vector.null_mask[start:stop]
        if nulls.all():
            entries.append([])
            continue
        values = vector.data[start:stop][~nulls]
        try:
            low, high = values.min(), values.max()
        except TypeError:
            entries.append(None)
            continue
        if isinstance(low, np.generic):
            low = low.item()
        if isinstance(high, np.generic):
            high = high.item()
        entries.append([low, high])
    return entries


def build_tile(documents: Sequence[object], jsonb_rows: List[bytes],
               config: ExtractionConfig, tile_number: int, first_row: int,
               schema: Optional[TileSchema] = None,
               mine: bool = True,
               timings: Optional[Dict[str, float]] = None,
               encoded: Optional[Tuple[ItemDictionary, List[List[int]]]] = None,
               level: int = 0,
               ) -> Tile:
    """Construct one tile from parsed documents + their JSONB bytes.

    When *schema* is given (Sinew's global schema, or a recomputation
    after updates) the mining/decision steps are skipped and the fixed
    schema is materialized.  ``mine=False`` additionally skips FPGrowth
    (plain JSONB storage: no extraction, header only tracks row count).
    *timings* accumulates per-phase seconds ("mining", "extract") for
    the insertion-time breakdown of Figure 16.  *encoded* passes a
    pre-computed (dictionary, transactions) pair so the loader does not
    traverse every document twice when reordering already collected the
    key paths.  *level* stamps the LSM level onto the header (0 for
    freshly sealed tiles; compaction merges pass the next level).
    """
    num_rows = len(documents)
    header = TileHeader(tile_number, num_rows,
                        max_array_elements=config.max_array_elements,
                        level=level)
    started = time.perf_counter()
    if encoded is not None:
        dictionary, transactions = encoded
    else:
        dictionary, transactions = encode_documents(
            documents, config.max_array_elements)
    header.key_counts = dictionary.key_counts()
    for path_text, count in header.key_counts.items():
        header.statistics.observe_key(path_text, count)

    if schema is None and mine:
        miner = FPGrowth(config.min_count(num_rows), config.mining_budget)
        frequent = miner.mine(transactions)
        frequent_items = set().union(*frequent) if frequent else set()
        schema = choose_schema(dictionary, num_rows, config,
                               frequent_items=frequent_items)
        if config.detect_dates:
            _detect_datetime_columns(schema, documents, config)
    elif schema is None:
        schema = TileSchema()
    mined_at = time.perf_counter()
    if timings is not None:
        timings["mining"] = timings.get("mining", 0.0) + (mined_at - started)

    columns = {}
    for column_meta in schema.columns:
        builder = ColumnBuilder(column_meta.column_type)
        stats = header.statistics.column(column_meta.path)
        nullable = False
        conflicts = column_meta.has_type_conflicts
        for document in documents:
            raw = column_meta.path.lookup(document)
            value = _materialize_value(raw, column_meta)
            if value is None:
                nullable = True
                if raw is not None:
                    conflicts = True
                builder.append_null()
            else:
                builder.append(value)
                stats.observe(value)
        materialized = ExtractedColumn(
            path=column_meta.path,
            json_type=column_meta.json_type,
            column_type=column_meta.column_type,
            has_type_conflicts=conflicts,
            nullable=nullable,
            is_datetime=column_meta.is_datetime,
        )
        header.add_column(materialized)
        vector = builder.finish()
        columns[column_meta.path] = vector
        header.block_bounds_rows = config.tile_size
        header.block_bounds[column_meta.path] = _block_bounds(
            vector, config.tile_size, num_rows)
        if column_meta.column_type in (ColumnType.INT64, ColumnType.FLOAT64,
                                       ColumnType.DECIMAL,
                                       ColumnType.TIMESTAMP):
            from repro.stats.histogram import EquiDepthHistogram

            values = vector.data[~vector.null_mask]
            stats.histogram = EquiDepthHistogram.from_values(values)

    for (path, _jtype), _item_id in dictionary.items():
        if path not in columns:
            header.record_unextracted(path)
    if timings is not None:
        timings["extract"] = timings.get("extract", 0.0) + (
            time.perf_counter() - mined_at
        )
    return Tile(header, columns, list(jsonb_rows), first_row)
