"""High-cardinality array extraction — the Tiles-* variant (Sections
3.5 and 6.3).

Arrays whose element count varies widely (e.g. Twitter's ``hashtags``
and ``user_mentions``) can only have their leading elements
materialized by plain tile extraction.  Following Deutsch et al. [19]
and Shanmugasundaram et al. [54], such arrays are extracted into a
*separate* relation: one child document per array element, carrying its
parent's row id.  The child relation is stored with JSON tiles again,
and queries join it back to the base table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.jsonpath import KeyPath

PARENT_COLUMN = "_parent_row"
INDEX_COLUMN = "_slot"


@dataclass
class ArrayDetection:
    path: KeyPath
    presence: float       # fraction of documents containing the array
    mean_length: float
    max_length: int

    @property
    def is_high_cardinality(self) -> bool:
        return self.max_length > 4 and self.mean_length >= 1.0


def detect_high_cardinality_arrays(
    documents: Sequence[object],
    min_presence: float = 0.1,
    sample_limit: int = 4096,
) -> List[ArrayDetection]:
    """Scan (a sample of) the documents for array-valued key paths whose
    element counts vary enough to warrant a child relation."""
    lengths: Dict[KeyPath, List[int]] = {}
    step = max(1, len(documents) // sample_limit)
    sampled = 0
    for index in range(0, len(documents), step):
        sampled += 1
        _walk_arrays(documents[index], KeyPath(), lengths)
    detections = []
    for path, observed in lengths.items():
        presence = len(observed) / max(1, sampled)
        if presence < min_presence:
            continue
        mean_length = sum(observed) / len(observed)
        detections.append(
            ArrayDetection(
                path=path,
                presence=presence,
                mean_length=mean_length,
                max_length=max(observed),
            )
        )
    return sorted(
        (d for d in detections if d.is_high_cardinality),
        key=lambda d: -d.mean_length * d.presence,
    )


def _walk_arrays(value: object, prefix: KeyPath,
                 lengths: Dict[KeyPath, List[int]]) -> None:
    if isinstance(value, dict):
        for key, child in value.items():
            _walk_arrays(child, prefix.child(key), lengths)
    elif isinstance(value, list):
        lengths.setdefault(prefix, []).append(len(value))
        # nested arrays inside object elements are detected as well
        for element in value[:4]:
            if isinstance(element, dict):
                for key, child in element.items():
                    _walk_arrays(child, prefix.child(0).child(key), lengths)


def extract_array_documents(
    documents: Sequence[object], array_path: KeyPath, first_row: int = 0
) -> List[dict]:
    """Flatten one array path into child documents.

    Every element becomes ``{_parent_row, _slot, **element}`` (scalar
    elements become ``{_parent_row, _slot, "value": element}``), ready
    to be bulk-loaded into a JSON tiles child relation.
    """
    children: List[dict] = []
    for offset, document in enumerate(documents):
        array = array_path.lookup(document)
        if not isinstance(array, list):
            continue
        for slot, element in enumerate(array):
            child = {
                PARENT_COLUMN: first_row + offset,
                INDEX_COLUMN: slot,
            }
            if isinstance(element, dict):
                child.update(element)
            else:
                child["value"] = element
            children.append(child)
    return children


def strip_extracted_arrays(
    document: object, array_paths: Sequence[KeyPath]
) -> object:
    """Return a copy of *document* with the extracted arrays replaced by
    their element count, so the base relation does not double-store the
    (potentially large) array payload."""
    if not array_paths:
        return document

    def _strip(value: object, prefix: Tuple) -> object:
        if isinstance(value, dict):
            result = {}
            for key, child in value.items():
                path = prefix + (key,)
                if any(path == p.steps for p in array_paths) and isinstance(child, list):
                    result[key + "_count"] = len(child)
                else:
                    result[key] = _strip(child, path)
            return result
        return value

    return _strip(document, ())
