"""JSON tiles: local schema detection, extraction and reordering
(Section 3), tile headers and skipping metadata (Section 4).

* :class:`ExtractionConfig` — tile size / partition size / threshold.
* :func:`build_tile` — construct one tile (mining, type choice,
  date detection, materialization, header, statistics).
* :func:`reorder_partition` — the Section 3.2 redistribution.
* :mod:`repro.tiles.arrays` — high-cardinality array extraction
  (the Tiles-* variant).
"""

from repro.tiles.extractor import (
    ExtractionConfig,
    TileSchema,
    build_tile,
    choose_schema,
)
from repro.tiles.header import ExtractedColumn, TileHeader
from repro.tiles.reorder import apply_order, reorder_partition
from repro.tiles.tile import Tile

__all__ = [
    "ExtractedColumn",
    "ExtractionConfig",
    "Tile",
    "TileHeader",
    "TileSchema",
    "apply_order",
    "build_tile",
    "choose_schema",
    "reorder_partition",
]
