"""The tile: a chunk of tuples with materialized columns + JSONB rows.

A tile owns its slice of binary JSON documents (the always-correct
fallback representation) and, when the storage format extracts, one
:class:`~repro.storage.column.ColumnVector` per materialized key path.
Scans stream the vectors; accesses to non-extracted paths (or to
type-conflicting NULL slots) traverse the JSONB bytes per tuple.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

import numpy as np

from repro.core.jsonpath import KeyPath
from repro.jsonb.access import JsonbValue
from repro.storage.column import ColumnVector
from repro.tiles.header import TileHeader

#: process-unique tile identities; sealing, recomputation and
#: checkpoint reload all build new Tile objects, so a uid never
#: refers to stale contents — the resolved-tile cache keys on it.
#: Paged tiles are the one exception: their TileHandle allocates the
#: uid once and re-stamps it onto every reload, because an evicted and
#: re-read tile is bit-identical to the one it replaces (in-place
#: mutation marks the handle dirty, and dirty tiles are never evicted).
_uid_counter = itertools.count(1)


def new_tile_uid() -> int:
    """Allocate a fresh process-unique tile identity (used by
    :class:`repro.storage.tilestore.TileHandle` for paged tiles)."""
    return next(_uid_counter)


class Tile:
    __slots__ = ("header", "columns", "jsonb_rows", "first_row", "uid")

    def __init__(self, header: TileHeader, columns: Dict[KeyPath, ColumnVector],
                 jsonb_rows: List[bytes], first_row: int = 0):
        self.header = header
        self.columns = columns
        self.jsonb_rows = jsonb_rows
        self.first_row = first_row
        self.uid = next(_uid_counter)

    @property
    def row_count(self) -> int:
        return len(self.jsonb_rows)

    def column(self, path: KeyPath) -> Optional[ColumnVector]:
        return self.columns.get(path)

    def jsonb_value(self, row: int) -> JsonbValue:
        return JsonbValue(self.jsonb_rows[row])

    def lookup_fallback(self, row: int, path: KeyPath) -> Optional[JsonbValue]:
        """Per-tuple JSONB traversal for a non-extracted path."""
        return JsonbValue(self.jsonb_rows[row]).get_path(path)

    def row_ids(self) -> np.ndarray:
        """Global row ids of the tuples in this tile."""
        return np.arange(self.first_row, self.first_row + self.row_count,
                         dtype=np.int64)

    def size_bytes(self, shared_strings: bool = False) -> int:
        """Footprint of the materialized columns (the +Tiles overhead of
        Table 6; the JSONB rows are accounted separately).  See
        :meth:`ColumnVector.nbytes` for the shared-strings mode."""
        return sum(column.nbytes(shared_strings)
                   for column in self.columns.values())

    def jsonb_size_bytes(self) -> int:
        return sum(len(row) for row in self.jsonb_rows)
