"""Tile headers (Section 4.4).

Each tile describes its *seen* and *materialized* data: the extracted
key paths with their value types, whether a path also occurs with other
types (the type-conflict flag needed for correct fallback accesses),
whether nulls are possible, the key-path frequency database that seeded
itemset mining, and a bloom filter over the paths that were *not*
extracted (used by tile skipping, Section 4.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType, JsonType
from repro.stats.bloom import BloomFilter
from repro.stats.table_stats import TileStatistics


@dataclass
class ExtractedColumn:
    """Metadata of one materialized key path."""

    path: KeyPath
    json_type: JsonType
    column_type: ColumnType
    #: True when the same path occurs with a different primitive type in
    #: this tile; accesses must re-check the JSONB fallback on NULL
    #: (Section 3.4).
    has_type_conflicts: bool = False
    #: True when some tuple lacks the path or stores JSON null.
    nullable: bool = True
    #: True when a STRING path was recognized and stored as TIMESTAMP
    #: (Section 4.9); text accesses then bypass the column.
    is_datetime: bool = False


class TileHeader:
    """Per-tile schema + key statistics, pointed to by the relation."""

    def __init__(self, tile_number: int, row_count: int,
                 max_array_elements: int = 8, level: int = 0):
        self.tile_number = tile_number
        self.row_count = row_count
        self.max_array_elements = max_array_elements
        #: LSM level (repro.lsm): 0 for freshly sealed tiles, +1 per
        #: compaction merge.  Purely descriptive for reads — scans
        #: treat all levels alike — but the compaction planner keys
        #: runs off it, so it persists with the header.
        self.level = level
        self.columns: Dict[KeyPath, ExtractedColumn] = {}
        self.key_counts: Dict[str, int] = {}
        self.unextracted_paths = BloomFilter(expected_items=64)
        self.statistics = TileStatistics(row_count=row_count)
        #: per-block zone maps (DESIGN.md §9): for each extracted
        #: column, one entry per ``block_bounds_rows``-row block of the
        #: tile — ``[min, max]`` of the block's non-null values, ``[]``
        #: for an all-NULL block, ``None`` when the values are mutually
        #: incomparable.  One-block tiles duplicate the tile-level
        #: bounds; LSM-merged tiles (fanout × tile_size rows) are where
        #: block pruning beats whole-tile skipping.  Empty for tiles
        #: restored from pre-§9 .jtile files — pruning simply stays
        #: tile-granular for them.
        self.block_bounds: Dict[KeyPath, List[Optional[list]]] = {}
        #: rows per bound-block (the extraction config's ``tile_size``
        #: at build time); 0 means no block bounds were recorded
        self.block_bounds_rows: int = 0

    def add_column(self, column: ExtractedColumn) -> None:
        self.columns[column.path] = column

    def extracted(self, path: KeyPath) -> Optional[ExtractedColumn]:
        return self.columns.get(path)

    def record_unextracted(self, path: KeyPath) -> None:
        """Make a non-extracted path (and every ancestor container, so
        accesses to the container itself stay visible) known to the
        skipping filter."""
        current = path
        while True:
            self.unextracted_paths.add(str(current))
            if not current.steps:
                break
            current = current.parent()

    def column_bounds(self, path: KeyPath):
        """(min, max) of an extracted column's non-null values, or
        ``None``.  These per-tile zone maps extend Section 4.8's
        skipping in the spirit of Data Blocks [36]: a tile whose value
        range cannot satisfy a pushed-down comparison is skipped even
        though the key path exists."""
        stats = self.statistics.columns.get(path)
        if stats is None or stats.min_value is None:
            return None
        column = self.columns.get(path)
        if column is not None and column.has_type_conflicts:
            # outliers live in the JSONB fallback and are not covered
            # by the column bounds: pruning would be unsound
            return None
        return stats.min_value, stats.max_value

    def block_bounds_for(self, path: KeyPath) -> Optional[List[Optional[list]]]:
        """The per-block bound entries for one extracted column, or
        ``None`` when pruning on them would be unsound — same rule as
        :meth:`column_bounds`: a type-conflicted column's outliers live
        in the JSONB fallback and are not covered by the bounds."""
        if self.block_bounds_rows <= 0:
            return None
        entries = self.block_bounds.get(path)
        if entries is None:
            return None
        column = self.columns.get(path)
        if column is not None and column.has_type_conflicts:
            return None
        return entries

    def widen_block_bounds(self, path: KeyPath, local: int,
                           value: object) -> None:
        """Widen the bound-block covering row *local* after an in-place
        update stored *value* — mirroring the tile-level zone map's
        "bounds may only grow" rule (stale-wide bounds are safe for
        pruning).  Incomparable values degrade the block to unknown."""
        entries = self.block_bounds.get(path)
        if entries is None or self.block_bounds_rows <= 0:
            return
        index = local // self.block_bounds_rows
        if index >= len(entries):
            return
        entry = entries[index]
        if entry is None:
            return
        try:
            if not entry:
                entries[index] = [value, value]
            else:
                if value < entry[0]:
                    entry[0] = value
                if value > entry[1]:
                    entry[1] = value
        except TypeError:
            entries[index] = None

    def may_contain(self, path: KeyPath) -> bool:
        """Can any tuple of this tile contain *path*?

        Extracted paths are definitely present; everything else goes
        through the bloom filter.  A bloom hit may be a false positive
        (the tile is then scanned needlessly) but a miss is definite, so
        skipping on a miss is always safe.  Array slots beyond the
        key-path collection cap were never recorded, so such accesses
        are answered conservatively from the array's own entry.
        """
        if path in self.columns:
            return True
        # A prefix of an extracted path is present as a nested object
        # (e.g. `geo` when `geo.lat` is materialized).
        for extracted_path in self.columns:
            if extracted_path.startswith(path):
                return True
        if self.unextracted_paths.might_contain(str(path)):
            return True
        # slots past the collection cap: trust the deepest recorded
        # ancestor (the array itself) rather than claiming absence
        if any(isinstance(step, int) and step >= self.max_array_elements
               for step in path.steps):
            current = path
            while current.steps:
                current = current.parent()
                if self.unextracted_paths.might_contain(str(current)) or \
                        current in self.columns:
                    return True
        return False

    def extracted_paths(self) -> List[KeyPath]:
        return list(self.columns)

    def describe(self) -> str:
        """Human-readable summary used by examples and debugging."""
        lines = [f"tile #{self.tile_number}: {self.row_count} rows, "
                 f"{len(self.columns)} extracted columns"
                 + (f", level {self.level}" if self.level else "")]
        for column in self.columns.values():
            flags = []
            if column.is_datetime:
                flags.append("datetime")
            if column.has_type_conflicts:
                flags.append("type-conflicts")
            if column.nullable:
                flags.append("nullable")
            suffix = f" ({', '.join(flags)})" if flags else ""
            lines.append(f"  {column.path} :: {column.column_type.name}{suffix}")
        return "\n".join(lines)
