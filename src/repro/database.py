"""The public entry point: a tiny embedded analytical database.

    from repro import Database, StorageFormat

    db = Database()
    db.load_table("tweets", documents, StorageFormat.TILES)
    result = db.sql(
        "select t.data->>'lang' as lang, count(*) as n "
        "from tweets t group by t.data->>'lang' order by n desc limit 5"
    )
    print(result.format_table())

Every table is one JSON document column (named ``data``) queried with
PostgreSQL-style ``->`` / ``->>`` operators; the storage format decides
whether queries run over raw text, binary JSON, Sinew's global
extraction, or JSON tiles.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from repro.engine.executor import QueryResult, execute_block
from repro.engine.plan import QueryOptions
from repro.errors import SqlBindError, StorageError
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage.formats import StorageFormat
from repro.storage.loader import load_documents
from repro.storage.relation import Relation
from repro.tiles.extractor import ExtractionConfig


class Database:
    """A named collection of relations plus the SQL front end."""

    def __init__(self, default_format: StorageFormat = StorageFormat.TILES,
                 config: Optional[ExtractionConfig] = None,
                 directory: Optional[Union[str, Path]] = None):
        self.default_format = default_format
        self.config = config or ExtractionConfig()
        self.tables: Dict[str, Relation] = {}
        #: when set, :meth:`checkpoint` persists every table here and
        #: :meth:`close` checkpoints before releasing the tables.
        self.directory: Optional[Path] = \
            Path(directory) if directory is not None else None
        #: the embedded maintenance daemon, see :meth:`start_maintenance`
        self._maintenance = None

    # ------------------------------------------------------------------

    @staticmethod
    def _child_table_name(name: str, path_text: str) -> str:
        """The queryable table name of a Tiles-* child relation
        (array path text sanitized into an identifier suffix)."""
        safe = path_text.replace(".", "_").replace("[", "_").replace("]", "")
        return f"{name}__{safe}"

    def load_table(self, name: str, rows: Sequence,
                   storage_format: Optional[StorageFormat] = None,
                   config: Optional[ExtractionConfig] = None,
                   **kwargs) -> Relation:
        """Bulk-load documents (dicts or JSON text lines) as a table."""
        relation = load_documents(
            name, rows,
            storage_format or self.default_format,
            config or self.config,
            **kwargs,
        )
        self.register(name, relation)
        return relation

    def create_table(self, name: str,
                     storage_format: Optional[StorageFormat] = None,
                     config: Optional[ExtractionConfig] = None) -> Relation:
        """Create an empty table that grows through :meth:`Relation.insert`."""
        if name in self.tables:
            raise SqlBindError(f"table {name!r} already exists")
        relation = Relation(name, storage_format or self.default_format,
                            config or self.config)
        self.register(name, relation)
        return relation

    def register(self, name: str, relation: Relation) -> None:
        self.tables[name] = relation
        # Tiles-* child relations become queryable side tables
        for path_text, child in relation.children.items():
            self.tables[self._child_table_name(name, path_text)] = child

    def table(self, name: str) -> Relation:
        if name not in self.tables:
            raise SqlBindError(f"unknown table {name!r}")
        return self.tables[name]

    def drop_table(self, name: str) -> None:
        relation = self.tables.pop(name, None)
        if relation is not None:
            for path_text in relation.children:
                self.tables.pop(self._child_table_name(name, path_text), None)
            # release residency charges and cached columns eagerly
            # instead of waiting for the handles to be collected
            from repro.storage.tile_cache import GLOBAL_TILE_CACHE
            from repro.storage.tilestore import GLOBAL_TILE_STORE

            GLOBAL_TILE_STORE.discard_table(relation.name)
            GLOBAL_TILE_CACHE.invalidate_table(relation.name)
            for child in relation.children.values():
                GLOBAL_TILE_STORE.discard_table(child.name)
                GLOBAL_TILE_CACHE.invalidate_table(child.name)

    # ------------------------------------------------------------------
    # durable lifecycle (used by repro.server)

    @classmethod
    def open(cls, directory: Union[str, Path],
             default_format: StorageFormat = StorageFormat.TILES,
             config: Optional[ExtractionConfig] = None) -> "Database":
        """Open (or initialize) a durable database directory."""
        from repro.storage.persist import open_database

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        db = open_database(directory, database_cls=cls)
        db.default_format = default_format
        if config is not None:
            db.config = config
        db.directory = directory
        return db

    def checkpoint(self) -> Dict[str, int]:
        """Persist every table into :attr:`directory` (atomic per table:
        written to a temp file, then renamed over the ``.jtile``).
        Returns bytes written per table."""
        from repro.storage.persist import save_database

        if self.directory is None:
            raise StorageError("database has no durable directory attached")
        return save_database(self, self.directory)

    def close(self) -> None:
        """Checkpoint (when durable) and release all tables."""
        self.stop_maintenance()
        if self.directory is not None:
            self.checkpoint()
        self.tables.clear()

    # ------------------------------------------------------------------
    # online maintenance (DESIGN.md §6d)

    def start_maintenance(self, config=None):
        """Start the embedded background maintenance daemon: tile
        health tracking, Section 3.2 partition reordering and tile
        re-extraction on a rate-limited thread.  *config* is a
        :class:`~repro.maintenance.MaintenanceConfig` (defaults come
        from the ``REPRO_MAINT_*`` environment).  Returns the daemon —
        idempotent while one is running."""
        from repro.maintenance import MaintenanceConfig, MaintenanceDaemon

        if self._maintenance is None:
            self._maintenance = MaintenanceDaemon(
                lambda: dict(self.tables),
                config or MaintenanceConfig.from_env())
            self._maintenance.start()
        return self._maintenance

    def stop_maintenance(self) -> None:
        daemon, self._maintenance = self._maintenance, None
        if daemon is not None:
            daemon.stop()

    @property
    def maintenance(self):
        """The running embedded daemon, or None."""
        return self._maintenance

    # ------------------------------------------------------------------

    def sql(self, query: str,
            options: Optional[QueryOptions] = None) -> QueryResult:
        """Parse, bind, optimize and execute one SELECT statement."""
        options = options or QueryOptions()
        statement = parse(query)
        block = Binder(self.tables, options).bind(statement)
        return execute_block(block, options)

    def explain(self, query: str,
                options: Optional[QueryOptions] = None,
                analyze: bool = False) -> str:
        """The chosen join order, the operator tree and the per-table
        access requests (push-down visibility).

        With *analyze*, the query is actually executed and every scan
        is annotated with its counters (tiles scanned/skipped, rows,
        fallback lookups, cache hits/misses), followed by worker-pool
        utilization — EXPLAIN ANALYZE for the morsel engine.
        """
        options = options or QueryOptions()
        statement = parse(query)
        block = Binder(self.tables, options).bind(statement)
        from repro.engine.explain import render_plan
        from repro.engine.optimizer import Planner

        planner = Planner(options)
        tree = planner.plan_block(block)
        if analyze:
            batch = tree.materialize() if hasattr(tree, "materialize") \
                else None
            if batch is None:
                from repro.engine.batch import concat_batches
                batch = concat_batches(list(tree.batches()))
            rows = batch.length if batch is not None else 0
        lines = [f"join order: {' -> '.join(planner.last_join_order) or '-'}"]
        from repro.engine.explain import render_fragments
        from repro.engine.fragments import plan_fragments

        lines.append(render_fragments(plan_fragments(block, options)))
        lines.append(render_plan(tree, analyze=analyze))
        for source in block.sources:
            requests = getattr(source, "requests", None)
            if requests:
                lines.append(f"scan {source.alias}:")
                for request in requests.values():
                    lines.append(f"  {request.path} :: "
                                 f"{request.target.name}")
        if analyze:
            from repro.engine.morsels import pool_stats

            lines.append(f"rows: {rows}")
            if options.parallelism > 1:
                stats = pool_stats()
                lines.append(
                    "pool: workers={workers} tasks={tasks_completed} "
                    "busy={busy_seconds}s".format(**stats))
        return "\n".join(lines)
