"""Byte-level layout of the JSONB binary format (Section 5.1).

Every value starts with an 8-bit header ``(type_id << 5) | info``:

=========  =======  ====================================================
type_id    name     info bits
=========  =======  ====================================================
0          LITERAL  0 = null, 1 = false, 2 = true
1          INT      0..7: the value itself (small ints < 2^3 live in
                    the header); 8..15: ``info - 7`` bytes of
                    little-endian two's-complement integer follow
2          FLOAT    byte width of the IEEE 754 payload (2, 4 or 8);
                    narrower widths are used whenever the conversion
                    from double precision is lossless
3          STRING   0..27: inline byte length; 28..31: the length is
                    stored in 1/2/4/8 following bytes; UTF-8 payload
4          NUMSTR   same layout as STRING; the payload is the exact
                    numeric text of a "numeric string" (Section 5.2)
5          OBJECT   low 2 bits: offset width code (1/2/4/8 bytes)
6          ARRAY    low 2 bits: offset width code (1/2/4/8 bytes)
=========  =======  ====================================================

Objects continue with the element count (compact uint), an offset table
with one entry per element, and then the element slots stored
contiguously in sorted key order.  Each offset is the byte distance of
its slot from the start of the slot area, so a binary search can jump
to slot *i*, read the key, and compare — an O(log n) lookup.  A slot is
the compact-length-prefixed UTF-8 key followed by the recursively
encoded value, hence nested objects live inside their parent and the
whole document is forward-iterable without memory address jumps.

Arrays are identical but have no keys, so indexing is O(1) via the
offset table.

Compact unsigned integers (counts, string lengths >= 28, key lengths):
one byte ``0..250`` inline, or a marker byte ``251/252/253`` followed by
a 2/4/8-byte little-endian value.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import JsonbDecodeError

TYPE_LITERAL = 0
TYPE_INT = 1
TYPE_FLOAT = 2
TYPE_STRING = 3
TYPE_NUMSTR = 4
TYPE_OBJECT = 5
TYPE_ARRAY = 6

LITERAL_NULL = 0
LITERAL_FALSE = 1
LITERAL_TRUE = 2

#: Largest integer stored inline in the header (Section 5.1: values < 2^3).
MAX_INLINE_INT = 7
#: Largest string length stored inline in the header info bits.
MAX_INLINE_STRLEN = 27

OFFSET_WIDTHS = (1, 2, 4, 8)

_STRUCT_BY_WIDTH = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}


def make_header(type_id: int, info: int) -> int:
    assert 0 <= type_id <= 7 and 0 <= info <= 31
    return (type_id << 5) | info


def split_header(header: int) -> Tuple[int, int]:
    return header >> 5, header & 0x1F


def offset_width_code(max_offset: int) -> int:
    """Smallest offset width code able to address *max_offset*."""
    for code, width in enumerate(OFFSET_WIDTHS):
        if max_offset < (1 << (8 * width)):
            return code
    raise OverflowError(f"offset {max_offset} exceeds 8 bytes")


def int_payload_size(value: int) -> int:
    """Bytes needed for a signed little-endian integer (0 if inline)."""
    if 0 <= value <= MAX_INLINE_INT:
        return 0
    for nbytes in range(1, 9):
        limit = 1 << (8 * nbytes - 1)
        if -limit <= value < limit:
            return nbytes
    raise OverflowError(f"integer {value} exceeds 64 bits")


def write_int_payload(buf: bytearray, pos: int, value: int, nbytes: int) -> int:
    buf[pos : pos + nbytes] = value.to_bytes(nbytes, "little", signed=True)
    return pos + nbytes


def read_int_payload(buf: bytes, pos: int, nbytes: int) -> int:
    return int.from_bytes(buf[pos : pos + nbytes], "little", signed=True)


def compact_uint_size(value: int) -> int:
    if value <= 250:
        return 1
    if value < 1 << 16:
        return 3
    if value < 1 << 32:
        return 5
    return 9


def write_compact_uint(buf: bytearray, pos: int, value: int) -> int:
    if value <= 250:
        buf[pos] = value
        return pos + 1
    if value < 1 << 16:
        buf[pos] = 251
        struct.pack_into("<H", buf, pos + 1, value)
        return pos + 3
    if value < 1 << 32:
        buf[pos] = 252
        struct.pack_into("<I", buf, pos + 1, value)
        return pos + 5
    buf[pos] = 253
    struct.pack_into("<Q", buf, pos + 1, value)
    return pos + 9


def read_compact_uint(buf: bytes, pos: int) -> Tuple[int, int]:
    """Return ``(value, next_pos)``."""
    try:
        first = buf[pos]
    except IndexError:
        raise JsonbDecodeError("truncated compact integer") from None
    if first <= 250:
        return first, pos + 1
    width = {251: 2, 252: 4, 253: 8}.get(first)
    if width is None:
        raise JsonbDecodeError(f"invalid compact integer marker {first}")
    end = pos + 1 + width
    if end > len(buf):
        raise JsonbDecodeError("truncated compact integer payload")
    return int.from_bytes(buf[pos + 1 : end], "little"), end


def write_offset(buf: bytearray, pos: int, value: int, width: int) -> int:
    struct.pack_into(_STRUCT_BY_WIDTH[width], buf, pos, value)
    return pos + width


def read_offset(buf: bytes, pos: int, width: int) -> int:
    return struct.unpack_from(_STRUCT_BY_WIDTH[width], buf, pos)[0]
