"""JSONB: the optimized binary JSON format of Section 5.

Public surface:

* :func:`encode` / :func:`decode` — two-pass serialization and full
  materialization (round-trip safe apart from key order / whitespace).
* :class:`JsonbValue` — zero-copy navigation with O(log n) object key
  lookup, O(1) array indexing, typed getters (cast rewriting).
* :mod:`repro.jsonb.bson` / :mod:`repro.jsonb.cbor` — baseline binary
  formats used by the Section 6.9 comparison.
"""

from repro.jsonb.access import JsonbValue, jsonb_get_path
from repro.jsonb.decoder import decode
from repro.jsonb.encoder import encode, encoded_size

__all__ = ["JsonbValue", "decode", "encode", "encoded_size", "jsonb_get_path"]
