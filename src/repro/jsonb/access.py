"""Access expressions over JSONB bytes (Sections 5.4 and 4.3).

:class:`JsonbValue` is a zero-copy *view* into a JSONB buffer.  Object
key lookup binary-searches the sorted offset table (O(log n)); array
indexing reads one offset (O(1)).  The typed getters implement the cast
rewriting of Section 4.3: ``x->>'k'::BigInt`` reads the integer payload
directly instead of materializing text and parsing it back.
"""

from __future__ import annotations

import json
from typing import Iterator, Optional, Tuple, Union

from repro.core.datetimes import parse_datetime_string
from repro.core.jsonpath import KeyPath
from repro.core.types import JsonType
from repro.jsonb import format as fmt
from repro.jsonb.decoder import decode_value, skip_value

_JSON_TYPE_BY_ID = {
    fmt.TYPE_INT: JsonType.INT,
    fmt.TYPE_FLOAT: JsonType.FLOAT,
    fmt.TYPE_STRING: JsonType.STRING,
    fmt.TYPE_NUMSTR: JsonType.NUMSTR,
    fmt.TYPE_OBJECT: JsonType.OBJECT,
    fmt.TYPE_ARRAY: JsonType.ARRAY,
}


class JsonbValue:
    """A view of one value inside a JSONB buffer."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes, pos: int = 0):
        self.buf = buf
        self.pos = pos

    # ------------------------------------------------------------------
    # type inspection

    def type_id(self) -> int:
        return self.buf[self.pos] >> 5

    def json_type(self) -> JsonType:
        type_id, info = fmt.split_header(self.buf[self.pos])
        if type_id == fmt.TYPE_LITERAL:
            return JsonType.NULL if info == fmt.LITERAL_NULL else JsonType.BOOL
        return _JSON_TYPE_BY_ID[type_id]

    def is_null(self) -> bool:
        return self.buf[self.pos] == fmt.make_header(fmt.TYPE_LITERAL, fmt.LITERAL_NULL)

    # ------------------------------------------------------------------
    # navigation (the `->` operator)

    def get(self, step: Union[str, int]) -> Optional["JsonbValue"]:
        """Follow one object key or array slot; ``None`` when absent
        or when the value is not a container of the right kind."""
        if isinstance(step, str):
            return self._object_get(step)
        return self._array_at(step)

    def get_path(self, path: KeyPath) -> Optional["JsonbValue"]:
        """Follow a whole key path; ``None`` when any step is absent."""
        current: Optional[JsonbValue] = self
        for step in path.steps:
            current = current.get(step)
            if current is None:
                return None
        return current

    def _object_get(self, key: str) -> Optional["JsonbValue"]:
        buf, pos = self.buf, self.pos
        type_id, info = fmt.split_header(buf[pos])
        if type_id != fmt.TYPE_OBJECT:
            return None
        width = fmt.OFFSET_WIDTHS[info & 0x3]
        count, pos = fmt.read_compact_uint(buf, pos + 1)
        table = pos
        slot_area = pos + count * width
        target = key.encode("utf-8")
        lo, hi = 0, count - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            slot = slot_area + fmt.read_offset(buf, table + mid * width, width)
            key_len, key_pos = fmt.read_compact_uint(buf, slot)
            candidate = buf[key_pos : key_pos + key_len]
            if candidate == target:
                return JsonbValue(buf, key_pos + key_len)
            if candidate < target:
                lo = mid + 1
            else:
                hi = mid - 1
        return None

    def _array_at(self, index: int) -> Optional["JsonbValue"]:
        buf, pos = self.buf, self.pos
        type_id, info = fmt.split_header(buf[pos])
        if type_id != fmt.TYPE_ARRAY:
            return None
        width = fmt.OFFSET_WIDTHS[info & 0x3]
        count, pos = fmt.read_compact_uint(buf, pos + 1)
        if index < 0:
            index += count
        if not 0 <= index < count:
            return None
        slot_area = pos + count * width
        offset = fmt.read_offset(buf, pos + index * width, width)
        return JsonbValue(buf, slot_area + offset)

    def __len__(self) -> int:
        """Element count of an object or array (0 for scalars)."""
        type_id, _ = fmt.split_header(self.buf[self.pos])
        if type_id not in (fmt.TYPE_OBJECT, fmt.TYPE_ARRAY):
            return 0
        count, _ = fmt.read_compact_uint(self.buf, self.pos + 1)
        return count

    def iter_items(self) -> Iterator[Tuple[Optional[str], "JsonbValue"]]:
        """Forward-iterate the slots of an object (key, value) or array
        (None, value) without touching the offset table — the layout is
        contiguous (Section 5.1)."""
        buf, pos = self.buf, self.pos
        type_id, info = fmt.split_header(buf[pos])
        if type_id not in (fmt.TYPE_OBJECT, fmt.TYPE_ARRAY):
            return
        width = fmt.OFFSET_WIDTHS[info & 0x3]
        count, pos = fmt.read_compact_uint(buf, pos + 1)
        pos += count * width
        for _ in range(count):
            key = None
            if type_id == fmt.TYPE_OBJECT:
                key_len, pos = fmt.read_compact_uint(buf, pos)
                key = buf[pos : pos + key_len].decode("utf-8")
                pos += key_len
            yield key, JsonbValue(buf, pos)
            pos = skip_value(buf, pos)

    # ------------------------------------------------------------------
    # extraction

    def as_python(self) -> object:
        """Materialize this value as a Python object."""
        value, _ = decode_value(self.buf, self.pos)
        return value

    def slice_bytes(self) -> bytes:
        """The standalone JSONB bytes of this sub-value."""
        end = skip_value(self.buf, self.pos)
        return self.buf[self.pos : end]

    def as_text(self) -> Optional[str]:
        """PostgreSQL ``->>`` semantics: scalars become their text,
        containers their JSON text, JSON null becomes SQL NULL."""
        type_id, info = fmt.split_header(self.buf[self.pos])
        if type_id == fmt.TYPE_LITERAL:
            if info == fmt.LITERAL_NULL:
                return None
            return "true" if info == fmt.LITERAL_TRUE else "false"
        if type_id in (fmt.TYPE_STRING, fmt.TYPE_NUMSTR):
            return self.as_python()
        if type_id == fmt.TYPE_INT:
            return str(self.as_python())
        if type_id == fmt.TYPE_FLOAT:
            value = self.as_python()
            return repr(int(value)) if value == int(value) else repr(value)
        return json.dumps(self.as_python(), separators=(",", ":"))

    # ------------------------------------------------------------------
    # typed getters (cast rewriting, Section 4.3)

    def as_int(self) -> Optional[int]:
        """``->>'k'::BigInt`` without going through text."""
        type_id, info = fmt.split_header(self.buf[self.pos])
        if type_id == fmt.TYPE_INT:
            if info <= fmt.MAX_INLINE_INT:
                return info
            return fmt.read_int_payload(self.buf, self.pos + 1, info - 7)
        if type_id == fmt.TYPE_FLOAT:
            return int(self.as_python())
        if type_id == fmt.TYPE_NUMSTR:
            text = self.as_python()
            try:
                return int(text)
            except ValueError:
                return int(float(text))
        if type_id == fmt.TYPE_STRING:
            try:
                return int(self.as_python())
            except ValueError:
                return None
        if type_id == fmt.TYPE_LITERAL and info != fmt.LITERAL_NULL:
            return int(info == fmt.LITERAL_TRUE)
        return None

    def as_float(self) -> Optional[float]:
        """``->>'k'::Float`` without going through text."""
        type_id, info = fmt.split_header(self.buf[self.pos])
        if type_id == fmt.TYPE_FLOAT or type_id == fmt.TYPE_INT:
            return float(self.as_python())
        if type_id in (fmt.TYPE_NUMSTR, fmt.TYPE_STRING):
            try:
                return float(self.as_python())
            except ValueError:
                return None
        if type_id == fmt.TYPE_LITERAL and info != fmt.LITERAL_NULL:
            return float(info == fmt.LITERAL_TRUE)
        return None

    def as_bool(self) -> Optional[bool]:
        type_id, info = fmt.split_header(self.buf[self.pos])
        if type_id == fmt.TYPE_LITERAL:
            if info == fmt.LITERAL_NULL:
                return None
            return info == fmt.LITERAL_TRUE
        if type_id == fmt.TYPE_INT:
            return self.as_int() != 0
        text = self.as_text()
        if text in ("true", "t", "1"):
            return True
        if text in ("false", "f", "0"):
            return False
        return None

    def as_timestamp(self) -> Optional[int]:
        """``::Date`` / ``::Timestamp`` access: parse supported string
        formats into epoch microseconds (Section 4.9)."""
        type_id, _ = fmt.split_header(self.buf[self.pos])
        if type_id == fmt.TYPE_STRING:
            return parse_datetime_string(self.as_python())
        if type_id == fmt.TYPE_INT:
            return self.as_int()
        return None

    def __repr__(self) -> str:
        return f"JsonbValue({self.as_python()!r})"


def jsonb_get_path(buf: bytes, path: KeyPath) -> Optional[JsonbValue]:
    """Convenience root-level path lookup."""
    return JsonbValue(buf, 0).get_path(path)
