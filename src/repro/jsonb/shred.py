"""Single-pass multi-path shredding of JSONB documents.

The fallback scan path (non-extracted key paths, Sections 4.2-4.5)
traverses the binary JSON per tuple.  Resolving each access request
independently walks every document once *per path*, repeating the
O(log n) sorted-key binary search at every shared nesting level,
re-encoding the searched keys to UTF-8 and allocating a fresh
:class:`~repro.jsonb.access.JsonbValue` per step.  Sinew (Tahara et
al.) and Dremel (Melnik et al.) instead shred all requested paths in
one pass over each record; this module does the same for our JSONB
layout:

* :func:`compile_paths` turns the requested key paths into a *trie*
  whose object keys are pre-encoded to UTF-8 once per plan and sorted
  in byte order — the order object slots are stored in (Section 5.1);
* :func:`shred_jsonb` walks one document's buffer depth-first and
  fills every requested path simultaneously.  Common prefixes like
  ``a.b.c`` / ``a.b.d`` descend once.  At an object node the sorted
  trie children binary-search the sorted offset table with a
  *shrinking window*: once child *j* is located (or proven absent) at
  insertion point *m*, child *j+1* only searches slots above *m* — at
  most the per-path O(k log n) probes, with no re-encoded keys, no
  intermediate ``JsonbValue`` allocations and one shared header
  decode per container;
* :func:`shred_python` is the parsed-JSON twin used by the raw-text
  storage format after its single ``json.loads`` per row.

The output is positional: slot *i* of the result list corresponds to
``plan.paths[i]``, holding a :class:`JsonbValue` view (or a raw Python
value for :func:`shred_python`) or ``None`` when the path is absent —
exactly the contract of ``JsonbValue.get_path`` / ``KeyPath.lookup``.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.jsonpath import KeyPath
from repro.jsonb import format as fmt
from repro.jsonb.access import JsonbValue

_TYPE_OBJECT = fmt.TYPE_OBJECT
_TYPE_ARRAY = fmt.TYPE_ARRAY
_OFFSET_WIDTHS = fmt.OFFSET_WIDTHS

#: ``unpack_from`` callables for the 2/4/8-byte offset widths (width 1
#: reads the byte directly in the walk loops)
_UNPACK_OFFSET = {
    2: struct.Struct("<H").unpack_from,
    4: struct.Struct("<I").unpack_from,
    8: struct.Struct("<Q").unpack_from,
}


class TrieNode:
    """One step of the compiled path trie."""

    __slots__ = ("obj_children", "arr_children", "terminal",
                 "obj_items", "arr_items", "obj_items_text")

    def __init__(self) -> None:
        #: UTF-8-encoded object key -> child (encoded once per plan)
        self.obj_children: Dict[bytes, TrieNode] = {}
        #: array slot -> child
        self.arr_children: Dict[int, TrieNode] = {}
        #: result slot index when a requested path ends here, else -1
        self.terminal = -1
        #: frozen ``obj_children`` as ``(key, child, leaf_slot)`` in
        #: key byte order (the storage order of object slots), for the
        #: shrinking-window search; ``leaf_slot >= 0`` marks a child
        #: with no further descent, letting the parent loop fill the
        #: result slot without a recursive call
        self.obj_items: Tuple[Tuple[bytes, "TrieNode", int], ...] = ()
        self.arr_items: Tuple[Tuple[int, "TrieNode", int], ...] = ()
        #: decoded twin of ``obj_items`` for the parsed-JSON walk
        self.obj_items_text: Tuple[Tuple[str, "TrieNode", int], ...] = ()

    def _leaf_slot(self) -> int:
        if self.obj_children or self.arr_children:
            return -1
        return self.terminal

    def _freeze(self) -> None:
        self.obj_items = tuple(
            (key, child, child._leaf_slot())
            for key, child in sorted(self.obj_children.items()))
        self.arr_items = tuple(
            (index, child, child._leaf_slot())
            for index, child in sorted(self.arr_children.items()))
        self.obj_items_text = tuple(
            (key.decode("utf-8"), child, leaf)
            for key, child, leaf in self.obj_items)
        for _key, child, _leaf in self.obj_items:
            child._freeze()
        for _index, child, _leaf in self.arr_items:
            child._freeze()


class ShredPlan:
    """A compiled set of key paths: one trie + the slot assignment."""

    __slots__ = ("paths", "root", "slots")

    def __init__(self, paths: Tuple[KeyPath, ...], root: TrieNode):
        self.paths = paths
        self.root = root
        #: path -> result slot, for callers holding KeyPath handles
        self.slots: Dict[KeyPath, int] = {
            path: index for index, path in enumerate(paths)}

    def __len__(self) -> int:
        return len(self.paths)


def compile_paths(paths: Sequence[KeyPath]) -> ShredPlan:
    """Build a :class:`ShredPlan` for *paths* (duplicates collapse to
    one slot)."""
    unique: List[KeyPath] = []
    seen: Dict[KeyPath, int] = {}
    root = TrieNode()
    for path in paths:
        if path in seen:
            continue
        seen[path] = len(unique)
        unique.append(path)
        node = root
        for step in path.steps:
            if isinstance(step, str):
                key = step.encode("utf-8")
                child = node.obj_children.get(key)
                if child is None:
                    child = node.obj_children[key] = TrieNode()
            else:
                child = node.arr_children.get(step)
                if child is None:
                    child = node.arr_children[step] = TrieNode()
            node = child
        node.terminal = seen[path]
    root._freeze()
    return ShredPlan(tuple(unique), root)


def shred_jsonb(plan: ShredPlan, buf: bytes) -> List[Optional[JsonbValue]]:
    """Walk *buf* once; return one ``JsonbValue`` (or ``None``) per
    plan slot."""
    out: List[Optional[JsonbValue]] = [None] * len(plan.paths)
    _walk(buf, 0, plan.root, out)
    return out


def _walk(buf: bytes, pos: int, node: TrieNode,
          out: List[Optional[JsonbValue]]) -> None:
    if node.terminal >= 0:
        out[node.terminal] = JsonbValue(buf, pos)
    header = buf[pos]
    type_id = header >> 5
    if type_id == _TYPE_OBJECT:
        items = node.obj_items
        if not items:
            return
        width = _OFFSET_WIDTHS[header & 0x3]
        count = buf[pos + 1]
        if count <= 250:
            table = pos + 2
        else:
            count, table = fmt.read_compact_uint(buf, pos + 1)
        if count == 0:
            return
        slot_area = table + count * width
        unpack = _UNPACK_OFFSET[width] if width != 1 else None
        base = 0
        for target, child, leaf in items:
            lo, hi = base, count - 1
            while lo <= hi:
                mid = (lo + hi) >> 1
                if unpack is None:
                    slot = slot_area + buf[table + mid]
                else:
                    slot = slot_area + unpack(buf, table + mid * width)[0]
                key_len = buf[slot]
                if key_len <= 250:
                    key_pos = slot + 1
                else:
                    key_len, key_pos = fmt.read_compact_uint(buf, slot)
                value_pos = key_pos + key_len
                candidate = buf[key_pos:value_pos]
                if candidate == target:
                    if leaf >= 0:
                        out[leaf] = JsonbValue(buf, value_pos)
                    else:
                        _walk(buf, value_pos, child, out)
                    base = mid + 1
                    break
                if candidate < target:
                    lo = mid + 1
                else:
                    hi = mid - 1
            else:
                # not found: *lo* is the insertion point, and every
                # later (larger) trie key can only live above it
                base = lo
    elif type_id == _TYPE_ARRAY:
        items = node.arr_items
        if not items:
            return
        width = _OFFSET_WIDTHS[header & 0x3]
        count = buf[pos + 1]
        if count <= 250:
            table = pos + 2
        else:
            count, table = fmt.read_compact_uint(buf, pos + 1)
        slot_area = table + count * width
        unpack = _UNPACK_OFFSET[width] if width != 1 else None
        for index, child, leaf in items:
            if 0 <= index < count:
                if unpack is None:
                    offset = buf[table + index]
                else:
                    offset = unpack(buf, table + index * width)[0]
                if leaf >= 0:
                    out[leaf] = JsonbValue(buf, slot_area + offset)
                else:
                    _walk(buf, slot_area + offset, child, out)


def shred_python(plan: ShredPlan, document: object) -> List[object]:
    """One-pass trie walk over a parsed JSON value; slot semantics of
    ``KeyPath.lookup`` (absent paths stay ``None``)."""
    out: List[object] = [None] * len(plan.paths)
    _walk_python(document, plan.root, out)
    return out


def _walk_python(value: object, node: TrieNode, out: List[object]) -> None:
    if node.terminal >= 0:
        out[node.terminal] = value
    if node.obj_items_text and isinstance(value, dict):
        for text, child, leaf in node.obj_items_text:
            if text in value:
                if leaf >= 0:
                    out[leaf] = value[text]
                else:
                    _walk_python(value[text], child, out)
    if node.arr_items and isinstance(value, list):
        count = len(value)
        for index, child, leaf in node.arr_items:
            if 0 <= index < count:
                if leaf >= 0:
                    out[leaf] = value[index]
                else:
                    _walk_python(value[index], child, out)
