"""BSON-style baseline binary format (Section 6.9 competitor).

A from-scratch implementation of the essential BSON wire layout used by
MongoDB: a document is ``int32 total_size | element* | 0x00`` and every
element is ``type byte | cstring key | payload``.  There is no offset
table and keys are unsorted, so a key lookup is a *linear* scan over
the elements — the behaviour the paper's Figure 20 contrasts against
JSONB's binary search.

Supported element types (enough for RFC 8259 values):

====  ======================================
0x01  double (8 bytes)
0x02  UTF-8 string (int32 length incl. NUL)
0x03  embedded document
0x04  array (document with keys "0", "1", …)
0x08  boolean (1 byte)
0x0A  null
0x12  int64
====  ======================================
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple, Union

from repro.core.jsonpath import KeyPath
from repro.errors import JsonbDecodeError, JsonbEncodeError

_T_DOUBLE = 0x01
_T_STRING = 0x02
_T_DOCUMENT = 0x03
_T_ARRAY = 0x04
_T_BOOL = 0x08
_T_NULL = 0x0A
_T_INT64 = 0x12


def _encode_element(out: bytearray, key: str, value: object) -> None:
    key_bytes = key.encode("utf-8")
    if b"\x00" in key_bytes:
        raise JsonbEncodeError("BSON keys cannot contain NUL bytes")
    if value is None:
        out.append(_T_NULL)
        out += key_bytes + b"\x00"
    elif isinstance(value, bool):
        out.append(_T_BOOL)
        out += key_bytes + b"\x00"
        out.append(1 if value else 0)
    elif isinstance(value, int):
        out.append(_T_INT64)
        out += key_bytes + b"\x00"
        out += struct.pack("<q", value)
    elif isinstance(value, float):
        out.append(_T_DOUBLE)
        out += key_bytes + b"\x00"
        out += struct.pack("<d", value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_T_STRING)
        out += key_bytes + b"\x00"
        out += struct.pack("<i", len(data) + 1)
        out += data + b"\x00"
    elif isinstance(value, dict):
        out.append(_T_DOCUMENT)
        out += key_bytes + b"\x00"
        out += _encode_document(value)
    elif isinstance(value, (list, tuple)):
        out.append(_T_ARRAY)
        out += key_bytes + b"\x00"
        out += _encode_document({str(i): item for i, item in enumerate(value)})
    else:
        raise JsonbEncodeError(f"cannot BSON-encode {type(value).__name__}")


def _encode_document(value: dict) -> bytes:
    body = bytearray()
    for key, item in value.items():
        _encode_element(body, key, item)
    return struct.pack("<i", len(body) + 5) + bytes(body) + b"\x00"


def encode(value: object) -> bytes:
    """Encode a value.  BSON requires a document at the top level, so
    non-dict roots are wrapped as ``{"": value}`` (as MongoDB drivers do
    for scalars)."""
    if isinstance(value, dict):
        return _encode_document(value)
    return _encode_document({"": value})


def _read_cstring(buf: bytes, pos: int) -> Tuple[str, int]:
    end = buf.index(b"\x00", pos)
    return buf[pos:end].decode("utf-8"), end + 1


def _decode_value(buf: bytes, pos: int, type_id: int) -> Tuple[object, int]:
    if type_id == _T_NULL:
        return None, pos
    if type_id == _T_BOOL:
        return buf[pos] != 0, pos + 1
    if type_id == _T_INT64:
        return struct.unpack_from("<q", buf, pos)[0], pos + 8
    if type_id == _T_DOUBLE:
        return struct.unpack_from("<d", buf, pos)[0], pos + 8
    if type_id == _T_STRING:
        length = struct.unpack_from("<i", buf, pos)[0]
        start = pos + 4
        return buf[start : start + length - 1].decode("utf-8"), start + length
    if type_id == _T_DOCUMENT:
        return _decode_document(buf, pos)
    if type_id == _T_ARRAY:
        doc, end = _decode_document(buf, pos)
        return list(doc.values()), end
    raise JsonbDecodeError(f"invalid BSON element type 0x{type_id:02x}")


def _decode_document(buf: bytes, pos: int) -> Tuple[dict, int]:
    size = struct.unpack_from("<i", buf, pos)[0]
    end = pos + size
    pos += 4
    result = {}
    while buf[pos] != 0:
        type_id = buf[pos]
        key, pos = _read_cstring(buf, pos + 1)
        value, pos = _decode_value(buf, pos, type_id)
        result[key] = value
    if pos + 1 != end:
        raise JsonbDecodeError("BSON document size mismatch")
    return result, end


def decode(buf: bytes) -> object:
    """Decode a BSON document (unwrapping the scalar-root wrapper)."""
    doc, end = _decode_document(buf, 0)
    if end != len(buf):
        raise JsonbDecodeError("trailing garbage after BSON document")
    if list(doc.keys()) == [""]:
        return doc[""]
    return doc


def _skip_value(buf: bytes, pos: int, type_id: int) -> int:
    if type_id == _T_NULL:
        return pos
    if type_id == _T_BOOL:
        return pos + 1
    if type_id in (_T_INT64, _T_DOUBLE):
        return pos + 8
    if type_id == _T_STRING:
        return pos + 4 + struct.unpack_from("<i", buf, pos)[0]
    if type_id in (_T_DOCUMENT, _T_ARRAY):
        return pos + struct.unpack_from("<i", buf, pos)[0]
    raise JsonbDecodeError(f"invalid BSON element type 0x{type_id:02x}")


def _find(buf: bytes, pos: int, step: Union[str, int]) -> Optional[Tuple[int, int]]:
    """Linear scan for *step* inside the document at *pos*.  Returns the
    ``(type_id, payload_pos)`` of the matching element."""
    target = str(step)
    pos += 4
    while buf[pos] != 0:
        type_id = buf[pos]
        key, key_end = _read_cstring(buf, pos + 1)
        if key == target:
            return type_id, key_end
        pos = _skip_value(buf, key_end, type_id)
    return None


def lookup(buf: bytes, path: KeyPath) -> Tuple[bool, object]:
    """Follow a key path with BSON's linear per-level scans.

    Returns ``(found, value)``; ``found`` is False when any step is
    absent or descends into a scalar.
    """
    type_id, pos = _T_DOCUMENT, 0
    for step in path.steps:
        if type_id not in (_T_DOCUMENT, _T_ARRAY):
            return False, None
        hit = _find(buf, pos, step)
        if hit is None:
            return False, None
        type_id, pos = hit
    value, _ = _decode_value(buf, pos, type_id)
    return True, value
