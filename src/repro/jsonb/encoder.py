"""Two-pass JSONB encoder (Section 5.3).

Because nested objects are stored *inside* their parent, the size of an
object depends on the sizes of everything below it.  On-the-fly
resizing would be quadratic, so the encoder runs two passes:

1. a validation/measure pass that walks the input depth-first, detects
   numeric strings, picks the lossless float width and the minimal
   integer/offset widths, and records the byte size of every node;
2. a write pass that allocates one exact-size buffer and serializes the
   plan without any further checks or allocations.
"""

from __future__ import annotations

import math
import struct
from typing import List, Optional, Tuple

import numpy as np

from repro.core.types import is_numeric_string
from repro.errors import JsonbEncodeError
from repro.jsonb import format as fmt


class _Plan:
    """Measured encoding plan of one value (pass 1 output)."""

    __slots__ = ("kind", "size", "info", "payload", "children")

    def __init__(self, kind: int, size: int, info: int,
                 payload: object = None, children: Optional[list] = None):
        self.kind = kind
        self.size = size
        self.info = info
        self.payload = payload
        self.children = children


def _measure_string(text: str, kind: int) -> _Plan:
    data = text.encode("utf-8")
    length = len(data)
    if length <= fmt.MAX_INLINE_STRLEN:
        return _Plan(kind, 1 + length, length, data)
    for code, width in enumerate(fmt.OFFSET_WIDTHS):
        if length < 1 << (8 * width):
            return _Plan(kind, 1 + width + length, 28 + code, data)
    raise JsonbEncodeError("string exceeds 2^64 bytes")


def _measure_float(value: float) -> _Plan:
    # Narrow to half/single precision when the round trip is lossless
    # (Section 5.1).  NaN is kept as a double: NaN != NaN would defeat
    # the equality check below.
    if math.isfinite(value):
        if abs(value) <= 65504.0 and float(np.float16(value)) == value:
            return _Plan(fmt.TYPE_FLOAT, 3, 2, struct.pack("<e", np.float16(value)))
        if abs(value) <= 3.4028235e38 and float(np.float32(value)) == value:
            return _Plan(fmt.TYPE_FLOAT, 5, 4, struct.pack("<f", value))
    elif math.isinf(value):
        return _Plan(fmt.TYPE_FLOAT, 3, 2, struct.pack("<e", np.float16(value)))
    return _Plan(fmt.TYPE_FLOAT, 9, 8, struct.pack("<d", value))


def _measure(value: object, detect_numeric_strings: bool) -> _Plan:
    if value is None:
        return _Plan(fmt.TYPE_LITERAL, 1, fmt.LITERAL_NULL)
    if isinstance(value, bool):
        info = fmt.LITERAL_TRUE if value else fmt.LITERAL_FALSE
        return _Plan(fmt.TYPE_LITERAL, 1, info)
    if isinstance(value, int):
        nbytes = fmt.int_payload_size(value)
        if nbytes == 0:
            return _Plan(fmt.TYPE_INT, 1, value)
        return _Plan(fmt.TYPE_INT, 1 + nbytes, 7 + nbytes, value)
    if isinstance(value, float):
        return _measure_float(value)
    if isinstance(value, str):
        if detect_numeric_strings and is_numeric_string(value):
            return _measure_string(value, fmt.TYPE_NUMSTR)
        return _measure_string(value, fmt.TYPE_STRING)
    if isinstance(value, dict):
        return _measure_object(value, detect_numeric_strings)
    if isinstance(value, (list, tuple)):
        return _measure_array(value, detect_numeric_strings)
    raise JsonbEncodeError(f"cannot encode value of type {type(value).__name__}")


def _measure_object(value: dict, detect: bool) -> _Plan:
    slots: List[Tuple[bytes, _Plan]] = []
    for key, child in value.items():
        if not isinstance(key, str):
            raise JsonbEncodeError(f"object key must be a string, got {key!r}")
        slots.append((key.encode("utf-8"), _measure(child, detect)))
    # Keys are stored sorted so lookups can binary-search (Section 5.1).
    slots.sort(key=lambda slot: slot[0])
    slot_bytes = sum(
        fmt.compact_uint_size(len(key)) + len(key) + plan.size for key, plan in slots
    )
    count = len(slots)
    code = fmt.offset_width_code(max(slot_bytes, 1))
    width = fmt.OFFSET_WIDTHS[code]
    size = 1 + fmt.compact_uint_size(count) + count * width + slot_bytes
    return _Plan(fmt.TYPE_OBJECT, size, code, None, slots)


def _measure_array(value: object, detect: bool) -> _Plan:
    children = [_measure(child, detect) for child in value]
    payload_bytes = sum(plan.size for plan in children)
    count = len(children)
    code = fmt.offset_width_code(max(payload_bytes, 1))
    width = fmt.OFFSET_WIDTHS[code]
    size = 1 + fmt.compact_uint_size(count) + count * width + payload_bytes
    return _Plan(fmt.TYPE_ARRAY, size, code, None, children)


def _write(plan: _Plan, buf: bytearray, pos: int) -> int:
    buf[pos] = fmt.make_header(plan.kind, plan.info)
    pos += 1
    if plan.kind == fmt.TYPE_LITERAL:
        return pos
    if plan.kind == fmt.TYPE_INT:
        if plan.payload is None:
            return pos
        return fmt.write_int_payload(buf, pos, plan.payload, plan.info - 7)
    if plan.kind == fmt.TYPE_FLOAT:
        data = plan.payload
        buf[pos : pos + len(data)] = data
        return pos + len(data)
    if plan.kind in (fmt.TYPE_STRING, fmt.TYPE_NUMSTR):
        data = plan.payload
        if plan.info >= 28:
            width = fmt.OFFSET_WIDTHS[plan.info - 28]
            buf[pos : pos + width] = len(data).to_bytes(width, "little")
            pos += width
        buf[pos : pos + len(data)] = data
        return pos + len(data)
    if plan.kind == fmt.TYPE_OBJECT:
        return _write_object(plan, buf, pos)
    assert plan.kind == fmt.TYPE_ARRAY
    return _write_array(plan, buf, pos)


def _write_object(plan: _Plan, buf: bytearray, pos: int) -> int:
    slots = plan.children
    width = fmt.OFFSET_WIDTHS[plan.info]
    pos = fmt.write_compact_uint(buf, pos, len(slots))
    table_pos = pos
    pos += len(slots) * width
    slot_area = pos
    for key, child in slots:
        table_pos = fmt.write_offset(buf, table_pos, pos - slot_area, width)
        pos = fmt.write_compact_uint(buf, pos, len(key))
        buf[pos : pos + len(key)] = key
        pos += len(key)
        pos = _write(child, buf, pos)
    return pos


def _write_array(plan: _Plan, buf: bytearray, pos: int) -> int:
    children = plan.children
    width = fmt.OFFSET_WIDTHS[plan.info]
    pos = fmt.write_compact_uint(buf, pos, len(children))
    table_pos = pos
    pos += len(children) * width
    slot_area = pos
    for child in children:
        table_pos = fmt.write_offset(buf, table_pos, pos - slot_area, width)
        pos = _write(child, buf, pos)
    return pos


def encode(value: object, detect_numeric_strings: bool = True) -> bytes:
    """Encode a parsed JSON value into JSONB bytes.

    ``detect_numeric_strings`` enables the numeric-string type of
    Section 5.2; turning it off stores all strings verbatim (used by the
    format ablation tests).
    """
    plan = _measure(value, detect_numeric_strings)
    buf = bytearray(plan.size)
    end = _write(plan, buf, 0)
    assert end == plan.size, "measure/write size mismatch"
    return bytes(buf)


def encoded_size(value: object, detect_numeric_strings: bool = True) -> int:
    """Size in bytes the value would occupy, without writing it."""
    return _measure(value, detect_numeric_strings).size
