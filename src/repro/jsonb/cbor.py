"""CBOR-style baseline binary format (Section 6.9 competitor).

A from-scratch implementation of the RFC 7049 subset needed for JSON
values.  CBOR is an *exchange* format: headers are maximally compact
(major type + additional info in one byte) and there are no offset
tables, so it has the smallest storage footprint (paper Figure 19) but
key lookups must sequentially parse and skip every preceding map entry
— including fully traversing nested containers (paper Figure 20).

Major types used: 0 unsigned int, 1 negative int, 3 text string,
4 array, 5 map, 7 floats & simple values (false/true/null, half /
single / double precision floats with lossless narrowing).
"""

from __future__ import annotations

import math
import struct
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.jsonpath import KeyPath
from repro.errors import JsonbDecodeError, JsonbEncodeError

_MAJOR_UINT = 0
_MAJOR_NEGINT = 1
_MAJOR_TEXT = 3
_MAJOR_ARRAY = 4
_MAJOR_MAP = 5
_MAJOR_SIMPLE = 7

_SIMPLE_FALSE = 20
_SIMPLE_TRUE = 21
_SIMPLE_NULL = 22


def _encode_head(out: bytearray, major: int, argument: int) -> None:
    if argument < 24:
        out.append((major << 5) | argument)
    elif argument < 1 << 8:
        out.append((major << 5) | 24)
        out.append(argument)
    elif argument < 1 << 16:
        out.append((major << 5) | 25)
        out += struct.pack(">H", argument)
    elif argument < 1 << 32:
        out.append((major << 5) | 26)
        out += struct.pack(">I", argument)
    else:
        out.append((major << 5) | 27)
        out += struct.pack(">Q", argument)


def _encode_value(out: bytearray, value: object) -> None:
    if value is None:
        out.append((_MAJOR_SIMPLE << 5) | _SIMPLE_NULL)
    elif isinstance(value, bool):
        out.append((_MAJOR_SIMPLE << 5) | (_SIMPLE_TRUE if value else _SIMPLE_FALSE))
    elif isinstance(value, int):
        if value >= 0:
            _encode_head(out, _MAJOR_UINT, value)
        else:
            _encode_head(out, _MAJOR_NEGINT, -1 - value)
    elif isinstance(value, float):
        _encode_float(out, value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        _encode_head(out, _MAJOR_TEXT, len(data))
        out += data
    elif isinstance(value, (list, tuple)):
        _encode_head(out, _MAJOR_ARRAY, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        _encode_head(out, _MAJOR_MAP, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise JsonbEncodeError("CBOR map keys must be strings here")
            _encode_value(out, key)
            _encode_value(out, item)
    else:
        raise JsonbEncodeError(f"cannot CBOR-encode {type(value).__name__}")


def _encode_float(out: bytearray, value: float) -> None:
    if math.isfinite(value) and abs(value) <= 65504.0 and float(np.float16(value)) == value:
        out.append((_MAJOR_SIMPLE << 5) | 25)
        out += struct.pack(">e", value)
    elif math.isfinite(value) and abs(value) <= 3.4028235e38 and float(np.float32(value)) == value:
        out.append((_MAJOR_SIMPLE << 5) | 26)
        out += struct.pack(">f", value)
    elif math.isinf(value):
        out.append((_MAJOR_SIMPLE << 5) | 25)
        out += struct.pack(">e", value)
    else:
        out.append((_MAJOR_SIMPLE << 5) | 27)
        out += struct.pack(">d", value)


def encode(value: object) -> bytes:
    """Encode a parsed JSON value as CBOR bytes."""
    out = bytearray()
    _encode_value(out, value)
    return bytes(out)


def _read_argument(buf: bytes, pos: int, info: int) -> Tuple[int, int]:
    if info < 24:
        return info, pos
    if info == 24:
        return buf[pos], pos + 1
    if info == 25:
        return struct.unpack_from(">H", buf, pos)[0], pos + 2
    if info == 26:
        return struct.unpack_from(">I", buf, pos)[0], pos + 4
    if info == 27:
        return struct.unpack_from(">Q", buf, pos)[0], pos + 8
    raise JsonbDecodeError(f"unsupported CBOR additional info {info}")


def _decode_value(buf: bytes, pos: int) -> Tuple[object, int]:
    major, info = buf[pos] >> 5, buf[pos] & 0x1F
    pos += 1
    if major == _MAJOR_UINT:
        return _read_argument(buf, pos, info)
    if major == _MAJOR_NEGINT:
        argument, pos = _read_argument(buf, pos, info)
        return -1 - argument, pos
    if major == _MAJOR_TEXT:
        length, pos = _read_argument(buf, pos, info)
        return buf[pos : pos + length].decode("utf-8"), pos + length
    if major == _MAJOR_ARRAY:
        count, pos = _read_argument(buf, pos, info)
        items = []
        for _ in range(count):
            item, pos = _decode_value(buf, pos)
            items.append(item)
        return items, pos
    if major == _MAJOR_MAP:
        count, pos = _read_argument(buf, pos, info)
        result = {}
        for _ in range(count):
            key, pos = _decode_value(buf, pos)
            value, pos = _decode_value(buf, pos)
            result[key] = value
        return result, pos
    if major == _MAJOR_SIMPLE:
        if info == _SIMPLE_NULL:
            return None, pos
        if info == _SIMPLE_TRUE:
            return True, pos
        if info == _SIMPLE_FALSE:
            return False, pos
        if info == 25:
            return struct.unpack_from(">e", buf, pos)[0], pos + 2
        if info == 26:
            return struct.unpack_from(">f", buf, pos)[0], pos + 4
        if info == 27:
            return struct.unpack_from(">d", buf, pos)[0], pos + 8
    raise JsonbDecodeError(f"invalid CBOR header {buf[pos - 1]:#04x}")


def decode(buf: bytes) -> object:
    """Decode a CBOR document."""
    value, end = _decode_value(buf, 0)
    if end != len(buf):
        raise JsonbDecodeError("trailing garbage after CBOR document")
    return value


def _skip_value(buf: bytes, pos: int) -> int:
    """Skipping has no shortcut in CBOR: containers must be walked."""
    major, info = buf[pos] >> 5, buf[pos] & 0x1F
    pos += 1
    if major in (_MAJOR_UINT, _MAJOR_NEGINT):
        _, pos = _read_argument(buf, pos, info)
        return pos
    if major == _MAJOR_TEXT:
        length, pos = _read_argument(buf, pos, info)
        return pos + length
    if major == _MAJOR_ARRAY:
        count, pos = _read_argument(buf, pos, info)
        for _ in range(count):
            pos = _skip_value(buf, pos)
        return pos
    if major == _MAJOR_MAP:
        count, pos = _read_argument(buf, pos, info)
        for _ in range(2 * count):
            pos = _skip_value(buf, pos)
        return pos
    if major == _MAJOR_SIMPLE:
        if info in (_SIMPLE_NULL, _SIMPLE_TRUE, _SIMPLE_FALSE):
            return pos
        return pos + {25: 2, 26: 4, 27: 8}[info]
    raise JsonbDecodeError(f"invalid CBOR header {buf[pos - 1]:#04x}")


def lookup(buf: bytes, path: KeyPath) -> Tuple[bool, object]:
    """Follow a key path by sequentially scanning map entries and array
    prefixes (no random access in CBOR)."""
    pos = 0
    for step in path.steps:
        major, info = buf[pos] >> 5, buf[pos] & 0x1F
        if isinstance(step, str):
            if major != _MAJOR_MAP:
                return False, None
            count, pos = _read_argument(buf, pos + 1, info)
            found = False
            for _ in range(count):
                key, pos = _decode_value(buf, pos)
                if key == step:
                    found = True
                    break
                pos = _skip_value(buf, pos)
            if not found:
                return False, None
        else:
            if major != _MAJOR_ARRAY:
                return False, None
            count, pos = _read_argument(buf, pos + 1, info)
            if not 0 <= step < count:
                return False, None
            for _ in range(step):
                pos = _skip_value(buf, pos)
    value, _ = _decode_value(buf, pos)
    return True, value
