"""Full decoding of JSONB bytes back into Python values.

Round-trip property (Section 5): apart from key order and whitespace,
the decoded value equals the encoded input; numeric strings decode back
to their exact original text.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import JsonbDecodeError
from repro.jsonb import format as fmt


def decode(buf: bytes) -> object:
    """Decode a complete JSONB document."""
    value, end = decode_value(buf, 0)
    if end != len(buf):
        raise JsonbDecodeError(f"trailing garbage after document (at byte {end})")
    return value


def decode_value(buf: bytes, pos: int) -> Tuple[object, int]:
    """Decode the value starting at *pos*; return ``(value, next_pos)``."""
    if pos >= len(buf):
        raise JsonbDecodeError("truncated value header")
    type_id, info = fmt.split_header(buf[pos])
    pos += 1
    if type_id == fmt.TYPE_LITERAL:
        if info == fmt.LITERAL_NULL:
            return None, pos
        if info == fmt.LITERAL_FALSE:
            return False, pos
        if info == fmt.LITERAL_TRUE:
            return True, pos
        raise JsonbDecodeError(f"invalid literal info {info}")
    if type_id == fmt.TYPE_INT:
        if info <= fmt.MAX_INLINE_INT:
            return info, pos
        nbytes = info - 7
        if pos + nbytes > len(buf):
            raise JsonbDecodeError("truncated integer payload")
        return fmt.read_int_payload(buf, pos, nbytes), pos + nbytes
    if type_id == fmt.TYPE_FLOAT:
        if info not in (2, 4, 8):
            raise JsonbDecodeError(f"invalid float width {info}")
        if pos + info > len(buf):
            raise JsonbDecodeError("truncated float payload")
        code = {2: "<e", 4: "<f", 8: "<d"}[info]
        return struct.unpack_from(code, buf, pos)[0], pos + info
    if type_id in (fmt.TYPE_STRING, fmt.TYPE_NUMSTR):
        text, end = _read_string(buf, pos, info)
        return text, end
    if type_id == fmt.TYPE_OBJECT:
        return _decode_object(buf, pos, info)
    if type_id == fmt.TYPE_ARRAY:
        return _decode_array(buf, pos, info)
    raise JsonbDecodeError(f"invalid type id {type_id}")


def _read_string(buf: bytes, pos: int, info: int) -> Tuple[str, int]:
    if info <= fmt.MAX_INLINE_STRLEN:
        length = info
    else:
        width = fmt.OFFSET_WIDTHS[info - 28]
        if pos + width > len(buf):
            raise JsonbDecodeError("truncated string length")
        length = int.from_bytes(buf[pos : pos + width], "little")
        pos += width
    end = pos + length
    if end > len(buf):
        raise JsonbDecodeError("truncated string payload")
    try:
        return buf[pos:end].decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise JsonbDecodeError(f"invalid UTF-8 string payload: {exc}") from exc


def _decode_object(buf: bytes, pos: int, info: int) -> Tuple[dict, int]:
    width = fmt.OFFSET_WIDTHS[info & 0x3]
    count, pos = fmt.read_compact_uint(buf, pos)
    pos += count * width  # the offset table is only needed for lookups
    result = {}
    for _ in range(count):
        key_len, pos = fmt.read_compact_uint(buf, pos)
        if pos + key_len > len(buf):
            raise JsonbDecodeError("truncated object key")
        key = buf[pos : pos + key_len].decode("utf-8")
        pos += key_len
        value, pos = decode_value(buf, pos)
        result[key] = value
    return result, pos


def _decode_array(buf: bytes, pos: int, info: int) -> Tuple[list, int]:
    width = fmt.OFFSET_WIDTHS[info & 0x3]
    count, pos = fmt.read_compact_uint(buf, pos)
    pos += count * width
    result = []
    for _ in range(count):
        value, pos = decode_value(buf, pos)
        result.append(value)
    return result, pos


def skip_value(buf: bytes, pos: int) -> int:
    """Return the end position of the value starting at *pos* without
    materializing it.  Used by the access layer to slice sub-documents."""
    type_id, info = fmt.split_header(buf[pos])
    pos += 1
    if type_id == fmt.TYPE_LITERAL:
        return pos
    if type_id == fmt.TYPE_INT:
        return pos if info <= fmt.MAX_INLINE_INT else pos + (info - 7)
    if type_id == fmt.TYPE_FLOAT:
        return pos + info
    if type_id in (fmt.TYPE_STRING, fmt.TYPE_NUMSTR):
        if info <= fmt.MAX_INLINE_STRLEN:
            return pos + info
        width = fmt.OFFSET_WIDTHS[info - 28]
        length = int.from_bytes(buf[pos : pos + width], "little")
        return pos + width + length
    if type_id in (fmt.TYPE_OBJECT, fmt.TYPE_ARRAY):
        # The offset table lets us jump straight past the last slot:
        # seek to the final slot and skip only that one.
        width = fmt.OFFSET_WIDTHS[info & 0x3]
        count, pos = fmt.read_compact_uint(buf, pos)
        if count == 0:
            return pos
        last_offset = fmt.read_offset(buf, pos + (count - 1) * width, width)
        slot_area = pos + count * width
        pos = slot_area + last_offset
        if type_id == fmt.TYPE_OBJECT:
            key_len, pos = fmt.read_compact_uint(buf, pos)
            pos += key_len
        return skip_value(buf, pos)
    raise JsonbDecodeError(f"invalid type id {type_id}")
