"""Recursive-descent parser for the SQL subset.

Grammar (roughly):

    query      := [WITH name AS (query) [, ...]] SELECT [DISTINCT] items
                  FROM from_item [, ...]
                  [LEFT [OUTER] JOIN table ON expr]*
                  [WHERE expr] [GROUP BY expr_list] [HAVING expr]
                  [ORDER BY order_list] [LIMIT n]
    expr       := or-expression with AND/OR/NOT, comparisons, BETWEEN,
                  [NOT] IN (list | subquery), [NOT] LIKE, IS [NOT] NULL,
                  arithmetic, ``->``/``->>`` JSON access, ``::`` casts,
                  CASE, EXISTS, scalar subqueries, EXTRACT, SUBSTRING,
                  DATE/TIMESTAMP/INTERVAL literals and aggregates
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, tokenize

_AGGREGATES = {"count", "sum", "avg", "min", "max"}

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.index = 0
        # INNER JOIN ... ON conditions folded into WHERE, one buffer per
        # (possibly nested) SELECT being parsed
        self._inner_stack: List[List[ast.Node]] = []

    # -- token helpers -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def accept(self, kind: str, value: str = None) -> Optional[Token]:
        if self.current.matches(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            raise SqlSyntaxError(
                f"expected {value or kind!r}, found {self.current.value!r} "
                f"at position {self.current.position}"
            )
        return token

    def accept_keyword(self, *words: str) -> Optional[str]:
        if self.current.kind == "keyword" and self.current.value in words:
            return self.advance().value
        return None

    # -- entry points --------------------------------------------------------

    def parse_query(self) -> ast.SelectStmt:
        stmt = self._select_stmt()
        self.accept("op", ";")
        if not self.current.matches("eof"):
            raise SqlSyntaxError(
                f"trailing input at position {self.current.position}: "
                f"{self.current.value!r}"
            )
        return stmt

    # -- statements ------------------------------------------------------------

    def _select_stmt(self) -> ast.SelectStmt:
        self._inner_stack.append([])
        try:
            return self._select_stmt_body()
        finally:
            self._inner_stack.pop()

    def _select_stmt_body(self) -> ast.SelectStmt:
        ctes: List[Tuple[str, ast.SelectStmt]] = []
        if self.accept_keyword("with"):
            while True:
                name = self.expect("ident").value
                self.expect("keyword", "as")
                self.expect("op", "(")
                ctes.append((name, self._select_stmt()))
                self.expect("op", ")")
                if not self.accept("op", ","):
                    break
        self.expect("keyword", "select")
        distinct = bool(self.accept_keyword("distinct"))
        items = [self._select_item()]
        while self.accept("op", ","):
            items.append(self._select_item())
        self.expect("keyword", "from")
        tables = [self._table_ref()]
        left_joins: List[ast.LeftJoinAst] = []
        while True:
            if self.accept("op", ","):
                tables.append(self._table_ref())
            elif self.current.matches("keyword", "left"):
                self.advance()
                self.accept_keyword("outer")
                self.expect("keyword", "join")
                right = self._table_ref()
                self.expect("keyword", "on")
                left_joins.append(ast.LeftJoinAst(right, self._expr()))
            elif self.accept_keyword("inner") or self.current.matches("keyword", "join"):
                self.expect("keyword", "join")
                right = self._table_ref()
                self.expect("keyword", "on")
                tables.append(right)
                # inner-join conditions are plain predicates
                condition = self._expr()
                left_joins.append(ast.LeftJoinAst(right, condition))
                # mark as inner by folding into WHERE later: we encode
                # inner joins via a sentinel by replacing the last
                # left_joins entry; handled below
                inner = left_joins.pop()
                self._pending_inner.append(inner.condition)
            else:
                break
        where = self._expr() if self.accept_keyword("where") else None
        group_by: List[ast.Node] = []
        if self.accept_keyword("group"):
            self.expect("keyword", "by")
            group_by.append(self._expr())
            while self.accept("op", ","):
                group_by.append(self._expr())
        having = self._expr() if self.accept_keyword("having") else None
        # UNION ALL chain: each branch is a core select; a trailing
        # ORDER BY / LIMIT (syntactically attached to the last branch)
        # applies to the concatenated result and is hoisted here
        unions: List[ast.SelectStmt] = []
        hoisted_order: Tuple[ast.OrderItem, ...] = ()
        hoisted_limit: Optional[int] = None
        while self.current.matches("keyword", "union"):
            self.advance()
            self.expect("keyword", "all")
            branch = self._select_stmt()
            hoisted_order = branch.order_by
            hoisted_limit = branch.limit
            # flatten nested unions into one chain
            unions.append(ast.SelectStmt(
                items=branch.items, from_tables=branch.from_tables,
                left_joins=branch.left_joins, where=branch.where,
                group_by=branch.group_by, having=branch.having,
                distinct=branch.distinct, ctes=branch.ctes))
            unions.extend(branch.unions)
        order_by: List[ast.OrderItem] = list(hoisted_order)
        if self.accept_keyword("order"):
            self.expect("keyword", "by")
            order_by.append(self._order_item())
            while self.accept("op", ","):
                order_by.append(self._order_item())
        limit = hoisted_limit
        if self.accept_keyword("limit"):
            limit = int(self.expect("number").value)
        # fold INNER JOIN ... ON conditions into WHERE
        for condition in self._collect_pending_inner():
            where = condition if where is None else ast.Binary("and", where,
                                                               condition)
        return ast.SelectStmt(
            items=tuple(items),
            from_tables=tuple(tables),
            left_joins=tuple(left_joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
            ctes=tuple(ctes),
            unions=tuple(unions),
        )

    @property
    def _pending_inner(self) -> List[ast.Node]:
        return self._inner_stack[-1]

    def _collect_pending_inner(self) -> List[ast.Node]:
        pending = list(self._pending_inner)
        self._pending_inner.clear()
        return pending

    def _select_item(self) -> ast.SelectItem:
        expr = self._expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect("ident").value
        elif self.current.kind == "ident":
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    def _table_ref(self) -> ast.TableRefAst:
        if self.accept("op", "("):
            subquery = self._select_stmt()
            self.expect("op", ")")
            self.accept_keyword("as")
            alias = self.expect("ident").value
            return ast.TableRefAst(None, subquery, alias)
        name = self.expect("ident").value
        alias = name
        if self.accept_keyword("as"):
            alias = self.expect("ident").value
        elif self.current.kind == "ident":
            alias = self.advance().value
        return ast.TableRefAst(name, None, alias)

    def _order_item(self) -> ast.OrderItem:
        if self.current.kind == "number":
            target: Union[ast.Node, int, str] = int(self.advance().value)
        else:
            expr = self._expr()
            if isinstance(expr, ast.Identifier) and len(expr.parts) == 1:
                target = expr.parts[0]
            else:
                target = expr
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return ast.OrderItem(target, descending)

    # -- expressions -----------------------------------------------------------

    def _expr(self) -> ast.Node:
        return self._or_expr()

    def _or_expr(self) -> ast.Node:
        left = self._and_expr()
        while self.accept_keyword("or"):
            left = ast.Binary("or", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Node:
        left = self._not_expr()
        while self.accept_keyword("and"):
            left = ast.Binary("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Node:
        if self.accept_keyword("not"):
            return ast.Unary("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Node:
        left = self._additive()
        while True:
            if self.current.kind == "op" and self.current.value in _COMPARISONS:
                op = self.advance().value
                if op == "!=":
                    op = "<>"
                left = ast.Binary(op, left, self._additive())
                continue
            negated = False
            save = self.index
            if self.accept_keyword("not"):
                negated = True
            if self.accept_keyword("between"):
                low = self._additive()
                self.expect("keyword", "and")
                high = self._additive()
                left = ast.BetweenExpr(left, low, high, negated)
                continue
            if self.accept_keyword("in"):
                left = self._in_tail(left, negated)
                continue
            if self.accept_keyword("like"):
                pattern = self.expect("string").value
                left = ast.LikeExpr(left, pattern, negated)
                continue
            if negated:
                self.index = save  # the NOT belonged to something else
                break
            if self.accept_keyword("is"):
                is_negated = bool(self.accept_keyword("not"))
                self.expect("keyword", "null")
                left = ast.IsNullExpr(left, is_negated)
                continue
            break
        return left

    def _in_tail(self, operand: ast.Node, negated: bool) -> ast.Node:
        self.expect("op", "(")
        if self.current.matches("keyword", "select") or \
                self.current.matches("keyword", "with"):
            query = self._select_stmt()
            self.expect("op", ")")
            return ast.InSubquery(operand, query, negated)
        items = [self._expr()]
        while self.accept("op", ","):
            items.append(self._expr())
        self.expect("op", ")")
        return ast.InListExpr(operand, tuple(items), negated)

    def _additive(self) -> ast.Node:
        left = self._multiplicative()
        while self.current.kind == "op" and self.current.value in ("+", "-"):
            op = self.advance().value
            left = ast.Binary(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> ast.Node:
        left = self._unary()
        while self.current.kind == "op" and self.current.value in ("*", "/"):
            op = self.advance().value
            left = ast.Binary(op, left, self._unary())
        return left

    def _unary(self) -> ast.Node:
        if self.accept("op", "-"):
            return ast.Unary("-", self._unary())
        if self.accept("op", "+"):
            return self._unary()
        return self._postfix()

    def _postfix(self) -> ast.Node:
        expr = self._primary()
        while True:
            if self.accept("op", "->>"):
                expr = ast.JsonAccess(expr, self._json_step(), as_text=True)
            elif self.accept("op", "->"):
                expr = ast.JsonAccess(expr, self._json_step(), as_text=False)
            elif self.accept("op", "::"):
                type_token = self.accept("ident") or self.accept("keyword")
                if type_token is None:
                    raise SqlSyntaxError("expected type name after '::'")
                expr = ast.CastExpr(expr, type_token.value.lower())
            else:
                break
        return expr

    def _json_step(self) -> Union[str, int]:
        if self.current.kind == "string":
            return self.advance().value
        if self.current.kind == "number":
            return int(self.advance().value)
        raise SqlSyntaxError(
            f"expected key or index after JSON access operator at "
            f"position {self.current.position}"
        )

    def _primary(self) -> ast.Node:
        token = self.current
        if token.kind == "number":
            self.advance()
            text = token.value
            value = float(text) if ("." in text or "e" in text or "E" in text) \
                else int(text)
            return ast.NumberLit(value)
        if token.kind == "string":
            self.advance()
            return ast.StringLit(token.value)
        if token.kind == "keyword":
            return self._keyword_primary()
        if token.kind == "ident":
            return self._identifier_or_call()
        if self.accept("op", "("):
            if self.current.matches("keyword", "select") or \
                    self.current.matches("keyword", "with"):
                query = self._select_stmt()
                self.expect("op", ")")
                return ast.ScalarSubquery(query)
            expr = self._expr()
            self.expect("op", ")")
            return expr
        raise SqlSyntaxError(
            f"unexpected token {token.value!r} at position {token.position}"
        )

    def _keyword_primary(self) -> ast.Node:
        if self.accept_keyword("null"):
            return ast.NullLit()
        if self.accept_keyword("true"):
            return ast.BoolLit(True)
        if self.accept_keyword("false"):
            return ast.BoolLit(False)
        if self.accept_keyword("date") or self.accept_keyword("timestamp"):
            return ast.DateLit(self.expect("string").value)
        if self.accept_keyword("interval"):
            amount = int(self.expect("string").value)
            unit_token = self.accept("ident") or self.advance()
            return ast.IntervalLit(amount, unit_token.value.lower())
        if self.accept_keyword("case"):
            return self._case_expr()
        if self.accept_keyword("exists"):
            self.expect("op", "(")
            query = self._select_stmt()
            self.expect("op", ")")
            return ast.ExistsExpr(query, negated=False)
        if self.accept_keyword("extract"):
            self.expect("op", "(")
            field_token = self.accept("ident") or self.advance()
            self.expect("keyword", "from")
            operand = self._expr()
            self.expect("op", ")")
            return ast.ExtractExpr(field_token.value.lower(), operand)
        if self.accept_keyword("substring"):
            self.expect("op", "(")
            operand = self._expr()
            self.expect("keyword", "from")
            start = int(self.expect("number").value)
            self.expect("keyword", "for")
            length = int(self.expect("number").value)
            self.expect("op", ")")
            return ast.SubstringExpr(operand, start, length)
        word = self.current.value
        if word in _AGGREGATES:
            self.advance()
            return self._aggregate_call(word)
        raise SqlSyntaxError(
            f"unexpected keyword {word!r} at position {self.current.position}"
        )

    def _aggregate_call(self, name: str) -> ast.Node:
        self.expect("op", "(")
        if name == "count" and self.accept("op", "*"):
            self.expect("op", ")")
            return ast.FuncCall("count", (), star=True)
        distinct = bool(self.accept_keyword("distinct"))
        arg = self._expr()
        self.expect("op", ")")
        return ast.FuncCall(name, (arg,), distinct=distinct)

    def _identifier_or_call(self) -> ast.Node:
        name = self.advance().value
        if self.accept("op", "("):
            args: List[ast.Node] = []
            if not self.current.matches("op", ")"):
                args.append(self._expr())
                while self.accept("op", ","):
                    args.append(self._expr())
            self.expect("op", ")")
            return ast.FuncCall(name.lower(), tuple(args))
        parts = [name]
        while self.accept("op", "."):
            parts.append((self.accept("ident") or self.expect("keyword")).value)
        return ast.Identifier(tuple(parts))

    def _case_expr(self) -> ast.Node:
        branches: List[Tuple[ast.Node, ast.Node]] = []
        while self.accept_keyword("when"):
            condition = self._expr()
            self.expect("keyword", "then")
            branches.append((condition, self._expr()))
        default = self._expr() if self.accept_keyword("else") else None
        self.expect("keyword", "end")
        return ast.CaseExpr(tuple(branches), default)


def parse(text: str) -> ast.SelectStmt:
    """Parse one SELECT statement."""
    return Parser(text).parse_query()
