"""SQL front end: lexer, parser, binder.

The subset covers everything the paper's workloads need: JSON access
operators (``->``, ``->>``), ``::`` casts, joins (implicit, INNER,
LEFT), grouping/aggregation, HAVING, ORDER BY/LIMIT, CTEs, EXISTS/IN
subqueries (decorrelated to semi/anti joins), correlated scalar
aggregates, date/interval literals, CASE, LIKE, EXTRACT and SUBSTRING.
"""

from repro.sql.binder import Binder
from repro.sql.parser import parse

__all__ = ["Binder", "parse"]
