"""Abstract syntax tree of the SQL subset.

All nodes are frozen dataclasses: structural equality lets the binder
match GROUP BY expressions against SELECT sub-expressions without
fuzzy text comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union


@dataclass(frozen=True)
class Node:
    pass


# -- literals ---------------------------------------------------------------


@dataclass(frozen=True)
class NumberLit(Node):
    value: Union[int, float]


@dataclass(frozen=True)
class StringLit(Node):
    value: str


@dataclass(frozen=True)
class NullLit(Node):
    pass


@dataclass(frozen=True)
class BoolLit(Node):
    value: bool


@dataclass(frozen=True)
class DateLit(Node):
    """``DATE '1994-01-01'`` / ``TIMESTAMP '...'``."""

    text: str


@dataclass(frozen=True)
class IntervalLit(Node):
    """``INTERVAL '3' MONTH``."""

    amount: int
    unit: str


# -- references and access --------------------------------------------------


@dataclass(frozen=True)
class Identifier(Node):
    """``name`` or ``alias.name`` (or ``alias.rowid``)."""

    parts: Tuple[str, ...]


@dataclass(frozen=True)
class JsonAccess(Node):
    """``base -> 'key'`` (as JSON) or ``base ->> 'key'`` (as text);
    the step may be an integer array slot."""

    base: Node
    step: Union[str, int]
    as_text: bool


@dataclass(frozen=True)
class CastExpr(Node):
    """``expr::typename``."""

    operand: Node
    type_name: str


# -- operators ---------------------------------------------------------------


@dataclass(frozen=True)
class Unary(Node):
    op: str  # "not" | "-"
    operand: Node


@dataclass(frozen=True)
class Binary(Node):
    op: str  # and/or, comparisons, + - * /
    left: Node
    right: Node


@dataclass(frozen=True)
class IsNullExpr(Node):
    operand: Node
    negated: bool


@dataclass(frozen=True)
class BetweenExpr(Node):
    operand: Node
    low: Node
    high: Node
    negated: bool


@dataclass(frozen=True)
class LikeExpr(Node):
    operand: Node
    pattern: str
    negated: bool


@dataclass(frozen=True)
class InListExpr(Node):
    operand: Node
    items: Tuple[Node, ...]
    negated: bool


@dataclass(frozen=True)
class InSubquery(Node):
    operand: Node
    query: "SelectStmt"
    negated: bool


@dataclass(frozen=True)
class ExistsExpr(Node):
    query: "SelectStmt"
    negated: bool


@dataclass(frozen=True)
class ScalarSubquery(Node):
    query: "SelectStmt"


@dataclass(frozen=True)
class FuncCall(Node):
    name: str
    args: Tuple[Node, ...]
    distinct: bool = False
    star: bool = False  # count(*)


@dataclass(frozen=True)
class CaseExpr(Node):
    branches: Tuple[Tuple[Node, Node], ...]
    default: Optional[Node]


@dataclass(frozen=True)
class ExtractExpr(Node):
    field_name: str
    operand: Node


@dataclass(frozen=True)
class SubstringExpr(Node):
    operand: Node
    start: int
    length: int


# -- statements ---------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(Node):
    expr: Node
    alias: Optional[str]


@dataclass(frozen=True)
class TableRefAst(Node):
    """Base table or derived table (subquery) with an alias."""

    name: Optional[str]
    subquery: Optional["SelectStmt"]
    alias: str


@dataclass(frozen=True)
class LeftJoinAst(Node):
    right: TableRefAst
    condition: Node


@dataclass(frozen=True)
class OrderItem(Node):
    #: an expression, a 1-based position, or a select alias
    target: Union[Node, int, str]
    descending: bool


@dataclass(frozen=True)
class SelectStmt(Node):
    items: Tuple[SelectItem, ...]
    from_tables: Tuple[TableRefAst, ...]
    left_joins: Tuple[LeftJoinAst, ...] = ()
    where: Optional[Node] = None
    group_by: Tuple[Node, ...] = ()
    having: Optional[Node] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False
    ctes: Tuple[Tuple[str, "SelectStmt"], ...] = ()
    #: UNION ALL branches (each a core select without order/limit);
    #: the trailing ORDER BY / LIMIT of this statement applies to the
    #: concatenated result
    unions: Tuple["SelectStmt", ...] = ()
