"""Tokenizer for the SQL subset."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "and", "or", "not", "as", "on", "join", "left", "outer", "inner",
    "in", "exists", "between", "like", "is", "null", "true", "false",
    "case", "when", "then", "else", "end", "distinct", "asc", "desc",
    "date", "timestamp", "interval", "extract", "substring", "for",
    "with", "union", "all", "count", "sum", "avg", "min", "max",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|--[^\n]*)
  | (?P<number>\d+(\.\d+)?([eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<op>->>|->|::|<=|>=|<>|!=|=|<|>|\(|\)|,|\.|\+|-|\*|/|;)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)


@dataclass
class Token:
    kind: str  # "number" | "string" | "op" | "ident" | "keyword" | "eof"
    value: str
    position: int

    def matches(self, kind: str, value: str = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SqlSyntaxError(
                f"unexpected character {text[pos]!r} at position {pos}"
            )
        pos = match.end()
        if match.lastgroup == "ws" or match.group("ws"):
            continue
        if match.group("number"):
            tokens.append(Token("number", match.group("number"), match.start()))
        elif match.group("string"):
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(Token("string", raw, match.start()))
        elif match.group("op"):
            tokens.append(Token("op", match.group("op"), match.start()))
        else:
            word = match.group("ident")
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, match.start()))
            else:
                tokens.append(Token("ident", word, match.start()))
    tokens.append(Token("eof", "", len(text)))
    return tokens
