"""Binder: SQL AST -> logical :class:`~repro.engine.plan.QueryBlock`.

The binder performs, in one pass, the plan rewrites the paper describes:

* **access push-down** (Section 4.2): every ``->`` / ``->>`` chain on a
  table's document column becomes an :class:`AccessRequest` registered
  at the scan, and the expression tree references only the placeholder
  column;
* **cast rewriting** (Section 4.3): ``x->>'k'::BigInt`` requests a
  typed access directly instead of materializing text (disable with
  ``QueryOptions.enable_cast_rewriting=False`` to measure the
  overhead);
* **decorrelation**: EXISTS / IN become semi/anti-join filters,
  correlated scalar aggregates become grouped derived tables joined on
  their correlation keys, and uncorrelated scalar subqueries are left
  for the planner to evaluate eagerly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.datetimes import add_interval, date_literal
from repro.core.jsonpath import KeyPath
from repro.core.types import ColumnType
from repro.engine import expressions as ex
from repro.engine.operators import AggregateSpec, JoinKind, SortKey
from repro.engine.plan import (
    DerivedSource,
    LeftJoinSpec,
    QueryBlock,
    QueryOptions,
    ScanSource,
    Source,
    SubqueryFilter,
    alias_of_column,
)
from repro.engine.scan import ROWID_PATH
from repro.errors import SqlBindError
from repro.sql import ast
from repro.storage.relation import Relation

_TYPE_NAMES = {
    "int": ColumnType.INT64, "integer": ColumnType.INT64,
    "bigint": ColumnType.INT64, "smallint": ColumnType.INT64,
    "float": ColumnType.FLOAT64, "double": ColumnType.FLOAT64,
    "real": ColumnType.FLOAT64, "decimal": ColumnType.FLOAT64,
    "numeric": ColumnType.FLOAT64,
    "text": ColumnType.STRING, "varchar": ColumnType.STRING,
    "char": ColumnType.STRING, "string": ColumnType.STRING,
    "bool": ColumnType.BOOL, "boolean": ColumnType.BOOL,
    "date": ColumnType.TIMESTAMP, "timestamp": ColumnType.TIMESTAMP,
}

#: default document column name of every relation
DOC_COLUMN = "data"

_AGG_FUNCS = {"count", "sum", "avg", "min", "max"}


class _DocRef(ex.Expression):
    """Bind-time marker: a bare reference to a table's document column,
    only meaningful as the base of a JSON access chain."""

    def __init__(self, source: ScanSource):
        self.source = source
        self.result_type = ColumnType.JSONB

    def evaluate(self, batch):
        raise SqlBindError(
            f"the document column of {self.source.alias!r} can only be "
            f"used with -> / ->> access operators"
        )


class UnresolvedScalarExpr(ex.Expression):
    """An uncorrelated scalar subquery; the planner executes the block
    eagerly and substitutes the literal result."""

    def __init__(self, block: QueryBlock, result_type: ColumnType):
        self.block = block
        self.result_type = result_type

    def evaluate(self, batch):
        raise SqlBindError("scalar subquery was not resolved by the planner")

    def null_rejected_refs(self) -> Set[str]:
        return set()


class _Scope:
    """Alias resolution chain (inner block -> outer block)."""

    def __init__(self, block: QueryBlock, parent: Optional["_Scope"] = None):
        self.block = block
        self.parent = parent

    def find(self, alias: str) -> Optional[Tuple[Source, "_Scope"]]:
        for source in self.block.sources:
            if source.alias == alias:
                return source, self
        for spec in self.block.left_joins:
            if spec.source.alias == alias:
                return spec.source, self
        if self.parent is not None:
            return self.parent.find(alias)
        return None

    def local_aliases(self) -> Set[str]:
        aliases = {source.alias for source in self.block.sources}
        aliases |= {spec.source.alias for spec in self.block.left_joins}
        return aliases


class Binder:
    def __init__(self, catalog: Dict[str, Relation],
                 options: Optional[QueryOptions] = None):
        self.catalog = catalog
        self.options = options or QueryOptions()
        self._counter = 0
        #: CTEs visible to the block currently being bound (so scalar
        #: subqueries inside expressions can reference them too)
        self._current_ctes: Dict[str, ast.SelectStmt] = {}

    # ------------------------------------------------------------------

    def bind(self, stmt: ast.SelectStmt) -> QueryBlock:
        return self._bind_select(stmt, outer=None, ctes={})

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # ------------------------------------------------------------------
    # statement binding

    def _bind_select(self, stmt: ast.SelectStmt, outer: Optional[_Scope],
                     ctes: Dict[str, ast.SelectStmt]) -> QueryBlock:
        ctes = dict(ctes)
        for name, query in stmt.ctes:
            ctes[name] = query
        saved_ctes = self._current_ctes
        self._current_ctes = ctes
        try:
            return self._bind_select_body(stmt, outer, ctes)
        finally:
            self._current_ctes = saved_ctes

    def _bind_select_body(self, stmt: ast.SelectStmt, outer: Optional[_Scope],
                          ctes: Dict[str, ast.SelectStmt]) -> QueryBlock:
        block = QueryBlock()
        scope = _Scope(block, outer)

        for table in stmt.from_tables:
            block.sources.append(self._bind_table(table, ctes))
        for join in stmt.left_joins:
            block.left_joins.append(
                self._bind_left_join(join, scope, ctes)
            )

        if stmt.where is not None:
            for conjunct in _conjuncts(stmt.where):
                self._bind_where_conjunct(conjunct, scope, ctes)

        self._bind_presentation(stmt, block, scope, ctes)
        for union_stmt in stmt.unions:
            union_block = self._bind_select(union_stmt, outer=None,
                                            ctes=ctes)
            if len(union_block.select) != len(block.select):
                raise SqlBindError(
                    "UNION ALL branches must select the same number of "
                    "columns")
            block.union_blocks.append(union_block)
        return block

    def _bind_table(self, table: ast.TableRefAst,
                    ctes: Dict[str, ast.SelectStmt]) -> Source:
        if table.subquery is not None:
            return self._derived(table.alias, table.subquery, ctes)
        if table.name in ctes:
            return self._derived(table.alias, ctes[table.name], ctes)
        relation = self.catalog.get(table.name)
        if relation is None:
            raise SqlBindError(f"unknown table {table.name!r}")
        return ScanSource(alias=table.alias, relation=relation)

    def _derived(self, alias: str, stmt: ast.SelectStmt,
                 ctes: Dict[str, ast.SelectStmt]) -> DerivedSource:
        block = self._bind_select(stmt, outer=None, ctes=ctes)
        source = DerivedSource(alias=alias, block=block)
        for name, expr in block.select:
            source.output_types[f"{alias}.{name}"] = expr.result_type
        return source

    def _bind_left_join(self, join: ast.LeftJoinAst, scope: _Scope,
                        ctes: Dict[str, ast.SelectStmt]) -> LeftJoinSpec:
        source = self._bind_table(join.right, ctes)
        # temporarily visible for condition binding
        spec = LeftJoinSpec(source=source, keys=[])
        scope.block.left_joins.append(spec)
        try:
            keys: List[Tuple[ex.Expression, ex.Expression]] = []
            residuals: List[ex.Expression] = []
            for conjunct in _conjuncts(join.condition):
                bound = self._bind_expr(conjunct, scope)
                sides = _split_by_alias(bound, {source.alias})
                if sides == "mixed_eq":
                    left, right = bound.left, bound.right
                    if source.alias in _aliases(right):
                        keys.append((left, right))
                    else:
                        keys.append((right, left))
                elif sides == "inner_only":
                    source.filters.append(bound)
                else:
                    residuals.append(bound)
            spec.keys = keys
            spec.residual = _and_all(residuals)
            return spec
        finally:
            scope.block.left_joins.remove(spec)

    # ------------------------------------------------------------------
    # WHERE conjuncts: decorrelation entry points

    def _bind_where_conjunct(self, conjunct: ast.Node, scope: _Scope,
                             ctes: Dict[str, ast.SelectStmt]) -> None:
        block = scope.block
        negated = False
        node = conjunct
        while isinstance(node, ast.Unary) and node.op == "not":
            negated = not negated
            node = node.operand
        if isinstance(node, ast.ExistsExpr):
            kind = JoinKind.ANTI if (negated != node.negated) else JoinKind.SEMI
            block.subquery_filters.append(
                self._bind_exists(node.query, scope, ctes, kind))
            return
        if isinstance(node, ast.InSubquery):
            kind = JoinKind.ANTI if (negated != node.negated) else JoinKind.SEMI
            block.subquery_filters.append(
                self._bind_in_subquery(node, scope, ctes, kind))
            return
        if isinstance(node, ast.Binary) and node.op in ("=", "<>", "<", "<=",
                                                        ">", ">="):
            scalar_side = None
            other = None
            op = node.op
            if isinstance(node.right, ast.ScalarSubquery):
                scalar_side, other = node.right, node.left
            elif isinstance(node.left, ast.ScalarSubquery):
                scalar_side, other = node.left, node.right
                op = _flip(op)
            if scalar_side is not None:
                bound = self._bind_scalar_comparison(
                    op, other, scalar_side.query, scope, ctes)
                if negated:
                    bound = ex.Not(bound)
                block.predicates.append(bound)
                return
        bound = self._bind_expr(conjunct, scope)
        block.predicates.append(bound)

    def _bind_exists(self, query: ast.SelectStmt, scope: _Scope,
                     ctes: Dict[str, ast.SelectStmt],
                     kind: JoinKind) -> SubqueryFilter:
        inner_block = QueryBlock()
        inner_scope = _Scope(inner_block, scope)
        for table in query.from_tables:
            inner_block.sources.append(self._bind_table(table, ctes))
        correlated: List[ex.Expression] = []
        if query.where is not None:
            for conjunct in _conjuncts(query.where):
                bound = self._bind_expr(conjunct, inner_scope)
                if _aliases(bound) & scope.local_aliases():
                    correlated.append(bound)
                else:
                    inner_block.predicates.append(bound)
        outer_keys, inner_keys, residuals = self._split_correlations(
            correlated, inner_scope)
        if not outer_keys:
            raise SqlBindError(
                "EXISTS subqueries need at least one equality correlation")
        return SubqueryFilter(kind=kind, block=inner_block,
                              outer_keys=outer_keys, inner_keys=inner_keys,
                              residual=_and_all(residuals), raw=True)

    def _bind_in_subquery(self, node: ast.InSubquery, scope: _Scope,
                          ctes: Dict[str, ast.SelectStmt],
                          kind: JoinKind) -> SubqueryFilter:
        outer_key = self._bind_expr(node.operand, scope)
        inner_block = self._bind_select(node.query, outer=scope, ctes=ctes)
        if len(inner_block.select) != 1:
            raise SqlBindError("IN subquery must select exactly one column")
        name, expr = inner_block.select[0]
        return SubqueryFilter(
            kind=kind, block=inner_block, outer_keys=[outer_key],
            inner_keys=[ex.ColumnRef(name, expr.result_type)],
            residual=None, raw=False,
        )

    def _bind_scalar_comparison(self, op: str, other: ast.Node,
                                query: ast.SelectStmt, scope: _Scope,
                                ctes: Dict[str, ast.SelectStmt]) -> ex.Expression:
        """``expr CMP (SELECT agg(...) FROM ... WHERE corr)``: decorrelate
        into a grouped derived table joined on the correlation keys, or
        leave uncorrelated subqueries for eager evaluation."""
        bound_other = self._bind_expr(other, scope)
        inner_block = self._bind_select(query, outer=scope, ctes=ctes)

        correlated: List[ex.Expression] = []
        remaining: List[ex.Expression] = []
        for predicate in inner_block.predicates:
            if _aliases(predicate) - _own_aliases(inner_block):
                correlated.append(predicate)
            else:
                remaining.append(predicate)
        inner_block.predicates = remaining

        if not correlated:
            scalar = UnresolvedScalarExpr(
                inner_block, inner_block.select[0][1].result_type)
            return ex.Comparison(op, bound_other, scalar)

        inner_scope = _Scope(inner_block, scope)
        outer_keys, inner_keys, residuals = self._split_correlations(
            correlated, inner_scope)
        if residuals:
            raise SqlBindError(
                "only equality correlations are supported in scalar "
                "subqueries")
        if len(inner_block.select) != 1 or not inner_block.aggregates:
            raise SqlBindError(
                "correlated scalar subqueries must compute one aggregate")
        alias = self._fresh("_sq")
        agg_name, agg_expr = inner_block.select[0]
        for index, key in enumerate(inner_keys):
            key_name = f"k{index}"
            inner_block.group_keys.append((key_name, key))
            inner_block.select.append((key_name, ex.ColumnRef(
                key_name, key.result_type)))
        derived = DerivedSource(alias=alias, block=inner_block)
        for name, expr in inner_block.select:
            derived.output_types[f"{alias}.{name}"] = expr.result_type
        scope.block.sources.append(derived)
        for index, outer_key in enumerate(outer_keys):
            scope.block.predicates.append(ex.Comparison(
                "=", outer_key,
                ex.ColumnRef(f"{alias}.k{index}",
                             inner_keys[index].result_type)))
        return ex.Comparison(op, bound_other, ex.ColumnRef(
            f"{alias}.{agg_name}", agg_expr.result_type))

    def _split_correlations(self, correlated: Sequence[ex.Expression],
                            inner_scope: _Scope):
        """Split bound correlated conjuncts into equality key pairs and
        residual predicates."""
        inner_aliases = inner_scope.local_aliases()
        outer_keys: List[ex.Expression] = []
        inner_keys: List[ex.Expression] = []
        residuals: List[ex.Expression] = []
        for bound in correlated:
            is_eq = isinstance(bound, ex.Comparison) and bound.op == "="
            if is_eq:
                left_aliases = _aliases(bound.left)
                right_aliases = _aliases(bound.right)
                if left_aliases <= inner_aliases and \
                        right_aliases.isdisjoint(inner_aliases):
                    inner_keys.append(bound.left)
                    outer_keys.append(bound.right)
                    continue
                if right_aliases <= inner_aliases and \
                        left_aliases.isdisjoint(inner_aliases):
                    inner_keys.append(bound.right)
                    outer_keys.append(bound.left)
                    continue
            residuals.append(bound)
        return outer_keys, inner_keys, residuals

    # ------------------------------------------------------------------
    # SELECT / GROUP BY / HAVING / ORDER BY

    def _bind_presentation(self, stmt: ast.SelectStmt, block: QueryBlock,
                           scope: _Scope,
                           ctes: Dict[str, ast.SelectStmt]) -> None:
        has_aggregates = any(_contains_aggregate(item.expr)
                             for item in stmt.items)
        if stmt.having is not None:
            has_aggregates = True
        aggregated = bool(stmt.group_by) or has_aggregates

        select_asts: List[Tuple[str, ast.Node]] = []
        if aggregated:
            group_names: Dict[ast.Node, str] = {}
            for index, group_ast in enumerate(stmt.group_by):
                bound = self._bind_expr(group_ast, scope)
                name = self._select_alias(stmt, group_ast) or f"g{index}"
                block.group_keys.append((name, bound))
                group_names[group_ast] = name
            context = _AggContext(self, scope, block, group_names)
            for index, item in enumerate(stmt.items):
                name = item.alias or _default_name(item.expr, index)
                block.select.append((name, context.bind(item.expr)))
                select_asts.append((name, item.expr))
            if stmt.having is not None:
                block.having = context.bind(stmt.having)
        else:
            for index, item in enumerate(stmt.items):
                name = item.alias or _default_name(item.expr, index)
                block.select.append((name, self._bind_expr(item.expr, scope)))
                select_asts.append((name, item.expr))
            if stmt.distinct:
                # desugar DISTINCT into GROUP BY over all outputs
                for name, expr in block.select:
                    block.group_keys.append((name, expr))
                block.select = [
                    (name, ex.ColumnRef(name, expr.result_type))
                    for name, expr in block.select
                ]

        for item in stmt.order_by:
            block.order_by.append(
                self._bind_order_item(item, block, select_asts))
        block.limit = stmt.limit

    def _select_alias(self, stmt: ast.SelectStmt,
                      expr: ast.Node) -> Optional[str]:
        for item in stmt.items:
            if item.expr == expr and item.alias:
                return item.alias
        return None

    def _bind_order_item(self, item: ast.OrderItem, block: QueryBlock,
                         select_asts: List[Tuple[str, ast.Node]]) -> SortKey:
        target = item.target
        if isinstance(target, int):
            if not 1 <= target <= len(block.select):
                raise SqlBindError(f"ORDER BY position {target} out of range")
            return SortKey(block.select[target - 1][0], item.descending)
        if isinstance(target, str):
            for name, _expr in block.select:
                if name == target:
                    return SortKey(name, item.descending)
            target = ast.Identifier((target,))
        for name, select_ast in select_asts:
            if select_ast == target:
                return SortKey(name, item.descending)
        raise SqlBindError(
            "ORDER BY expressions must appear in the SELECT list")

    # ------------------------------------------------------------------
    # expression binding (pre-aggregation scope)

    def _bind_expr(self, node: ast.Node, scope: _Scope) -> ex.Expression:
        if isinstance(node, ast.NumberLit):
            if isinstance(node.value, int):
                return ex.Literal(node.value, ColumnType.INT64)
            return ex.Literal(node.value, ColumnType.FLOAT64)
        if isinstance(node, ast.StringLit):
            return ex.Literal(node.value, ColumnType.STRING)
        if isinstance(node, ast.NullLit):
            return ex.Literal(None, ColumnType.STRING)
        if isinstance(node, ast.BoolLit):
            return ex.Literal(node.value, ColumnType.BOOL)
        if isinstance(node, ast.DateLit):
            return ex.Literal(date_literal(node.text), ColumnType.TIMESTAMP)
        if isinstance(node, ast.IntervalLit):
            raise SqlBindError(
                "INTERVAL literals are only supported next to date "
                "literals (they are folded at bind time)")
        if isinstance(node, ast.Identifier):
            return self._bind_identifier(node, scope)
        if isinstance(node, (ast.JsonAccess, ast.CastExpr)):
            return self._bind_access_or_cast(node, scope)
        if isinstance(node, ast.Unary):
            if node.op == "not":
                return ex.Not(self._bind_expr(node.operand, scope))
            operand = self._bind_expr(node.operand, scope)
            zero_type = operand.result_type
            if zero_type not in (ColumnType.INT64, ColumnType.FLOAT64):
                zero_type = ColumnType.FLOAT64
            return ex.Arithmetic("-", ex.Literal(0, zero_type), operand)
        if isinstance(node, ast.Binary):
            return self._bind_binary(node, scope)
        if isinstance(node, ast.IsNullExpr):
            return ex.IsNull(self._bind_expr(node.operand, scope),
                             negated=node.negated)
        if isinstance(node, ast.BetweenExpr):
            operand = self._bind_expr(node.operand, scope)
            low = self._fold_datetime(node.low, scope)
            high = self._fold_datetime(node.high, scope)
            between = ex.BoolAnd(ex.Comparison(">=", operand, low),
                                 ex.Comparison("<=", operand, high))
            return ex.Not(between) if node.negated else between
        if isinstance(node, ast.LikeExpr):
            return ex.Like(self._bind_expr(node.operand, scope),
                           node.pattern, negated=node.negated)
        if isinstance(node, ast.InListExpr):
            operand = self._bind_expr(node.operand, scope)
            values = []
            for item in node.items:
                literal = self._bind_expr(item, scope)
                if not isinstance(literal, ex.Literal):
                    raise SqlBindError("IN lists must contain literals")
                values.append(literal.value)
            return ex.InList(operand, values, negated=node.negated)
        if isinstance(node, ast.CaseExpr):
            branches = []
            result_type = None
            for condition, value in node.branches:
                bound_value = self._bind_expr(value, scope)
                result_type = result_type or bound_value.result_type
                branches.append((self._bind_expr(condition, scope),
                                 bound_value))
            default = (self._bind_expr(node.default, scope)
                       if node.default is not None else None)
            if result_type is None and default is not None:
                result_type = default.result_type
            return ex.Case(branches, default, result_type or ColumnType.FLOAT64)
        if isinstance(node, ast.ExtractExpr):
            if node.field_name != "year":
                raise SqlBindError(f"extract({node.field_name}) not supported")
            return ex.ExtractYear(self._bind_expr(node.operand, scope))
        if isinstance(node, ast.SubstringExpr):
            return ex.Substring(self._bind_expr(node.operand, scope),
                                node.start, node.length)
        if isinstance(node, ast.ScalarSubquery):
            inner = self._bind_select(node.query, outer=None,
                                      ctes=self._current_ctes)
            if len(inner.select) != 1:
                raise SqlBindError("scalar subquery must select one column")
            return UnresolvedScalarExpr(inner, inner.select[0][1].result_type)
        if isinstance(node, ast.FuncCall):
            if node.name in _AGG_FUNCS:
                raise SqlBindError(
                    f"aggregate {node.name}() is not allowed here")
            return self._bind_function(node, scope)
        if isinstance(node, (ast.ExistsExpr, ast.InSubquery)):
            raise SqlBindError(
                "EXISTS/IN subqueries are only supported as top-level "
                "WHERE conjuncts")
        raise SqlBindError(f"cannot bind {type(node).__name__}")

    def _bind_function(self, node: ast.FuncCall, scope: _Scope) -> ex.Expression:
        from repro.engine.functions import bind_scalar_function
        args = [self._bind_expr(arg, scope) for arg in node.args]
        return bind_scalar_function(node.name, args)

    def _bind_binary(self, node: ast.Binary, scope: _Scope) -> ex.Expression:
        if node.op == "and":
            return ex.BoolAnd(self._bind_expr(node.left, scope),
                              self._bind_expr(node.right, scope))
        if node.op == "or":
            return ex.BoolOr(self._bind_expr(node.left, scope),
                             self._bind_expr(node.right, scope))
        if node.op in ("+", "-"):
            folded = self._try_fold_interval(node, scope)
            if folded is not None:
                return folded
        left = self._bind_expr(node.left, scope)
        right = self._bind_expr(node.right, scope)
        if node.op in ("=", "<>", "<", "<=", ">", ">="):
            return ex.Comparison(node.op, left, right)
        return ex.Arithmetic(node.op, left, right)

    def _try_fold_interval(self, node: ast.Binary,
                           scope: _Scope) -> Optional[ex.Expression]:
        """Fold ``date_literal +/- interval`` into a timestamp literal."""
        if not isinstance(node.right, ast.IntervalLit):
            return None
        base = self._bind_expr(node.left, scope)
        if not isinstance(base, ex.Literal) or \
                base.result_type != ColumnType.TIMESTAMP:
            raise SqlBindError(
                "interval arithmetic needs a date/timestamp literal")
        interval = node.right
        sign = 1 if node.op == "+" else -1
        unit = interval.unit.rstrip("s")
        if unit == "year":
            value = add_interval(base.value, years=sign * interval.amount)
        elif unit == "month":
            value = add_interval(base.value, months=sign * interval.amount)
        else:
            value = base.value + sign * ex.interval_micros(interval.amount,
                                                           interval.unit)
        return ex.Literal(value, ColumnType.TIMESTAMP)

    def _fold_datetime(self, node: ast.Node, scope: _Scope) -> ex.Expression:
        return self._bind_expr(node, scope)

    def _bind_identifier(self, node: ast.Identifier,
                         scope: _Scope) -> ex.Expression:
        parts = node.parts
        if len(parts) == 2:
            found = scope.find(parts[0])
            if found is None:
                raise SqlBindError(f"unknown table alias {parts[0]!r}")
            source, _owner = found
            return self._resolve_member(source, parts[1])
        if len(parts) == 1:
            # search all sources for a unique match
            matches: List[ex.Expression] = []
            current: Optional[_Scope] = scope
            while current is not None:
                for source in list(current.block.sources) + [
                        spec.source for spec in current.block.left_joins]:
                    member = self._try_member(source, parts[0])
                    if member is not None:
                        matches.append(member)
                if matches:
                    break
                current = current.parent
            if len(matches) == 1:
                return matches[0]
            if not matches:
                raise SqlBindError(f"unknown column {parts[0]!r}")
            raise SqlBindError(f"ambiguous column {parts[0]!r}")
        raise SqlBindError(f"cannot resolve identifier {'.'.join(parts)!r}")

    def _resolve_member(self, source: Source, member: str) -> ex.Expression:
        resolved = self._try_member(source, member)
        if resolved is None:
            raise SqlBindError(
                f"unknown column {member!r} on {source.alias!r}")
        return resolved

    def _try_member(self, source: Source,
                    member: str) -> Optional[ex.Expression]:
        if isinstance(source, ScanSource):
            if member == DOC_COLUMN:
                return _DocRef(source)
            if member == "rowid":
                return source.request(ROWID_PATH, ColumnType.INT64, False)
            return None
        qualified = f"{source.alias}.{member}"
        column_type = source.output_types.get(qualified)
        if column_type is None:
            return None
        return ex.ColumnRef(qualified, column_type)

    # -- JSON access chains + cast rewriting -----------------------------

    def _bind_access_or_cast(self, node: ast.Node,
                             scope: _Scope) -> ex.Expression:
        if isinstance(node, ast.CastExpr):
            target = _TYPE_NAMES.get(node.type_name)
            if target is None:
                raise SqlBindError(f"unknown type {node.type_name!r}")
            if isinstance(node.operand, ast.JsonAccess):
                return self._bind_json_access(node.operand, scope, target)
            operand = self._bind_expr(node.operand, scope)
            if operand.result_type == target:
                return operand
            return ex.Cast(operand, target)
        assert isinstance(node, ast.JsonAccess)
        return self._bind_json_access(node, scope, None)

    def _bind_json_access(self, node: ast.JsonAccess, scope: _Scope,
                          cast_target: Optional[ColumnType]) -> ex.Expression:
        steps: List[Union[str, int]] = []
        current: ast.Node = node
        while isinstance(current, ast.JsonAccess):
            steps.append(current.step)
            if isinstance(current.base, ast.JsonAccess) and current.base.as_text:
                raise SqlBindError(
                    "->> returns text; only -> can be chained further")
            current = current.base
        steps.reverse()
        base = self._bind_expr(current, scope)
        if not isinstance(base, _DocRef):
            raise SqlBindError(
                "JSON access operators require a table's document column")
        path = KeyPath(tuple(steps))
        source = base.source
        if not node.as_text:
            target = cast_target or ColumnType.JSONB
            if target == ColumnType.JSONB:
                return source.request(path, ColumnType.JSONB, as_text=False)
            # `->` with a cast behaves like a typed text access
        target = cast_target or ColumnType.STRING
        if self.options.enable_cast_rewriting:
            # Section 4.3: the cast type selects the specialized access
            request_type = (ColumnType.DECIMAL
                            if target == ColumnType.FLOAT64 else target)
            return source.request(path, request_type, as_text=True)
        # ablation: always fetch text, cast in the expression layer
        text = source.request(path, ColumnType.STRING, as_text=True)
        if target == ColumnType.STRING:
            return text
        return ex.Cast(text, target)


# ---------------------------------------------------------------------------
# aggregation context


class _AggContext:
    """Binds post-aggregation expressions: group-by sub-expressions map
    to key columns, aggregate calls map to aggregate outputs."""

    def __init__(self, binder: Binder, scope: _Scope, block: QueryBlock,
                 group_names: Dict[ast.Node, str]):
        self.binder = binder
        self.scope = scope
        self.block = block
        self.group_names = group_names
        self._agg_cache: Dict[ast.Node, str] = {}

    def bind(self, node: ast.Node) -> ex.Expression:
        if node in self.group_names:
            name = self.group_names[node]
            for key_name, key_expr in self.block.group_keys:
                if key_name == name:
                    return ex.ColumnRef(name, key_expr.result_type)
        if isinstance(node, ast.FuncCall) and (node.name in _AGG_FUNCS):
            return self._bind_aggregate(node)
        if isinstance(node, ast.Binary):
            if node.op in ("and",):
                return ex.BoolAnd(self.bind(node.left), self.bind(node.right))
            if node.op == "or":
                return ex.BoolOr(self.bind(node.left), self.bind(node.right))
            if node.op in ("=", "<>", "<", "<=", ">", ">="):
                return ex.Comparison(node.op, self.bind(node.left),
                                     self.bind(node.right))
            return ex.Arithmetic(node.op, self.bind(node.left),
                                 self.bind(node.right))
        if isinstance(node, ast.Unary):
            if node.op == "not":
                return ex.Not(self.bind(node.operand))
            operand = self.bind(node.operand)
            return ex.Arithmetic("-", ex.Literal(0, operand.result_type),
                                 operand)
        if isinstance(node, ast.CastExpr) and not isinstance(
                node.operand, ast.JsonAccess):
            target = _TYPE_NAMES.get(node.type_name)
            if target is None:
                raise SqlBindError(f"unknown type {node.type_name!r}")
            return ex.Cast(self.bind(node.operand), target)
        if isinstance(node, (ast.NumberLit, ast.StringLit, ast.NullLit,
                             ast.BoolLit, ast.DateLit)):
            return self.binder._bind_expr(node, self.scope)
        if isinstance(node, ast.ScalarSubquery):
            return self.binder._bind_expr(node, self.scope)
        if isinstance(node, ast.IsNullExpr):
            return ex.IsNull(self.bind(node.operand), negated=node.negated)
        if isinstance(node, ast.LikeExpr):
            return ex.Like(self.bind(node.operand), node.pattern,
                           negated=node.negated)
        if isinstance(node, ast.ExtractExpr):
            return ex.ExtractYear(self.bind(node.operand))
        if isinstance(node, ast.SubstringExpr):
            return ex.Substring(self.bind(node.operand), node.start,
                                node.length)
        raise SqlBindError(
            f"{type(node).__name__} must be part of GROUP BY or inside "
            f"an aggregate")

    def _bind_aggregate(self, node: ast.FuncCall) -> ex.Expression:
        cached = self._agg_cache.get(node)
        if cached is None:
            if node.star:
                spec = AggregateSpec("count_star", None,
                                     f"a{len(self.block.aggregates)}")
            else:
                arg = self.binder._bind_expr(node.args[0], self.scope)
                func = node.name
                if func == "count" and node.distinct:
                    func = "count_distinct"
                spec = AggregateSpec(func, arg,
                                     f"a{len(self.block.aggregates)}")
            self.block.aggregates.append(spec)
            cached = spec.name
            self._agg_cache[node] = cached
        for spec in self.block.aggregates:
            if spec.name == cached:
                return ex.ColumnRef(cached, spec.output_type())
        raise AssertionError("aggregate vanished")


# ---------------------------------------------------------------------------
# helpers


def _conjuncts(node: ast.Node) -> List[ast.Node]:
    if isinstance(node, ast.Binary) and node.op == "and":
        return _conjuncts(node.left) + _conjuncts(node.right)
    return [node]


def _contains_aggregate(node: ast.Node) -> bool:
    if isinstance(node, ast.FuncCall) and (node.name in _AGG_FUNCS):
        return True
    for value in vars(node).values():
        if isinstance(value, ast.Node) and _contains_aggregate(value):
            return True
        if isinstance(value, tuple):
            for item in value:
                if isinstance(item, ast.Node) and _contains_aggregate(item):
                    return True
                if isinstance(item, tuple):
                    if any(isinstance(sub, ast.Node) and
                           _contains_aggregate(sub) for sub in item):
                        return True
    return False


def _aliases(expr: ex.Expression) -> Set[str]:
    return {alias_of_column(name) for name in expr.referenced_columns()}


def _own_aliases(block: QueryBlock) -> Set[str]:
    aliases = {source.alias for source in block.sources}
    aliases |= {spec.source.alias for spec in block.left_joins}
    return aliases


def _split_by_alias(bound: ex.Expression, inner_aliases: Set[str]) -> str:
    """Classify a LEFT JOIN conjunct: equality across sides, inner-only
    filter, or residual."""
    refs = _aliases(bound)
    if refs <= inner_aliases:
        return "inner_only"
    if isinstance(bound, ex.Comparison) and bound.op == "=":
        left, right = _aliases(bound.left), _aliases(bound.right)
        if (left <= inner_aliases) != (right <= inner_aliases):
            if left and right:
                return "mixed_eq"
    return "residual"


def _and_all(exprs: List[ex.Expression]) -> Optional[ex.Expression]:
    result: Optional[ex.Expression] = None
    for expr in exprs:
        result = expr if result is None else ex.BoolAnd(result, expr)
    return result


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)


def _default_name(expr: ast.Node, index: int) -> str:
    if isinstance(expr, ast.Identifier):
        return expr.parts[-1]
    if isinstance(expr, ast.JsonAccess) and isinstance(expr.step, str):
        return expr.step
    if isinstance(expr, ast.CastExpr):
        return _default_name(expr.operand, index)
    return f"col{index}"
