"""JSON Tiles — fast analytics on semi-structured data.

A from-scratch Python reproduction of Durner, Leis and Neumann,
"JSON Tiles: Fast Analytics on Semi-Structured Data", SIGMOD 2021.

Public API
----------

* :class:`Database` — load JSON document collections as tables and run
  SQL with PostgreSQL-style ``->`` / ``->>`` access operators.
* :class:`StorageFormat` — raw JSON text, binary JSONB, Sinew's global
  extraction, JSON tiles, and Tiles-* (with array child relations).
* :class:`ExtractionConfig` — tile size, partition size, extraction
  threshold, mining budget, date detection and reordering switches.
* :class:`QueryOptions` — skipping / statistics / cast-rewriting
  ablation switches.
* :class:`MaintenanceConfig` — thresholds of the online maintenance
  daemon (``Database.start_maintenance()``, ``serve --maintenance``).
* :class:`LsmConfig` — knobs of the LSM tier: leveled tile compaction
  with merge-time re-mining (``serve --lsm``, ``REPRO_LSM_*``).
* :mod:`repro.jsonb` — the binary JSON format of Section 5.
"""

from repro.database import Database
from repro.engine.plan import QueryOptions
from repro.lsm import LsmConfig
from repro.maintenance import MaintenanceConfig, MaintenanceDaemon
from repro.storage.formats import StorageFormat
from repro.storage.loader import load_documents, load_json_lines
from repro.storage.relation import Relation
from repro.tiles.extractor import ExtractionConfig

__version__ = "1.0.0"

__all__ = [
    "Database",
    "ExtractionConfig",
    "LsmConfig",
    "MaintenanceConfig",
    "MaintenanceDaemon",
    "QueryOptions",
    "Relation",
    "StorageFormat",
    "load_documents",
    "load_json_lines",
    "__version__",
]
