"""Vectorized query engine: expressions, operators, push-down scans,
statistics-driven optimization and execution.

The engine mirrors the paper's integration story (Section 4): access
expressions live in the scan, casts are rewritten to typed accesses,
tiles without matches are skipped, and the optimizer consumes tile
statistics for join ordering.
"""

from repro.engine.batch import Batch, concat_batches
from repro.engine.executor import QueryResult, execute_block
from repro.engine.optimizer import Planner
from repro.engine.plan import QueryBlock, QueryOptions
from repro.engine.scan import AccessRequest, ScanCounters, TableScan

__all__ = [
    "AccessRequest",
    "Batch",
    "Planner",
    "QueryBlock",
    "QueryOptions",
    "QueryResult",
    "ScanCounters",
    "TableScan",
    "concat_batches",
    "execute_block",
]
