"""Process-external partial plans for the cluster (DESIGN.md §7).

The morsel engine already proves that folding per-batch partial
aggregate states *in batch order* replays the serial engine's exact
float-operation sequence (``operators.py``).  This module extends that
proof across processes: a shard computes one JSON-serializable partial
state per *(global block, chunk)* and the coordinator folds the states
from all shards in ascending ``(block, chunk)`` order — the same
per-batch partials a single node folding the whole data set would have
produced, in the same order, so merged results are bit-identical.

Canonical layout contract.  The coordinator routes inserts to shards
in round-robin *blocks* of ``tile_size`` rows, so global rows
``[k*B, (k+1)*B)`` live on shard ``k % S`` as its local block
``k // S`` (``B`` = tile size, ``S`` = shard count).  A canonical
single-node load seals one tile per block and scans it in
``batch_rows``-sized batches; the shard reproduces those batch
boundaries by slicing its *local row space* at multiples of ``B`` and
then at multiples of ``batch_rows`` — deliberately ignoring where its
own tile boundaries drifted to under mid-stream flushes.  Slices are
resolved with hand-built :class:`~repro.engine.morsels.Morsel` ranges,
which may span tile boundaries; per-sub-range predicate filtering then
concatenation equals filtering the concatenation, so the surviving
rows and their order match the canonical scan.

Execution modes (decided identically on coordinator and shard from the
bound block — classification is data-independent):

``scalar``
    Global aggregation, no GROUP BY.  Chunk states are the engine's
    ``_scalar_update`` partials; merge is ``_merge_scalar``.
``single_key``
    One group key with vectorizable aggregates.  Chunk states are
    ``_SingleKeyState`` snapshots; merge preserves first-appearance
    group order.
``generic``
    Composite/string keys, restricted to exactly-mergeable aggregates
    (count/count_star/count_distinct/min/max, and sum/avg over INT64
    inputs, whose partial sums are exact integers).  Float sums under
    composite keys accumulate per *row*, not per batch, so no partial
    is bit-exact — those fall back to ``gather``.
``rows``
    Non-aggregated SELECT.  Shards ship projected rows tagged with
    global row ids; the coordinator re-merges ORDER BY/LIMIT.
``gather``
    Anything else (joins, subqueries, UNION, exotic output types).
    The coordinator rebuilds the referenced tables locally from the
    shards' documents in global row order and runs the query on the
    rebuilt tables — always correct, linear in table size.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from functools import partial as _bind
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.types import ColumnType
from repro.engine import expressions as ex
from repro.engine.batch import Batch, concat_batches
from repro.engine.kernels import GroupByKernel, lexsort_indices
from repro.engine.morsels import Morsel, block_ranges, canonical_chop, \
    run_ordered
from repro.engine.operators import (
    BatchSource,
    FilterOp,
    HashAggregateOp,
    LimitOp,
    ProjectOp,
    SortOp,
    TopKOp,
    _make_sort_key,
    _new_state,
    _scalar,
    _SingleKeyState,
    _update_state,
)
from repro.engine.optimizer import Planner, PlannedScan
from repro.engine.plan import QueryBlock, QueryOptions, ScanSource
from repro.engine.scan import ROWID_PATH, ScanCounters, TableScan
from repro.errors import ExecutionError
from repro.storage.column import ColumnVector
from repro.storage.formats import StorageFormat

GATHER = "gather"

#: aggregates whose partial states merge exactly regardless of value
#: type (sets, counts and extremes carry no float rounding)
_EXACT_FUNCS = {"count", "count_star", "count_distinct", "min", "max"}

#: column types the rows mode can ship losslessly as JSON
_WIRE_TYPES = (ColumnType.INT64, ColumnType.FLOAT64, ColumnType.STRING,
               ColumnType.BOOL)


# ----------------------------------------------------------------------
# classification


def classify_block(block: QueryBlock) -> str:
    """Partial-execution mode for a bound block.

    Purely shape-driven (never looks at data), so the coordinator and
    every shard — each binding the same SQL against their own catalog —
    arrive at the same verdict independently.
    """
    if (len(block.sources) != 1
            or not isinstance(block.sources[0], ScanSource)
            or block.left_joins
            or block.subquery_filters
            or block.union_blocks):
        return GATHER
    if _has_scalar_subquery(block):
        return GATHER
    return classify_output(block)


def classify_output(block: QueryBlock) -> str:
    """Merge mode of the block's *output* over an arbitrary row
    stream, independent of how that stream is produced — shared by
    the single-source classifier above and the broadcast-join
    fragment planner (``engine/fragments.py``), whose probe fragments
    feed joined chunks through the same per-mode builders."""
    if block.is_aggregated:
        if not block.group_keys:
            return "scalar"
        probe = HashAggregateOp(BatchSource([]), block.group_keys,
                                block.aggregates)
        if len(block.group_keys) == 1 and probe._vectorizable_aggs():
            return "single_key"
        for spec in block.aggregates:
            if spec.func in _EXACT_FUNCS:
                continue
            if (spec.func in ("sum", "avg") and spec.expr is not None
                    and spec.expr.result_type == ColumnType.INT64):
                continue
            return GATHER
        return "generic"
    for _name, expr in block.select:
        if expr.result_type not in _WIRE_TYPES:
            return GATHER
    names = set(block.output_names())
    for key in block.order_by:
        if key.name not in names:
            return GATHER
    return "rows"


def _has_scalar_subquery(block: QueryBlock) -> bool:
    from repro.sql.binder import UnresolvedScalarExpr

    def walk(expr: ex.Expression) -> bool:
        if isinstance(expr, UnresolvedScalarExpr):
            return True
        return any(walk(child) for child in expr.children())

    exprs: List[ex.Expression] = list(block.predicates)
    exprs.extend(expr for _name, expr in block.select)
    exprs.extend(expr for _name, expr in block.group_keys)
    exprs.extend(spec.expr for spec in block.aggregates
                 if spec.expr is not None)
    if block.having is not None:
        exprs.append(block.having)
    for source in block.sources:
        exprs.extend(source.filters)
    return any(walk(expr) for expr in exprs)


# ----------------------------------------------------------------------
# shard side: compute (block, chunk)-tagged partial states


def execute_partial(block: QueryBlock, options: QueryOptions,
                    shard_index: int, shard_count: int,
                    expected_mode: Optional[str] = None) -> dict:
    """Run the shard's half of a partial plan over its local rows.

    Returns ``{"mode", "pieces", "counters"}`` where every piece is a
    JSON-safe dict tagged with its global block id ``k`` and chunk
    index ``c``.  ``expected_mode`` guards against coordinator/shard
    classification drift (different binder versions) — a mismatch is a
    hard error, never a silently different answer.
    """
    mode = classify_block(block)
    if mode == GATHER:
        raise ExecutionError("query block is not partial-executable; "
                             "the coordinator must gather instead")
    if expected_mode is not None and expected_mode != mode:
        raise ExecutionError(
            f"partial-plan mode mismatch: coordinator expects "
            f"{expected_mode!r} but this shard classifies the block as "
            f"{mode!r}; upgrade so both ends run the same planner")

    source = block.sources[0]
    relation = source.relation
    tile_rows = relation.config.tile_size

    planner = Planner(options)
    planned = {source.alias: PlannedScan(source)}
    join_edges, residuals = planner._classify_predicates(block, planned)
    planner._derive_skip_paths(block, planned, join_edges, residuals)
    item = planned[source.alias]

    rowid_name = None
    if mode == "rows":
        rowid_name = source.request(ROWID_PATH, ColumnType.INT64,
                                    False).name

    # Residual (constant) predicates are row-local, so folding them
    # into the scan's conjunct list keeps survivors identical to the
    # serial FilterOp while letting the shard ship only surviving rows
    # — and hands the late-materialization split the same conjuncts
    # the single-node planner would.
    scan = _fragment_scan(planner, source, item, options,
                          extra_predicates=residuals)

    build = _chunk_builder(mode, block, tile_rows, shard_index,
                           shard_count, rowid_name, options, scan)
    pieces = _run_chunks(scan, relation, tile_rows, shard_index,
                         shard_count, options, build)
    return {"mode": mode, "pieces": pieces,
            "counters": scan.counters.as_dict()}


def _fragment_scan(planner: Planner, source: ScanSource,
                   item: PlannedScan, options: QueryOptions,
                   extra_predicates: Sequence[ex.Expression] = ()
                   ) -> TableScan:
    """One source's scan for partial execution: the fused planner's
    ``_plan_source_with_filters`` configuration, but always serial —
    the chunk tasks parallelize instead, and chunk boundaries (not
    tile boundaries) define the merge order."""
    return TableScan(
        source.relation,
        list(source.requests.values()),
        predicates=item.filters + list(extra_predicates),
        late_materialization=options.enable_late_materialization,
        skip_paths=sorted(item.skip_paths),
        range_prunes=planner._range_prunes(source, item.filters),
        enable_skipping=options.enable_skipping,
        batch_rows=options.batch_rows,
        parallelism=1,  # chunk tasks parallelize instead
        use_cache=options.tile_cache,
        multipath_shred=options.enable_multipath_shred,
    )


def _run_chunks(scan: TableScan, relation, tile_rows: int,
                shard_index: int, shard_count: int,
                options: QueryOptions, build) -> List[dict]:
    """Enumerate the shard's ``(block, chunk)`` spans and fold each
    surviving chunk through *build* on the shared morsel pool."""
    tasks = [
        _bind(_run_chunk, scan, span, tag, build)
        for tag, span in _chunk_spans(relation, scan, tile_rows,
                                      shard_index, shard_count,
                                      options.batch_rows)
    ]
    return [piece for piece in
            run_ordered(tasks, max(1, options.parallelism))
            if piece is not None]


# ----------------------------------------------------------------------
# broadcast-join fragments (DESIGN.md §10)
#
# A two-source equi-join executes shard-side in two fragments.  The
# *build* fragment scans the build alias with its pushed-down filters
# and ships every surviving row's requested columns as (block, chunk)-
# tagged pieces; concatenated in ascending (k, c) order they equal the
# single-node build scan's surviving rows in global row order.  The
# *probe* fragment receives that merged build relation (broadcast),
# scans the probe alias in canonical chunks, joins each chunk against
# one shared prewarmed hash index, applies the block's residual
# predicates per joined chunk, and feeds the result through the same
# per-mode chunk builders as single-source partials.  Fused joined
# batch boundaries are probe batch boundaries (HashJoinOp emits one
# non-empty batch per probe batch), so the coordinator's (k, c)-
# ordered merge replays the serial engine's exact fold sequence.


def execute_build_fragment(block: QueryBlock, options: QueryOptions,
                           shard_index: int, shard_count: int,
                           build_alias: str) -> dict:
    """Shard half of a broadcast join's build fragment."""
    source = block.source(build_alias)
    if not isinstance(source, ScanSource):
        raise ExecutionError(
            f"build fragment alias {build_alias!r} is not a base-table "
            f"scan")
    relation = source.relation
    tile_rows = relation.config.tile_size

    planner = Planner(options)
    planned, _join_edges, _residuals = planner.fragment_inputs(block)
    item = planned[build_alias]

    names = sorted(source.requests)
    types = [source.requests[name].target for name in names]
    for name, target in zip(names, types):
        if target not in _WIRE_TYPES:
            raise ExecutionError(
                f"build column {name!r} has non-wire type "
                f"{target.name}; the coordinator must decline to "
                f"gather instead of broadcasting")

    scan = _fragment_scan(planner, source, item, options)

    def build_piece(batch: Batch) -> dict:
        return {"rows": [[batch.column(name).value(row)
                          for name in names]
                         for row in range(batch.length)]}

    pieces = _run_chunks(scan, relation, tile_rows, shard_index,
                         shard_count, options, build_piece)
    return {"mode": "build", "columns": names,
            "types": [target.name for target in types],
            "pieces": pieces, "counters": scan.counters.as_dict()}


def assemble_build_batch(columns: Sequence[str], types: Sequence[str],
                         rows: Sequence[Sequence]) -> Optional[Batch]:
    """Reconstruct the broadcast build relation from merged wire rows
    (``None`` when the build side survived no rows).  JSON round-trips
    the wire types exactly, so the rebuilt vectors are value-identical
    to the single-node build scan's output."""
    if not rows:
        return None
    vectors = {
        name: ColumnVector.from_values(
            ColumnType[type_name],
            [row[index] for row in rows])
        for index, (name, type_name) in enumerate(zip(columns, types))
    }
    return Batch(vectors, len(rows))


def merge_build_pieces(pieces: List[dict]) -> List[list]:
    """Concatenate build-fragment rows in ascending global
    ``(block, chunk)`` order — the single-node build scan's row
    order."""
    rows: List[list] = []
    for piece in sorted(pieces, key=lambda piece: (piece["k"],
                                                   piece["c"])):
        rows.extend(piece["rows"])
    return rows


def execute_probe_fragment(block: QueryBlock, options: QueryOptions,
                           shard_index: int, shard_count: int,
                           fragment: dict,
                           expected_mode: Optional[str] = None) -> dict:
    """Shard half of a broadcast join's probe fragment.

    *fragment* carries the pinned orientation and the merged build
    relation: ``{"probe", "build", "columns", "types", "rows"}``.  The
    orientation is decided once (by unanimous shard vote, see
    ``cluster/coordinator.py``) and obeyed here — location
    transparency — after validating it against this shard's own
    deterministic block shape.
    """
    probe_alias = fragment["probe"]
    build_alias = fragment["build"]
    aliases = {source.alias for source in block.sources}
    if (len(block.sources) != 2 or aliases != {probe_alias, build_alias}
            or probe_alias == build_alias):
        raise ExecutionError(
            f"probe fragment orientation ({probe_alias!r}, "
            f"{build_alias!r}) does not match the block's sources "
            f"{sorted(aliases)}")
    mode = classify_output(block)
    if mode == GATHER:
        raise ExecutionError("join block's output is not "
                             "partial-mergeable; the coordinator must "
                             "gather instead")
    if expected_mode is not None and expected_mode != mode:
        raise ExecutionError(
            f"probe-fragment mode mismatch: coordinator expects "
            f"{expected_mode!r} but this shard classifies the output "
            f"as {mode!r}; upgrade so both ends run the same planner")

    source = block.source(probe_alias)
    if not isinstance(source, ScanSource):
        raise ExecutionError(
            f"probe fragment alias {probe_alias!r} is not a base-table "
            f"scan")
    relation = source.relation
    tile_rows = relation.config.tile_size

    rowid_name = None
    if mode == "rows":
        rowid_name = source.request(ROWID_PATH, ColumnType.INT64,
                                    False).name

    planner = Planner(options)
    planned, join_edges, residuals = planner.fragment_inputs(block)
    item = planned[probe_alias]

    # orient the equi-join keys: probe-side expressions drive the
    # lookup, build-side expressions were evaluated into the index —
    # in join-edge order, exactly as _build_join_tree collects them
    probe_keys: List[ex.Expression] = []
    build_keys: List[ex.Expression] = []
    for a, b, left_key, right_key in join_edges:
        if a == probe_alias and b == build_alias:
            probe_keys.append(left_key)
            build_keys.append(right_key)
        elif a == build_alias and b == probe_alias:
            probe_keys.append(right_key)
            build_keys.append(left_key)
    if not probe_keys:
        raise ExecutionError("probe fragment without equi-join edges; "
                             "the coordinator must gather instead")

    build_batch = assemble_build_batch(fragment["columns"],
                                       fragment["types"],
                                       fragment.get("rows") or [])
    scan = _fragment_scan(planner, source, item, options)
    if build_batch is None:
        # inner join against an empty build side matches nothing; the
        # fused engine short-circuits before reading the probe, so the
        # fragment ships zero pieces without scanning
        return {"mode": mode, "pieces": [],
                "counters": scan.counters.as_dict()}

    from repro.engine.operators import _BuildIndex, _combine

    index = _BuildIndex(build_batch, build_keys,
                        enable_kernels=options.enable_kernels)
    index.prewarm()  # lookups must be read-only across pool workers

    build = _chunk_builder(mode, block, tile_rows, shard_index,
                           shard_count, rowid_name, options, scan)

    def probe_piece(batch: Batch) -> Optional[dict]:
        keys = [expr.evaluate(batch) for expr in probe_keys]
        probe_idx, build_idx, _counts = index.lookup(keys)
        combined = _combine(batch, probe_idx, build_batch, build_idx)
        # residuals are row-local over the joined row: applying them
        # per chunk in list order equals the fused plan's FilterOp
        # stack above the join
        for residual in residuals:
            if not combined.length:
                break
            verdict = residual.evaluate(combined)
            keep = verdict.data.astype(bool) & ~verdict.null_mask
            combined = combined.filter(keep)
        if not combined.length:
            return None
        return build(combined)

    pieces = _run_chunks(scan, relation, tile_rows, shard_index,
                         shard_count, options, probe_piece)
    return {"mode": mode, "pieces": pieces,
            "counters": scan.counters.as_dict()}


def _chunk_spans(relation, scan: TableScan, tile_rows: int,
                 shard_index: int, shard_count: int, batch_rows: int):
    """Enumerate ``((k, c), [start, stop))`` chunk spans over the
    shard's local row space, applying tile skipping once up front
    (mirroring ``TableScan.morsels`` counter semantics)."""
    total = relation.row_count
    if relation.format == StorageFormat.JSON:
        live = [(0, total)] if total else []
    else:
        live = []
        # one manifest snapshot for the span enumeration (repro.lsm):
        # a compaction swapping tiles mid-enumeration cannot tear the
        # chunk layout, and the counters match TableScan.morsels
        block = canonical_chop(batch_rows, tile_rows)
        for tile in relation.manifest().tiles:
            scan.counters.tiles_total += 1
            if scan._can_skip(tile):
                scan.counters.tiles_skipped += 1
                continue
            scan.counters.rows_scanned += tile.row_count
            level = tile.header.level
            scan.levels_scanned[level] = \
                scan.levels_scanned.get(level, 0) + 1
            # block-granular zone maps (DESIGN.md §9), mirroring
            # TableScan.morsels: pruned canonical-chop blocks punch
            # holes into the live span; adjacent survivors coalesce so
            # the no-pruning case reproduces the old whole-tile span
            # (pruned rows fail the predicate anyway — survivors and
            # their order are untouched)
            base = tile.first_row
            for b_start, b_stop in block_ranges(tile.row_count, block):
                if scan._can_skip_block(tile, b_start, b_stop):
                    scan.counters.blocks_pruned += 1
                    scan.counters.rows_scanned -= b_stop - b_start
                    continue
                if live and live[-1][1] == base + b_start:
                    live[-1] = (live[-1][0], base + b_stop)
                else:
                    live.append((base + b_start, base + b_stop))
    for start, stop in block_ranges(total, tile_rows):
        k = (start // tile_rows) * shard_count + shard_index
        for chunk_index, (c_start, c_stop) in enumerate(
                block_ranges(stop - start, batch_rows)):
            span = _clip_spans(live, start + c_start, start + c_stop)
            if span:
                yield (k, chunk_index), span


def _clip_spans(live: List[Tuple[int, int]], start: int,
                stop: int) -> List[Tuple[int, int]]:
    """Intersect ``[start, stop)`` with the non-skipped row ranges."""
    clipped = []
    for l_start, l_stop in live:
        lo, hi = max(start, l_start), min(stop, l_stop)
        if lo < hi:
            clipped.append((lo, hi))
    return clipped


def _run_chunk(scan: TableScan, span: List[Tuple[int, int]],
               tag: Tuple[int, int], build) -> Optional[dict]:
    """Resolve one chunk's surviving rows and build its partial state."""
    relation = scan.relation
    batches = []
    if relation.format == StorageFormat.JSON:
        for start, stop in span:
            batch = scan.resolve_morsel(Morsel(0, None, start, stop))
            if batch.length:
                batches.append(batch)
    else:
        # resolve against a manifest snapshot: spans are global row-id
        # ranges, and compaction preserves row ids, so any epoch yields
        # the same rows — but a snapshot makes the tile walk itself
        # immune to a concurrent splice
        tiles = relation.manifest().tiles
        firsts = [tile.first_row for tile in tiles]
        for start, stop in span:
            index = max(0, bisect_right(firsts, start) - 1)
            while index < len(tiles) and \
                    tiles[index].first_row < stop:
                tile = tiles[index]
                lo = max(start, tile.first_row)
                hi = min(stop, tile.first_row + tile.row_count)
                if lo < hi:
                    batch = scan.resolve_morsel(Morsel(
                        0, tile, lo - tile.first_row, hi - tile.first_row))
                    if batch.length:
                        batches.append(batch)
                index += 1
    batch = concat_batches(batches)
    if batch is None:
        return None
    piece = build(batch)
    if piece is None:
        # the chunk survived the scan but produced nothing to ship
        # (e.g. a probe-fragment chunk whose rows all missed the join)
        return None
    piece["k"], piece["c"] = tag
    return piece


def _chunk_builder(mode: str, block: QueryBlock, tile_rows: int,
                   shard_index: int, shard_count: int,
                   rowid_name: Optional[str],
                   options: Optional[QueryOptions] = None,
                   scan: Optional[TableScan] = None):
    enable_kernels = bool(options and options.enable_kernels)

    def count(field: str, rows: int) -> None:
        # chunk builders run on pool workers; fold kernel coverage into
        # the shard's shared counters under the scan's lock
        if scan is None or not rows:
            return
        with scan._counters_lock:
            setattr(scan.counters, field,
                    getattr(scan.counters, field) + rows)
    if mode == "scalar":
        op = HashAggregateOp(BatchSource([]), [], block.aggregates)

        def build_scalar(batch: Batch) -> dict:
            states = [_new_state(spec) for spec in block.aggregates]
            op._scalar_update(states, batch)
            return {"state": _encode_states(states, block.aggregates)}

        return build_scalar

    if mode == "single_key":
        _key_name, key_expr = block.group_keys[0]

        def build_single_key(batch: Batch) -> dict:
            state = _SingleKeyState(key_expr, block.aggregates)
            state.update(batch)
            return {
                "keys": state.key_values,
                "key_type": state.key_type.name if state.key_type else None,
                "sums": state.sums,
                "counts": state.counts,
                "extremes": state.extremes,
            }

        return build_single_key

    if mode == "generic":

        def build_generic(batch: Batch) -> dict:
            key_vectors = [expr.evaluate(batch)
                           for _name, expr in block.group_keys]
            agg_vectors = [
                spec.expr.evaluate(batch) if spec.expr is not None else None
                for spec in block.aggregates
            ]
            groups: Optional[Dict[tuple, List]] = None
            if enable_kernels:
                # one chunk = one batch, so a per-chunk GroupByKernel
                # either folds it whole or declines it untouched;
                # spill() yields exactly the per-tuple state dicts the
                # encoder below expects (generic mode only admits
                # exactly-mergeable aggregates, see classify_block)
                kernel = GroupByKernel(block.aggregates)
                if kernel.supported and kernel.update(
                        key_vectors, agg_vectors, batch.length):
                    groups = kernel.spill()
                    count("kernel_rows", batch.length)
                else:
                    count("fallback_rows", batch.length)
            if groups is not None:
                return {
                    "keys": [list(key) for key in groups],
                    "key_types": [vector.type.name
                                  for vector in key_vectors],
                    "states": [_encode_states(state, block.aggregates)
                               for state in groups.values()],
                }
            groups = {}
            for row in range(batch.length):
                key = tuple(
                    None if vector.null_mask[row] else _scalar(vector, row)
                    for vector in key_vectors)
                state = groups.get(key)
                if state is None:
                    state = [_new_state(spec) for spec in block.aggregates]
                    groups[key] = state
                for slot, spec in enumerate(block.aggregates):
                    _update_state(state[slot], spec, agg_vectors[slot], row)
            return {
                "keys": [list(key) for key in groups],
                "key_types": [vector.type.name for vector in key_vectors],
                "states": [_encode_states(state, block.aggregates)
                           for state in groups.values()],
            }

        return build_generic

    # rows mode
    select_names = [name for name, _expr in block.select]

    def build_rows(batch: Batch) -> dict:
        projected = Batch(
            {name: expr.evaluate(batch) for name, expr in block.select},
            batch.length)
        rowids = batch.column(rowid_name)
        limit = block.limit
        if limit is not None and projected.length > limit:
            if block.order_by:
                # any globally-top-k row is in its chunk's top-k, and
                # re-sorting the picks preserves original row order —
                # the same argument as TopKOp._parallel_candidates
                take = None
                if enable_kernels:
                    order = lexsort_indices(projected, block.order_by)
                    if order is not None:
                        take = np.sort(order[:limit])
                        count("kernel_rows", projected.length)
                    else:
                        count("fallback_rows", projected.length)
                if take is None:
                    sort_value = _make_sort_key(projected, block.order_by)
                    picks = heapq.nsmallest(limit,
                                            range(projected.length),
                                            key=sort_value)
                    picks.sort()
                    take = np.array(picks, dtype=np.int64)
            else:
                take = np.arange(limit, dtype=np.int64)
            projected = projected.take(take)
            rowids = rowids.take(take)
        rows = [[projected.column(name).value(row) for name in select_names]
                for row in range(projected.length)]
        globals_ = [
            _global_rowid(int(rowids.value(row)), tile_rows, shard_index,
                          shard_count)
            for row in range(projected.length)
        ]
        return {"rows": rows, "rowids": globals_}

    return build_rows


def _global_rowid(local: int, tile_rows: int, shard_index: int,
                  shard_count: int) -> int:
    """Map a shard-local row id to its global (coordinator) row id
    under block round-robin routing."""
    block_id = (local // tile_rows) * shard_count + shard_index
    return block_id * tile_rows + local % tile_rows


# ----------------------------------------------------------------------
# state (de)serialization
#
# JSON round-trips Python ints exactly and floats via repr (exact for
# every finite double, including -0.0); the stdlib also emits/parses
# Infinity and NaN.  The encodings below therefore preserve the merge
# functions' bit-exactness — including ``_merge_scalar``'s untouched
# sum sentinel (int 0 stays ``int`` on the wire, float sums come back
# ``float``).


def _encode_states(states: List[List], aggregates) -> List[list]:
    encoded = []
    for state, spec in zip(states, aggregates):
        if spec.func == "count_distinct":
            encoded.append([sorted(state[0], key=repr)])
        else:
            encoded.append(list(state))
    return encoded


def _decode_states(payload: Sequence[list], aggregates) -> List[List]:
    states = []
    for state, spec in zip(payload, aggregates):
        if spec.func == "count_distinct":
            states.append([set(state[0])])
        else:
            states.append(list(state))
    return states


def _decode_single_key(piece: dict, key_expr: ex.Expression,
                       aggregates) -> _SingleKeyState:
    state = _SingleKeyState(key_expr, aggregates)
    state.key_values = list(piece["keys"])
    state.group_ids = {value: gid
                       for gid, value in enumerate(state.key_values)}
    state.key_type = (ColumnType[piece["key_type"]]
                      if piece.get("key_type") else None)
    state.sums = [list(slot) for slot in piece["sums"]]
    state.counts = [list(slot) for slot in piece["counts"]]
    state.extremes = [list(slot) for slot in piece["extremes"]]
    return state


# ----------------------------------------------------------------------
# coordinator side: ordered merge + the planner's finishing tail


def merge_partial_results(block: QueryBlock, mode: str,
                          pieces: List[dict],
                          options: Optional[QueryOptions] = None,
                          counters: Optional[ScanCounters] = None,
                          ) -> Tuple[List[str], List[tuple]]:
    """Fold every shard's pieces in global ``(block, chunk)`` order and
    run the planner's finishing tail (HAVING → SELECT → ORDER BY /
    LIMIT).  Returns ``(columns, rows)`` bit-identical to single-node
    execution of the same block.

    ``options`` lets the finishing tail engage the same sort kernels
    the fused tree would; ``counters`` collects their kernel coverage
    (the fused executor merges operator counters the same way)."""
    pieces = sorted(pieces, key=lambda piece: (piece["k"], piece["c"]))
    if mode == "rows":
        merged = _assemble_rows(block, pieces)
        return _finish(block, merged, project=False,
                       options=options, counters=counters)
    if mode == "scalar":
        op = HashAggregateOp(BatchSource([]), [], block.aggregates)
        states = [_new_state(spec) for spec in block.aggregates]
        for piece in pieces:
            op._merge_scalar(states,
                             _decode_states(piece["state"],
                                            block.aggregates))
        merged = op._finish({(): states}, [])
    elif mode == "single_key":
        key_name, key_expr = block.group_keys[0]
        state = _SingleKeyState(key_expr, block.aggregates)
        for piece in pieces:
            state.merge(_decode_single_key(piece, key_expr,
                                           block.aggregates))
        merged = state.finish(key_name)
    elif mode == "generic":
        groups: Dict[tuple, List] = {}
        key_types: Optional[List[ColumnType]] = None
        for piece in pieces:
            if key_types is None and piece.get("key_types"):
                key_types = [ColumnType[name]
                             for name in piece["key_types"]]
            for key, encoded in zip(piece["keys"], piece["states"]):
                incoming = _decode_states(encoded, block.aggregates)
                state = groups.get(tuple(key))
                if state is None:
                    groups[tuple(key)] = incoming
                else:
                    _merge_exact_states(state, incoming, block.aggregates)
        op = HashAggregateOp(BatchSource([]), block.group_keys,
                             block.aggregates)
        if not groups and not block.group_keys:
            groups[()] = [_new_state(spec) for spec in block.aggregates]
        merged = op._finish(groups, key_types)
    else:
        raise ExecutionError(f"unknown partial mode {mode!r}")
    return _finish(block, merged, project=True,
                   options=options, counters=counters)


def _merge_exact_states(state: List[List], incoming: List[List],
                        aggregates) -> None:
    """Merge generic-mode states.  Only exactly-mergeable aggregates
    reach this path (see :func:`classify_block`): set unions, integer
    adds and extremes — plus int-valued float sums for avg-over-INT64,
    exact below 2**53."""
    for slot, spec in enumerate(aggregates):
        current, piece = state[slot], incoming[slot]
        if spec.func == "count_distinct":
            current[0].update(piece[0])
        elif spec.func in ("min", "max"):
            if piece[0] is not None and (
                    current[0] is None or (
                        piece[0] < current[0] if spec.func == "min"
                        else piece[0] > current[0])):
                current[0] = piece[0]
        elif spec.func == "avg":
            current[0] += piece[0]
            current[1] += piece[1]
        else:  # sum / count / count_star
            current[0] += piece[0]


def _assemble_rows(block: QueryBlock, pieces: List[dict]) -> Batch:
    select = block.select
    columns: Dict[str, List] = {name: [] for name, _expr in select}
    rowids: List[int] = []
    for piece in pieces:
        for row in piece["rows"]:
            for (name, _expr), value in zip(select, row):
                columns[name].append(value)
        rowids.extend(piece["rowids"])
    # pieces arrive (block, chunk)-sorted and rows within a piece are
    # already in local order, so rowids are globally ascending — the
    # concatenation is the serial scan's row order
    length = len(rowids)
    vectors = {
        name: ColumnVector.from_values(expr.result_type, columns[name])
        for name, expr in select
    }
    return Batch(vectors, length)


def _finish(block: QueryBlock, merged: Optional[Batch],
            project: bool, options: Optional[QueryOptions] = None,
            counters: Optional[ScanCounters] = None,
            ) -> Tuple[List[str], List[tuple]]:
    """The planner's post-aggregation tail, verbatim
    (``Planner.plan_block``): HAVING filter, SELECT projection, then
    TopK/Sort/Limit.  ``project=False`` for rows mode, whose shards
    already projected.  With ``options``, the sort tail uses the same
    kernels as the fused tree and reports coverage into ``counters``."""
    enable_kernels = bool(options and options.enable_kernels)
    tree = BatchSource([merged] if merged is not None else [])
    if project:
        if block.is_aggregated and block.having is not None:
            tree = FilterOp(tree, block.having)
        if block.select:
            tree = ProjectOp(tree, block.select)
    tail = None
    if block.order_by and block.limit is not None:
        tree = tail = TopKOp(tree, block.order_by, block.limit,
                             enable_kernels=enable_kernels)
    elif block.order_by:
        tree = tail = SortOp(tree, block.order_by,
                             enable_kernels=enable_kernels)
    elif block.limit is not None:
        tree = LimitOp(tree, block.limit)
    result = tree.materialize()
    if counters is not None and tail is not None:
        counters.merge(tail.counters)
    names = block.output_names()
    if result is None:
        return list(names), []
    rows = [
        tuple(result.column(name).value(row) for name in names)
        for row in range(result.length)
    ]
    return list(names), rows


def merge_counters(counter_dicts: Sequence[Dict[str, int]]) -> ScanCounters:
    """Sum per-shard scan counters into one (all fields commutative)."""
    from dataclasses import fields

    total = ScanCounters()
    known = {field.name for field in fields(ScanCounters)}
    for wire in counter_dicts:
        total.merge(ScanCounters(**{key: value for key, value
                                    in wire.items() if key in known}))
    return total
