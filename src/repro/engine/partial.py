"""Process-external partial plans for the cluster (DESIGN.md §7).

The morsel engine already proves that folding per-batch partial
aggregate states *in batch order* replays the serial engine's exact
float-operation sequence (``operators.py``).  This module extends that
proof across processes: a shard computes one JSON-serializable partial
state per *(global block, chunk)* and the coordinator folds the states
from all shards in ascending ``(block, chunk)`` order — the same
per-batch partials a single node folding the whole data set would have
produced, in the same order, so merged results are bit-identical.

Canonical layout contract.  The coordinator routes inserts to shards
in round-robin *blocks* of ``tile_size`` rows, so global rows
``[k*B, (k+1)*B)`` live on shard ``k % S`` as its local block
``k // S`` (``B`` = tile size, ``S`` = shard count).  A canonical
single-node load seals one tile per block and scans it in
``batch_rows``-sized batches; the shard reproduces those batch
boundaries by slicing its *local row space* at multiples of ``B`` and
then at multiples of ``batch_rows`` — deliberately ignoring where its
own tile boundaries drifted to under mid-stream flushes.  Slices are
resolved with hand-built :class:`~repro.engine.morsels.Morsel` ranges,
which may span tile boundaries; per-sub-range predicate filtering then
concatenation equals filtering the concatenation, so the surviving
rows and their order match the canonical scan.

Execution modes (decided identically on coordinator and shard from the
bound block — classification is data-independent):

``scalar``
    Global aggregation, no GROUP BY.  Chunk states are the engine's
    ``_scalar_update`` partials; merge is ``_merge_scalar``.
``single_key``
    One group key with vectorizable aggregates.  Chunk states are
    ``_SingleKeyState`` snapshots; merge preserves first-appearance
    group order.
``generic``
    Composite/string keys, restricted to exactly-mergeable aggregates
    (count/count_star/count_distinct/min/max, and sum/avg over INT64
    inputs, whose partial sums are exact integers).  Float sums under
    composite keys accumulate per *row*, not per batch, so no partial
    is bit-exact — those fall back to ``gather``.
``rows``
    Non-aggregated SELECT.  Shards ship projected rows tagged with
    global row ids; the coordinator re-merges ORDER BY/LIMIT.
``gather``
    Anything else (joins, subqueries, UNION, exotic output types).
    The coordinator rebuilds the referenced tables locally from the
    shards' documents in global row order and runs the query on the
    rebuilt tables — always correct, linear in table size.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from functools import partial as _bind
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.types import ColumnType
from repro.engine import expressions as ex
from repro.engine.batch import Batch, concat_batches
from repro.engine.kernels import GroupByKernel, lexsort_indices
from repro.engine.morsels import Morsel, block_ranges, canonical_chop, \
    run_ordered
from repro.engine.operators import (
    BatchSource,
    FilterOp,
    HashAggregateOp,
    LimitOp,
    ProjectOp,
    SortOp,
    TopKOp,
    _make_sort_key,
    _new_state,
    _scalar,
    _SingleKeyState,
    _update_state,
)
from repro.engine.optimizer import Planner, PlannedScan
from repro.engine.plan import QueryBlock, QueryOptions, ScanSource
from repro.engine.scan import ROWID_PATH, ScanCounters, TableScan
from repro.errors import ExecutionError
from repro.storage.column import ColumnVector
from repro.storage.formats import StorageFormat

GATHER = "gather"

#: aggregates whose partial states merge exactly regardless of value
#: type (sets, counts and extremes carry no float rounding)
_EXACT_FUNCS = {"count", "count_star", "count_distinct", "min", "max"}

#: column types the rows mode can ship losslessly as JSON
_WIRE_TYPES = (ColumnType.INT64, ColumnType.FLOAT64, ColumnType.STRING,
               ColumnType.BOOL)


# ----------------------------------------------------------------------
# classification


def classify_block(block: QueryBlock) -> str:
    """Partial-execution mode for a bound block.

    Purely shape-driven (never looks at data), so the coordinator and
    every shard — each binding the same SQL against their own catalog —
    arrive at the same verdict independently.
    """
    if (len(block.sources) != 1
            or not isinstance(block.sources[0], ScanSource)
            or block.left_joins
            or block.subquery_filters
            or block.union_blocks):
        return GATHER
    if _has_scalar_subquery(block):
        return GATHER
    if block.is_aggregated:
        if not block.group_keys:
            return "scalar"
        probe = HashAggregateOp(BatchSource([]), block.group_keys,
                                block.aggregates)
        if len(block.group_keys) == 1 and probe._vectorizable_aggs():
            return "single_key"
        for spec in block.aggregates:
            if spec.func in _EXACT_FUNCS:
                continue
            if (spec.func in ("sum", "avg") and spec.expr is not None
                    and spec.expr.result_type == ColumnType.INT64):
                continue
            return GATHER
        return "generic"
    for _name, expr in block.select:
        if expr.result_type not in _WIRE_TYPES:
            return GATHER
    names = set(block.output_names())
    for key in block.order_by:
        if key.name not in names:
            return GATHER
    return "rows"


def _has_scalar_subquery(block: QueryBlock) -> bool:
    from repro.sql.binder import UnresolvedScalarExpr

    def walk(expr: ex.Expression) -> bool:
        if isinstance(expr, UnresolvedScalarExpr):
            return True
        return any(walk(child) for child in expr.children())

    exprs: List[ex.Expression] = list(block.predicates)
    exprs.extend(expr for _name, expr in block.select)
    exprs.extend(expr for _name, expr in block.group_keys)
    exprs.extend(spec.expr for spec in block.aggregates
                 if spec.expr is not None)
    if block.having is not None:
        exprs.append(block.having)
    for source in block.sources:
        exprs.extend(source.filters)
    return any(walk(expr) for expr in exprs)


# ----------------------------------------------------------------------
# shard side: compute (block, chunk)-tagged partial states


def execute_partial(block: QueryBlock, options: QueryOptions,
                    shard_index: int, shard_count: int,
                    expected_mode: Optional[str] = None) -> dict:
    """Run the shard's half of a partial plan over its local rows.

    Returns ``{"mode", "pieces", "counters"}`` where every piece is a
    JSON-safe dict tagged with its global block id ``k`` and chunk
    index ``c``.  ``expected_mode`` guards against coordinator/shard
    classification drift (different binder versions) — a mismatch is a
    hard error, never a silently different answer.
    """
    mode = classify_block(block)
    if mode == GATHER:
        raise ExecutionError("query block is not partial-executable; "
                             "the coordinator must gather instead")
    if expected_mode is not None and expected_mode != mode:
        raise ExecutionError(
            f"partial-plan mode mismatch: coordinator expects "
            f"{expected_mode!r} but this shard classifies the block as "
            f"{mode!r}; upgrade so both ends run the same planner")

    source = block.sources[0]
    relation = source.relation
    tile_rows = relation.config.tile_size

    planner = Planner(options)
    planned = {source.alias: PlannedScan(source)}
    join_edges, residuals = planner._classify_predicates(block, planned)
    planner._derive_skip_paths(block, planned, join_edges, residuals)
    item = planned[source.alias]

    rowid_name = None
    if mode == "rows":
        rowid_name = source.request(ROWID_PATH, ColumnType.INT64,
                                    False).name

    # Residual (constant) predicates are row-local, so folding them
    # into the scan's conjunct list keeps survivors identical to the
    # serial FilterOp while letting the shard ship only surviving rows
    # — and hands the late-materialization split the same conjuncts
    # the single-node planner would.
    scan = TableScan(
        relation,
        list(source.requests.values()),
        predicates=item.filters + residuals,
        late_materialization=options.enable_late_materialization,
        skip_paths=sorted(item.skip_paths),
        range_prunes=planner._range_prunes(source, item.filters),
        enable_skipping=options.enable_skipping,
        batch_rows=options.batch_rows,
        parallelism=1,  # chunk tasks below parallelize instead
        use_cache=options.tile_cache,
        multipath_shred=options.enable_multipath_shred,
    )

    build = _chunk_builder(mode, block, tile_rows, shard_index,
                           shard_count, rowid_name, options, scan)
    tasks = [
        _bind(_run_chunk, scan, span, tag, build)
        for tag, span in _chunk_spans(relation, scan, tile_rows,
                                      shard_index, shard_count,
                                      options.batch_rows)
    ]
    pieces = [piece for piece in
              run_ordered(tasks, max(1, options.parallelism))
              if piece is not None]
    return {"mode": mode, "pieces": pieces,
            "counters": scan.counters.as_dict()}


def _chunk_spans(relation, scan: TableScan, tile_rows: int,
                 shard_index: int, shard_count: int, batch_rows: int):
    """Enumerate ``((k, c), [start, stop))`` chunk spans over the
    shard's local row space, applying tile skipping once up front
    (mirroring ``TableScan.morsels`` counter semantics)."""
    total = relation.row_count
    if relation.format == StorageFormat.JSON:
        live = [(0, total)] if total else []
    else:
        live = []
        # one manifest snapshot for the span enumeration (repro.lsm):
        # a compaction swapping tiles mid-enumeration cannot tear the
        # chunk layout, and the counters match TableScan.morsels
        block = canonical_chop(batch_rows, tile_rows)
        for tile in relation.manifest().tiles:
            scan.counters.tiles_total += 1
            if scan._can_skip(tile):
                scan.counters.tiles_skipped += 1
                continue
            scan.counters.rows_scanned += tile.row_count
            level = tile.header.level
            scan.levels_scanned[level] = \
                scan.levels_scanned.get(level, 0) + 1
            # block-granular zone maps (DESIGN.md §9), mirroring
            # TableScan.morsels: pruned canonical-chop blocks punch
            # holes into the live span; adjacent survivors coalesce so
            # the no-pruning case reproduces the old whole-tile span
            # (pruned rows fail the predicate anyway — survivors and
            # their order are untouched)
            base = tile.first_row
            for b_start, b_stop in block_ranges(tile.row_count, block):
                if scan._can_skip_block(tile, b_start, b_stop):
                    scan.counters.blocks_pruned += 1
                    scan.counters.rows_scanned -= b_stop - b_start
                    continue
                if live and live[-1][1] == base + b_start:
                    live[-1] = (live[-1][0], base + b_stop)
                else:
                    live.append((base + b_start, base + b_stop))
    for start, stop in block_ranges(total, tile_rows):
        k = (start // tile_rows) * shard_count + shard_index
        for chunk_index, (c_start, c_stop) in enumerate(
                block_ranges(stop - start, batch_rows)):
            span = _clip_spans(live, start + c_start, start + c_stop)
            if span:
                yield (k, chunk_index), span


def _clip_spans(live: List[Tuple[int, int]], start: int,
                stop: int) -> List[Tuple[int, int]]:
    """Intersect ``[start, stop)`` with the non-skipped row ranges."""
    clipped = []
    for l_start, l_stop in live:
        lo, hi = max(start, l_start), min(stop, l_stop)
        if lo < hi:
            clipped.append((lo, hi))
    return clipped


def _run_chunk(scan: TableScan, span: List[Tuple[int, int]],
               tag: Tuple[int, int], build) -> Optional[dict]:
    """Resolve one chunk's surviving rows and build its partial state."""
    relation = scan.relation
    batches = []
    if relation.format == StorageFormat.JSON:
        for start, stop in span:
            batch = scan.resolve_morsel(Morsel(0, None, start, stop))
            if batch.length:
                batches.append(batch)
    else:
        # resolve against a manifest snapshot: spans are global row-id
        # ranges, and compaction preserves row ids, so any epoch yields
        # the same rows — but a snapshot makes the tile walk itself
        # immune to a concurrent splice
        tiles = relation.manifest().tiles
        firsts = [tile.first_row for tile in tiles]
        for start, stop in span:
            index = max(0, bisect_right(firsts, start) - 1)
            while index < len(tiles) and \
                    tiles[index].first_row < stop:
                tile = tiles[index]
                lo = max(start, tile.first_row)
                hi = min(stop, tile.first_row + tile.row_count)
                if lo < hi:
                    batch = scan.resolve_morsel(Morsel(
                        0, tile, lo - tile.first_row, hi - tile.first_row))
                    if batch.length:
                        batches.append(batch)
                index += 1
    batch = concat_batches(batches)
    if batch is None:
        return None
    piece = build(batch)
    piece["k"], piece["c"] = tag
    return piece


def _chunk_builder(mode: str, block: QueryBlock, tile_rows: int,
                   shard_index: int, shard_count: int,
                   rowid_name: Optional[str],
                   options: Optional[QueryOptions] = None,
                   scan: Optional[TableScan] = None):
    enable_kernels = bool(options and options.enable_kernels)

    def count(field: str, rows: int) -> None:
        # chunk builders run on pool workers; fold kernel coverage into
        # the shard's shared counters under the scan's lock
        if scan is None or not rows:
            return
        with scan._counters_lock:
            setattr(scan.counters, field,
                    getattr(scan.counters, field) + rows)
    if mode == "scalar":
        op = HashAggregateOp(BatchSource([]), [], block.aggregates)

        def build_scalar(batch: Batch) -> dict:
            states = [_new_state(spec) for spec in block.aggregates]
            op._scalar_update(states, batch)
            return {"state": _encode_states(states, block.aggregates)}

        return build_scalar

    if mode == "single_key":
        _key_name, key_expr = block.group_keys[0]

        def build_single_key(batch: Batch) -> dict:
            state = _SingleKeyState(key_expr, block.aggregates)
            state.update(batch)
            return {
                "keys": state.key_values,
                "key_type": state.key_type.name if state.key_type else None,
                "sums": state.sums,
                "counts": state.counts,
                "extremes": state.extremes,
            }

        return build_single_key

    if mode == "generic":

        def build_generic(batch: Batch) -> dict:
            key_vectors = [expr.evaluate(batch)
                           for _name, expr in block.group_keys]
            agg_vectors = [
                spec.expr.evaluate(batch) if spec.expr is not None else None
                for spec in block.aggregates
            ]
            groups: Optional[Dict[tuple, List]] = None
            if enable_kernels:
                # one chunk = one batch, so a per-chunk GroupByKernel
                # either folds it whole or declines it untouched;
                # spill() yields exactly the per-tuple state dicts the
                # encoder below expects (generic mode only admits
                # exactly-mergeable aggregates, see classify_block)
                kernel = GroupByKernel(block.aggregates)
                if kernel.supported and kernel.update(
                        key_vectors, agg_vectors, batch.length):
                    groups = kernel.spill()
                    count("kernel_rows", batch.length)
                else:
                    count("fallback_rows", batch.length)
            if groups is not None:
                return {
                    "keys": [list(key) for key in groups],
                    "key_types": [vector.type.name
                                  for vector in key_vectors],
                    "states": [_encode_states(state, block.aggregates)
                               for state in groups.values()],
                }
            groups = {}
            for row in range(batch.length):
                key = tuple(
                    None if vector.null_mask[row] else _scalar(vector, row)
                    for vector in key_vectors)
                state = groups.get(key)
                if state is None:
                    state = [_new_state(spec) for spec in block.aggregates]
                    groups[key] = state
                for slot, spec in enumerate(block.aggregates):
                    _update_state(state[slot], spec, agg_vectors[slot], row)
            return {
                "keys": [list(key) for key in groups],
                "key_types": [vector.type.name for vector in key_vectors],
                "states": [_encode_states(state, block.aggregates)
                           for state in groups.values()],
            }

        return build_generic

    # rows mode
    select_names = [name for name, _expr in block.select]

    def build_rows(batch: Batch) -> dict:
        projected = Batch(
            {name: expr.evaluate(batch) for name, expr in block.select},
            batch.length)
        rowids = batch.column(rowid_name)
        limit = block.limit
        if limit is not None and projected.length > limit:
            if block.order_by:
                # any globally-top-k row is in its chunk's top-k, and
                # re-sorting the picks preserves original row order —
                # the same argument as TopKOp._parallel_candidates
                take = None
                if enable_kernels:
                    order = lexsort_indices(projected, block.order_by)
                    if order is not None:
                        take = np.sort(order[:limit])
                        count("kernel_rows", projected.length)
                    else:
                        count("fallback_rows", projected.length)
                if take is None:
                    sort_value = _make_sort_key(projected, block.order_by)
                    picks = heapq.nsmallest(limit,
                                            range(projected.length),
                                            key=sort_value)
                    picks.sort()
                    take = np.array(picks, dtype=np.int64)
            else:
                take = np.arange(limit, dtype=np.int64)
            projected = projected.take(take)
            rowids = rowids.take(take)
        rows = [[projected.column(name).value(row) for name in select_names]
                for row in range(projected.length)]
        globals_ = [
            _global_rowid(int(rowids.value(row)), tile_rows, shard_index,
                          shard_count)
            for row in range(projected.length)
        ]
        return {"rows": rows, "rowids": globals_}

    return build_rows


def _global_rowid(local: int, tile_rows: int, shard_index: int,
                  shard_count: int) -> int:
    """Map a shard-local row id to its global (coordinator) row id
    under block round-robin routing."""
    block_id = (local // tile_rows) * shard_count + shard_index
    return block_id * tile_rows + local % tile_rows


# ----------------------------------------------------------------------
# state (de)serialization
#
# JSON round-trips Python ints exactly and floats via repr (exact for
# every finite double, including -0.0); the stdlib also emits/parses
# Infinity and NaN.  The encodings below therefore preserve the merge
# functions' bit-exactness — including ``_merge_scalar``'s untouched
# sum sentinel (int 0 stays ``int`` on the wire, float sums come back
# ``float``).


def _encode_states(states: List[List], aggregates) -> List[list]:
    encoded = []
    for state, spec in zip(states, aggregates):
        if spec.func == "count_distinct":
            encoded.append([sorted(state[0], key=repr)])
        else:
            encoded.append(list(state))
    return encoded


def _decode_states(payload: Sequence[list], aggregates) -> List[List]:
    states = []
    for state, spec in zip(payload, aggregates):
        if spec.func == "count_distinct":
            states.append([set(state[0])])
        else:
            states.append(list(state))
    return states


def _decode_single_key(piece: dict, key_expr: ex.Expression,
                       aggregates) -> _SingleKeyState:
    state = _SingleKeyState(key_expr, aggregates)
    state.key_values = list(piece["keys"])
    state.group_ids = {value: gid
                       for gid, value in enumerate(state.key_values)}
    state.key_type = (ColumnType[piece["key_type"]]
                      if piece.get("key_type") else None)
    state.sums = [list(slot) for slot in piece["sums"]]
    state.counts = [list(slot) for slot in piece["counts"]]
    state.extremes = [list(slot) for slot in piece["extremes"]]
    return state


# ----------------------------------------------------------------------
# coordinator side: ordered merge + the planner's finishing tail


def merge_partial_results(block: QueryBlock, mode: str,
                          pieces: List[dict]) -> Tuple[List[str],
                                                       List[tuple]]:
    """Fold every shard's pieces in global ``(block, chunk)`` order and
    run the planner's finishing tail (HAVING → SELECT → ORDER BY /
    LIMIT).  Returns ``(columns, rows)`` bit-identical to single-node
    execution of the same block."""
    pieces = sorted(pieces, key=lambda piece: (piece["k"], piece["c"]))
    if mode == "rows":
        merged = _assemble_rows(block, pieces)
        return _finish(block, merged, project=False)
    if mode == "scalar":
        op = HashAggregateOp(BatchSource([]), [], block.aggregates)
        states = [_new_state(spec) for spec in block.aggregates]
        for piece in pieces:
            op._merge_scalar(states,
                             _decode_states(piece["state"],
                                            block.aggregates))
        merged = op._finish({(): states}, [])
    elif mode == "single_key":
        key_name, key_expr = block.group_keys[0]
        state = _SingleKeyState(key_expr, block.aggregates)
        for piece in pieces:
            state.merge(_decode_single_key(piece, key_expr,
                                           block.aggregates))
        merged = state.finish(key_name)
    elif mode == "generic":
        groups: Dict[tuple, List] = {}
        key_types: Optional[List[ColumnType]] = None
        for piece in pieces:
            if key_types is None and piece.get("key_types"):
                key_types = [ColumnType[name]
                             for name in piece["key_types"]]
            for key, encoded in zip(piece["keys"], piece["states"]):
                incoming = _decode_states(encoded, block.aggregates)
                state = groups.get(tuple(key))
                if state is None:
                    groups[tuple(key)] = incoming
                else:
                    _merge_exact_states(state, incoming, block.aggregates)
        op = HashAggregateOp(BatchSource([]), block.group_keys,
                             block.aggregates)
        if not groups and not block.group_keys:
            groups[()] = [_new_state(spec) for spec in block.aggregates]
        merged = op._finish(groups, key_types)
    else:
        raise ExecutionError(f"unknown partial mode {mode!r}")
    return _finish(block, merged, project=True)


def _merge_exact_states(state: List[List], incoming: List[List],
                        aggregates) -> None:
    """Merge generic-mode states.  Only exactly-mergeable aggregates
    reach this path (see :func:`classify_block`): set unions, integer
    adds and extremes — plus int-valued float sums for avg-over-INT64,
    exact below 2**53."""
    for slot, spec in enumerate(aggregates):
        current, piece = state[slot], incoming[slot]
        if spec.func == "count_distinct":
            current[0].update(piece[0])
        elif spec.func in ("min", "max"):
            if piece[0] is not None and (
                    current[0] is None or (
                        piece[0] < current[0] if spec.func == "min"
                        else piece[0] > current[0])):
                current[0] = piece[0]
        elif spec.func == "avg":
            current[0] += piece[0]
            current[1] += piece[1]
        else:  # sum / count / count_star
            current[0] += piece[0]


def _assemble_rows(block: QueryBlock, pieces: List[dict]) -> Batch:
    select = block.select
    columns: Dict[str, List] = {name: [] for name, _expr in select}
    rowids: List[int] = []
    for piece in pieces:
        for row in piece["rows"]:
            for (name, _expr), value in zip(select, row):
                columns[name].append(value)
        rowids.extend(piece["rowids"])
    # pieces arrive (block, chunk)-sorted and rows within a piece are
    # already in local order, so rowids are globally ascending — the
    # concatenation is the serial scan's row order
    length = len(rowids)
    vectors = {
        name: ColumnVector.from_values(expr.result_type, columns[name])
        for name, expr in select
    }
    return Batch(vectors, length)


def _finish(block: QueryBlock, merged: Optional[Batch],
            project: bool) -> Tuple[List[str], List[tuple]]:
    """The planner's post-aggregation tail, verbatim
    (``Planner.plan_block``): HAVING filter, SELECT projection, then
    TopK/Sort/Limit.  ``project=False`` for rows mode, whose shards
    already projected."""
    tree = BatchSource([merged] if merged is not None else [])
    if project:
        if block.is_aggregated and block.having is not None:
            tree = FilterOp(tree, block.having)
        if block.select:
            tree = ProjectOp(tree, block.select)
    if block.order_by and block.limit is not None:
        tree = TopKOp(tree, block.order_by, block.limit)
    elif block.order_by:
        tree = SortOp(tree, block.order_by)
    elif block.limit is not None:
        tree = LimitOp(tree, block.limit)
    result = tree.materialize()
    names = block.output_names()
    if result is None:
        return list(names), []
    rows = [
        tuple(result.column(name).value(row) for name in names)
        for row in range(result.length)
    ]
    return list(names), rows


def merge_counters(counter_dicts: Sequence[Dict[str, int]]) -> ScanCounters:
    """Sum per-shard scan counters into one (all fields commutative)."""
    from dataclasses import fields

    total = ScanCounters()
    known = {field.name for field in fields(ScanCounters)}
    for wire in counter_dicts:
        total.merge(ScanCounters(**{key: value for key, value
                                    in wire.items() if key in known}))
    return total
